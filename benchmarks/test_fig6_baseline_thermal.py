"""Figure 6: the planar Core 2 Duo power map and thermal map.

Paper values: two hottest spots at 88.35 C (FP / reservation stations /
load-store units), coolest on-die area at 59 C, with a 92 W skew, desktop
cooling, and 40 C ambient.
"""

import pytest

from conftest import BENCH_GRID, run_once
from repro.analysis import ascii_heatmap
from repro.floorplan import core2duo_floorplan
from repro.thermal import simulate_planar

PAPER_PEAK_C = 88.35
PAPER_COOLEST_C = 59.0


@pytest.fixture(scope="module")
def figure6_solution():
    return simulate_planar(core2duo_floorplan(), BENCH_GRID)


def test_fig6_regenerate(benchmark):
    solution = run_once(
        benchmark, simulate_planar, core2duo_floorplan(), BENCH_GRID
    )
    benchmark.extra_info["peak_c"] = solution.peak_temperature()
    benchmark.extra_info["coolest_c"] = solution.coolest_on_die()
    print("\nFigure 6b: baseline thermal map (active layer)")
    print(ascii_heatmap(solution.die_map("metal-1"), width=48))
    print(f"  peak    {solution.peak_temperature():6.2f} C "
          f"(paper {PAPER_PEAK_C})")
    print(f"  coolest {solution.coolest_on_die():6.2f} C "
          f"(paper {PAPER_COOLEST_C})")
    assert solution.peak_temperature() == pytest.approx(PAPER_PEAK_C, abs=2.0)
    assert solution.coolest_on_die() == pytest.approx(PAPER_COOLEST_C, abs=2.0)


class TestFigure6Values:
    def test_peak_matches_paper(self, figure6_solution):
        assert figure6_solution.peak_temperature() == pytest.approx(
            PAPER_PEAK_C, abs=2.0
        )

    def test_coolest_matches_paper(self, figure6_solution):
        assert figure6_solution.coolest_on_die() == pytest.approx(
            PAPER_COOLEST_C, abs=2.0
        )

    def test_hotspot_in_core_region(self, figure6_solution):
        import numpy as np

        die_map = figure6_solution.die_map("metal-1")
        j, _ = np.unravel_index(np.argmax(die_map), die_map.shape)
        # Cores are the top half of the die; the L2 is the bottom half.
        assert j >= die_map.shape[0] // 2

    def test_cache_half_is_coolest(self, figure6_solution):
        import numpy as np

        die_map = figure6_solution.die_map("metal-1")
        j, _ = np.unravel_index(np.argmin(die_map), die_map.shape)
        assert j < die_map.shape[0] // 2
