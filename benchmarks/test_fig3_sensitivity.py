"""Figure 3: peak temperature vs Cu-metal and bond-layer conductivity.

Paper shape: both curves fall as conductivity rises from 3 to 60 W/mK;
the Cu metal layers are the more sensitive of the two (their sweep spans
roughly twice the bond layer's), and at the actual operating values the
metal layers, not the bond, are the thermal bottleneck.
"""

import pytest

from conftest import run_once
from repro.core.experiments import get_experiment

SWEEP = [60.0, 30.0, 12.0, 6.0, 3.0]


@pytest.fixture(scope="module")
def figure3_result():
    return get_experiment("figure-3").run(nx=40, conductivities=SWEEP)


def test_fig3_regenerate(benchmark):
    result = run_once(
        benchmark,
        get_experiment("figure-3").run,
        nx=32,
        conductivities=[60.0, 12.0, 3.0],
    )
    benchmark.extra_info["cu_metal"] = result["cu_metal"]
    benchmark.extra_info["bond"] = result["bond"]
    print("\nFigure 3 (subset): peak C by layer conductivity")
    for k in sorted(result["cu_metal"], reverse=True):
        print(f"  k={k:5.1f} W/mK  cu-swept={result['cu_metal'][k]:7.2f}  "
              f"bond-swept={result['bond'][k]:7.2f}")
    # Shape: both monotone falling; Cu metal more sensitive.
    for curve in (result["cu_metal"], result["bond"]):
        values = [curve[k] for k in sorted(curve)]
        assert all(a >= b - 1e-6 for a, b in zip(values, values[1:]))
    cu_span = max(result["cu_metal"].values()) - min(result["cu_metal"].values())
    bond_span = max(result["bond"].values()) - min(result["bond"].values())
    assert cu_span > bond_span


class TestFigure3Shape:
    def test_curves_fall_with_conductivity(self, figure3_result):
        for curve in (figure3_result["cu_metal"], figure3_result["bond"]):
            values = [curve[k] for k in sorted(curve)]
            # Peak temperature decreases as k increases.
            assert all(a >= b - 1e-6 for a, b in zip(values, values[1:]))

    def test_cu_metal_is_more_sensitive(self, figure3_result):
        cu = figure3_result["cu_metal"]
        bond = figure3_result["bond"]
        cu_span = max(cu.values()) - min(cu.values())
        bond_span = max(bond.values()) - min(bond.values())
        assert cu_span > bond_span

    def test_actual_values_crossing(self, figure3_result):
        # At the actual constants (Cu=12, bond=60), the Cu-swept curve at
        # its actual value equals the bond-swept curve at its actual
        # value (both describe the same nominal stack).
        cu_at_actual = figure3_result["cu_metal"][12.0]
        bond_at_actual = figure3_result["bond"][60.0]
        assert cu_at_actual == pytest.approx(bond_at_actual, abs=0.5)
