"""Figure 8: peak temperatures of the four Memory+Logic configurations.

Paper values: 2D 4MB = 88.35 C, 3D 12MB = 92.85 C, 3D 32MB = 88.43 C,
3D 64MB = 90.27 C — stacking SRAM costs the most (higher power density),
and the 32 MB DRAM stack is thermally almost free (+0.08 C), the
Section 3 headline.
"""

import pytest

from conftest import BENCH_GRID, run_once
from repro.analysis import compare_to_paper
from repro.core.memory_on_logic import run_thermal_study

PAPER = {
    "2D 4MB": 88.35,
    "3D 12MB": 92.85,
    "3D 32MB": 88.43,
    "3D 64MB": 90.27,
}


@pytest.fixture(scope="module")
def figure8_temps():
    return run_thermal_study(BENCH_GRID)


def test_fig8_regenerate(benchmark):
    temps = run_once(benchmark, run_thermal_study, BENCH_GRID)
    for name, value in temps.items():
        benchmark.extra_info[name] = value
    print("\n" + compare_to_paper(PAPER, temps, unit="C",
                                  title="Figure 8a: peak temperatures"))
    for name, value in PAPER.items():
        assert temps[name] == pytest.approx(value, abs=2.5), name
    assert abs(temps["3D 32MB"] - temps["2D 4MB"]) < 1.5


class TestFigure8Values:
    @pytest.mark.parametrize("name", list(PAPER))
    def test_config_matches_paper(self, figure8_temps, name):
        assert figure8_temps[name] == pytest.approx(PAPER[name], abs=2.5)

    def test_sram_stack_is_hottest(self, figure8_temps):
        assert figure8_temps["3D 12MB"] == max(figure8_temps.values())

    def test_dram32_is_thermally_negligible(self, figure8_temps):
        # Paper: +0.08 C.  Allow +-1.5 C: "negligible" is the claim.
        delta = figure8_temps["3D 32MB"] - figure8_temps["2D 4MB"]
        assert abs(delta) < 1.5

    def test_dram64_between_baseline_and_sram(self, figure8_temps):
        assert (
            figure8_temps["2D 4MB"]
            < figure8_temps["3D 64MB"]
            < figure8_temps["3D 12MB"]
        )
