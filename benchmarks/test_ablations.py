"""Ablations of the design choices DESIGN.md calls out.

Each ablation flips one modeling decision and regenerates the affected
quantity, quantifying why the paper's (and our) design is what it is:

* open- vs closed-page policy in the stacked DRAM cache;
* honoring vs ignoring trace dependencies during replay;
* tags-on-CPU-die vs in-DRAM tags (serial tag access);
* thermal-solver grid resolution convergence;
* naive stacking vs the iterative hotspot repair loop.
"""

import dataclasses

import pytest

from conftest import run_once
from repro.core.memory_on_logic import TRACE_PLAN
from repro.memsim import replay_trace, stacked_dram_config
from repro.memsim.config import DramCacheConfig
from repro.traces import generate_trace

SCALE = 16


@pytest.fixture(scope="module")
def pcg_trace():
    # pcg: dependent-chain heavy, capacity sensitive — a good probe for
    # both the page-policy and the dependency ablations.
    n = TRACE_PLAN["pcg"][0] // 2
    return generate_trace("pcg", n_records=n, scale=SCALE)


class TestPagePolicyAblation:
    """Open-page pays off only with row locality: streaming workloads
    (gauss) want pages left open; scattered dependent gathers (pcg)
    precharge-thrash and actually prefer closed-page.  Both regimes are
    asserted — the crossover is the reason the policy is configurable."""

    def _cpma(self, trace, policy):
        base = stacked_dram_config(32, SCALE)
        config = dataclasses.replace(
            base,
            stacked_dram=dataclasses.replace(
                base.stacked_dram, page_policy=policy
            ),
        )
        return replay_trace(trace, config, warmup_fraction=0.35).cpma

    def test_open_page_wins_for_streaming(self, benchmark):
        trace = generate_trace(
            "gauss", n_records=TRACE_PLAN["gauss"][0] // 2, scale=SCALE
        )
        open_cpma = run_once(benchmark, self._cpma, trace, "open")
        closed_cpma = self._cpma(trace, "closed")
        benchmark.extra_info["open"] = open_cpma
        benchmark.extra_info["closed"] = closed_cpma
        print(f"\ngauss (streaming): open={open_cpma:.2f} "
              f"closed={closed_cpma:.2f} CPMA")
        assert open_cpma < closed_cpma

    def test_closed_page_wins_for_scattered_gathers(self, benchmark, pcg_trace):
        open_cpma = run_once(benchmark, self._cpma, pcg_trace, "open")
        closed_cpma = self._cpma(pcg_trace, "closed")
        print(f"\npcg (scattered): open={open_cpma:.2f} "
              f"closed={closed_cpma:.2f} CPMA")
        assert closed_cpma < open_cpma


class TestDependencyAblation:
    def test_ignoring_dependencies_understates_cpma(self, benchmark, pcg_trace):
        from repro.traces.record import NO_DEP, TraceRecord

        stripped = [
            TraceRecord(r.uid, r.cpu, r.kind, r.address, r.ip, NO_DEP)
            for r in pcg_trace
        ]
        config = stacked_dram_config(32, SCALE)
        honored = run_once(benchmark, replay_trace, pcg_trace, config,
                           warmup_fraction=0.35)
        ignored = replay_trace(stripped, config, warmup_fraction=0.35)
        print(f"\ndependencies: honored={honored.cpma:.2f} "
              f"ignored={ignored.cpma:.2f} CPMA")
        # The paper's dependency-honoring replay exists precisely because
        # a free-running replay overstates memory-level parallelism.
        assert ignored.cpma < honored.cpma * 0.9


class TestTagPlacementAblation:
    def test_serial_tags_slow_the_dram_cache(self, benchmark, pcg_trace):
        import repro.memsim.dramcache as dramcache_mod

        config = stacked_dram_config(32, SCALE)
        fast = run_once(benchmark, replay_trace, pcg_trace, config,
                        warmup_fraction=0.35)

        # In-DRAM tags: the tag check costs a DRAM access before the data
        # access can start (no speculative overlap).  Model by serializing
        # hit timing.
        original = dramcache_mod.DramCache.hit_timing
        try:
            def serial_hit(self, t, address):
                return self.data_timing(self.access_timing(t) + 30.0, address)

            dramcache_mod.DramCache.hit_timing = serial_hit
            slow = replay_trace(pcg_trace, config, warmup_fraction=0.35)
        finally:
            dramcache_mod.DramCache.hit_timing = original
        print(f"\ntags: on-die={fast.cpma:.2f} in-dram={slow.cpma:.2f} CPMA")
        assert slow.cpma > fast.cpma


class TestMemoryInStackAblation:
    """The paper's intro contrasts with prior work that 'assumes that all
    of main memory can be integrated into the 3D stack'.  For RMS-class
    footprints that *do* fit, the 32 MB DRAM cache already captures most
    of the benefit of full memory-in-stack — the cache design was the
    right call given main memories that cannot fit a two-die stack."""

    def test_dram_cache_approaches_memory_in_stack(self, benchmark):
        from repro.memsim import stacked_memory_config

        trace = generate_trace(
            "gauss", n_records=TRACE_PLAN["gauss"][0] // 2, scale=SCALE
        )
        from repro.memsim import baseline_config

        base = run_once(
            benchmark, replay_trace, trace, baseline_config(SCALE),
            warmup_fraction=0.35,
        )
        cache = replay_trace(
            trace, stacked_dram_config(32, SCALE), warmup_fraction=0.35
        )
        in_stack = replay_trace(
            trace, stacked_memory_config(SCALE), warmup_fraction=0.35
        )
        print(f"\nmemory placement: bus-DDR={base.cpma:.2f} "
              f"32MB-cache={cache.cpma:.2f} "
              f"memory-in-stack={in_stack.cpma:.2f} CPMA")
        # Both stacked options must beat the off-die baseline...
        assert cache.cpma < base.cpma
        assert in_stack.cpma < base.cpma
        # ...and the cache captures most of the memory-in-stack benefit.
        saved_cache = base.cpma - cache.cpma
        saved_full = base.cpma - in_stack.cpma
        assert saved_cache > 0.6 * saved_full
        # Memory-in-stack removes ALL off-die traffic by construction.
        assert in_stack.bandwidth_gbps == pytest.approx(0.0, abs=1e-9)


class TestThermalGridAblation:
    def test_peak_converges_with_resolution(self, benchmark):
        from repro.floorplan import core2duo_floorplan
        from repro.thermal import simulate_planar
        from repro.thermal.solver import SolverConfig

        die = core2duo_floorplan()
        coarse = run_once(
            benchmark, simulate_planar, die, SolverConfig(nx=16, ny=16)
        ).peak_temperature()
        medium = simulate_planar(die, SolverConfig(nx=32, ny=32)).peak_temperature()
        fine = simulate_planar(die, SolverConfig(nx=48, ny=48)).peak_temperature()
        print(f"\nthermal grid: 16={coarse:.2f} 32={medium:.2f} "
              f"48={fine:.2f} C")
        # Successive refinements must converge.
        assert abs(fine - medium) < abs(medium - coarse) + 1.0
        assert abs(fine - medium) < 2.5


class TestHotspotRepairAblation:
    def test_repair_loop_saves_degrees(self, benchmark):
        from repro.floorplan.blocks import Block, Floorplan
        from repro.floorplan.stacking import power_density_map, repair_hotspots
        from repro.thermal import simulate_stack
        from repro.thermal.solver import SolverConfig

        grid = SolverConfig(nx=32, ny=32)
        bottom = Floorplan("b", 10, 10, [
            Block("hot", 0, 0, 2.5, 2.5, 30.0),
            Block("rest", 3, 3, 6, 6, 30.0),
        ])
        naive_top = Floorplan("t", 10, 10, [
            Block("hot2", 0, 0, 2.5, 2.5, 25.0),   # stacked on the hotspot
            Block("rest2", 3, 3, 6, 6, 15.0),
        ])
        naive_temp = run_once(
            benchmark, simulate_stack, bottom, naive_top, config=grid
        ).peak_temperature()
        peak = power_density_map(bottom, naive_top).max()
        repaired, moves = repair_hotspots(
            bottom, naive_top, target_peak_density=peak * 0.7
        )
        repaired_temp = simulate_stack(
            bottom, repaired, config=grid
        ).peak_temperature()
        print(f"\nhotspot repair: naive={naive_temp:.1f} C "
              f"repaired={repaired_temp:.1f} C ({moves} moves)")
        assert moves >= 1
        assert repaired_temp < naive_temp - 3.0
