"""Figure 5: CPMA and off-die bandwidth for the RMS workloads across
last-level capacities of 4 / 12 / 32 / 64 MB.

Paper shape: gauss, pcg, sMVM, sTrans, sUS, and svm "decrease
dramatically as the last level cache increases"; the others fit in the
4 MB baseline and see no improvement.  Off-die bandwidth falls roughly
3x on average at 32 MB.

The bench runs a representative half of the suite at half trace length
and scale 16 so the whole harness stays fast; the full sweep is
``examples/memory_stacking_sweep.py --full``.
"""

import pytest

from conftest import run_once
from repro.analysis import format_figure5
from repro.core.memory_on_logic import run_performance_study

#: Benchmark subset: three capacity winners, three fitting workloads.
WINNERS = ["gauss", "sus", "pcg"]
FITTERS = ["ssym", "savdf", "svd"]


@pytest.fixture(scope="module")
def figure5_result():
    return run_performance_study(
        workloads=WINNERS + FITTERS, scale=16, length_factor=0.5
    )


def test_fig5_regenerate(benchmark, figure5_result):
    # Time one representative replay (gauss on the 32 MB configuration).
    from repro.core.memory_on_logic import TRACE_PLAN
    from repro.memsim import replay_trace, stacked_dram_config
    from repro.traces import generate_trace

    records = generate_trace(
        "gauss", n_records=TRACE_PLAN["gauss"][0] // 4, scale=16
    )
    stats = run_once(
        benchmark,
        replay_trace,
        records,
        stacked_dram_config(32, 16),
        warmup_fraction=0.35,
    )
    benchmark.extra_info["gauss_32mb_cpma"] = stats.cpma
    print("\n" + format_figure5(figure5_result.cpma, figure5_result.bandwidth))
    print(f"\n  avg CPMA reduction at 32MB: "
          f"{100 * figure5_result.cpma_reduction():.1f}% "
          "(paper: 13%, subset differs)")
    print(f"  max CPMA reduction at 32MB: "
          f"{100 * figure5_result.max_cpma_reduction():.1f}% (paper: ~55%)")
    print(f"  bus power/BW reduction:     "
          f"{100 * figure5_result.bus_power_reduction():.1f}% (paper: 66%)")
    # Shape: winners win dramatically; BW collapses; avg improves.
    for name in WINNERS:
        row = figure5_result.cpma[name]
        assert row["3D 32MB"] < 0.75 * row["2D 4MB"], name
    assert figure5_result.max_cpma_reduction() > 0.40
    assert figure5_result.average_cpma("3D 32MB") < (
        figure5_result.average_cpma("2D 4MB")
    )


class TestFigure5Shape:
    def test_winners_improve_dramatically(self, figure5_result):
        for name in WINNERS:
            row = figure5_result.cpma[name]
            assert row["3D 32MB"] < 0.75 * row["2D 4MB"], name

    def test_fitting_workloads_dont_need_capacity(self, figure5_result):
        # "The benchmarks that do not see improvement fit in the 4MB
        # baseline": no meaningful gain from 12 MB.
        for name in FITTERS:
            row = figure5_result.cpma[name]
            assert row["3D 12MB"] >= 0.9 * row["2D 4MB"], name

    def test_bandwidth_reduction_at_32mb(self, figure5_result):
        total_base = sum(
            figure5_result.bandwidth[w]["2D 4MB"]
            for w in figure5_result.bandwidth
        )
        total_32 = sum(
            figure5_result.bandwidth[w]["3D 32MB"]
            for w in figure5_result.bandwidth
        )
        # Paper: ~3x average reduction; require at least 2x on the subset.
        assert total_base > 2.0 * total_32

    def test_64mb_at_least_as_good_as_32mb_on_bw(self, figure5_result):
        for name, row in figure5_result.bandwidth.items():
            assert row["3D 64MB"] <= row["3D 32MB"] + 0.2, name

    def test_average_cpma_improves(self, figure5_result):
        assert figure5_result.average_cpma("3D 32MB") < (
            figure5_result.average_cpma("2D 4MB")
        )

    def test_headline_max_reduction(self, figure5_result):
        # Paper: "as much as 55%" — our best winner must exceed 40%.
        assert figure5_result.max_cpma_reduction() > 0.40
