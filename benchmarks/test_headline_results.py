"""The paper's abstract/conclusion headline numbers, regenerated.

* Memory+Logic: a 32 MB stacked DRAM cache reduces CPMA (13% average,
  up to 55%), cuts off-die bandwidth and bus power ~66%, and raises peak
  temperature negligibly (+0.08 C).
* Logic+Logic: the 3D floorplan simultaneously cuts power 15% and lifts
  performance 15% for +14 C, and voltage scaling reaches neutral
  thermals at -34% power / +8% performance.
"""

import pytest

from conftest import BENCH_GRID, run_once
from repro.core.logic_on_logic import run_logic_study
from repro.core.memory_on_logic import run_performance_study, run_thermal_study


@pytest.fixture(scope="module")
def memory_result():
    # Capacity winners + two fitting workloads, reduced length.
    return run_performance_study(
        workloads=["gauss", "sus", "pcg", "ssym", "savdf"],
        scale=16,
        length_factor=0.5,
    )


@pytest.fixture(scope="module")
def logic_result():
    return run_logic_study(solver=BENCH_GRID)


def test_headlines_regenerate(benchmark, memory_result):
    logic = run_once(benchmark, run_logic_study, solver=BENCH_GRID)
    temps = run_thermal_study(BENCH_GRID)
    print("\nHeadline results vs paper:")
    print(f"  memory: max CPMA reduction {100 * memory_result.max_cpma_reduction():5.1f}%"
          "  (paper: up to 55%)")
    print(f"  memory: bus power reduction {100 * memory_result.bus_power_reduction():5.1f}%"
          "  (paper: 66%)")
    delta = temps["3D 32MB"] - temps["2D 4MB"]
    print(f"  memory: 32MB thermal delta {delta:+5.2f} C  (paper: +0.08 C)")
    print(f"  logic:  perf gain  {logic.total_gain_pct:5.1f}%  (paper: 15%)")
    print(f"  logic:  power cut  {logic.power_reduction_pct:5.1f}%  (paper: 15%)")
    print(f"  logic:  thermal delta "
          f"{logic.peak_temp_3d - logic.peak_temp_2d:+5.1f} C  (paper: +14 C)")
    same_temp = {p.name: p for p in logic.table5}["Same Temp"]
    print(f"  logic:  neutral-thermal point: "
          f"{100 - same_temp.power_pct:.0f}% power cut, "
          f"+{same_temp.perf_pct - 100:.1f}% perf  (paper: -34% / +8%)")
    assert memory_result.max_cpma_reduction() > 0.40
    assert logic.total_gain_pct == pytest.approx(15.0, abs=1.0)
    assert logic.power_reduction_pct == pytest.approx(15.0, abs=1.0)
    assert 100.0 - same_temp.power_pct == pytest.approx(34.0, abs=1.5)


class TestMemoryHeadlines:
    def test_max_cpma_reduction(self, memory_result):
        assert memory_result.max_cpma_reduction() > 0.40  # paper: up to 55%

    def test_bus_power_reduction(self, memory_result):
        # Paper: 66% average; require a strong majority of it on the
        # subset (fitting workloads contribute zero-BW rows).
        assert memory_result.bus_power_reduction() > 0.5

    def test_thermal_delta_negligible(self):
        temps = run_thermal_study(BENCH_GRID)
        assert abs(temps["3D 32MB"] - temps["2D 4MB"]) < 1.5


class TestLogicHeadlines:
    def test_simultaneous_15_and_15(self, logic_result):
        assert logic_result.total_gain_pct == pytest.approx(15.0, abs=1.0)
        assert logic_result.power_reduction_pct == pytest.approx(
            15.0, abs=1.0
        )

    def test_moderate_thermal_cost(self, logic_result):
        delta = logic_result.peak_temp_3d - logic_result.peak_temp_2d
        # Paper: +14 C; our repaired floorplan lands a few degrees lower.
        assert 5.0 <= delta <= 18.0

    def test_neutral_thermal_tradeoff(self, logic_result):
        same_temp = {p.name: p for p in logic_result.table5}["Same Temp"]
        assert 100.0 - same_temp.power_pct == pytest.approx(34.0, abs=1.5)
        assert same_temp.perf_pct > 107.0
