"""Table 5: frequency and voltage scaling of the Logic+Logic 3D floorplan.

The conversion equations are the paper's own (0.82% performance per 1%
frequency; 1% frequency per 1% Vcc; P ~ V^2 f), so the power and
performance columns reproduce almost exactly; temperatures come from our
thermal model.

Paper rows: Baseline 147 W / 100% / 99 C; Same Pwr 147 W / 129% / 127 C;
Same Freq 125 W / 115% / 113 C; Same Temp 97.28 W / 108% / 99 C at
Vcc 0.92; Same Perf 68.2 W / 100% / 77 C at Vcc 0.82.
"""

import pytest

from conftest import BENCH_GRID, run_once
from repro.analysis import format_table5
from repro.core.logic_on_logic import run_logic_study, thermal_map_3d_power
from repro.uarch.dvfs import table5_points

PAPER = {
    "Baseline": dict(power_w=147.0, perf_pct=100.0, temp_c=99.0),
    "Same Pwr": dict(power_w=147.0, perf_pct=129.0, temp_c=127.0),
    "Same Freq.": dict(power_w=125.0, perf_pct=115.0, temp_c=113.0),
    "Same Temp": dict(power_w=97.28, perf_pct=108.0, temp_c=99.0),
    "Same Perf.": dict(power_w=68.2, perf_pct=100.0, temp_c=77.0),
}


@pytest.fixture(scope="module")
def table5_rows():
    result = run_logic_study(solver=BENCH_GRID)
    return {p.name: p for p in result.table5}


def test_table5_regenerate(benchmark):
    def build():
        thermal = thermal_map_3d_power(BENCH_GRID)
        return table5_points(thermal=thermal)

    points = run_once(benchmark, build)
    rows = [
        {
            "name": p.name, "vcc": p.vcc, "freq": p.freq,
            "power_w": p.power_w, "power_pct": p.power_pct,
            "perf_pct": p.perf_pct, "temp_c": p.temp_c,
        }
        for p in points
    ]
    benchmark.extra_info["rows"] = {
        p.name: [p.power_w, p.perf_pct, p.temp_c] for p in points
    }
    print("\n" + format_table5(rows))
    by_name = {p.name: p for p in points}
    for name, expected in PAPER.items():
        assert by_name[name].power_w == pytest.approx(
            expected["power_w"], abs=1.5
        ), name
        assert by_name[name].perf_pct == pytest.approx(
            expected["perf_pct"], abs=1.0
        ), name


class TestTable5Values:
    @pytest.mark.parametrize("name", list(PAPER))
    def test_power_column(self, table5_rows, name):
        assert table5_rows[name].power_w == pytest.approx(
            PAPER[name]["power_w"], abs=1.5
        )

    @pytest.mark.parametrize("name", list(PAPER))
    def test_perf_column(self, table5_rows, name):
        assert table5_rows[name].perf_pct == pytest.approx(
            PAPER[name]["perf_pct"], abs=1.0
        )

    @pytest.mark.parametrize("name", list(PAPER))
    def test_temp_column_shape(self, table5_rows, name):
        # Temperatures come from our solver; allow a wider band but
        # require every row within 10 C of the paper's.
        assert table5_rows[name].temp_c == pytest.approx(
            PAPER[name]["temp_c"], abs=10.0
        )

    def test_headline_same_temp(self, table5_rows):
        # "a simultaneous 34% power reduction and 8% performance
        # improvement" at neutral thermals.
        row = table5_rows["Same Temp"]
        assert 100.0 - row.power_pct == pytest.approx(34.0, abs=1.5)
        assert row.perf_pct - 100.0 == pytest.approx(8.0, abs=1.0)

    def test_same_perf_halves_power(self, table5_rows):
        # "Scaling to neutral performance yields a 54% power reduction."
        row = table5_rows["Same Perf."]
        assert 100.0 - row.power_pct == pytest.approx(54.0, abs=1.5)
