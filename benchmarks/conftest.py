"""Shared configuration for the benchmark/reproduction harness.

Each file under ``benchmarks/`` regenerates one table or figure of the
paper and checks its *shape* against the published data (see DESIGN.md's
experiment index).  Run with::

    pytest benchmarks/ --benchmark-only

Benchmarks use ``benchmark.pedantic(..., rounds=1)`` — the experiments
are deterministic, and a single round keeps the full harness to a few
minutes.  Regenerated rows are attached to ``benchmark.extra_info`` and
printed, so the harness output stands in for the paper's figures.
"""

import pytest

from repro.thermal.solver import SolverConfig

#: Grid used for benchmark-quality thermal solves (the calibration grid).
BENCH_GRID = SolverConfig(nx=48, ny=48)


@pytest.fixture(scope="session")
def bench_grid():
    return BENCH_GRID


def run_once(benchmark, fn, *args, **kwargs):
    """Run *fn* exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
