"""Table 4: pipe stages eliminated per functional area and the
performance gain of each, over the 650-trace suite.

Paper values (percent gain): front-end 0.2, trace cache 0.33, rename
0.66, FP latency 4.0, int RF 0.5, D$ read 1.5, instruction loop 1.0,
retire/dealloc 1.0, FP load 2.0, store lifetime 3.0 — totalling ~15%
from ~25% of stages eliminated.
"""

import pytest

from conftest import run_once
from repro.analysis import compare_to_paper
from repro.core.logic_on_logic import run_performance_study

PAPER_ROWS = {
    "front_end": 0.2,
    "trace_cache": 0.33,
    "rename_alloc": 0.66,
    "fp_wire": 4.0,
    "int_rf_read": 0.5,
    "data_cache_read": 1.5,
    "instruction_loop": 1.0,
    "retire_dealloc": 1.0,
    "fp_load": 2.0,
    "store_lifetime": 3.0,
}


@pytest.fixture(scope="module")
def table4_result():
    return run_performance_study()


def test_table4_regenerate(benchmark):
    result = run_once(benchmark, run_performance_study)
    benchmark.extra_info["total_gain_pct"] = result.total_gain_pct
    benchmark.extra_info["per_row"] = result.per_row_gains
    print("\n" + compare_to_paper(
        PAPER_ROWS, result.per_row_gains, unit="%",
        title="Table 4: per-area performance gains",
    ))
    print(f"  stages eliminated: {result.stages_eliminated_pct:.1f}% "
          "(paper ~25%)")
    print(f"  total gain:        {result.total_gain_pct:.1f}% (paper ~15%)")
    assert result.total_gain_pct == pytest.approx(15.0, abs=1.0)
    for area, target in PAPER_ROWS.items():
        assert result.per_row_gains[area] == pytest.approx(
            target, abs=max(0.35, target * 0.2)
        ), area


class TestTable4Values:
    @pytest.mark.parametrize("area", list(PAPER_ROWS))
    def test_row_gain(self, table4_result, area):
        assert table4_result.per_row_gains[area] == pytest.approx(
            PAPER_ROWS[area], abs=max(0.35, PAPER_ROWS[area] * 0.2)
        )

    def test_total_gain_15_percent(self, table4_result):
        assert table4_result.total_gain_pct == pytest.approx(15.0, abs=1.0)

    def test_stages_eliminated_25_percent(self, table4_result):
        assert table4_result.stages_eliminated_pct == pytest.approx(
            25.0, abs=3.0
        )

    def test_fp_latency_is_the_biggest_row(self, table4_result):
        gains = table4_result.per_row_gains
        assert max(gains, key=gains.get) == "fp_wire"

    def test_row_ordering_matches_paper(self, table4_result):
        # The big three in order: FP latency > store lifetime > FP load.
        gains = table4_result.per_row_gains
        assert gains["fp_wire"] > gains["store_lifetime"] > gains["fp_load"]

    def test_power_reduction_15_percent(self, table4_result):
        assert table4_result.power_reduction_pct == pytest.approx(
            15.0, abs=1.0
        )
        assert table4_result.stacked_power_w == pytest.approx(125.0, abs=1.0)
