"""Hot-path micro-benchmarks: the ``repro bench`` pairs under pytest.

Not part of the tier-1 suite (``testpaths`` excludes ``benchmarks/``);
run explicitly with::

    PYTHONPATH=src pytest benchmarks/perf -q

Each test runs one reference-vs-optimized pair at reduced size, asserts
the equivalence check the CLI gate relies on, and (loosely) that the
optimized path actually wins — the committed ``BENCH_repro.json``
baseline is the strict gate; these are smoke-level floors.
"""

import pytest

from repro.bench.suite import (
    bench_replay,
    bench_thermal_steady,
    bench_thermal_transient,
    bench_trace_generation,
)

SEED = 1234


def test_trace_generation_pair():
    result = bench_trace_generation("svd", 60_000, SEED, repeats=2)
    assert result.equivalent
    assert result.speedup > 1.2


def test_replay_pair_high_hit():
    result = bench_replay("svd", 80_000, 0.5, SEED, repeats=2)
    assert result.equivalent
    assert result.speedup > 1.5


def test_replay_pair_miss_heavy():
    result = bench_replay("pcg", 80_000, 0.35, SEED, repeats=2)
    assert result.equivalent
    # Miss-heavy workloads are Amdahl-limited by the genuine memory
    # simulation; the fast path must still not lose.
    assert result.speedup > 1.0


def test_thermal_steady_pair():
    result = bench_thermal_steady(32, repeats=2)
    assert result.equivalent
    assert result.speedup > 5.0


def test_thermal_transient_pair():
    result = bench_thermal_transient(24, steps=6, repeats=2)
    assert result.equivalent
    assert result.speedup > 2.0


@pytest.mark.parametrize("kernel", ["gauss", "smvm"])
def test_replay_equivalence_other_kernels(kernel):
    result = bench_replay(kernel, 60_000, 0.35, SEED, repeats=1)
    assert result.equivalent
