"""Figure 11: Logic+Logic thermals — baseline, repaired 3D, worst case.

Paper values: 2D baseline 98.6 C; 3D floorplan (15% power saving, ~1.3x
peak density after hotspot repair) 112.5 C; worst case (no savings, 2x
density) 124.75 C.
"""

import pytest

from conftest import BENCH_GRID, run_once
from repro.analysis import compare_to_paper
from repro.core.logic_on_logic import run_thermal_study

PAPER = {
    "2D Baseline": 98.6,
    "3D": 112.5,
    "3D Worstcase": 124.75,
}


@pytest.fixture(scope="module")
def figure11_temps():
    return run_thermal_study(BENCH_GRID)


def test_fig11_regenerate(benchmark):
    temps = run_once(benchmark, run_thermal_study, BENCH_GRID)
    for name, value in temps.items():
        benchmark.extra_info[name] = value
    print("\n" + compare_to_paper(PAPER, temps, unit="C",
                                  title="Figure 11: peak temperatures"))
    assert temps["2D Baseline"] == pytest.approx(98.6, abs=2.0)
    assert temps["3D"] == pytest.approx(112.5, abs=6.0)
    assert temps["3D Worstcase"] == pytest.approx(124.75, abs=3.5)
    assert temps["2D Baseline"] < temps["3D"] < temps["3D Worstcase"]


class TestFigure11Values:
    def test_baseline_matches(self, figure11_temps):
        assert figure11_temps["2D Baseline"] == pytest.approx(98.6, abs=2.0)

    def test_worstcase_matches(self, figure11_temps):
        assert figure11_temps["3D Worstcase"] == pytest.approx(
            124.75, abs=3.5
        )

    def test_3d_between(self, figure11_temps):
        # Our repaired 3D floorplan lands a few degrees cooler than the
        # paper's 112.5 C (see EXPERIMENTS.md); the required shape is a
        # moderate rise over 2D, far below the worst case.
        assert figure11_temps["3D"] == pytest.approx(112.5, abs=6.0)
        assert (
            figure11_temps["2D Baseline"]
            < figure11_temps["3D"]
            < figure11_temps["3D Worstcase"]
        )

    def test_worstcase_rise_dominates(self, figure11_temps):
        rise_3d = figure11_temps["3D"] - figure11_temps["2D Baseline"]
        rise_worst = (
            figure11_temps["3D Worstcase"] - figure11_temps["2D Baseline"]
        )
        assert rise_worst > 1.8 * rise_3d  # paper: 26.2 vs 13.9
