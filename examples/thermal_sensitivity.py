#!/usr/bin/env python
"""Thermal deep-dive: Figure 3's conductivity sensitivity and the
Figure 6/8 thermal maps, rendered as ASCII.

Shows the paper's key thermal finding: the existing Cu metal layers —
not the new 3D bond layer — are the dominant thermal bottleneck in a
face-to-face stack.
"""

import argparse

from repro.analysis import ascii_heatmap, format_table
from repro.core.experiments import get_experiment
from repro.floorplan import core2duo_floorplan, stacked_cache_die
from repro.thermal import simulate_planar, simulate_stack
from repro.thermal.solver import SolverConfig


def figure3(nx: int) -> None:
    print("Figure 3: peak temperature vs layer thermal conductivity")
    result = get_experiment("figure-3").run(nx=nx)
    rows = []
    for k in sorted(result["cu_metal"], reverse=True):
        rows.append([k, result["cu_metal"][k], result["bond"][k]])
    print(format_table(
        ["k (W/mK)", "Cu metal swept (C)", "Bond swept (C)"], rows,
    ))
    cu_span = max(result["cu_metal"].values()) - min(result["cu_metal"].values())
    bond_span = max(result["bond"].values()) - min(result["bond"].values())
    print(f"\n  Cu-metal sweep spans {cu_span:.1f} C, bond sweep "
          f"{bond_span:.1f} C -> the metal layers dominate, as the paper "
          "concludes.")


def thermal_maps(nx: int) -> None:
    config = SolverConfig(nx=nx, ny=nx)

    print("\nFigure 6b: baseline Core 2 Duo thermal map (active layer)")
    base_die = core2duo_floorplan()
    planar = simulate_planar(base_die, config)
    print(ascii_heatmap(planar.die_map("metal-1"), width=56))
    print(f"  peak {planar.peak_temperature():.2f} C (paper 88.35), "
          f"coolest {planar.coolest_on_die():.2f} C (paper 59)")

    print("\nFigure 8b: 3D 32MB stack thermal map (CPU active layer)")
    cpu_die = core2duo_floorplan(with_l2=False)
    dram_die = stacked_cache_die("dram-32mb", cpu_die)
    stacked = simulate_stack(cpu_die, dram_die, die2_metal="al", config=config)
    print(ascii_heatmap(stacked.die_map("metal-1"), width=56))
    print(f"  peak {stacked.peak_temperature():.2f} C (paper 88.43); the "
          "hotspot shape matches the planar map because the cache die has "
          "uniform power.")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nx", type=int, default=48, help="solver grid")
    args = parser.parse_args()
    figure3(args.nx)
    thermal_maps(args.nx)


if __name__ == "__main__":
    main()
