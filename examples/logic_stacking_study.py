#!/usr/bin/env python
"""Section 4 study: Logic+Logic stacking of a Pentium 4-class machine.

Reproduces Table 4 (per-functional-area stage eliminations and
performance gains over the 650-trace suite), the power roll-up (15%
saving), Figure 11 (2D / 3D / worst-case thermals), and Table 5 (the
voltage/frequency scaling trade-offs), and cross-validates the interval
performance model against the cycle-level core simulator.
"""

import argparse

from repro.analysis import compare_to_paper, format_table, format_table5
from repro.core.logic_on_logic import run_logic_study
from repro.uarch.cycle import simulate_cycles
from repro.uarch.pipeline import planar_pipeline, stacked_pipeline
from repro.uarch.workloads import make_profile

PAPER_TABLE4 = {
    "front_end": 0.2, "trace_cache": 0.33, "rename_alloc": 0.66,
    "fp_wire": 4.0, "int_rf_read": 0.5, "data_cache_read": 1.5,
    "instruction_loop": 1.0, "retire_dealloc": 1.0, "fp_load": 2.0,
    "store_lifetime": 3.0,
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--solve-temp", action="store_true",
        help="solve the Same Temp Vcc with our thermal model instead of "
             "using the paper's published 0.92",
    )
    args = parser.parse_args()

    result = run_logic_study(solve_temp_point=args.solve_temp)

    print("Table 4: per-area performance gains (%, geomean over 656 traces)")
    print(compare_to_paper(PAPER_TABLE4, result.per_row_gains, unit="%"))
    print(f"\n  stages eliminated: {result.stages_eliminated_pct:5.1f}%  "
          f"(paper ~25%)")
    print(f"  total perf gain:   {result.total_gain_pct:5.1f}%  (paper ~15%)")
    print(f"  power:             {result.planar_power_w:.0f} W -> "
          f"{result.stacked_power_w:.1f} W  "
          f"(-{result.power_reduction_pct:.1f}%, paper -15%)")

    print("\nFigure 11: peak temperatures")
    paper = {"2D Baseline": 98.6, "3D": 112.5, "3D Worstcase": 124.75}
    measured = {
        "2D Baseline": result.peak_temp_2d,
        "3D": result.peak_temp_3d,
        "3D Worstcase": result.peak_temp_worstcase,
    }
    print(compare_to_paper(paper, measured, unit="C"))
    print(f"  3D combined power-density ratio: "
          f"{result.density_ratio_3d:.2f}x  (paper ~1.3x)")
    print(f"  worst-case density ratio:        "
          f"{result.density_ratio_worstcase:.2f}x  (paper 2.0x)")

    print()
    print(format_table5([
        {
            "name": p.name, "vcc": p.vcc, "freq": p.freq,
            "power_w": p.power_w, "power_pct": p.power_pct,
            "perf_pct": p.perf_pct, "temp_c": p.temp_c,
        }
        for p in result.table5
    ]))

    print("\nCross-validation: interval model vs cycle-level simulator")
    planar = planar_pipeline()
    stacked = stacked_pipeline(planar)
    rows = []
    for category in ("specint", "specfp", "server"):
        profile = make_profile(category, 0)
        base = simulate_cycles(planar, profile, 30_000)
        improved = simulate_cycles(stacked, profile, 30_000)
        rows.append([
            profile.name, base.ipc, improved.ipc,
            100.0 * (improved.ipc / base.ipc - 1.0),
        ])
    print(format_table(
        ["trace", "planar IPC", "3D IPC", "gain %"], rows,
    ))


if __name__ == "__main__":
    main()
