#!/usr/bin/env python
"""Quickstart: a first tour of the repro library.

Runs in under a minute:

1. replay one RMS workload (svm) against the 2D baseline and the 32 MB
   stacked-DRAM hierarchy and compare CPMA / off-die bandwidth;
2. solve the baseline and stacked configurations thermally;
3. print the Logic+Logic headline numbers (Table 4 / power roll-up).
"""

from repro.core.memory_on_logic import build_memory_configs
from repro.core.logic_on_logic import run_performance_study
from repro.core.stack import build_stack
from repro.floorplan import core2duo_floorplan, stacked_cache_die
from repro.memsim import replay_trace
from repro.thermal import simulate_planar, simulate_stack
from repro.traces import generate_trace

SCALE = 16  # capacities and footprints divided by 16 (shape-preserving)


def memory_demo() -> None:
    print("=== Memory+Logic: svm on 4 MB baseline vs 32 MB stacked DRAM ===")
    trace = generate_trace("svm", n_records=600_000, scale=SCALE)
    configs = {c.name: c for c in build_memory_configs(SCALE)}
    for name in ("2D 4MB", "3D 32MB"):
        stats = replay_trace(
            trace, configs[name].hierarchy, warmup_fraction=0.45
        )
        print(
            f"  {name:8} CPMA {stats.cpma:6.2f}   "
            f"off-die BW {stats.bandwidth_gbps:5.2f} GB/s   "
            f"bus power {stats.bus_power_w:5.3f} W"
        )


def thermal_demo() -> None:
    print("\n=== Thermals: stacking a 32 MB DRAM cache ===")
    base_die = core2duo_floorplan()
    planar = simulate_planar(base_die)
    print(f"  2D baseline   peak {planar.peak_temperature():6.2f} C "
          f"(paper: 88.35 C)")

    cpu_die = core2duo_floorplan(with_l2=False)
    dram_die = stacked_cache_die("dram-32mb", cpu_die)
    stacked = simulate_stack(cpu_die, dram_die, die2_metal="al")
    print(f"  3D 32MB DRAM  peak {stacked.peak_temperature():6.2f} C "
          f"(paper: 88.43 C)")

    stack = build_stack(cpu_die, dram_die, bumps_kind="dram")
    print(f"  d2d interface bandwidth: "
          f"{stack.interface_bandwidth_gbps():,.0f} GB/s available")
    issues = stack.validate()
    print(f"  stack design rules: {'clean' if not issues else issues}")


def logic_demo() -> None:
    print("\n=== Logic+Logic: splitting the P4-class machine across 2 dies ===")
    result = run_performance_study()
    print(f"  pipe stages eliminated: {result.stages_eliminated_pct:5.1f}% "
          f"(paper: ~25%)")
    print(f"  performance gain:       {result.total_gain_pct:5.1f}% "
          f"(paper: ~15%)")
    print(f"  power:                  {result.planar_power_w:.0f} W -> "
          f"{result.stacked_power_w:.1f} W "
          f"(-{result.power_reduction_pct:.1f}%, paper: -15%)")


if __name__ == "__main__":
    memory_demo()
    thermal_demo()
    logic_demo()
