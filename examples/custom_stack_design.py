#!/usr/bin/env python
"""Designing your own 3D stack with the library's public API.

Walks through what a downstream architect would do with this toolkit:

1. describe a custom two-core accelerator die as a block floorplan;
2. propose a naive second logic die, observe the combined power-density
   problem, and run the paper's iterative hotspot repair;
3. validate the physical stack (die placement rules, d2d interface
   budget);
4. solve the repaired stack thermally and compare against the naive
   placement;
5. size a stacked DRAM cache for the design and estimate its benefit on
   a pointer-chasing workload.
"""

from repro.core.stack import build_stack
from repro.floorplan import (
    Block,
    Floorplan,
    power_density_report,
    repair_hotspots,
)
from repro.memsim import (
    CacheConfig,
    DramCacheConfig,
    HierarchyConfig,
    replay_trace,
)
from repro.thermal import simulate_stack
from repro.traces import generate_trace

KB, MB = 1 << 10, 1 << 20


def build_accelerator_die() -> Floorplan:
    """A 10x10 mm accelerator: two hot compute clusters + SRAM + I/O."""
    plan = Floorplan("accelerator (bottom die)", 10.0, 10.0)
    plan.add(Block("cluster0", 0.0, 0.0, 3.0, 3.0, 22.0))
    plan.add(Block("cluster1", 3.0, 0.0, 3.0, 3.0, 22.0))
    plan.add(Block("sram", 0.0, 3.0, 6.0, 4.0, 6.0))
    plan.add(Block("noc", 6.0, 0.0, 1.6, 7.0, 8.0))
    plan.add(Block("io", 7.6, 0.0, 2.4, 7.0, 7.0))
    plan.add(Block("misc", 0.0, 7.0, 10.0, 3.0, 5.0))
    return plan


def build_naive_top_die() -> Floorplan:
    """A second die placed carelessly: its hot vector unit lands right on
    top of the bottom die's compute clusters."""
    plan = Floorplan("top die (naive)", 10.0, 10.0)
    plan.add(Block("vector", 0.5, 0.5, 4.0, 2.0, 24.0))
    plan.add(Block("scratchpad", 0.0, 3.0, 6.0, 4.0, 4.0))
    plan.add(Block("dma", 6.5, 1.0, 2.5, 3.0, 6.0))
    plan.add(Block("ctrl", 0.0, 7.5, 5.0, 2.0, 3.0))
    return plan


def floorplan_study() -> Floorplan:
    bottom = build_accelerator_die()
    naive_top = build_naive_top_die()

    report = power_density_report(bottom, naive_top)
    print("Naive stacking:")
    print(f"  total power       {report.total_power:6.1f} W")
    print(f"  peak density      {report.peak_density:6.2f} W/mm^2")

    # The paper's recipe: place, observe densities, repair outliers.
    target = report.peak_density * 0.72
    repaired, iterations = repair_hotspots(
        bottom, naive_top, target_peak_density=target
    )
    fixed = power_density_report(bottom, repaired)
    print(f"\nAfter hotspot repair ({iterations} moves):")
    print(f"  peak density      {fixed.peak_density:6.2f} W/mm^2 "
          f"(target {target:.2f})")

    naive_temp = simulate_stack(bottom, naive_top).peak_temperature()
    fixed_temp = simulate_stack(bottom, repaired).peak_temperature()
    print(f"\nThermal check: naive {naive_temp:.1f} C -> "
          f"repaired {fixed_temp:.1f} C "
          f"({fixed_temp - naive_temp:+.1f} C)")

    stack = build_stack(bottom, repaired)
    issues = stack.validate()
    print(f"Stack design rules: {'clean' if not issues else issues}")
    print(f"d2d interface: {stack.interface_bandwidth_gbps():,.0f} GB/s "
          f"available across the bonded area")
    return repaired


def cache_study() -> None:
    print("\nStacked DRAM cache sizing for the accelerator:")
    # A pointer-chasing workload (pcg's dependent gathers) over a 14 MB
    # working set, scaled by 8 like the paper sweep.
    trace = generate_trace("pcg", n_records=600_000, scale=8)
    small = HierarchyConfig(
        l2=CacheConfig(512 * KB, ways=16, latency=16)
    )
    stacked = HierarchyConfig(
        l2=None,
        stacked_dram=DramCacheConfig(size_bytes=4 * MB),
    )
    base = replay_trace(trace, small, warmup_fraction=0.35)
    best = replay_trace(trace, stacked, warmup_fraction=0.35)
    print(f"  on-die 512KB SRAM only: CPMA {base.cpma:6.2f}, "
          f"off-die BW {base.bandwidth_gbps:.2f} GB/s")
    print(f"  + 4MB stacked DRAM:     CPMA {best.cpma:6.2f}, "
          f"off-die BW {best.bandwidth_gbps:.2f} GB/s")
    print(f"  -> {100 * (1 - best.cpma / base.cpma):.0f}% fewer cycles per "
          "access, "
          f"{100 * (1 - best.bandwidth_gbps / max(base.bandwidth_gbps, 1e-9)):.0f}% "
          "less off-die traffic")


if __name__ == "__main__":
    floorplan_study()
    cache_study()
