#!/usr/bin/env python
"""Extension study: stacking *many* DRAM dies (the paper's future work).

The paper limits its analysis to two-die stacks but notes "it is also
possible to stack many die."  This example follows that thread — the one
that led to HBM and 3D V-Cache:

1. grow the stacked DRAM cache from 32 MB (one die) to 128 MB (four
   dies) and solve each stack thermally;
2. check the memory-hierarchy payoff of the extra capacity on a
   larger-than-32MB workload;
3. watch the 4-die stack warm up from power-on with the transient solver
   and respond to a DVFS power step.
"""

from repro.floorplan import core2duo_floorplan, stacked_cache_die
from repro.memsim import replay_trace, stacked_dram_config
from repro.thermal import (
    DieSpec,
    SolverConfig,
    build_multi_stack,
    build_planar_stack,
    solve_steady_state,
    solve_transient,
)
from repro.traces import generate_trace
from repro.traces.kernels.base import KernelParams

GRID = SolverConfig(nx=40, ny=40)


def thermal_scaling() -> None:
    print("=== Thermal cost of stacking 1-4 DRAM dies (32 MB each) ===")
    cpu = core2duo_floorplan(with_l2=False)
    dram = stacked_cache_die("dram-32mb", cpu)
    baseline = solve_steady_state(
        build_planar_stack(core2duo_floorplan()), GRID
    ).peak_temperature()
    print(f"  2D baseline: {baseline:6.2f} C")
    for n_dram in (1, 2, 3, 4):
        dies = [DieSpec(cpu)] + [
            DieSpec(dram, metal="al") for _ in range(n_dram)
        ]
        stack = build_multi_stack(dies)
        peak = solve_steady_state(stack, GRID).peak_temperature()
        print(f"  CPU + {n_dram} DRAM die(s) = {32 * n_dram:3d} MB: "
              f"{peak:6.2f} C  ({peak - baseline:+.2f} C, "
              f"{stack.total_power:.1f} W)")
    print("  -> even 128 MB of stacked DRAM costs only a few degrees: the")
    print("     observation that presaged HBM-class stacking.")


def capacity_payoff() -> None:
    print("\n=== Does a second DRAM die pay off? ===")
    # A workload whose footprint exceeds one 32 MB die (scaled by 16:
    # 48 MB -> 3 MB vs 2 MB/4 MB stacked capacities).
    scale = 16
    params = KernelParams(footprint_bytes=48 << 20, scale=scale)
    trace = generate_trace(
        "gauss", n_records=1_200_000, scale=scale, params=params
    )
    for capacity in (32, 64):
        stats = replay_trace(
            trace, stacked_dram_config(capacity, scale), warmup_fraction=0.35
        )
        print(f"  {capacity} MB stacked DRAM: CPMA {stats.cpma:6.2f}, "
              f"off-die BW {stats.bandwidth_gbps:5.2f} GB/s")


def transient_behaviour() -> None:
    print("\n=== 4-die stack: power-on warm-up and a DVFS step ===")
    cpu = core2duo_floorplan(with_l2=False)
    dram = stacked_cache_die("dram-32mb", cpu)
    stack = build_multi_stack(
        [DieSpec(cpu)] + [DieSpec(dram, metal="al") for _ in range(4)]
    )
    run = solve_transient(stack, GRID, duration_s=120.0, dt_s=2.0)
    print(f"  power-on: {run.peak_c[0]:.1f} C -> {run.peak_c[-1]:.1f} C; "
          f"63% of the rise in {run.time_to_fraction(0.63):.0f} s")
    stepped = solve_transient(
        stack, GRID, duration_s=120.0, dt_s=2.0,
        power_schedule=lambda t: 0.66 if t > 60.0 else 1.0,
    )
    idx = stepped.times_s.index(60.0)
    print(f"  DVFS step to 66% power at t=60s: "
          f"{stepped.peak_c[idx]:.1f} C -> {stepped.peak_c[-1]:.1f} C")


if __name__ == "__main__":
    thermal_scaling()
    capacity_payoff()
    transient_behaviour()
