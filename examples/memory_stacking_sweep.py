#!/usr/bin/env python
"""Section 3 study: stacked-cache capacity sweep over the RMS workloads.

Reproduces Figure 5 (CPMA + off-die bandwidth for every workload at
4/12/32/64 MB), Figure 8a (peak temperatures of the four stack options),
and the Section 3 headline numbers.

By default runs a representative subset of workloads at reduced trace
length; pass ``--full`` for all twelve at full length (a few minutes).
"""

import argparse

from repro.analysis import format_figure5, compare_to_paper
from repro.core.memory_on_logic import run_memory_study

SUBSET = ["conj", "gauss", "ssym", "sus", "svm"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true",
        help="all 12 workloads at full trace length",
    )
    parser.add_argument(
        "--scale", type=int, default=8,
        help="capacity/footprint scale divisor (default 8)",
    )
    args = parser.parse_args()

    workloads = None if args.full else SUBSET
    length_factor = 1.0 if args.full else 0.5
    result = run_memory_study(
        workloads=workloads, scale=args.scale, length_factor=length_factor
    )

    print(format_figure5(result.cpma, result.bandwidth))

    print("\nFigure 8a: peak temperatures")
    paper_temps = {
        "2D 4MB": 88.35, "3D 12MB": 92.85, "3D 32MB": 88.43, "3D 64MB": 90.27,
    }
    print(compare_to_paper(paper_temps, result.peak_temps, unit="C"))

    print("\nSection 3 headlines")
    print(f"  avg CPMA reduction at 32 MB:  "
          f"{100 * result.cpma_reduction('3D 32MB'):5.1f}%  (paper: 13%)")
    print(f"  max CPMA reduction at 32 MB:  "
          f"{100 * result.max_cpma_reduction('3D 32MB'):5.1f}%  (paper: up to 55%)")
    print(f"  bus power/BW reduction:       "
          f"{100 * result.bus_power_reduction('3D 32MB'):5.1f}%  (paper: 66%)")
    delta = result.peak_temps["3D 32MB"] - result.peak_temps["2D 4MB"]
    print(f"  32 MB stack temperature delta: {delta:+.2f} C  (paper: +0.08 C)")


if __name__ == "__main__":
    main()
