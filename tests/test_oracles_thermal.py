"""Thermal oracle integration + operator-cache adversarial lifecycle.

The operator cache serves every steady and transient solve; these tests
prove a cached operator survives hostile lifecycles bit-identically
(clear mid-transient, LRU eviction under a live handle, cache bypass)
and that in-memory corruption of a cached entry is detected, not
propagated.
"""

import numpy as np
import pytest

from repro.floorplan import core2duo_floorplan, stacked_cache_die
from repro.oracles.config import get_oracle_config, oracle_mode, set_oracle_mode
from repro.oracles.report import oracle_report, reset_oracles
from repro.thermal import solver as thermal_solver
from repro.thermal.solver import (
    SolverConfig,
    assemble_system,
    clear_operator_cache,
    operator_cache_stats,
    solve_steady_state,
)
from repro.thermal.stack import build_3d_stack, build_planar_stack
from repro.thermal.transient import solve_transient


@pytest.fixture(autouse=True)
def _clean_oracles():
    previous = get_oracle_config()
    reset_oracles()
    clear_operator_cache()
    yield
    set_oracle_mode(previous)
    reset_oracles()
    clear_operator_cache()


@pytest.fixture(scope="module")
def stack():
    return build_planar_stack(core2duo_floorplan())


CFG = SolverConfig(nx=16, ny=16)


class TestSteadyOracles:
    def test_clean_solve_records_checks_no_violations(self, stack):
        with oracle_mode("sample"):
            solution = solve_steady_state(stack, CFG)
        report = oracle_report()
        assert report.clean
        for oracle in ("thermal.residual", "thermal.conservation",
                       "thermal.bounds"):
            assert report.checks.get(oracle, 0) >= 1, report.checks
        assert not solution.degraded

    def test_armed_corruption_detected_and_result_unaffected(self, stack):
        with oracle_mode("sample"):
            clean = solve_steady_state(stack, CFG)
            thermal_solver.arm_operator_corruption(
                lambda op: op.matrix.data.__setitem__(0, 12345.0)
            )
            # Cache hit consumes the hook, the crc recheck catches the
            # corruption, and the entry is rebuilt from scratch.
            after = solve_steady_state(stack, CFG)
        report = oracle_report()
        assert any(v.oracle == "thermal.operator-crc"
                   for v in report.violations)
        assert any(v.action == "quarantined-entry"
                   for v in report.violations)
        np.testing.assert_array_equal(after.temperature, clean.temperature)

    def test_off_mode_skips_thermal_checks(self, stack):
        with oracle_mode("off"):
            solve_steady_state(stack, CFG)
        assert oracle_report().total_checks == 0


class TestOperatorLifecycle:
    """Adversarial cache lifecycles must stay bit-identical."""

    def test_clear_cache_mid_transient_resume_is_exact(self, stack, tmp_path):
        with oracle_mode("sample"):
            full = solve_transient(stack, CFG, duration_s=1.0, dt_s=0.1)
            path = tmp_path / "transient.ckpt"
            solve_transient(
                stack, CFG, duration_s=0.5, dt_s=0.1,
                checkpoint_every=2, checkpoint_path=path,
            )
            # The cached operator (and its transient factorizations)
            # vanish mid-run; resume must rebuild and continue exactly.
            clear_operator_cache()
            resumed = solve_transient(
                stack, CFG, duration_s=1.0, dt_s=0.1, resume_from=path
            )
        assert resumed.times_s == full.times_s
        assert resumed.peak_c == full.peak_c
        assert oracle_report().clean

    def test_lru_eviction_under_live_handle(self, stack):
        with oracle_mode("sample"):
            held = assemble_system(stack, CFG)
            # Flood the LRU with distinct geometries until the held
            # entry is evicted.
            for nx in range(8, 8 + thermal_solver._OPERATOR_CACHE_MAX + 1):
                assemble_system(stack, SolverConfig(nx=nx, ny=nx))
            assert (operator_cache_stats()["size"]
                    <= operator_cache_stats()["max_size"])
            # The held handle stays fully usable after eviction, and a
            # re-assembly (now a miss) reproduces it bit for bit.
            rebuilt = assemble_system(stack, CFG)
        assert (held.matrix != rebuilt.matrix).nnz == 0
        np.testing.assert_array_equal(held.rhs, rebuilt.rhs)
        np.testing.assert_array_equal(held.mass, rebuilt.mass)
        assert oracle_report().clean

    def test_reuse_operator_false_bypasses_cache_bit_identically(self, stack):
        with oracle_mode("sample"):
            cached = assemble_system(stack, CFG)      # miss: populates
            cached2 = assemble_system(stack, CFG)     # hit: verified
            cold = assemble_system(stack, CFG, reuse_operator=False)
        stats = operator_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert (cold.matrix != cached.matrix).nnz == 0
        np.testing.assert_array_equal(cold.rhs, cached.rhs)
        np.testing.assert_array_equal(cold.rhs, cached2.rhs)
        assert oracle_report().clean


class TestTransientOracles:
    def test_transient_final_field_bounds_checked(self, stack):
        with oracle_mode("sample"):
            solve_transient(stack, CFG, duration_s=0.3, dt_s=0.1)
        report = oracle_report()
        assert report.clean
        assert report.checks.get("thermal.transient-bounds", 0) >= 1

    def test_stacked_config_clean_under_strict(self):
        base = core2duo_floorplan()
        cache = stacked_cache_die("sram-8mb", base)
        stacked = build_3d_stack(base, cache, die2_metal="cu")
        with oracle_mode("strict"):
            solve_steady_state(stacked, CFG)
            solve_steady_state(stacked, CFG)  # hit: crc checked every reuse
        report = oracle_report()
        assert report.clean
        assert report.checks.get("thermal.operator-crc", 0) >= 1
