"""Replay oracle integration: differentials, invariants, fuzz equivalence.

The memsim oracle contract: in any enabled mode the chunked fast path
stays bit-identical to the per-record reference path, corruption is
*detected* (never raised), and a detected divergence pins the run to
the reference path with ``ReplayStats.degraded`` set.
"""

import random

import pytest

from repro.memsim import baseline_config
from repro.memsim.hierarchy import MemoryHierarchy
from repro.memsim.replay import TraceReplayer, replay_trace
from repro.oracles.config import get_oracle_config, oracle_mode, set_oracle_mode
from repro.oracles.report import oracle_report, reset_oracles
from repro.traces.generator import generate_trace, records_to_array


@pytest.fixture(autouse=True)
def _clean_oracles():
    previous = get_oracle_config()
    reset_oracles()
    yield
    set_oracle_mode(previous)
    reset_oracles()


@pytest.fixture(scope="module")
def trace():
    return generate_trace("smvm", n_records=20000, seed=13)


@pytest.fixture(scope="module")
def array(trace):
    return records_to_array(trace)


def _configs(scale=8):
    from repro.core.memory_on_logic import build_memory_configs

    return build_memory_configs(scale)


def _fed_pair(hierarchy_config, array, warmup_until, mode):
    """(fast-path replayer, per-record replayer) fed the same rows."""
    fast = TraceReplayer(
        hierarchy=MemoryHierarchy(hierarchy_config), warmup_until=warmup_until
    )
    slow = TraceReplayer(
        hierarchy=MemoryHierarchy(hierarchy_config), warmup_until=warmup_until
    )
    with oracle_mode(mode):
        fast.feed_array(array)
    with oracle_mode("off"):
        slow.feed_array(array)
    return fast, slow


class TestModesAreBitIdentical:
    @pytest.mark.parametrize("mode", ["sample", "strict"])
    def test_oracle_modes_match_off_mode(self, array, mode):
        warmup = len(array) // 3
        fast, slow = _fed_pair(baseline_config(), array, warmup, mode)
        assert fast.state_fingerprint() == slow.state_fingerprint()
        assert oracle_report().clean
        with oracle_mode(mode):
            assert not fast.stats().degraded

    def test_differentials_actually_ran_in_strict(self, array):
        with oracle_mode("strict"):
            replayer = TraceReplayer(hierarchy=MemoryHierarchy(baseline_config()))
            replayer.feed_array(array)
        checks = oracle_report().checks
        chunks = -(-len(array) // get_oracle_config().replay_chunk)
        assert checks["memsim.replay-differential"] == chunks
        assert checks["memsim.replay-chunk"] == chunks

    def test_sample_mode_skips_most_differentials(self, array):
        with oracle_mode("sample"):
            replayer = TraceReplayer(hierarchy=MemoryHierarchy(baseline_config()))
            replayer.feed_array(array)
        checks = oracle_report().checks
        # 20k records / 4096-row chunks = 5 chunks, stride 64: none
        # differentially replayed (chunk 0 is deliberately exempt so
        # short runs pay zero differential cost).
        assert checks.get("memsim.replay-differential", 0) == 0
        assert checks["memsim.replay-chunk"] >= 5


class TestTraceFuzz:
    """Seeded property fuzz (no Hypothesis): feed == feed_array, clean."""

    KERNELS = ("smvm", "gauss", "svd", "pcg")

    @pytest.mark.parametrize(
        "config", _configs(), ids=lambda c: c.name.replace(" ", "-")
    )
    def test_fast_path_equivalence_all_memory_configs(self, config):
        rng = random.Random(f"oracle-fuzz:{config.name}")
        for trial in range(3):
            kernel = rng.choice(self.KERNELS)
            seed = rng.randrange(2**31)
            n = rng.randrange(3000, 9000)
            rows = records_to_array(
                generate_trace(kernel, n_records=n, seed=seed)
            )
            warmup = rng.randrange(0, n // 2)
            reset_oracles()
            fast, slow = _fed_pair(config.hierarchy, rows, warmup, "sample")
            context = f"{config.name} trial {trial}: {kernel} seed {seed}"
            assert fast.state_fingerprint() == slow.state_fingerprint(), context
            assert oracle_report().clean, context
            with oracle_mode("sample"):
                assert not fast.stats().degraded, context


class TestDetection:
    def test_structural_corruption_detected_not_raised(self, trace):
        with oracle_mode("sample"):
            stats_clean = replay_trace(trace, warmup_fraction=0.3)
            assert not stats_clean.degraded

            replayer = TraceReplayer(
                hierarchy=MemoryHierarchy(baseline_config()),
                warmup_until=len(trace) // 3,
            )
            replayer.feed_many(trace)
            # Overfill an L1D set past its associativity, the way a
            # corrupted snapshot or a buggy refactor would.
            target = replayer.hierarchy.l1s[0]._sets[0]
            for i in range(target and 0, len(target) + 4):
                target[0xDEAD0000 + 64 * i] = False
            stats = replayer.stats()
        assert stats.degraded
        report = oracle_report()
        assert not report.clean
        assert any("associativity" in v.detail for v in report.violations)

    def test_divergence_falls_back_to_reference(self, array, monkeypatch):
        real_feed_rows = TraceReplayer._feed_rows
        corrupted = []

        def corrupting_feed_rows(self, rows, start, stop):
            real_feed_rows(self, rows, start, stop)
            if not corrupted:  # one silent fast-path fault, chunk 0
                corrupted.append(True)
                self.hierarchy.bus.total_bytes += 64

        monkeypatch.setattr(TraceReplayer, "_feed_rows", corrupting_feed_rows)
        with oracle_mode("strict"):
            replayer = TraceReplayer(hierarchy=MemoryHierarchy(baseline_config()))
            replayer.feed_array(array)
            assert replayer._oracle_fallback
            stats = replayer.stats()
        assert stats.degraded
        [violation] = [
            v for v in oracle_report().violations
            if v.action == "fallback-reference"
        ]
        assert "bus_total_bytes" in violation.detail

        # The adopted reference state must carry the run to the same
        # numbers as a never-corrupted per-record replay.
        with oracle_mode("off"):
            reference = TraceReplayer(hierarchy=MemoryHierarchy(baseline_config()))
            reference.feed_array(array)
        fingerprint = replayer.state_fingerprint()
        assert fingerprint == reference.state_fingerprint()

    def test_checkpoint_round_trip_preserves_oracle_flags(
        self, trace, tmp_path
    ):
        path = tmp_path / "replay.ckpt"
        with oracle_mode("sample"):
            replayer = TraceReplayer(hierarchy=MemoryHierarchy(baseline_config()))
            replayer.feed_many(trace, stop_after=6000,
                               checkpoint_every=3000, checkpoint_path=path)
            replayer._oracle_degraded = True
            replayer.checkpoint(path)
            restored = TraceReplayer.restore(path)
        assert restored._oracle_degraded
        assert not restored._oracle_fallback
        assert restored._chunk_counter == replayer._chunk_counter
