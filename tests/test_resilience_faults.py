"""Fault-injection tests: corruption is deterministic and survivable."""

import numpy as np
import pytest

from repro.memsim import baseline_config
from repro.memsim.replay import replay_trace
from repro.resilience import FaultInjector, TraceCorruptionError
from repro.traces.generator import generate_trace
from repro.traces.record import AccessType, TraceRecord


@pytest.fixture(scope="module")
def trace():
    return generate_trace("gauss", n_records=8000, seed=9)


class TestInjectorDeterminism:
    def test_same_seed_same_faults(self, trace):
        a = list(FaultInjector(seed=3, record_corruption_rate=0.02)
                 .corrupt_trace(trace))
        b = list(FaultInjector(seed=3, record_corruption_rate=0.02)
                 .corrupt_trace(trace))
        assert a == b

    def test_different_seed_different_faults(self, trace):
        a = list(FaultInjector(seed=3, record_corruption_rate=0.02)
                 .corrupt_trace(trace))
        b = list(FaultInjector(seed=4, record_corruption_rate=0.02)
                 .corrupt_trace(trace))
        assert a != b

    def test_rate_validation(self):
        with pytest.raises(ValueError, match="record_corruption_rate"):
            FaultInjector(record_corruption_rate=1.5)

    def test_draws_are_site_addressed_not_a_shared_stream(self, trace):
        # Consuming draws at one site (bit flips) must not perturb the
        # draws at another (trace corruption): every decision is keyed
        # on (seed, site, occurrence).  This stability is what lets a
        # DST fault schedule shrink without reshuffling survivors.
        plain = FaultInjector(seed=3, record_corruption_rate=0.02)
        perturbed = FaultInjector(seed=3, record_corruption_rate=0.02)
        for _ in range(17):
            perturbed.flip_bits(b"spend draws elsewhere", n_flips=3)
        a = list(plain.corrupt_trace(trace))
        b = list(perturbed.corrupt_trace(trace))
        assert a == b

    def test_injection_accounting(self, trace):
        injector = FaultInjector(seed=1, record_corruption_rate=0.05)
        corrupted = list(injector.corrupt_trace(trace))
        n_corrupt = sum(injector.injected.values())
        assert 0 < n_corrupt < len(trace)
        assert len(corrupted) == len(trace)


class TestCorruptedTraceReplay:
    def test_lenient_mode_finishes_with_quarantine_count(self, trace):
        # Acceptance criterion: a corrupted trace in lenient mode
        # finishes with a nonzero quarantine count...
        injector = FaultInjector(seed=7, record_corruption_rate=0.01)
        bad = list(injector.corrupt_trace(trace))
        stats = replay_trace(
            bad, baseline_config(), warmup_fraction=0.0, mode="lenient"
        )
        assert stats.quarantined > 0
        assert sum(stats.quarantined_by_reason.values()) == stats.quarantined
        assert stats.n_accesses == len(trace) - stats.quarantined
        assert stats.cpma > 0

    def test_strict_mode_raises(self, trace):
        # ...and in strict mode raises TraceCorruptionError.
        injector = FaultInjector(seed=7, record_corruption_rate=0.01)
        bad = list(injector.corrupt_trace(trace))
        with pytest.raises(TraceCorruptionError):
            replay_trace(
                bad, baseline_config(), warmup_fraction=0.0, mode="strict"
            )

    def test_clean_trace_quarantines_nothing(self, trace):
        strict = replay_trace(
            trace, baseline_config(), warmup_fraction=0.0, mode="strict"
        )
        unguarded = replay_trace(trace, baseline_config(), warmup_fraction=0.0)
        assert strict.quarantined == 0
        assert strict.cpma == pytest.approx(unguarded.cpma, rel=1e-12)

    def test_dropped_producers_do_not_hang_replay(self, trace):
        # Dangling dep_uids (producer records removed from the stream)
        # must degrade to "no wait", never deadlock.
        injector = FaultInjector(seed=5, dependency_drop_rate=0.05)
        thinned = list(injector.drop_producers(trace))
        assert len(thinned) < len(trace)
        stats = replay_trace(
            thinned, baseline_config(), warmup_fraction=0.0, mode="lenient"
        )
        assert stats.n_accesses == len(thinned)


class TestPowerPerturbation:
    def test_perturbation_trips_power_guard(self):
        from repro.resilience import GuardViolation, check_power_map

        injector = FaultInjector(seed=2, power_fault_rate=0.3)
        perturbed = injector.perturb_power(np.ones((6, 6)))
        assert injector.injected  # something was injected at 30% rate
        with pytest.raises(GuardViolation):
            check_power_map(perturbed)

    def test_zero_rate_is_identity(self):
        injector = FaultInjector(seed=2)
        power = np.linspace(0, 5, 10)
        np.testing.assert_array_equal(injector.perturb_power(power), power)

    def test_dropouts_clamp_at_zero_watts(self):
        # Regression: dropouts used to subtract past zero, fabricating
        # negative power — which violates the very thermal oracle the
        # injector exists to exercise.  A faulty sensor reads nothing,
        # never negative watts.
        for seed in range(8):
            injector = FaultInjector(seed=seed, power_fault_rate=0.5)
            perturbed = injector.perturb_power(np.full((5, 5), 0.25))
            finite = perturbed[np.isfinite(perturbed)]
            assert (finite >= 0.0).all(), f"seed {seed}: {finite.min()}"

    def test_dropouts_are_noted(self):
        injector = FaultInjector(seed=4, power_fault_rate=0.9)
        injector.perturb_power(np.full(64, 2.0))
        assert injector.injected.get("power:dropout", 0) > 0


class TestBitFlips:
    def test_flip_bits_deterministic_and_minimal(self):
        data = bytes(range(64))
        a = FaultInjector(seed=6).flip_bits(data, n_flips=2)
        b = FaultInjector(seed=6).flip_bits(data, n_flips=2)
        assert a == b != data
        assert sum(
            bin(x ^ y).count("1") for x, y in zip(a, data)
        ) == 2

    def test_flip_array_bits_in_place(self):
        array = np.arange(32, dtype=np.float64)
        pristine = array.copy()
        flipped = FaultInjector(seed=6).flip_array_bits(array, n_flips=1)
        assert flipped == 1
        assert not np.array_equal(array, pristine)

    def test_flip_file_bits_respects_header_guard(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(bytes(128))
        FaultInjector(seed=6).flip_file_bits(path, n_flips=4, offset_min=64)
        raw = path.read_bytes()
        assert raw[:64] == bytes(64)  # header untouched
        assert raw[64:] != bytes(64)

    def test_flip_file_bits_too_small_is_noop(self, tmp_path):
        path = tmp_path / "tiny.bin"
        path.write_bytes(b"abc")
        flipped = FaultInjector(seed=6).flip_file_bits(
            path, n_flips=1, offset_min=16
        )
        assert flipped == 0
        assert path.read_bytes() == b"abc"


class TestRawRecordBypass:
    def test_make_raw_record_skips_validation(self):
        from repro.resilience import make_raw_record

        bad = make_raw_record(5, -3, AccessType.LOAD, -1, 0, dep_uid=99)
        assert bad.cpu == -3 and bad.dep_uid == 99
        with pytest.raises(TraceCorruptionError):
            TraceRecord(5, -3, AccessType.LOAD, -1, 0, dep_uid=99)


class TestWorkerFaults:
    def test_no_rates_no_faults(self):
        injector = FaultInjector(seed=1)
        assert injector.worker_fault("figure-6", 0) is None

    def test_forced_fault_for_one_task(self):
        injector = FaultInjector(
            forced_failures={"worker-crash:figure-6": 1}
        )
        assert injector.worker_fault("figure-6", 0) == "crash"
        assert injector.worker_fault("figure-6", 1) is None  # consumed
        assert injector.worker_fault("figure-8", 0) is None  # other task

    def test_forced_fault_any_task_always(self):
        injector = FaultInjector(forced_failures={"worker-hang": -1})
        assert injector.worker_fault("a", 0) == "hang"
        assert injector.worker_fault("b", 5) == "hang"

    def test_rate_faults_deterministic_per_seed_task_attempt(self):
        def make():
            return FaultInjector(seed=11, worker_fault_rates={"crash": 0.5})

        rolls = [make().worker_fault("t", i) for i in range(20)]
        assert rolls == [make().worker_fault("t", i) for i in range(20)]
        assert "crash" in rolls and None in rolls  # rate actually bites

    def test_retry_rolls_fresh(self):
        injector = FaultInjector(seed=0, worker_fault_rates={"crash": 0.5})
        rolls = {injector.worker_fault("task", a) for a in range(30)}
        assert rolls == {"crash", None}  # transient, not sticky

    def test_injected_bookkeeping(self):
        injector = FaultInjector(
            seed=2, worker_fault_rates={"corrupt-result": 1.0}
        )
        assert injector.worker_fault("t", 0) == "corrupt-result"
        assert injector.injected["worker:corrupt-result"] == 1

    def test_invalid_mode_and_rate_rejected(self):
        with pytest.raises(ValueError, match="unknown worker fault mode"):
            FaultInjector(worker_fault_rates={"meltdown": 0.1})
        with pytest.raises(ValueError, match="must be in"):
            FaultInjector(worker_fault_rates={"crash": 1.5})
