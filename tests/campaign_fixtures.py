"""Fast fixture experiments for campaign-runner tests.

Worker subprocesses import this module by spec
(``tests.campaign_fixtures:FAST_REGISTRY``), so every experiment here
must be importable outside pytest and cheap: supervisor tests spawn a
real interpreter per attempt.
"""

from __future__ import annotations

import random
import time
from typing import Any, Dict

from repro.core.experiments import Experiment, ExperimentRegistry

#: Import spec the supervisor hands to workers.
FAST_REGISTRY_SPEC = "tests.campaign_fixtures:FAST_REGISTRY"


def _run_quick(**kwargs: Any) -> Dict[str, Any]:
    return {"value": kwargs.get("value", 42), "rand": random.random()}


def _run_boom(**kwargs: Any) -> Dict[str, Any]:
    raise ValueError("intentional fixture failure")


def _run_slow(**kwargs: Any) -> Dict[str, Any]:
    time.sleep(kwargs.get("sleep_s", 30.0))
    return {"slept": True}


def _run_degraded_solve(**kwargs: Any) -> Dict[str, Any]:
    # Mimics a thermal experiment whose answer came off the fallback
    # ladder: campaign reports must surface this, not blend it in.
    return {
        "peak_c": 91.0,
        "solver": {"residual": 3e-7, "method": "cg-coarse", "degraded": True},
    }


FAST_REGISTRY = ExperimentRegistry()
for _e in [
    Experiment("quick", "returns instantly", {}, _run_quick),
    Experiment("quick-2", "returns instantly too", {}, _run_quick),
    Experiment("boom", "always raises", {}, _run_boom),
    Experiment("slow", "sleeps forever-ish", {}, _run_slow),
    Experiment("degraded-solve", "fallback-ladder result", {},
               _run_degraded_solve),
]:
    FAST_REGISTRY.register(_e)
