"""Pinning tests for the transient-solver bug sweep.

Four behaviors regressed or were ambiguous before this change:

* a duration that is not a whole number of dt steps silently truncated
  the run (duration 1.0 / dt 0.3 integrated only 0.9 s);
* ``time_to_fraction`` fired at t=0 on cooling transients;
* checkpoint resume accepted any checkpoint with matching n/dt — even
  one written by a *different stack* or one already past this run's
  horizon;
* the power schedule was sampled at each step's *end* time, off by one
  step against the documented example.

Plus coverage for the per-(geometry, dt) backward-Euler LU cache:
hits, FIFO eviction across mixed-dt runs, and the cold
``reuse_operator=False`` path leaving the cache untouched.
"""

import numpy as np
import pytest

from repro.floorplan import core2duo_floorplan, pentium4_planar_floorplan
from repro.resilience.errors import CheckpointError
from repro.thermal import SolverConfig, solve_transient
from repro.thermal.solver import (
    _TRANSIENT_LU_MAX,
    assemble_system,
    clear_operator_cache,
)
from repro.thermal.stack import build_planar_stack

FAST = SolverConfig(nx=12, ny=12)


@pytest.fixture(scope="module")
def stack():
    return build_planar_stack(core2duo_floorplan())


class TestDurationDivisibility:
    def test_non_divisible_duration_rejected(self, stack):
        with pytest.raises(ValueError, match="does not divide"):
            solve_transient(stack, FAST, duration_s=1.0, dt_s=0.3)

    def test_divisible_duration_runs_to_the_end(self, stack):
        run = solve_transient(stack, FAST, duration_s=1.2, dt_s=0.3)
        assert run.times_s[-1] == pytest.approx(1.2)
        assert len(run.times_s) == 5  # t=0 plus 4 steps

    def test_float_noise_tolerated(self, stack):
        # 0.1 * 3 != 0.3 exactly in floats; the divisibility check must
        # accept it anyway.
        run = solve_transient(stack, FAST, duration_s=0.3, dt_s=0.1)
        assert len(run.times_s) == 4


class TestCoolingTimeToFraction:
    def test_cooling_transient_fraction(self, stack):
        # Start hot with the power off: the peak falls toward ambient.
        system = assemble_system(stack, FAST)
        hot = np.full(system.matrix.shape[0], FAST.ambient_c + 50.0)
        run = solve_transient(
            stack,
            FAST,
            duration_s=30.0,
            dt_s=0.5,
            initial=hot,
            power_schedule=lambda t: 0.0,
        )
        assert run.peak_rise < 0
        t63 = run.time_to_fraction(0.632)
        # Before the fix this returned times_s[0] == 0.0 immediately:
        # with a negative rise the target sits *below* the start, which
        # "peak >= target" satisfies at t=0.
        assert t63 > 0
        target = run.peak_c[0] + 0.632 * run.peak_rise
        idx = run.times_s.index(t63)
        assert run.peak_c[idx] <= target
        assert run.time_to_fraction(0.3) <= run.time_to_fraction(0.9)

    def test_heating_behavior_unchanged(self, stack):
        run = solve_transient(stack, FAST, duration_s=20.0, dt_s=0.5)
        assert run.peak_rise > 0
        assert 0 < run.time_to_fraction(0.5) <= run.time_to_fraction(0.95)


class TestCheckpointCompatibility:
    def _write_checkpoint(self, stack, path, duration_s=0.6, dt_s=0.1):
        solve_transient(
            stack,
            FAST,
            duration_s=duration_s,
            dt_s=dt_s,
            checkpoint_every=3,
            checkpoint_path=path,
        )

    def test_wrong_stack_rejected(self, stack, tmp_path):
        # Same grid, same cell count, different machine: before the fix
        # the n/dt check accepted this silently.
        other = build_planar_stack(pentium4_planar_floorplan())
        ckpt = tmp_path / "transient.ckpt"
        self._write_checkpoint(stack, ckpt)
        with pytest.raises(CheckpointError, match="stack"):
            solve_transient(
                other, FAST, duration_s=0.6, dt_s=0.1, resume_from=ckpt
            )

    def test_past_horizon_rejected(self, stack, tmp_path):
        ckpt = tmp_path / "transient.ckpt"
        self._write_checkpoint(stack, ckpt, duration_s=0.6, dt_s=0.1)
        # The checkpoint sits at step 6 (0.6 s); a 0.3 s run has nothing
        # left to integrate from there.
        with pytest.raises(CheckpointError, match="nothing to resume"):
            solve_transient(
                stack, FAST, duration_s=0.3, dt_s=0.1, resume_from=ckpt
            )

    def test_longer_horizon_resumes(self, stack, tmp_path):
        # The normal case: resume an interrupted run with the original
        # (longer) duration.
        ckpt = tmp_path / "transient.ckpt"
        self._write_checkpoint(stack, ckpt, duration_s=0.6, dt_s=0.1)
        run = solve_transient(
            stack, FAST, duration_s=1.0, dt_s=0.1, resume_from=ckpt
        )
        assert run.times_s[-1] == pytest.approx(1.0)


class TestScheduleSamplingConvention:
    def test_factor_sampled_at_step_start(self, stack):
        # Power on only for the first step: [0, 1).  Start-of-step
        # sampling heats exactly one step then cools; the old
        # end-of-step sampling would have seen factor 0 at t=1.0 and
        # never heated at all.
        run = solve_transient(
            stack,
            FAST,
            duration_s=2.0,
            dt_s=1.0,
            power_schedule=lambda t: 0.0 if t >= 1.0 else 1.0,
        )
        assert run.peak_c[1] > FAST.ambient_c + 1.0
        assert run.peak_c[2] < run.peak_c[1]

    def test_docstring_example_boundary(self, stack):
        # The documented DVFS example: the 0.66 factor lands on the step
        # *beginning* at t=5, so the peak still rises through step 5 and
        # starts falling on the next one.
        run = solve_transient(
            stack,
            FAST,
            duration_s=8.0,
            dt_s=1.0,
            power_schedule=lambda t: 0.66 if t >= 5 else 1.0,
        )
        idx5 = run.times_s.index(5.0)
        assert run.peak_c[idx5] > run.peak_c[idx5 - 1]
        assert run.peak_c[idx5 + 1] < run.peak_c[idx5]


class TestTransientLuCache:
    def test_hit_evict_and_cold_path(self, stack):
        clear_operator_cache()
        solve_transient(stack, FAST, duration_s=0.2, dt_s=0.1)
        operator = assemble_system(stack, FAST).operator
        assert operator is not None
        assert 0.1 in operator.transient_lus
        first_lu = operator.transient_lus[0.1]

        # Re-running with the same dt reuses the factorization object.
        solve_transient(stack, FAST, duration_s=0.4, dt_s=0.1)
        assert operator.transient_lus[0.1] is first_lu

        # Mixed dts fill the per-operator cache; beyond the cap the
        # oldest entry (FIFO) is evicted.
        for dt in (0.05, 0.02, 0.5, 1.0):
            solve_transient(stack, FAST, duration_s=2 * dt, dt_s=dt)
        assert len(operator.transient_lus) == _TRANSIENT_LU_MAX
        assert 0.1 not in operator.transient_lus
        assert set(operator.transient_lus) == {0.05, 0.02, 0.5, 1.0}

        # The cold benchmark path must not touch the cached operator.
        before = dict(operator.transient_lus)
        solve_transient(
            stack, FAST, duration_s=0.3, dt_s=0.15, reuse_operator=False
        )
        assert operator.transient_lus == before

    def test_cold_and_warm_paths_agree(self, stack):
        clear_operator_cache()
        warm = solve_transient(stack, FAST, duration_s=1.0, dt_s=0.25)
        cold = solve_transient(
            stack, FAST, duration_s=1.0, dt_s=0.25, reuse_operator=False
        )
        assert warm.peak_c == cold.peak_c
