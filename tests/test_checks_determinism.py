"""Unit tests for the RPL1xx determinism pass."""

import ast
import textwrap

from repro.checks import determinism
from repro.checks.diagnostics import PyFile


def make_file(source, rel="pkg/mod.py", module="repro.pkg.mod"):
    source = textwrap.dedent(source)
    return PyFile(
        rel=rel, module=module, tree=ast.parse(source),
        lines=source.splitlines(),
    )


def codes(diags):
    return [d.code for d in diags]


class TestUnseededConstruction:
    def test_random_Random_no_seed_is_rpl101(self):
        diags = determinism.check_file(make_file("""
            import random
            rng = random.Random()
        """))
        assert codes(diags) == ["RPL101"]
        assert "without a seed" in diags[0].message

    def test_seeded_Random_is_clean(self):
        diags = determinism.check_file(make_file("""
            import random
            rng = random.Random(42)
            rng2 = random.Random(f"stable-{42}")
        """))
        assert diags == []

    def test_from_import_Random_unseeded(self):
        diags = determinism.check_file(make_file("""
            from random import Random
            rng = Random()
        """))
        assert codes(diags) == ["RPL101"]

    def test_aliased_module(self):
        diags = determinism.check_file(make_file("""
            import random as rnd
            rng = rnd.Random()
        """))
        assert codes(diags) == ["RPL101"]

    def test_numpy_default_rng_unseeded(self):
        diags = determinism.check_file(make_file("""
            import numpy as np
            rng = np.random.default_rng()
        """))
        assert codes(diags) == ["RPL101"]

    def test_numpy_default_rng_seeded_is_clean(self):
        diags = determinism.check_file(make_file("""
            import numpy as np
            rng = np.random.default_rng(7)
        """))
        assert diags == []


class TestGlobalGeneratorCalls:
    def test_module_level_random_calls(self):
        diags = determinism.check_file(make_file("""
            import random
            x = random.random()
            y = random.randint(0, 5)
            random.seed(3)
        """))
        assert codes(diags) == ["RPL102", "RPL102", "RPL102"]

    def test_from_imported_function(self):
        diags = determinism.check_file(make_file("""
            from random import gauss
            x = gauss(0.0, 1.0)
        """))
        assert codes(diags) == ["RPL102"]

    def test_numpy_global_generator(self):
        diags = determinism.check_file(make_file("""
            import numpy as np
            np.random.seed(1)
            x = np.random.rand(4)
        """))
        assert codes(diags) == ["RPL102", "RPL102"]

    def test_instance_methods_are_clean(self):
        diags = determinism.check_file(make_file("""
            import random
            def kernel(rng: random.Random):
                return rng.random() + rng.gauss(0, 1)
        """))
        assert diags == []


class TestWallClock:
    def test_time_reads_flagged(self):
        diags = determinism.check_file(make_file("""
            import time
            t0 = time.time()
            t1 = time.perf_counter()
            t2 = time.monotonic()
        """))
        assert codes(diags) == ["RPL103", "RPL103", "RPL103"]

    def test_sleep_is_not_a_clock_read(self):
        diags = determinism.check_file(make_file("""
            import time
            time.sleep(0.1)
        """))
        assert diags == []

    def test_datetime_now_flagged(self):
        diags = determinism.check_file(make_file("""
            import datetime
            from datetime import datetime as dt
            a = datetime.datetime.now()
            b = dt.utcnow()
        """))
        assert codes(diags) == ["RPL103", "RPL103"]

    def test_from_import_perf_counter(self):
        diags = determinism.check_file(make_file("""
            from time import perf_counter
            t = perf_counter()
        """))
        assert codes(diags) == ["RPL103"]

    def test_allowlisted_file_may_read_clock(self):
        pf = make_file("""
            import time
            now = time.monotonic()
        """, rel="runner/supervisor.py", module="repro.runner.supervisor")
        assert determinism.check_file(pf) == []

    def test_allowlist_does_not_cover_rng(self):
        pf = make_file("""
            import random
            x = random.random()
        """, rel="runner/supervisor.py", module="repro.runner.supervisor")
        assert codes(determinism.check_file(pf)) == ["RPL102"]


class TestRunOverFiles:
    def test_run_aggregates_and_sorts_nothing_extra(self):
        clean = make_file("import math\nx = math.pi\n", rel="a.py",
                          module="repro.a")
        dirty = make_file("import random\nx = random.random()\n",
                          rel="b.py", module="repro.b")
        diags = determinism.run([clean, dirty])
        assert codes(diags) == ["RPL102"]
        assert diags[0].path == "b.py"
        assert diags[0].context == "x = random.random()"
