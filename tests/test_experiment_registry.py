"""Tests for the experiment registry API and the guarded runner."""

import pytest

from repro.core.experiments import (
    EXPERIMENTS,
    Experiment,
    ExperimentOutcome,
    ExperimentRegistry,
    REGISTRY,
    get_experiment,
    list_experiments,
    run_experiment,
)
from repro.resilience import SolverDivergenceError


class TestRegistryApi:
    def test_list_names_every_paper_artifact(self):
        ids = REGISTRY.list()
        assert ids == list_experiments()
        for expected in ("figure-3", "figure-5", "figure-6", "figure-8",
                         "figure-11", "table-4", "table-5", "headlines"):
            assert expected in ids

    def test_get_returns_experiment(self):
        experiment = REGISTRY.get("figure-6")
        assert experiment is get_experiment("figure-6")
        assert experiment.id == "figure-6"

    def test_unknown_id_names_valid_ids(self):
        with pytest.raises(KeyError) as info:
            REGISTRY.get("figure-99")
        message = str(info.value)
        assert "figure-99" in message
        assert "figure-5" in message  # the error lists what *is* valid

    def test_dict_view_stays_in_sync(self):
        assert set(EXPERIMENTS) == set(REGISTRY.list())

    def test_container_protocols(self):
        assert "table-4" in REGISTRY
        assert len(REGISTRY) == len(list_experiments())
        assert all(isinstance(e, Experiment) for e in REGISTRY)

    def test_duplicate_registration_rejected(self):
        registry = ExperimentRegistry()
        experiment = Experiment("x", "t", {}, lambda **kw: {})
        registry.register(experiment)
        with pytest.raises(ValueError, match="already registered"):
            registry.register(experiment)


class TestGuardedRunner:
    def test_success_outcome(self):
        outcome = run_experiment("figure-6", nx=12)
        assert isinstance(outcome, ExperimentOutcome)
        assert outcome.ok
        assert outcome.error is None
        assert outcome.result["peak_c"] > 50.0
        assert outcome.elapsed_s > 0.0

    def test_unknown_id_always_raises(self):
        with pytest.raises(KeyError):
            run_experiment("nope")

    def test_failure_captured_with_taxonomy_and_partial(self):
        registry = ExperimentRegistry()

        def explode(**kwargs):
            raise SolverDivergenceError(
                "diverged", residual=2.0, method="lu",
                partial={"completed_rows": 3},
            )

        registry.register(Experiment("boom", "t", {}, explode))
        outcome = run_experiment("boom", registry=registry)
        assert not outcome.ok
        assert outcome.error_type == "SolverDivergenceError"
        assert "diverged" in outcome.error
        assert outcome.partial == {"completed_rows": 3}

    def test_strict_reraises(self):
        registry = ExperimentRegistry()

        def explode(**kwargs):
            raise SolverDivergenceError("diverged")

        registry.register(Experiment("boom", "t", {}, explode))
        with pytest.raises(SolverDivergenceError):
            run_experiment("boom", strict=True, registry=registry)
        with pytest.raises(KeyError):
            run_experiment("missing", strict=True)
