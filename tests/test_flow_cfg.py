"""Tests for the CFG builder and forward-dataflow solver.

Golden edge lists pin the exact graph shape for the representative
constructs the RPL5xx/RPL6xx passes rely on (try/finally lowering,
loop back-edges, async-with, early returns).  The fuzz test then
checks the two structural invariants every pass assumes — all nodes
reachable from entry, fixpoint termination — over a few hundred
randomly generated (but seed-pinned) function bodies.
"""

import ast
import random
import textwrap

import pytest

from repro.checks.flow import (
    FixpointDiverged,
    ForwardAnalysis,
    GenKillAnalysis,
    build_cfg,
    function_cfgs,
)


def cfg_of(src, name="f"):
    func = ast.parse(textwrap.dedent(src)).body[0]
    return build_cfg(func, name)


class TestGoldenCFGs:
    def test_nested_try_finally(self):
        cfg = cfg_of("""
            def f(a):
                try:
                    try:
                        inner()
                    finally:
                        mid()
                finally:
                    outer()
                tail()
        """)
        assert cfg.edge_list() == [
            ("Expr@10", "next", "exit"),
            ("Expr@5", "exc", "finally@7"),
            ("Expr@5", "next", "finally@7"),
            # mid() runs under the inner finally; if *it* raises, or if
            # the frame is already unwinding, control continues into the
            # outer finally.  The unwind-continuation edge is "abrupt"
            # (post-state): mid()'s effects have happened by then.
            ("Expr@7", "abrupt", "finally@9"),
            ("Expr@7", "exc", "finally@9"),
            ("Expr@7", "next", "finally@9"),
            ("Expr@9", "abrupt", "exit"),
            ("Expr@9", "next", "Expr@10"),
            ("entry", "next", "Expr@5"),
            ("finally@7", "next", "Expr@7"),
            ("finally@9", "next", "Expr@9"),
        ]

    def test_loop_with_break(self):
        cfg = cfg_of("""
            def f(items):
                for item in items:
                    if item:
                        break
                    consume(item)
                tail()
        """)
        assert cfg.edge_list() == [
            ("Break@5", "next", "Expr@7"),
            ("Expr@6", "back", "For@3"),
            ("Expr@7", "next", "exit"),
            ("For@3", "false", "Expr@7"),
            ("For@3", "true", "If@4"),
            ("If@4", "false", "Expr@6"),
            ("If@4", "true", "Break@5"),
            ("entry", "next", "For@3"),
        ]

    def test_async_with(self):
        cfg = cfg_of("""
            async def f(lock):
                async with lock:
                    body()
                tail()
        """)
        assert cfg.edge_list() == [
            ("AsyncWith@3", "next", "Expr@4"),
            ("Expr@4", "next", "Expr@5"),
            ("Expr@5", "next", "exit"),
            ("entry", "next", "AsyncWith@3"),
        ]

    def test_early_return(self):
        cfg = cfg_of("""
            def f(a):
                if a:
                    return 1
                rest()
                return 2
        """)
        assert cfg.edge_list() == [
            ("Expr@5", "next", "Return@6"),
            ("If@3", "false", "Expr@5"),
            ("If@3", "true", "Return@4"),
            ("Return@4", "return", "exit"),
            ("Return@6", "return", "exit"),
            ("entry", "next", "If@3"),
        ]

    def test_try_except_exception_edge(self):
        cfg = cfg_of("""
            def f():
                try:
                    x = acquire()
                except OSError:
                    handle()
                tail()
        """)
        assert cfg.edge_list() == [
            ("Assign@4", "exc", "except@5"),
            ("Assign@4", "next", "Expr@7"),
            ("Expr@6", "next", "Expr@7"),
            ("Expr@7", "next", "exit"),
            ("entry", "next", "Assign@4"),
            ("except@5", "next", "Expr@6"),
        ]

    @pytest.mark.parametrize("src", [
        "def f(a):\n    try:\n        try:\n            inner()\n"
        "        finally:\n            mid()\n    finally:\n"
        "        outer()\n    tail()\n",
        "def f(items):\n    for item in items:\n        if item:\n"
        "            break\n        consume(item)\n    tail()\n",
        "async def f(lock):\n    async with lock:\n        body()\n"
        "    tail()\n",
        "def f(a):\n    if a:\n        return 1\n    rest()\n"
        "    return 2\n",
    ])
    def test_every_node_reachable(self, src):
        cfg = cfg_of(src)
        assert set(cfg.reachable()) == set(cfg.nodes)

    def test_dead_code_after_return_is_unreachable(self):
        cfg = cfg_of("""
            def f():
                return 1
                dead()
        """)
        labels = {cfg.nodes[n].label for n in cfg.reachable()}
        assert "Return@3" in labels
        assert "Expr@4" not in labels


class TestFunctionCFGs:
    def test_qualnames_and_async_flags(self):
        tree = ast.parse(textwrap.dedent("""
            class C:
                async def m(self):
                    await go()
            def top(a, b):
                pass
        """))
        fcs = {fc.qualname: fc for fc in function_cfgs(tree)}
        assert set(fcs) == {"C.m", "top"}
        assert fcs["C.m"].is_async and not fcs["top"].is_async
        assert fcs["C.m"].param_names() == ["self"]
        assert fcs["top"].param_names() == ["a", "b"]
        assert fcs["C.m"].cls is not None and fcs["top"].cls is None


class _BindTracker(GenKillAnalysis):
    """Toy analysis: fact 'x' after the statement that assigns x."""

    def __init__(self, cfg, var):
        super().__init__(cfg)
        self.var = var

    def gen(self, node):
        stmt = node.stmt
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == self.var
            for t in stmt.targets
        ):
            return frozenset({self.var})
        return frozenset()


class TestDataflow:
    def _labelled(self, cfg):
        return {cfg.nodes[nid].label: nid for nid in cfg.nodes}

    def test_exc_edge_carries_pre_state(self):
        # If `x = acquire()` raises, the binding never happened: the
        # handler must see the *pre*-state (no 'x'), while the fall-
        # through successor sees the post-state.
        cfg = cfg_of("""
            def f():
                try:
                    x = acquire()
                except OSError:
                    handle()
                tail()
        """)
        in_facts, out_facts = _BindTracker(cfg, "x").solve()
        ids = self._labelled(cfg)
        assert in_facts[ids["except@5"]] == frozenset()
        assert out_facts[ids["Assign@4"]] == frozenset({"x"})
        # join at tail(): may-union of handler path (no x) and normal
        # path (x) keeps the fact alive — "some path binds x".
        assert in_facts[ids["Expr@7"]] == frozenset({"x"})

    def test_may_vs_must_on_diamond(self):
        src = """
            def f(a):
                if a:
                    x = left()
                else:
                    y = right()
                join()
        """
        cfg = cfg_of(src)
        ids = self._labelled(cfg)

        class Diamond(GenKillAnalysis):
            def gen(self, node):
                stmt = node.stmt
                if isinstance(stmt, ast.Assign):
                    return frozenset({stmt.targets[0].id})
                return frozenset()

        may = Diamond(cfg)
        may.meet = "may"
        in_may, _ = may.solve()
        assert in_may[ids["Expr@7"]] == frozenset({"x", "y"})

        must = Diamond(cfg)
        must.meet = "must"
        in_must, _ = must.solve()
        assert in_must[ids["Expr@7"]] == frozenset()

    def test_unreachable_nodes_stay_top(self):
        cfg = cfg_of("""
            def f():
                return 1
                dead()
        """)
        in_facts, out_facts = GenKillAnalysis(cfg).solve()
        ids = self._labelled(cfg)
        assert in_facts[ids["Expr@4"]] is None
        assert out_facts[ids["Expr@4"]] is None

    def test_step_bound_raises_diverged(self):
        cfg = cfg_of("""
            def f(a):
                while a:
                    work()
                tail()
        """)
        with pytest.raises(FixpointDiverged):
            ForwardAnalysis(cfg).solve(max_steps=1)

    def test_loop_converges(self):
        cfg = cfg_of("""
            def f(items):
                acc = start()
                for item in items:
                    acc = step(acc, item)
                return acc
        """)
        in_facts, _ = _BindTracker(cfg, "acc").solve()
        assert in_facts[cfg.exit] == frozenset({"acc"})


# -- seeded fuzz --------------------------------------------------------------


def _gen_body(rng, depth, counter):
    """Random straight-line/structured statements, no abrupt exits.

    Break/continue/return/raise are excluded so that every generated
    node must be reachable from entry — the invariant under test.
    """
    kinds = ["assign", "call"]
    if depth > 0:
        kinds += ["if", "ifelse", "for", "while", "try", "tryfinally",
                  "with"]
    lines = []
    for _ in range(rng.randint(1, 3)):
        kind = rng.choice(kinds)
        v = f"v{next(counter)}"
        if kind == "assign":
            lines.append(f"{v} = work({v!r})")
        elif kind == "call":
            lines.append(f"use({v!r})")
        elif kind in ("if", "ifelse", "for", "while", "try",
                      "tryfinally", "with"):
            inner = _gen_body(rng, depth - 1, counter)
            if kind == "if":
                lines.append(f"if cond({v!r}):")
                lines += ["    " + ln for ln in inner]
            elif kind == "ifelse":
                lines.append(f"if cond({v!r}):")
                lines += ["    " + ln for ln in inner]
                lines.append("else:")
                lines += ["    " + ln
                          for ln in _gen_body(rng, depth - 1, counter)]
            elif kind == "for":
                lines.append(f"for {v} in items:")
                lines += ["    " + ln for ln in inner]
            elif kind == "while":
                lines.append(f"while cond({v!r}):")
                lines += ["    " + ln for ln in inner]
            elif kind == "try":
                lines.append("try:")
                lines += ["    " + ln for ln in inner]
                lines.append("except OSError:")
                lines += ["    " + ln
                          for ln in _gen_body(rng, depth - 1, counter)]
            elif kind == "tryfinally":
                lines.append("try:")
                lines += ["    " + ln for ln in inner]
                lines.append("finally:")
                lines += ["    " + ln
                          for ln in _gen_body(rng, depth - 1, counter)]
            elif kind == "with":
                lines.append(f"with ctx({v!r}) as {v}:")
                lines += ["    " + ln for ln in inner]
    return lines


class TestFuzz:
    def test_random_cfgs_reachable_and_convergent(self):
        import itertools

        rng = random.Random(0x3D57AC)
        for i in range(200):
            counter = itertools.count()
            body = _gen_body(rng, depth=3, counter=counter)
            src = "def f(items):\n" + "\n".join(
                "    " + ln for ln in body
            )
            try:
                func = ast.parse(src).body[0]
            except SyntaxError:  # pragma: no cover - generator bug
                pytest.fail(f"generator produced bad source:\n{src}")
            cfg = build_cfg(func, f"fuzz{i}")
            assert set(cfg.reachable()) == set(cfg.nodes), src
            # the solver must terminate and leave no reachable node TOP
            in_facts, _ = GenKillAnalysis(cfg).solve()
            assert all(
                in_facts[nid] is not None for nid in cfg.reachable()
            ), src
