"""Tests for the RPL6xx async/service-hygiene pass (flow-sensitive).

Fixtures distil the real service shapes: blocking calls reachable in
coroutines, jobstore state used stale across awaits, handler status
contracts, and exceptions escaping to an implicit 500.  The mutation
test injects a blocking call into the real server source and asserts
the pass catches it — the acceptance criterion for this family.
"""

import ast
import textwrap
from pathlib import Path

from repro.checks.diagnostics import PyFile
from repro.checks.engine import package_root, run_lint
from repro.checks.flow import asyncsafety

SRC = Path(package_root())


def pf_of(src, rel="service/server.py"):
    src = textwrap.dedent(src)
    return PyFile(rel=rel, module="fixture", tree=ast.parse(src),
                  lines=src.splitlines())


def codes(*pfs):
    return [d.code for d in asyncsafety.run(list(pfs))]


class TestRPL601BlockingInAsync:
    def test_time_sleep_in_coroutine(self):
        pf = pf_of("""
            import time, asyncio

            async def tick():
                await asyncio.sleep(0.1)
                time.sleep(0.2)
        """)
        assert codes(pf) == ["RPL601"]

    def test_asyncio_sleep_is_clean(self):
        pf = pf_of("""
            import asyncio

            async def tick():
                await asyncio.sleep(0.1)
        """)
        assert codes(pf) == []

    def test_unreachable_blocking_call_is_ignored(self):
        # dead code after return never executes; reachability matters
        pf = pf_of("""
            import time

            async def go():
                return 1
                time.sleep(5)
        """)
        assert codes(pf) == []

    def test_sync_helper_chain_is_traced(self):
        pf = pf_of("""
            import time

            def _spin():
                time.sleep(1.0)

            async def tick():
                _spin()
        """)
        diags = asyncsafety.run([pf])
        assert [d.code for d in diags] == ["RPL601"]
        assert "time.sleep" in diags[0].message

    def test_blocking_in_sync_function_is_fine(self):
        pf = pf_of("""
            import time

            def worker():
                time.sleep(1.0)
        """)
        assert codes(pf) == []


class TestRPL602StaleJobstoreState:
    def test_mutation_after_await_without_revalidation(self):
        # the pre-fix Service._process shape: park on the breaker,
        # then mark the job running with the pre-sleep snapshot
        pf = pf_of("""
            import asyncio

            class Svc:
                async def process(self, fp):
                    job = self.jobs.get(fp)
                    if job is None or job.state != "queued":
                        return
                    while not self.breaker.allow(self.now()):
                        await asyncio.sleep(0.05)
                    self.jobs.mark_running(job)
        """)
        assert codes(pf) == ["RPL602"]

    def test_revalidated_after_await_is_clean(self):
        pf = pf_of("""
            import asyncio

            class Svc:
                async def process(self, fp):
                    job = self.jobs.get(fp)
                    if job is None or job.state != "queued":
                        return
                    while not self.breaker.allow(self.now()):
                        await asyncio.sleep(0.05)
                    if job.state != "queued":
                        return
                    self.jobs.mark_running(job)
        """)
        assert codes(pf) == []

    def test_get_or_create_tuple_binding_is_tracked(self):
        pf = pf_of("""
            import asyncio

            class Svc:
                async def submit(self, fp, payload):
                    job, created = self.jobs.get_or_create(fp, payload)
                    await self.queue.put(fp)
                    self.jobs.mark_requeued(job)
        """)
        assert codes(pf) == ["RPL602"]

    def test_state_read_counts_as_revalidation(self):
        pf = pf_of("""
            import asyncio

            class Svc:
                async def submit(self, fp, payload):
                    job = self.jobs.get(fp)
                    await self.queue.put(fp)
                    if job.state == "queued":
                        self.jobs.mark_requeued(job)
        """)
        assert codes(pf) == []

    def test_mutation_before_any_await_is_clean(self):
        pf = pf_of("""
            class Svc:
                async def submit(self, fp, payload):
                    job = self.jobs.get(fp)
                    self.jobs.mark_requeued(job)
                    await self.queue.put(fp)
        """)
        assert codes(pf) == []


class TestRPL603StatusContract:
    def test_unpinned_literal_status(self):
        pf = pf_of("""
            from repro.service.middleware import Request, Response

            def handle_x(app, request, now):
                if bad(request):
                    return Response(500, {"error": "boom"})
                return Response(200, {})
        """, rel="service/handlers.py")
        assert codes(pf) == ["RPL603"]

    def test_pinned_statuses_are_clean(self):
        pf = pf_of("""
            from repro.service.middleware import Request, Response

            def handle_x(app, request, now):
                if bad(request):
                    return Response(400, {"error": "bad"})
                if missing(request):
                    return Response(404, {})
                return Response(200, {})
        """, rel="service/handlers.py")
        assert codes(pf) == []

    def test_non_literal_status_is_flagged(self):
        pf = pf_of("""
            from repro.service.middleware import Response

            def handle_x(app, request, now):
                code = pick()
                return Response(code, {})
        """, rel="service/handlers.py")
        assert codes(pf) == ["RPL603"]

    def test_forwarder_checked_at_call_sites(self):
        shed = textwrap.dedent("""
            from repro.service.middleware import Request, Response

            def _shed(status, why):
                return Response(status, {"error": why})

            def handle_x(app, request, now):
                if busy(app):
                    return _shed(STATUS, "busy")
                return Response(200, {})
        """)
        clean = pf_of(shed.replace("STATUS", "503"),
                      rel="service/handlers.py")
        assert codes(clean) == []
        bad = pf_of(shed.replace("STATUS", "500"),
                    rel="service/handlers.py")
        assert codes(bad) == ["RPL603"]

    def test_handler_returning_non_response(self):
        pf = pf_of("""
            from repro.service.middleware import Response

            def handle_x(app, request, now):
                return {"ok": True}
        """, rel="service/handlers.py")
        assert codes(pf) == ["RPL603"]


class TestRPL604EscapingExceptions:
    def test_helper_escape_reaches_handler(self):
        pf = pf_of("""
            from repro.service.middleware import Response

            def _parse(request):
                if not request:
                    raise ValueError("bad")
                return request

            def handle_x(app, request, now):
                sub = _parse(request)
                return Response(200, sub)
        """, rel="service/handlers.py")
        assert codes(pf) == ["RPL604"]

    def test_caught_escape_is_clean(self):
        pf = pf_of("""
            from repro.service.middleware import Response

            def _parse(request):
                if not request:
                    raise ValueError("bad")
                return request

            def handle_x(app, request, now):
                try:
                    sub = _parse(request)
                except ValueError as exc:
                    return Response(400, {"error": str(exc)})
                return Response(200, sub)
        """, rel="service/handlers.py")
        assert codes(pf) == []

    def test_direct_raise_in_handler(self):
        pf = pf_of("""
            from repro.service.middleware import Response

            def handle_x(app, request, now):
                if not request:
                    raise ValueError("bad")
                return Response(200, {})
        """, rel="service/handlers.py")
        assert codes(pf) == ["RPL604"]


class TestMutationOnRealServer:
    """Acceptance: an injected blocking call in the real server source
    is caught by RPL601."""

    def test_injected_time_sleep_is_caught(self):
        text = (SRC / "service" / "server.py").read_text()
        anchor = "        self.jobs.mark_running(job)\n"
        assert anchor in text, "server dispatch moved; update test"
        mutant_text = text.replace(
            anchor, "        time.sleep(0.05)\n" + anchor, 1
        )
        mutant = PyFile(rel="service/server.py", module="mutant",
                        tree=ast.parse(mutant_text),
                        lines=mutant_text.splitlines())
        found = [d for d in asyncsafety.run([mutant])
                 if d.code == "RPL601"]
        assert found, "injected blocking call went undetected"


class TestRealTreeAndExplanations:
    def test_shipped_service_is_clean(self):
        report = run_lint(select=["RPL6"], baseline_path=None)
        assert [d.render() for d in report.diagnostics] == []

    def test_explanations_cover_all_rpl6_codes(self):
        assert set(asyncsafety.EXPLANATIONS) == {
            "RPL601", "RPL602", "RPL603", "RPL604",
        }
        for code, exp in asyncsafety.EXPLANATIONS.items():
            rendered = exp.render()
            assert code in rendered
            assert "why:" in rendered
            assert "example violation:" in rendered
            assert "fix pattern:" in rendered


class TestEngineExplain:
    def test_every_registered_code_has_an_explanation(self):
        from repro.checks.diagnostics import CODES
        from repro.checks.engine import explain

        for code in CODES:
            exp = explain(code)
            assert exp is not None, f"no explanation for {code}"
            assert exp.code == code
            assert exp.title and exp.rationale and exp.fix

    def test_unknown_code_returns_none(self):
        from repro.checks.engine import explain

        assert explain("RPL999") is None
