"""Unit tests for the oracle subsystem: config, scoreboard, invariants.

Everything here is pure (no engines): the per-engine integration tests
live in ``test_oracles_replay.py`` / ``test_oracles_thermal.py``.
"""

import numpy as np
import pytest

from repro.oracles.config import (
    MODES,
    OracleConfig,
    get_oracle_config,
    oracle_mode,
    set_oracle_mode,
)
from repro.oracles.integrity import (
    attach_crc,
    crc32_of_arrays,
    journal_line_crc,
    sha256_hex,
    verify_entry_crc,
)
from repro.oracles.invariants import (
    CPMA_BANDS,
    DEFAULT_CPMA_BAND,
    TEMP_MAX_C,
    check_cache_sets,
    check_counter_deltas,
    check_cpi_band,
    check_cpma_band,
    check_energy_conservation,
    check_rob_occupancy,
    check_temperature_bounds,
)
from repro.oracles.report import (
    oracle_report,
    record_check,
    record_violation,
    reset_oracles,
)


@pytest.fixture(autouse=True)
def _clean_oracles():
    previous = get_oracle_config()
    reset_oracles()
    yield
    set_oracle_mode(previous)
    reset_oracles()


class TestOracleConfig:
    def test_default_mode_is_sample(self):
        assert OracleConfig().mode == "sample"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown oracle mode"):
            OracleConfig(mode="paranoid")

    def test_positive_knobs_enforced(self):
        with pytest.raises(ValueError, match="positive"):
            OracleConfig(replay_chunk=0)
        with pytest.raises(ValueError, match="positive"):
            OracleConfig(sample_stride=-1)

    def test_enabled_and_strict_flags(self):
        assert not OracleConfig(mode="off").enabled
        assert OracleConfig(mode="sample").enabled
        assert OracleConfig(mode="strict").enabled
        assert OracleConfig(mode="strict").strict
        assert not OracleConfig(mode="sample").strict

    @pytest.mark.parametrize("mode", MODES)
    def test_should_sample(self, mode):
        cfg = OracleConfig(mode=mode, sample_stride=8)
        picks = [i for i in range(20) if cfg.should_sample(i)]
        if mode == "off":
            assert picks == []
        elif mode == "strict":
            assert picks == list(range(20))
        else:
            assert picks == [0, 8, 16]

    def test_context_manager_restores_previous_mode(self):
        set_oracle_mode("off")
        with oracle_mode("strict") as cfg:
            assert cfg.strict
            assert get_oracle_config().strict
        assert get_oracle_config().mode == "off"

    def test_set_mode_accepts_full_config(self):
        installed = set_oracle_mode(OracleConfig(mode="strict", sample_stride=2))
        assert installed is get_oracle_config()
        assert get_oracle_config().sample_stride == 2


class TestScoreboard:
    def test_checks_and_violations_accumulate(self):
        record_check("thermal.bounds", n=3)
        record_check("memsim.replay-chunk")
        record_violation("thermal.bounds", "thermal", "too hot", "degraded")
        report = oracle_report()
        assert report.checks == {"thermal.bounds": 3, "memsim.replay-chunk": 1}
        assert report.total_checks == 4
        assert not report.clean
        [violation] = report.violations
        assert violation.engine == "thermal"
        assert violation.action == "degraded"

    def test_reset_clears_everything(self):
        record_check("x")
        record_violation("x", "memsim", "boom")
        reset_oracles()
        report = oracle_report()
        assert report.total_checks == 0
        assert report.clean

    def test_to_dict_is_json_shaped(self):
        record_check("x")
        record_violation("x", "uarch", "detail", "fallback")
        payload = oracle_report().to_dict()
        assert payload["total_checks"] == 1
        assert payload["violations"][0]["oracle"] == "x"
        assert payload["violations"][0]["action"] == "fallback"


class TestInvariants:
    def test_ceiling_matches_resilience_guard(self):
        # TEMP_MAX_C is duplicated (not imported) to keep the oracles
        # package import-free; this pins the two constants together.
        from repro.resilience import guards

        assert TEMP_MAX_C == guards.TEMP_MAX_C

    def test_energy_conservation(self):
        assert check_energy_conservation(100.0, 100.0) == []
        assert check_energy_conservation(100.0, 100.01, rtol=1e-5)
        assert check_energy_conservation(100.0, 100.01, rtol=1e-3) == []

    def test_temperature_bounds(self):
        assert check_temperature_bounds(45.0, 90.0, ambient_c=45.0) == []
        assert check_temperature_bounds(30.0, 90.0, ambient_c=45.0)
        assert check_temperature_bounds(45.0, TEMP_MAX_C + 1, ambient_c=45.0)
        [problem] = check_temperature_bounds(float("nan"), 90.0, 45.0)
        assert "NaN" in problem

    def test_cache_sets(self):
        ok = [{1: True, 2: True}, {}]
        assert check_cache_sets(ok, assoc=2, name="l1") == []
        [problem] = check_cache_sets(
            [{1: True, 2: True, 3: True}], assoc=2, name="l1"
        )
        assert "associativity 2" in problem

    def test_counter_deltas(self):
        assert check_counter_deltas({"hits": 5}, {"hits": 5}) == []
        assert check_counter_deltas({"hits": 5}, {"hits": 9}) == []
        [problem] = check_counter_deltas({"hits": 5}, {"hits": 4})
        assert "went backwards" in problem

    def test_rob_occupancy(self):
        assert check_rob_occupancy([0, 64], window=64) == []
        assert check_rob_occupancy([65], window=64)
        assert check_rob_occupancy([-1], window=64)

    def test_cpi_band(self):
        assert check_cpi_band(1.5, width=4) == []
        assert check_cpi_band(4.5, width=4)
        assert check_cpi_band(0.0, width=4)
        assert check_cpi_band(float("nan"), width=4)

    def test_cpma_band_known_and_fallback(self):
        lo, hi = CPMA_BANDS["svd"]
        assert check_cpma_band("svd", (lo + hi) / 2) == []
        assert check_cpma_band("svd", hi * 2)
        lo, hi = DEFAULT_CPMA_BAND
        assert check_cpma_band("not-a-kernel", (lo + hi) / 2) == []
        assert check_cpma_band("not-a-kernel", hi * 2)


class TestIntegrityHelpers:
    def test_sha256_hex(self):
        assert sha256_hex(b"") == (
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_crc32_of_arrays_sensitive_to_flips(self):
        a = np.arange(16, dtype=np.float64)
        before = crc32_of_arrays([a, None])
        a.view(np.uint8)[3] ^= 0x10
        assert crc32_of_arrays([a, None]) != before

    def test_entry_crc_round_trip(self):
        entry = attach_crc({"task_id": "t", "status": "ok", "result": {"x": 1}})
        assert verify_entry_crc(entry)
        assert len(entry["crc"]) == 8

    def test_entry_crc_detects_tamper(self):
        entry = attach_crc({"task_id": "t", "status": "ok"})
        tampered = dict(entry, status="error")
        assert not verify_entry_crc(tampered)

    def test_crc_is_stable_across_key_order(self):
        a = journal_line_crc({"b": 2, "a": 1})
        b = journal_line_crc({"a": 1, "b": 2})
        assert a == b
