"""Tests for the append-only campaign journal and task model."""

import json

import pytest

from repro.core.experiments import task_fingerprint
from repro.runner.journal import (
    Journal,
    completed_fingerprints,
    make_entry,
    read_journal,
)
from repro.runner.tasks import CampaignTask, select_tasks


def _entry(task_id="t1", status="ok", attempt=0, **overrides):
    base = dict(
        task_id=task_id,
        experiment_id=task_id,
        fingerprint=task_fingerprint(task_id, {}, None),
        status=status,
        attempt=attempt,
        final=True,
    )
    base.update(overrides)
    return make_entry(**base)


class TestJournalRoundTrip:
    def test_append_then_read(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.append(_entry("a"))
            journal.append(_entry("b", status="crash"))
        entries, torn = read_journal(path)
        assert torn == 0
        assert [e["task_id"] for e in entries] == ["a", "b"]
        assert entries[1]["status"] == "crash"

    def test_missing_journal_is_empty(self, tmp_path):
        entries, torn = read_journal(tmp_path / "nope.jsonl")
        assert entries == [] and torn == 0

    def test_unknown_status_rejected(self):
        with pytest.raises(ValueError, match="unknown journal status"):
            _entry(status="exploded")

    def test_torn_trailing_line_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.append(_entry("a"))
            journal.append(_entry("b"))
        # Simulate a kill mid-append: truncate inside the last line.
        raw = path.read_bytes()
        path.write_bytes(raw[:-15])
        entries, torn = read_journal(path)
        assert [e["task_id"] for e in entries] == ["a"]
        assert torn == 1

    def test_foreign_lines_counted_not_fatal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            json.dumps({"not": "ours"}) + "\n"
            + json.dumps(_entry("good")) + "\n"
            + "complete garbage\n"
        )
        entries, torn = read_journal(path)
        assert len(entries) == 1 and entries[0]["task_id"] == "good"
        assert torn == 2

    def test_future_version_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        future = dict(_entry("future"), v=99)
        path.write_text(json.dumps(future) + "\n")
        entries, torn = read_journal(path)
        assert entries == [] and torn == 1


class TestTornTailRepair:
    """A run killed mid-write leaves a torn final line; the next run's
    appends must not be welded onto it (the bug: the merged line parsed
    as neither record, so the NEW entry silently vanished too)."""

    def test_append_after_torn_tail_preserves_new_entry(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.append(_entry("a"))
            journal.append(_entry("b"))
        raw = path.read_bytes()
        path.write_bytes(raw[:-15])  # kill mid-append of "b"
        with Journal(path) as journal:
            journal.append(_entry("c"))
        entries, torn = read_journal(path)
        assert [e["task_id"] for e in entries] == ["a", "c"]
        assert torn == 1

    def test_truncation_at_every_byte_offset(self, tmp_path):
        """For any kill point, a resumed append loses at most the one
        torn record — never the resumed run's own entries."""
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.append(_entry("a"))
            journal.append(_entry("b"))
            journal.append(_entry("c"))
        raw = path.read_bytes()
        first_len = raw.index(b"\n") + 1
        for cut in range(first_len, len(raw) + 1):
            path.write_bytes(raw[:cut])
            with Journal(path) as journal:
                journal.append(_entry("resumed"))
            entries, torn = read_journal(path)
            ids = [e["task_id"] for e in entries]
            assert ids[0] == "a", f"cut at {cut} lost an intact record"
            assert ids[-1] == "resumed", f"cut at {cut} lost the new entry"
            assert torn <= 1, f"cut at {cut} produced {torn} torn lines"

    def test_missing_final_newline_is_a_complete_record(self, tmp_path):
        """Truncating ONLY the trailing newline leaves a parseable record:
        the repair terminates it instead of sacrificing it."""
        path = tmp_path / "j.jsonl"
        fp = task_fingerprint("b", {}, None)
        with Journal(path) as journal:
            journal.append(_entry("a"))
            journal.append(_entry("b", fingerprint=fp))
        raw = path.read_bytes()
        path.write_bytes(raw[:-1])  # drop just the "\n"
        with Journal(path) as journal:
            journal.append(_entry("c"))
        entries, torn = read_journal(path)
        assert [e["task_id"] for e in entries] == ["a", "b", "c"]
        assert torn == 0
        assert fp in completed_fingerprints(entries)

    def test_repair_leaves_empty_and_missing_files_alone(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_bytes(b"")
        with Journal(empty) as journal:
            journal.append(_entry("a"))
        entries, torn = read_journal(empty)
        assert [e["task_id"] for e in entries] == ["a"] and torn == 0

        fresh = tmp_path / "sub" / "fresh.jsonl"
        with Journal(fresh) as journal:
            journal.append(_entry("a"))
        entries, torn = read_journal(fresh)
        assert [e["task_id"] for e in entries] == ["a"] and torn == 0


class TestResumeSemantics:
    def test_completed_keeps_only_ok(self):
        fp_ok = task_fingerprint("a", {}, 1)
        fp_bad = task_fingerprint("b", {}, 2)
        entries = [
            _entry("a", fingerprint=fp_ok, seed=1),
            _entry("b", status="timeout", fingerprint=fp_bad, seed=2),
        ]
        done = completed_fingerprints(entries)
        assert set(done) == {fp_ok}

    def test_failure_then_success_resumes_as_done(self):
        fp = task_fingerprint("a", {}, None)
        entries = [
            _entry("a", status="crash", fingerprint=fp),
            _entry("a", status="ok", attempt=1, fingerprint=fp),
        ]
        assert set(completed_fingerprints(entries)) == {fp}


class TestTaskModel:
    def test_fingerprint_depends_on_kwargs_and_seed(self):
        base = CampaignTask("t", "figure-6")
        assert base.fingerprint == task_fingerprint("figure-6", {}, None)
        assert (CampaignTask("t", "figure-6", kwargs={"nx": 8}).fingerprint
                != base.fingerprint)
        assert (CampaignTask("t", "figure-6", seed=7).fingerprint
                != base.fingerprint)

    def test_fingerprint_ignores_kwarg_order(self):
        a = task_fingerprint("x", {"nx": 8, "scale": 2}, 0)
        b = task_fingerprint("x", {"scale": 2, "nx": 8}, 0)
        assert a == b

    def test_select_tasks_glob_and_seeds(self):
        tasks = select_tasks(["figure-*"], seed=100)
        ids = [t.experiment_id for t in tasks]
        assert ids == ["figure-3", "figure-5", "figure-6", "figure-8",
                       "figure-11"]
        assert [t.seed for t in tasks] == [100, 101, 102, 103, 104]

    def test_select_tasks_default_selects_all(self):
        from repro.core.experiments import list_experiments

        tasks = select_tasks([])
        assert [t.experiment_id for t in tasks] == list_experiments()
        assert all(t.seed is None for t in tasks)

    def test_select_tasks_rejects_unmatched_pattern(self):
        with pytest.raises(ValueError, match="matches no experiment"):
            select_tasks(["figure-99*"])

    def test_spec_is_json_round_trippable(self):
        task = CampaignTask("t", "table-4", kwargs={"nx": 8}, seed=3)
        spec = json.loads(json.dumps(task.to_spec()))
        assert spec["experiment_id"] == "table-4"
        assert spec["fingerprint"] == task.fingerprint
