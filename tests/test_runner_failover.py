"""Failover acceptance tests for the subprocess executor backends.

The issue's acceptance bar, verified per backend: killing any single
executor mid-campaign yields a degraded-but-complete report, and a
follow-up ``--resume`` re-runs only the non-``ok`` fingerprints with
results bit-identical to an unfaulted run.  ``nodes:N`` gets both an
injected executor crash and a genuine ``SIGKILL`` of a node process
discovered at runtime — no cooperation from the victim.
"""

import json
import os
import signal
import threading
import time

import pytest

from repro.resilience.faults import FaultInjector
from repro.runner.backends.nodes import NodesBackend
from repro.runner.supervisor import (
    CampaignConfig,
    RetryPolicy,
    run_campaign,
)
from repro.runner.tasks import CampaignTask

from tests.campaign_fixtures import FAST_REGISTRY_SPEC

FAST_RETRY = RetryPolicy(max_retries=1, backoff_base_s=0.05)


def _task(task_id, experiment_id="quick", **kwargs):
    return CampaignTask(
        task_id=task_id,
        experiment_id=experiment_id,
        kwargs=kwargs,
        seed=7,
        registry_spec=FAST_REGISTRY_SPEC,
    )


def _result_map(report):
    """task_id -> canonical JSON of its result (bit-identity probe)."""
    return {
        t["task_id"]: json.dumps(t["result"], sort_keys=True)
        for t in report.tasks
    }


def _config(journal, **overrides):
    base = dict(
        workers=1,
        task_timeout_s=30.0,
        retry=FAST_RETRY,
        journal_path=str(journal),
        poll_interval_s=0.01,
    )
    base.update(overrides)
    return CampaignConfig(**base)


@pytest.fixture(scope="module")
def clean_reference(tmp_path_factory):
    """Unfaulted local run of the shared task set: the bit-identity bar."""
    tasks = [_task(f"t{i}", value=i) for i in range(4)]
    journal = tmp_path_factory.mktemp("reference") / "j.jsonl"
    report = run_campaign(tasks, _config(journal, workers=4))
    assert report.counts["failed"] == 0
    return tasks, _result_map(report)


class TestLocalBackendFailover:
    def test_worker_chaos_then_resume_bit_identical(
        self, tmp_path, clean_reference
    ):
        tasks, reference = clean_reference
        journal = tmp_path / "j.jsonl"
        injector = FaultInjector(forced_failures={
            "worker-crash:t1": -1,   # crash on every attempt
            "worker-stall:t2": 1,    # stall once, then recover
        })
        faulted = run_campaign(tasks, _config(
            journal, workers=4, injector=injector,
            heartbeat_every_s=0.1, heartbeat_timeout_s=1.0,
        ))
        assert faulted.degraded
        assert faulted.counts["failed"] == 1  # only the always-crasher

        resumed = run_campaign(
            tasks, _config(journal, workers=4, resume=True)
        )
        assert resumed.counts["failed"] == 0
        assert resumed.resumed_ok == 3  # only t1 re-ran
        assert _result_map(resumed) == reference


class TestNodesBackendFailover:
    def test_injected_executor_crash_steals_and_resumes(
        self, tmp_path, clean_reference
    ):
        tasks, reference = clean_reference
        journal = tmp_path / "j.jsonl"
        injector = FaultInjector(forced_failures={"executor-crash": 1})
        faulted = run_campaign(tasks, _config(
            journal, backend="nodes:2", workers=2, injector=injector,
            lease_ttl_s=5.0,
        ))
        # Degraded-but-complete: the dead node's work was stolen.
        assert faulted.executors_lost == 1
        assert faulted.degraded
        assert faulted.counts["ok"] + faulted.counts["failed"] == 4
        assert faulted.leases_reclaimed >= 1

        resumed = run_campaign(
            tasks, _config(journal, backend="nodes:2", workers=2,
                           resume=True)
        )
        assert resumed.counts["failed"] == 0
        assert not resumed.degraded
        assert _result_map(resumed) == reference

    def test_sigkill_node_mid_campaign(self, tmp_path, clean_reference):
        """A genuine kill -9, aimed at a node that holds leases."""
        _tasks, reference = clean_reference
        # The quick tasks carry the bit-identity check (same
        # experiment/kwargs/seed as the reference set); two slow decoys
        # with distinct kwargs widen the window for killing a node that
        # is mid-task.
        tasks = [_task(f"t{i}", value=i) for i in range(4)] + [
            _task(f"slow{i}", "slow", sleep_s=1.5 + 0.1 * i)
            for i in range(2)
        ]
        journal = tmp_path / "j.jsonl"
        config = _config(
            journal, backend="nodes:2", workers=1,
            scratch_dir=str(tmp_path / "scratch"),
            heartbeat_every_s=0.1, lease_ttl_s=10.0,
        )
        backend = NodesBackend(config, n_nodes=2)
        done = {}

        def campaign():
            done["report"] = run_campaign(tasks, config, backend=backend)

        runner = threading.Thread(target=campaign)
        runner.start()
        # Wait until some node actually holds in-flight work, then
        # SIGKILL that node — the scheduler only learns via socket EOF.
        victim_pid = None
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline and victim_pid is None:
            for state in backend._nodes.values():
                if not state.dead and state.outstanding > 0 and state.pid:
                    victim_pid = state.pid
                    break
            time.sleep(0.02)
        assert victim_pid is not None, "no node ever took work"
        os.kill(victim_pid, signal.SIGKILL)
        runner.join(timeout=120.0)
        assert not runner.is_alive()
        report = done["report"]

        assert report.executors_lost == 1
        assert report.degraded  # executor loss degrades, by contract
        assert report.counts["ok"] + report.counts["failed"] == 6
        # The survivor finished the campaign alone.
        survivors = [
            executor for executor, tallies in report.per_executor.items()
            if tallies.get("ok")
        ]
        assert survivors

        resumed = run_campaign(tasks, _config(
            journal, backend="nodes:2", workers=2, resume=True,
        ))
        assert resumed.counts["failed"] == 0
        assert not resumed.degraded
        resumed_map = _result_map(resumed)
        # Bit-identical to the unfaulted reference on the shared tasks.
        for task_id, expected in reference.items():
            assert resumed_map[task_id] == expected
