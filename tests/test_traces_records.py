"""Tests for trace records, file I/O, and dependency tracking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces.deps import DependencyTracker
from repro.traces.record import (
    AccessType,
    NO_DEP,
    TraceRecord,
    read_trace,
    validate_trace,
    write_trace,
)


def record(uid=0, cpu=0, kind=AccessType.LOAD, address=0x1000, ip=0x400000,
           dep=NO_DEP):
    return TraceRecord(uid, cpu, kind, address, ip, dep)


class TestTraceRecord:
    def test_basic_fields(self):
        r = record(uid=5, cpu=1, address=0xdeadbeef)
        assert r.uid == 5
        assert r.cpu == 1
        assert r.address == 0xdeadbeef
        assert r.is_load
        assert not r.has_dependency

    def test_store_kind(self):
        r = record(kind=AccessType.STORE)
        assert not r.is_load

    def test_dependency_must_be_earlier(self):
        with pytest.raises(ValueError, match="earlier"):
            record(uid=3, dep=3)
        with pytest.raises(ValueError, match="earlier"):
            record(uid=3, dep=7)

    def test_valid_dependency(self):
        r = record(uid=3, dep=1)
        assert r.has_dependency
        assert r.dep_uid == 1

    def test_rejects_negative_uid(self):
        with pytest.raises(ValueError):
            record(uid=-1)

    def test_rejects_negative_address(self):
        with pytest.raises(ValueError):
            record(address=-4)


class TestTraceIO:
    def test_roundtrip(self, tmp_path):
        records = [
            record(uid=0, address=0x1000),
            record(uid=1, cpu=1, kind=AccessType.STORE, address=0x2040),
            record(uid=2, dep=0, address=0x3000),
        ]
        path = tmp_path / "trace.txt"
        count = write_trace(records, path)
        assert count == 3
        loaded = list(read_trace(path))
        assert loaded == records

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2 3\n")
        with pytest.raises(ValueError, match="malformed"):
            list(read_trace(path))

    def test_validate_trace_accepts_good(self):
        records = [record(uid=0), record(uid=1, dep=0), record(uid=5, dep=1)]
        validate_trace(records)  # no exception

    def test_validate_trace_rejects_nonincreasing_uid(self):
        with pytest.raises(ValueError, match="increase"):
            validate_trace([record(uid=1), record(uid=1)])

    def test_validate_trace_rejects_missing_dep(self):
        with pytest.raises(ValueError, match="missing"):
            validate_trace([record(uid=0), record(uid=2, dep=1)])

    @given(
        addresses=st.lists(
            st.integers(min_value=0, max_value=2**48), min_size=1, max_size=50
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, tmp_path_factory, addresses):
        records = [record(uid=i, address=a) for i, a in enumerate(addresses)]
        path = tmp_path_factory.mktemp("traces") / "t.txt"
        write_trace(records, path)
        assert list(read_trace(path)) == records


class TestDependencyTracker:
    def test_unknown_register_has_no_dep(self):
        tracker = DependencyTracker()
        assert tracker.dependency_on("r1") == NO_DEP
        assert tracker.dependency_on(None) == NO_DEP

    def test_produce_then_consume(self):
        tracker = DependencyTracker()
        tracker.produce("addr", 7)
        assert tracker.dependency_on("addr") == 7

    def test_latest_producer_wins(self):
        tracker = DependencyTracker()
        tracker.produce("addr", 7)
        tracker.produce("addr", 9)
        assert tracker.dependency_on("addr") == 9

    def test_clear_register(self):
        tracker = DependencyTracker()
        tracker.produce("addr", 7)
        tracker.clear("addr")
        assert tracker.dependency_on("addr") == NO_DEP

    def test_clear_unknown_is_noop(self):
        DependencyTracker().clear("ghost")

    def test_reset(self):
        tracker = DependencyTracker()
        tracker.produce("a", 1)
        tracker.produce("b", 2)
        tracker.reset()
        assert tracker.dependency_on("a") == NO_DEP
        assert tracker.dependency_on("b") == NO_DEP

    def test_rejects_negative_uid(self):
        with pytest.raises(ValueError):
            DependencyTracker().produce("r", -1)
