"""Deterministic-simulation harness: clocks, schedules, histories.

The properties that make DST trustworthy as a testing instrument:
schedules derive from seeds alone, events fire exactly once, a whole
history is bit-reproducible (journal bytes and normalized report hash
to the same digests on every run), crash/restart happens *inside* a
history, and the committed known-good artifact replays identically —
the ``repro dst --replay`` smoke contract.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.dst import (
    FaultEvent,
    FaultSchedule,
    generate_schedule,
    load_artifact,
    replay,
    run_history,
    save_artifact,
)
from repro.dst.clock import SimClock
from repro.dst.fabric import SimCrash, SimWorld
from repro.dst.harness import SimJournal, explore
from repro.dst.workload import expected_result, make_tasks
from repro.oracles.protocol import (
    breaker_transition_problems,
    journal_protocol_problems,
    report_conservation_problems,
)
from repro.runner.journal import scan_journal

KNOWN_GOOD = "tests/data/dst_known_good.json"


class TestSimClock:
    def test_virtual_time_only_moves_when_told(self):
        clock = SimClock()
        assert clock.monotonic() == 0.0
        clock.advance(1.5)
        clock.sleep(0.25)
        assert clock.monotonic() == pytest.approx(1.75)
        assert clock.sleeps == 1

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)

    def test_never_touches_wall_clock(self):
        # The whole point: importing the sim clock must not drag in the
        # host's time module (RPL103 wall-clock lint enforces this too).
        import repro.dst.clock as clock_mod

        assert "time" not in vars(clock_mod)


class TestFaultSchedule:
    def test_same_seed_same_schedule(self):
        a = generate_schedule(11, "quick")
        b = generate_schedule(11, "quick")
        assert [e.to_dict() for e in a.events] == [
            e.to_dict() for e in b.events
        ]

    def test_different_seeds_eventually_differ(self):
        base = [e.to_dict() for e in generate_schedule(11, "quick").events]
        assert any(
            [e.to_dict() for e in generate_schedule(s, "quick").events]
            != base
            for s in range(12, 20)
        )

    def test_events_fire_at_most_once(self):
        schedule = FaultSchedule([FaultEvent(5, "executor:0", "crash")])
        assert schedule.fire("executor:0", 4) == []
        assert len(schedule.fire("executor:0", 5)) == 1
        assert schedule.fire("executor:0", 99) == []
        schedule.reset()
        assert len(schedule.fire("executor:0", 5)) == 1

    def test_late_delivery_never_drops(self):
        # A site that skips past the armed step still receives the
        # event at its next occurrence — shrinking cannot hide faults
        # by shifting counters.
        schedule = FaultSchedule([FaultEvent(3, "clock", "clock-jump", 2.0)])
        assert len(schedule.fire("clock", 40)) == 1
        assert schedule.pending() == []

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown DST profile"):
            generate_schedule(0, "nope")

    def test_artifact_round_trip(self, tmp_path):
        schedule = generate_schedule(7, "quick")
        path = save_artifact(tmp_path / "a.json", 7, schedule,
                             violations=["x"])
        loaded = load_artifact(path)
        assert loaded["seed"] == 7 and loaded["violations"] == ["x"]
        assert [e.to_dict() for e in loaded["schedule"].events] == [
            e.to_dict() for e in schedule.events
        ]

    def test_artifact_version_gate(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"version": 99, "seed": 1, "events": []}))
        with pytest.raises(ValueError, match="version"):
            load_artifact(path)


class TestHistories:
    def test_clean_seed_batch(self):
        for seed in range(10):
            history = run_history(seed)
            assert history.ok, (
                f"seed {seed} violated on main: {history.violations}"
            )

    def test_bit_identical_across_runs(self):
        a = run_history(7)
        b = run_history(7)
        assert a.journal_sha == b.journal_sha != "missing"
        assert a.report_sha == b.report_sha != ""
        assert a.violations == b.violations == []

    def test_crash_restart_inside_history(self):
        # Seed 26's schedule tears journal append 3, killing the
        # simulated process; the harness resumes and the history still
        # converges with every invariant intact.
        history = run_history(26)
        assert history.crashes == 1
        assert history.ok, history.violations
        assert any("torn journal write" in line
                   for line in history.events_log)

    def test_workload_results_are_pure(self):
        for task in make_tasks(4, seed=3):
            expected = expected_result(task.experiment_id, task.kwargs)
            assert expected == expected_result(
                task.experiment_id, task.kwargs
            )
            assert set(expected) == {"value", "tag"}

    def test_explore_reports_clean_batch(self):
        outcome = explore(3, seed_base=0)
        assert outcome["ok"] is True
        assert outcome["explored"] == 3
        assert outcome["failing_seed"] is None


class TestSimJournalTornWrite:
    def test_due_event_tears_line_and_crashes(self, tmp_path):
        schedule = FaultSchedule(
            [FaultEvent(1, "journal", "torn-write", 0.5)]
        )
        world = SimWorld(0, schedule, SimClock())
        path = tmp_path / "j.jsonl"
        journal = SimJournal(path, world)
        entry = {"fingerprint": "ab" * 32, "status": "ok", "final": True}
        journal.append(dict(entry))  # append 0: clean
        with pytest.raises(SimCrash):
            journal.append(dict(entry))  # append 1: torn mid-line
        entries, torn, crc_failed = scan_journal(path)
        assert (len(entries), torn, crc_failed) == (1, 1, 0)


class TestProtocolPredicates:
    def _ok(self, fp, epoch, **extra):
        return {"fingerprint": fp, "status": "ok", "final": True,
                "lease_epoch": epoch, **extra}

    def test_double_count_flagged(self):
        fp = "aa" * 32
        problems = journal_protocol_problems(
            [self._ok(fp, 1), self._ok(fp, 2)]
        )
        assert any("double-counted" in p for p in problems)

    def test_zombie_write_behind_fence_flagged(self):
        fp = "bb" * 32
        entries = [
            {"fingerprint": fp, "status": "executor-lost",
             "lease_epoch": 2, "final": False},
            self._ok(fp, 1),
        ]
        problems = journal_protocol_problems(entries)
        assert any("zombie write" in p for p in problems)

    def test_fenced_audit_line_is_legal(self):
        fp = "cc" * 32
        entries = [
            {"fingerprint": fp, "status": "executor-lost",
             "lease_epoch": 1, "final": False},
            self._ok(fp, 1, fenced=True),
            self._ok(fp, 2),
        ]
        assert journal_protocol_problems(entries, submitted=[fp]) == []

    def test_lost_task_flagged(self):
        problems = journal_protocol_problems([], submitted=["dd" * 32])
        assert any("lost" in p for p in problems)

    def test_breaker_legality(self):
        assert breaker_transition_problems(
            [("failure", "closed", "open"), ("allow", "open", "half-open"),
             ("success", "half-open", "closed")]
        ) == []
        bad = breaker_transition_problems([("failure", "open", "closed")])
        assert any("illegal" in p for p in bad)

    def test_report_conservation(self):
        report = {
            "counts": {"ok": 2, "failed": 0, "skipped": 1},
            "tasks": [{"fingerprint": "a"}, {"fingerprint": "b"}],
        }
        assert report_conservation_problems(report, 2) == []
        assert report_conservation_problems(report, 3)


class TestReplaySmoke:
    """Satellite: the committed artifact replays bit-identically."""

    def test_known_good_artifact_replays_identically(self):
        first = replay(KNOWN_GOOD)
        second = replay(KNOWN_GOOD)
        assert first.ok and second.ok
        assert first.crashes == second.crashes == 1
        assert first.journal_sha == second.journal_sha != "missing"
        assert first.report_sha == second.report_sha != ""

    def test_cli_replay_exit_code_and_digests(self, capsys):
        assert cli_main(["dst", "--replay", KNOWN_GOOD]) == 0
        out_a = capsys.readouterr().out
        assert cli_main(["dst", "--replay", KNOWN_GOOD]) == 0
        out_b = capsys.readouterr().out

        def digests(text):
            return [line for line in text.splitlines()
                    if "sha256" in line]

        assert digests(out_a) == digests(out_b)
        assert len(digests(out_a)) >= 2


class TestCli:
    def test_dst_explore_smoke(self, capsys):
        assert cli_main(["dst", "--seeds", "3"]) == 0
        out = capsys.readouterr().out
        assert "no invariant violations" in out

    def test_dst_json_output(self, capsys):
        assert cli_main(["dst", "--seeds", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True and payload["explored"] == 2
