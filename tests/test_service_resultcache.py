"""Unit tests for the verify-before-serve result cache.

The cache's contract: a *hit* is only a hit when the artifact re-proves
its checkpoint envelope, its embedded journal-line CRC, and a clean
oracle scoreboard — anything less is quarantined and reported as a
re-run, never served.
"""

import pytest

from repro.oracles.integrity import attach_crc
from repro.resilience.faults import FaultInjector
from repro.service.resultcache import ResultCache, entry_unservable_reason

FP = "deadbeefcafef00d"


def make_entry(fingerprint=FP, status="ok", violations=(), **overrides):
    entry = {
        "v": 1,
        "fingerprint": fingerprint,
        "experiment_id": "quick",
        "kwargs": {"value": 3},
        "seed": 11,
        "status": status,
        "attempt": 1,
        "result": {"value": 3},
        "oracles": {"violations": list(violations)},
    }
    entry.update(overrides)
    return attach_crc(entry)


class TestServableGate:
    def test_clean_entry_passes(self):
        assert entry_unservable_reason(FP, make_entry()) is None

    def test_non_ok_status_rejected(self):
        reason = entry_unservable_reason(FP, make_entry(status="error"))
        assert "status" in reason

    def test_fingerprint_mismatch_rejected(self):
        reason = entry_unservable_reason("0000", make_entry())
        assert "fingerprint" in reason

    def test_tampered_crc_rejected(self):
        entry = make_entry()
        entry["result"] = {"value": 999}  # edit after the CRC was attached
        assert "CRC" in entry_unservable_reason(FP, entry)

    def test_oracle_violations_rejected(self):
        entry = make_entry(violations=[{"oracle": "energy", "detail": "x"}])
        assert "oracle" in entry_unservable_reason(FP, entry)


class TestResultCache:
    def test_store_load_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(FP, make_entry())
        entry, why = cache.load_verified(FP)
        assert why == "hit"
        assert entry["result"] == {"value": 3}
        assert cache.snapshot()["hits"] == 1

    def test_absent_entry_is_a_miss(self, tmp_path):
        entry, why = ResultCache(tmp_path).load_verified(FP)
        assert entry is None and why == "miss"

    def test_store_refuses_unservable_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(ValueError, match="refusing to cache"):
            cache.store(FP, make_entry(status="error"))
        with pytest.raises(ValueError, match="refusing to cache"):
            cache.store(
                FP, make_entry(violations=[{"oracle": "thermal"}])
            )
        assert not cache.path(FP).exists()

    def test_bit_flip_quarantines_and_reports_rerun(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.store(FP, make_entry())
        FaultInjector(seed=3).flip_file_bits(path, n_flips=4, offset_min=16)
        entry, why = cache.load_verified(FP)
        assert entry is None
        assert why.startswith("quarantined")
        # The rotten file was moved aside, not deleted (forensics) and
        # not left in place (it would fail every future read).
        assert not path.exists()
        assert path.with_name(path.name + ".quarantined").exists()
        assert cache.snapshot()["quarantined"] == 1
        # The fingerprint now reads as a plain miss: re-simulate.
        entry, why = cache.load_verified(FP)
        assert entry is None and why == "miss"

    def test_wrong_fingerprint_address_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        entry = make_entry(fingerprint="f" * 16)
        # Force a file whose embedded entry belongs to another task, as
        # a renamed/copied artifact would.
        cache.store("f" * 16, entry)
        cache.path("f" * 16).rename(cache.path(FP))
        loaded, why = cache.load_verified(FP)
        assert loaded is None
        assert why.startswith("quarantined")

    def test_reverify_happens_on_every_read(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.store(FP, make_entry())
        entry, why = cache.load_verified(FP)
        assert why == "hit"
        # Corruption *after* a successful read must still be caught.
        FaultInjector(seed=9).flip_file_bits(path, n_flips=4, offset_min=16)
        entry, why = cache.load_verified(FP)
        assert entry is None and why.startswith("quarantined")
