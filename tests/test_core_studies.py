"""Integration tests for the Section 3/4 study drivers and experiments."""

import pytest

from repro.core.experiments import EXPERIMENTS, get_experiment, list_experiments
from repro.core.logic_on_logic import (
    run_logic_study,
    run_performance_study as run_logic_perf,
    thermal_map_3d_power,
)
from repro.core.memory_on_logic import (
    MEMORY_CONFIG_NAMES,
    build_memory_configs,
    run_performance_study,
    run_thermal_study,
    stack_for_config,
)
from repro.thermal.solver import SolverConfig

FAST = SolverConfig(nx=24, ny=24)


class TestMemoryConfigs:
    def test_four_configurations(self):
        configs = build_memory_configs()
        assert [c.name for c in configs] == list(MEMORY_CONFIG_NAMES)

    def test_figure7_powers(self):
        # (a) 92 W; (b) 106 W; (c) 88+3.1; (d) 92+6.2.
        power = {c.name: c.total_power_w for c in build_memory_configs()}
        assert power["2D 4MB"] == pytest.approx(92.0)
        assert power["3D 12MB"] == pytest.approx(106.0)
        assert power["3D 64MB"] == pytest.approx(98.2)
        assert power["3D 32MB"] < power["3D 12MB"]  # "slightly lower power"

    def test_stack_objects(self):
        configs = {c.name: c for c in build_memory_configs()}
        assert stack_for_config(configs["2D 4MB"]) is None
        stack = stack_for_config(configs["3D 32MB"])
        assert stack is not None
        assert stack.die_near_bumps.kind == "dram"
        assert stack.hot_die_near_sink()
        assert stack.validate() == []

    def test_dram_configs_have_no_l2(self):
        configs = {c.name: c for c in build_memory_configs()}
        assert configs["3D 32MB"].hierarchy.l2 is None
        assert configs["3D 64MB"].hierarchy.l2 is None
        assert configs["2D 4MB"].hierarchy.l2 is not None


class TestMemoryStudy:
    @pytest.fixture(scope="class")
    def quick_result(self):
        # Two contrasting workloads at reduced length: gauss (capacity
        # winner) and ssym (fits the baseline).
        return run_performance_study(
            workloads=["gauss", "ssym"], scale=16, length_factor=0.5
        )

    def test_result_shape(self, quick_result):
        assert set(quick_result.cpma) == {"gauss", "ssym"}
        for row in quick_result.cpma.values():
            assert set(row) == set(MEMORY_CONFIG_NAMES)

    def test_gauss_wins_big_at_32mb(self, quick_result):
        gauss = quick_result.cpma["gauss"]
        assert gauss["3D 32MB"] < 0.6 * gauss["2D 4MB"]

    def test_ssym_does_not_need_capacity(self, quick_result):
        # Fits at 4 MB: no *improvement* from the bigger caches.
        ssym = quick_result.cpma["ssym"]
        assert ssym["3D 12MB"] <= ssym["2D 4MB"] * 1.05

    def test_bandwidth_falls_with_capacity(self, quick_result):
        gauss = quick_result.bandwidth["gauss"]
        assert gauss["3D 32MB"] < gauss["2D 4MB"]

    def test_bus_power_tracks_bandwidth(self, quick_result):
        gauss_bw = quick_result.bandwidth["gauss"]
        gauss_pw = quick_result.bus_power["gauss"]
        # 20 mW/Gb/s: power = BW(GB/s) * 8 * 0.02.
        for name in MEMORY_CONFIG_NAMES:
            assert gauss_pw[name] == pytest.approx(
                gauss_bw[name] * 8 * 0.020, rel=1e-6
            )

    def test_aggregates(self, quick_result):
        avg_base = quick_result.average_cpma("2D 4MB")
        avg_32 = quick_result.average_cpma("3D 32MB")
        assert avg_32 < avg_base
        assert 0.0 < quick_result.max_cpma_reduction("3D 32MB") <= 1.0


class TestMemoryThermals:
    @pytest.fixture(scope="class")
    def temps(self):
        return run_thermal_study(FAST)

    def test_all_configs_solved(self, temps):
        assert set(temps) == set(MEMORY_CONFIG_NAMES)

    def test_figure8_ordering(self, temps):
        # SRAM stack hottest; DRAM stacks near baseline (Figure 8a).
        assert temps["3D 12MB"] == max(temps.values())
        assert abs(temps["3D 32MB"] - temps["2D 4MB"]) < 3.0
        assert temps["3D 64MB"] < temps["3D 12MB"]

    def test_stacking_not_a_thermal_barrier(self, temps):
        # The headline claim: stacking memory has negligible thermal cost.
        for name in ("3D 32MB", "3D 64MB"):
            assert temps[name] - temps["2D 4MB"] < 3.0


class TestLogicStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_logic_study(solver=FAST)

    def test_performance_headlines(self, result):
        assert result.total_gain_pct == pytest.approx(15.0, abs=1.0)
        assert result.stages_eliminated_pct == pytest.approx(25.0, abs=3.0)
        assert result.power_reduction_pct == pytest.approx(15.0, abs=1.0)

    def test_per_row_gains_complete(self, result):
        assert len(result.per_row_gains) == 10
        assert max(result.per_row_gains, key=result.per_row_gains.get) == (
            "fp_wire"
        )

    def test_figure11_ordering(self, result):
        assert (
            result.peak_temp_2d
            < result.peak_temp_3d
            < result.peak_temp_worstcase
        )

    def test_density_ratios(self, result):
        assert 1.1 <= result.density_ratio_3d <= 1.6
        assert result.density_ratio_worstcase == pytest.approx(2.0, abs=0.1)

    def test_table5_rows_present(self, result):
        names = [p.name for p in result.table5]
        assert names == [
            "Baseline", "Same Pwr", "Same Freq.", "Same Temp", "Same Perf."
        ]
        for point in result.table5:
            assert point.temp_c is not None

    def test_table5_temperature_ordering(self, result):
        rows = {p.name: p for p in result.table5}
        assert rows["Same Pwr"].temp_c > rows["Same Freq."].temp_c
        assert rows["Same Perf."].temp_c < rows["Same Temp"].temp_c

    def test_thermal_map_is_linear(self):
        thermal = thermal_map_3d_power(FAST)
        ambient_rise_100 = thermal(100.0) - 40.0
        ambient_rise_50 = thermal(50.0) - 40.0
        assert ambient_rise_100 == pytest.approx(2 * ambient_rise_50)

    def test_perf_only_study_skips_thermals(self):
        result = run_logic_study(with_thermals=False)
        assert result.peak_temp_2d == 0.0
        assert result.table5 == []

    def test_solved_same_temp_point(self):
        result = run_logic_study(solver=FAST, solve_temp_point=True)
        rows = {p.name: p for p in result.table5}
        # The solved point must reproduce the baseline temperature.
        assert rows["Same Temp"].temp_c == pytest.approx(
            result.peak_temp_2d, abs=0.5
        )
        # And still deliver the headline shape: large power saving with
        # a residual performance gain.
        assert rows["Same Temp"].power_pct < 90.0
        assert rows["Same Temp"].perf_pct > 100.0


class TestExperimentRegistry:
    def test_every_table_and_figure_registered(self):
        assert set(list_experiments()) == {
            "figure-3", "figure-5", "figure-6", "figure-8", "figure-11",
            "table-4", "table-5", "table5_dynamic", "dtm_load_spike",
            "dtm_policy_compare", "headlines",
        }

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            get_experiment("figure-99")

    def test_figure6_runs(self):
        result = get_experiment("figure-6").run(nx=24)
        assert 80.0 <= result["peak_c"] <= 95.0
        assert result["coolest_c"] < result["peak_c"]

    def test_table4_runs(self):
        result = get_experiment("table-4").run()
        assert result["total_gain_pct"] == pytest.approx(15.0, abs=1.0)

    def test_table5_runs(self):
        result = get_experiment("table-5").run(nx=24)
        assert len(result["rows"]) == 5

    def test_headlines_run(self):
        result = get_experiment("headlines").run()
        assert result["logic_perf_gain_pct"] > 10.0
