"""Tests for the RMS kernel generators and the SMP trace generator."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces.generator import TraceGenerator, WorkloadSpec, generate_trace
from repro.traces.kernels.base import (
    KernelParams,
    Region,
    SHARED_BASE,
    carve,
    private_base,
)
from repro.traces.kernels.registry import (
    CAPACITY_SENSITIVE,
    KERNELS,
    default_params,
    get_kernel,
    kernel_names,
)
from repro.traces.record import validate_trace


class TestKernelParams:
    def test_effective_footprint_scales(self):
        params = KernelParams(footprint_bytes=1 << 20, scale=4)
        assert params.effective_footprint == (1 << 20) // 4

    def test_effective_footprint_floor(self):
        params = KernelParams(footprint_bytes=8192, scale=1000)
        assert params.effective_footprint == 4096

    def test_elements(self):
        params = KernelParams(footprint_bytes=8192, element_bytes=8)
        assert params.elements() == 1024
        assert params.elements(0.5) == 512

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            KernelParams(footprint_bytes=0)
        with pytest.raises(ValueError):
            KernelParams(footprint_bytes=1024, scale=0)


class TestRegion:
    def test_addressing(self):
        region = Region(0x1000, 8, 10)
        assert region.addr(0) == 0x1000
        assert region.addr(3) == 0x1018
        assert region.addr(10) == 0x1000  # wraps

    def test_size_and_end(self):
        region = Region(0x1000, 8, 10)
        assert region.size_bytes == 80
        assert region.end == 0x1050

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Region(0, 8, 0)

    def test_carve_aligns_to_pages(self):
        region, next_base = carve(0x1000, 8, 10)
        assert next_base % 0x1000 == 0
        assert next_base >= region.end

    def test_private_bases_disjoint(self):
        assert private_base(0) != private_base(1)
        with pytest.raises(ValueError):
            private_base(-1)


class TestRegistry:
    def test_all_twelve_workloads_present(self):
        # Table 1 has exactly twelve RMS workloads.
        assert len(kernel_names()) == 12
        for name in ("conj", "dsym", "gauss", "pcg", "smvm", "ssym",
                     "strans", "savdf", "savif", "sus", "svd", "svm"):
            assert name in KERNELS

    def test_capacity_sensitive_match_paper(self):
        # "gauss, pcg, sMVM, sTrans, sUS, and svm" (Section 3).
        assert set(CAPACITY_SENSITIVE) == {
            "gauss", "pcg", "smvm", "strans", "sus", "svm"
        }

    def test_capacity_sensitive_have_big_footprints(self):
        mb = 1 << 20
        for name in kernel_names():
            footprint = KERNELS[name].default_footprint
            if name in CAPACITY_SENSITIVE:
                assert footprint > 8 * mb, name
            else:
                assert footprint <= 4 * mb, name

    def test_get_kernel_unknown(self):
        with pytest.raises(KeyError, match="unknown RMS kernel"):
            get_kernel("quake3")

    def test_default_params(self):
        params = default_params("svm", scale=8)
        assert params.scale == 8
        assert params.footprint_bytes == KERNELS["svm"].default_footprint


class TestKernelStreams:
    @pytest.mark.parametrize("name", kernel_names())
    def test_kernel_yields_valid_accesses(self, name):
        import random

        entry = get_kernel(name)
        params = KernelParams(footprint_bytes=64 * 1024)
        stream = entry.fn(0, 2, params, random.Random(1))
        for kind, address, site, read_reg, write_reg in itertools.islice(
            stream, 500
        ):
            assert kind in (0, 1)
            assert address >= 0
            assert site >= 0
            if write_reg is not None:
                assert isinstance(write_reg, str)

    @pytest.mark.parametrize("name", kernel_names())
    def test_threads_partition_but_share(self, name):
        # Both threads must touch the shared region; private regions must
        # not collide.
        recs0 = generate_trace(name, n_records=4000, n_threads=2)
        shared0 = {r.address for r in recs0
                   if r.cpu == 0 and r.address < private_base(0)}
        shared1 = {r.address for r in recs0
                   if r.cpu == 1 and r.address < private_base(0)}
        private0 = {r.address for r in recs0
                    if r.cpu == 0 and r.address >= private_base(0)}
        private1 = {r.address for r in recs0
                    if r.cpu == 1 and r.address >= private_base(0)}
        assert shared0 and shared1  # both touch shared data
        assert not (private0 & private1)  # privates are disjoint

    def test_kernels_are_infinite(self):
        # Generators iterate their outer loop forever (interleaver cuts).
        recs = generate_trace("svd", n_records=50_000)
        assert len(recs) == 50_000


class TestTraceGenerator:
    def test_trace_is_valid(self):
        records = generate_trace("smvm", n_records=5000)
        validate_trace(records)

    def test_deterministic_for_seed(self):
        a = generate_trace("pcg", n_records=2000, seed=42)
        b = generate_trace("pcg", n_records=2000, seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_trace("pcg", n_records=2000, seed=42)
        b = generate_trace("pcg", n_records=2000, seed=43)
        assert a != b

    def test_uids_are_dense(self):
        records = generate_trace("conj", n_records=1000)
        assert [r.uid for r in records] == list(range(1000))

    def test_both_cpus_emit(self):
        records = generate_trace("gauss", n_records=5000)
        cpus = {r.cpu for r in records}
        assert cpus == {0, 1}

    def test_single_thread_supported(self):
        records = generate_trace("svm", n_records=1000, n_threads=1)
        assert {r.cpu for r in records} == {0}

    def test_dependencies_reference_same_cpu(self):
        # The tracker is per-cpu, so dependencies stay within a thread.
        records = generate_trace("smvm", n_records=5000)
        by_uid = {r.uid: r for r in records}
        deps = [r for r in records if r.has_dependency]
        assert deps, "smvm must produce dependent loads"
        for r in deps:
            assert by_uid[r.dep_uid].cpu == r.cpu

    def test_dependencies_point_to_loads(self):
        records = generate_trace("strans", n_records=5000)
        by_uid = {r.uid: r for r in records}
        for r in records:
            if r.has_dependency:
                assert by_uid[r.dep_uid].is_load

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="svm", n_records=0)
        with pytest.raises(ValueError):
            WorkloadSpec(name="svm", n_threads=0)

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError):
            TraceGenerator(WorkloadSpec(name="doom"))

    @given(n=st.integers(min_value=1, max_value=3000))
    @settings(max_examples=15, deadline=None)
    def test_exact_record_count_property(self, n):
        records = generate_trace("ssym", n_records=n)
        assert len(records) == n
        validate_trace(records)

    def test_footprint_tracks_scale(self):
        # Larger scale -> smaller touched footprint for the same length.
        big = generate_trace("gauss", n_records=30_000, scale=4)
        small = generate_trace("gauss", n_records=30_000, scale=32)
        span_big = len({r.address >> 6 for r in big})
        span_small = len({r.address >> 6 for r in small})
        assert span_small < span_big
