"""Same-seed determinism: identical seeds must give identical artifacts.

These tests back the RPL1xx pass with executable evidence: every RNG in
the trace generator and the workload-suite synthesizer is plumbed from
an explicit seed, so repeating a run with the same seed reproduces the
exact trace bytes (and changing the seed does not).
"""

import hashlib

from repro.traces.generator import generate_trace
from repro.traces.record import write_trace
from repro.uarch.workloads import make_profile, workload_suite


def trace_fingerprint(records):
    digest = hashlib.sha256()
    for rec in records:
        digest.update(
            f"{rec.uid}|{rec.cpu}|{rec.kind.value}|{rec.address}|"
            f"{rec.ip}|{rec.dep_uid}".encode()
        )
    return digest.hexdigest()


class TestTraceSeeds:
    def test_same_seed_same_fingerprint(self):
        a = generate_trace("gauss", n_records=2000, seed=7)
        b = generate_trace("gauss", n_records=2000, seed=7)
        assert trace_fingerprint(a) == trace_fingerprint(b)

    def test_different_seed_different_fingerprint(self):
        a = generate_trace("gauss", n_records=2000, seed=7)
        b = generate_trace("gauss", n_records=2000, seed=8)
        assert trace_fingerprint(a) != trace_fingerprint(b)

    def test_same_seed_identical_on_disk(self, tmp_path):
        paths = []
        for run in ("a", "b"):
            path = tmp_path / f"{run}.trace"
            write_trace(generate_trace("smvm", n_records=1500, seed=11), path)
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_every_kernel_is_seed_stable(self):
        from repro.traces.kernels.registry import KERNELS

        for name in KERNELS:
            a = generate_trace(name, n_records=600, seed=3)
            b = generate_trace(name, n_records=600, seed=3)
            assert trace_fingerprint(a) == trace_fingerprint(b), name


class TestWorkloadSuiteSeeds:
    def test_suite_is_seed_stable(self):
        assert workload_suite(seed=5) == workload_suite(seed=5)

    def test_suite_varies_with_seed(self):
        assert workload_suite(seed=5) != workload_suite(seed=6)

    def test_profile_stable_across_calls(self):
        a = make_profile("specint", 3, seed=42)
        b = make_profile("specint", 3, seed=42)
        assert a == b
