"""Subprocess-level smoke tests for the ``repro`` CLI.

Everything here runs ``python -m repro`` in a real child process and
asserts *exit codes and output shape* — the contract scripts and CI
depend on, which in-process `main()` tests cannot fully cover (e.g.
tracebacks from strict mode, argparse exits, the sweep's worker tree).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parents[1] / "src")


def run_cli(*args, timeout=300):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=timeout,
    )


class TestList:
    def test_lists_every_artifact(self):
        proc = run_cli("list")
        assert proc.returncode == 0
        for artifact in ("figure-3", "figure-5", "table-4", "headlines"):
            assert artifact in proc.stdout


class TestRun:
    def test_success_exit_zero(self):
        proc = run_cli("run", "table-4")
        assert proc.returncode == 0
        assert "total_gain_pct" in proc.stdout

    def test_success_json_shape(self):
        proc = run_cli("run", "table-4", "--json", "--seed", "5")
        assert proc.returncode == 0
        outcome = json.loads(proc.stdout)
        assert outcome["ok"] is True
        assert outcome["experiment_id"] == "table-4"
        assert outcome["seed"] == 5
        assert outcome["fingerprint"]
        assert "total_gain_pct" in outcome["result"]

    def test_failure_exits_nonzero(self):
        # nx=3 violates the solver's minimum grid; must fail cleanly.
        proc = run_cli("run", "figure-6", "--nx", "3")
        assert proc.returncode == 1
        assert "FAILED" in proc.stdout
        assert "Traceback" not in proc.stderr

    def test_failure_json_shape(self):
        proc = run_cli("run", "figure-6", "--nx", "3", "--json")
        assert proc.returncode == 1
        outcome = json.loads(proc.stdout)
        assert outcome["ok"] is False
        assert outcome["error_type"] == "ValueError"
        assert outcome["kwargs"] == {"nx": 3}

    def test_strict_reraises_with_traceback(self):
        proc = run_cli("run", "figure-6", "--nx", "3", "--strict")
        assert proc.returncode == 1
        assert "Traceback" in proc.stderr

    def test_unknown_experiment_exits_nonzero(self):
        proc = run_cli("run", "figure-42")
        assert proc.returncode != 0


class TestReplay:
    @pytest.fixture(scope="class")
    def trace_path(self, tmp_path_factory):
        from repro.traces.generator import generate_trace
        from repro.traces.record import write_trace

        path = tmp_path_factory.mktemp("traces") / "small.trace"
        write_trace(generate_trace("gauss", n_records=4000, seed=3), path)
        return str(path)

    def test_replay_success(self, trace_path):
        proc = run_cli("replay", trace_path)
        assert proc.returncode == 0
        assert "replayed" in proc.stdout
        assert "CPMA" in proc.stdout

    def test_replay_missing_file_fails(self):
        proc = run_cli("replay", "/nonexistent/file.trace")
        assert proc.returncode == 1
        assert "replay failed" in proc.stderr


class TestLint:
    def test_shipped_tree_is_clean(self):
        proc = run_cli("lint")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "verdict: OK" in proc.stdout

    def test_injected_violation_exits_two(self, tmp_path):
        bad = tmp_path / "pkg"
        bad.mkdir()
        (bad / "__init__.py").write_text("")
        (bad / "mod.py").write_text("import random\nX = random.random()\n")
        proc = run_cli("lint", "--root", str(bad), "--no-baseline")
        assert proc.returncode == 2
        assert "RPL102" in proc.stdout
        assert "NEW VIOLATIONS" in proc.stdout

    def test_json_format_schema(self):
        proc = run_cli("lint", "--format", "json")
        assert proc.returncode == 0
        payload = json.loads(proc.stdout)
        assert payload["version"] == 1
        assert payload["ok"] is True
        assert payload["passes"] == [
            "determinism", "layering", "contracts", "physics",
            "concurrency", "async",
        ]
        for entry in payload["diagnostics"]:
            assert {"path", "line", "code", "message"} <= set(entry)

    def test_baseline_suppresses_known_findings(self, tmp_path):
        # without the committed baseline the grandfathered findings fail
        without = run_cli("lint", "--no-baseline")
        assert without.returncode == 2
        # a freshly written baseline over the same tree restores exit 0
        baseline = tmp_path / "baseline.json"
        wrote = run_cli("lint", "--baseline", str(baseline),
                        "--write-baseline")
        assert wrote.returncode == 0
        with_baseline = run_cli("lint", "--baseline", str(baseline))
        assert with_baseline.returncode == 0
        assert "baselined" in with_baseline.stdout

    def test_explain_renders_pass_documentation(self):
        proc = run_cli("lint", "--explain", "RPL501")
        assert proc.returncode == 0
        assert "RPL501" in proc.stdout
        assert "why:" in proc.stdout
        assert "example violation:" in proc.stdout
        assert "fix pattern:" in proc.stdout

    def test_explain_accepts_bare_number(self):
        proc = run_cli("lint", "--explain", "602")
        assert proc.returncode == 0
        assert "RPL602" in proc.stdout

    def test_explain_unknown_code_exits_two(self):
        proc = run_cli("lint", "--explain", "RPL999")
        assert proc.returncode == 2
        assert "RPL999" in proc.stdout

    def test_select_rpl5_rpl6_clean(self):
        # CI's self-check: the shipped tree carries zero flow-analysis
        # findings, baseline or not.
        proc = run_cli("lint", "--select", "RPL5,RPL6", "--no-baseline")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_select_narrows_to_one_family(self):
        proc = run_cli("lint", "--select", "RPL4", "--no-baseline",
                       "--format", "json")
        payload = json.loads(proc.stdout)
        assert all(d["code"].startswith("RPL4")
                   for d in payload["diagnostics"])


class TestSweep:
    def test_healthy_sweep_json_report(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        proc = run_cli(
            "sweep", "table-4", "--workers", "1", "--retries", "0",
            "--journal", str(journal), "--json",
        )
        assert proc.returncode == 0
        report = json.loads(proc.stdout)
        assert report["degraded"] is False
        assert report["counts"] == {"ok": 1, "failed": 0, "skipped": 0}
        assert journal.exists()
        assert "verdict: OK" in proc.stderr

    def test_chaos_sweep_degrades_then_resumes(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        degraded = run_cli(
            "sweep", "table-4", "headlines", "--retries", "0",
            "--journal", str(journal),
            "--chaos-force", "crash:table-4",
        )
        assert degraded.returncode == 3  # completed, but degraded
        assert "DEGRADED" in degraded.stdout
        assert "crash" in degraded.stdout

        resumed = run_cli(
            "sweep", "table-4", "headlines", "--retries", "0",
            "--journal", str(journal), "--resume", "--json",
        )
        assert resumed.returncode == 0
        report = json.loads(resumed.stdout)
        assert report["counts"]["skipped"] == 1  # headlines reused
        assert report["counts"]["ok"] == 2

    def test_unmatched_pattern_is_usage_error(self, tmp_path):
        proc = run_cli("sweep", "figure-99*",
                       "--journal", str(tmp_path / "j.jsonl"))
        assert proc.returncode == 2
        assert "matches no experiment" in proc.stderr

    def test_resume_without_journal_is_usage_error(self, tmp_path):
        proc = run_cli("sweep", "table-4", "--resume",
                       "--journal", str(tmp_path / "missing.jsonl"))
        assert proc.returncode == 2
        assert "does not exist" in proc.stderr
