"""Unit and property tests for floorplan geometry primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.floorplan.blocks import (
    Block,
    Floorplan,
    FloorplanError,
    grid_floorplan,
    stack_outline_matches,
    uniform_floorplan,
)


def make_block(name="b", x=0.0, y=0.0, w=2.0, h=2.0, power=4.0):
    return Block(name, x, y, w, h, power)


class TestBlock:
    def test_area_and_density(self):
        block = make_block(w=2.0, h=3.0, power=12.0)
        assert block.area == pytest.approx(6.0)
        assert block.power_density == pytest.approx(2.0)

    def test_edges(self):
        block = make_block(x=1.0, y=2.0, w=3.0, h=4.0)
        assert block.x2 == pytest.approx(4.0)
        assert block.y2 == pytest.approx(6.0)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(FloorplanError):
            make_block(w=0.0)
        with pytest.raises(FloorplanError):
            make_block(h=-1.0)

    def test_rejects_negative_power(self):
        with pytest.raises(FloorplanError):
            make_block(power=-0.1)

    def test_overlap_detection(self):
        a = make_block("a", 0, 0, 2, 2)
        b = make_block("b", 1, 1, 2, 2)
        c = make_block("c", 2, 0, 2, 2)  # shares an edge only
        assert a.overlaps(b)
        assert b.overlaps(a)
        assert not a.overlaps(c)
        assert not c.overlaps(a)

    def test_with_power_and_moved_to(self):
        block = make_block(power=4.0)
        assert block.with_power(8.0).power == 8.0
        moved = block.moved_to(5.0, 6.0)
        assert (moved.x, moved.y) == (5.0, 6.0)
        assert moved.width == block.width


class TestFloorplan:
    def test_add_and_lookup(self):
        plan = Floorplan("p", 10, 10)
        plan.add(make_block("a"))
        assert "a" in plan
        assert plan.block("a").name == "a"
        assert len(plan) == 1

    def test_rejects_duplicate_names(self):
        plan = Floorplan("p", 10, 10)
        plan.add(make_block("a"))
        with pytest.raises(FloorplanError, match="duplicate"):
            plan.add(make_block("a", x=5.0))

    def test_rejects_out_of_bounds(self):
        plan = Floorplan("p", 10, 10)
        with pytest.raises(FloorplanError, match="outside"):
            plan.add(make_block("a", x=9.0, w=2.0))

    def test_rejects_overlap(self):
        plan = Floorplan("p", 10, 10)
        plan.add(make_block("a"))
        with pytest.raises(FloorplanError, match="overlaps"):
            plan.add(make_block("b", x=1.0, y=1.0))

    def test_missing_block_lookup_raises(self):
        plan = Floorplan("p", 10, 10)
        with pytest.raises(FloorplanError, match="no block"):
            plan.block("ghost")

    def test_total_power_and_area(self):
        plan = Floorplan("p", 10, 10)
        plan.add(make_block("a", power=3.0))
        plan.add(make_block("b", x=5, power=4.0))
        assert plan.total_power == pytest.approx(7.0)
        assert plan.block_area == pytest.approx(8.0)
        assert plan.die_area == pytest.approx(100.0)

    def test_peak_power_density(self):
        plan = Floorplan("p", 10, 10)
        plan.add(make_block("cool", power=1.0))              # 0.25 W/mm^2
        plan.add(make_block("hot", x=5, w=1, h=1, power=4))  # 4 W/mm^2
        assert plan.peak_power_density() == pytest.approx(4.0)

    def test_replace_block(self):
        plan = Floorplan("p", 10, 10)
        plan.add(make_block("a", power=1.0))
        plan.replace_block(make_block("a", power=9.0))
        assert plan.block("a").power == 9.0

    def test_replace_missing_block_raises(self):
        plan = Floorplan("p", 10, 10)
        with pytest.raises(FloorplanError):
            plan.replace_block(make_block("nope"))

    def test_scaled_power(self):
        plan = Floorplan("p", 10, 10, [make_block("a", power=4.0)])
        scaled = plan.scaled_power(0.5)
        assert scaled.total_power == pytest.approx(2.0)
        # Original untouched.
        assert plan.total_power == pytest.approx(4.0)

    def test_scaled_geometry_preserves_power_scales_density(self):
        plan = Floorplan("p", 10, 10, [make_block("a", power=4.0)])
        scaled = plan.scaled_geometry(2.0)
        assert scaled.die_width == pytest.approx(20.0)
        assert scaled.total_power == pytest.approx(4.0)
        assert scaled.peak_power_density() == pytest.approx(
            plan.peak_power_density() / 4.0
        )

    def test_copy_is_independent(self):
        plan = Floorplan("p", 10, 10, [make_block("a")])
        clone = plan.copy("q")
        clone.add(make_block("b", x=5))
        assert len(plan) == 1
        assert len(clone) == 2


class TestRasterize:
    def test_conserves_power(self):
        plan = Floorplan("p", 10, 10)
        plan.add(make_block("a", x=0.3, y=0.7, w=3.3, h=2.9, power=17.0))
        plan.add(make_block("b", x=5.1, y=5.2, w=2.2, h=1.7, power=5.0))
        raster = plan.rasterize(16, 16)
        cell_area = (10 / 16) * (10 / 16)
        assert raster.sum() * cell_area == pytest.approx(22.0, rel=1e-9)

    def test_uniform_block_uniform_density(self):
        plan = uniform_floorplan("u", 8.0, 8.0, power=32.0)
        raster = plan.rasterize(8, 8)
        assert np.allclose(raster, 0.5)

    def test_raster_orientation(self):
        # Power only in the bottom-left quadrant.
        plan = Floorplan("p", 10, 10, [make_block("a", 0, 0, 5, 5, 25.0)])
        raster = plan.rasterize(4, 4)
        assert raster[0, 0] > 0
        assert raster[3, 3] == 0

    def test_rejects_bad_grid(self):
        plan = Floorplan("p", 10, 10)
        with pytest.raises(FloorplanError):
            plan.rasterize(0, 4)

    @given(
        nx=st.integers(min_value=2, max_value=40),
        w=st.floats(min_value=0.5, max_value=9.5),
        power=st.floats(min_value=0.1, max_value=200.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_power_conserved_for_any_grid(self, nx, w, power):
        plan = Floorplan("p", 10, 10, [Block("a", 0.1, 0.2, w, 3.0, power)])
        raster = plan.rasterize(nx, nx)
        cell = (10 / nx) ** 2
        assert raster.sum() * cell == pytest.approx(power, rel=1e-6)


class TestHelpers:
    def test_grid_floorplan(self):
        plan = grid_floorplan("g", 4, 4, [[1.0, 2.0], [3.0, 4.0]])
        assert plan.total_power == pytest.approx(10.0)
        assert len(plan) == 4

    def test_grid_floorplan_rejects_ragged(self):
        with pytest.raises(FloorplanError):
            grid_floorplan("g", 4, 4, [[1.0], [2.0, 3.0]])

    def test_grid_floorplan_rejects_empty(self):
        with pytest.raises(FloorplanError):
            grid_floorplan("g", 4, 4, [])

    def test_stack_outline_matches(self):
        a = Floorplan("a", 10, 10)
        b = Floorplan("b", 10, 10)
        c = Floorplan("c", 10, 9)
        assert stack_outline_matches(a, b)
        assert not stack_outline_matches(a, c)
