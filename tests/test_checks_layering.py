"""Tests for the RPL2xx layering pass.

The synthetic-package tests build a fake layered package in memory
(upward import, cross-layer import, a cycle, an unassigned package) and
assert the pass sees exactly those; the repo test asserts the real tree
produces no layering findings beyond the committed baseline set.
"""

import ast
import textwrap

from repro.checks import layering
from repro.checks.diagnostics import PyFile
from repro.checks.engine import load_files, package_root

LAYERS = {"base": 0, "mid": 1, "top": 2, "app": 3}


def make_file(rel, module, source=""):
    source = textwrap.dedent(source)
    return PyFile(rel=rel, module=module, tree=ast.parse(source),
                  lines=source.splitlines())


def run(files, layers=LAYERS):
    return layering.run(files, layers=layers, top="app")


def codes(diags):
    return sorted(d.code for d in diags)


class TestSyntheticPackages:
    def test_clean_downward_imports(self):
        files = [
            make_file("mid/a.py", "app.mid.a", "from app.base import x"),
            make_file("top/b.py", "app.top.b", "import app.mid.a"),
        ]
        assert run(files) == []

    def test_upward_import_is_rpl201(self):
        files = [
            make_file("base/a.py", "app.base.a", "from app.top import b"),
        ]
        diags = run(files)
        assert codes(diags) == ["RPL201"]
        assert "upward import" in diags[0].message
        assert diags[0].path == "base/a.py"

    def test_cross_layer_sibling_import_is_rpl202(self):
        layers = dict(LAYERS, side=1)
        files = [
            make_file("mid/a.py", "app.mid.a", "from app.side import x"),
        ]
        diags = run(files, layers)
        assert codes(diags) == ["RPL202"]

    def test_cycle_is_reported_once_with_members(self):
        files = [
            make_file("base/a.py", "app.base.a", "from app.mid import x"),
            make_file("mid/b.py", "app.mid.b", "from app.base import y"),
        ]
        diags = run(files)
        # the upward half of the cycle plus one cycle summary
        assert codes(diags) == ["RPL201", "RPL203"]
        cycle = [d for d in diags if d.code == "RPL203"][0]
        assert "base" in cycle.message and "mid" in cycle.message

    def test_three_package_cycle(self):
        files = [
            make_file("base/a.py", "app.base.a", "from app.mid import x"),
            make_file("mid/b.py", "app.mid.b", "from app.top import y"),
            make_file("top/c.py", "app.top.c", "from app.base import z"),
        ]
        diags = run(files)
        cycles = [d for d in diags if d.code == "RPL203"]
        assert len(cycles) == 1
        for pkg in ("base", "mid", "top"):
            assert pkg in cycles[0].message

    def test_unassigned_package_is_rpl204(self):
        files = [
            make_file("mid/a.py", "app.mid.a", "from app.rogue import x"),
        ]
        diags = run(files)
        assert codes(diags) == ["RPL204"]
        assert "rogue" in diags[0].message

    def test_within_package_imports_ignored(self):
        files = [
            make_file("mid/a.py", "app.mid.a", "from app.mid.b import x"),
        ]
        assert run(files) == []

    def test_relative_import_resolved(self):
        files = [
            make_file("base/a.py", "app.base.a",
                      "from ..top import b"),
        ]
        diags = run(files)
        assert codes(diags) == ["RPL201"]


class TestRepoTree:
    def test_real_tree_layering_matches_known_rot(self):
        files = load_files(package_root())
        diags = layering.run(files)
        # Everything the pass flags today is the grandfathered
        # resilience knot (see DESIGN.md and the committed baseline);
        # any new path/package here is a regression.
        paths = {d.path for d in diags}
        assert paths <= {
            "resilience/faults.py",
            "resilience/guards.py",
            "resilience/policy.py",
            "resilience/__init__.py",
        }, sorted(d.render() for d in diags)

    def test_every_package_has_a_layer(self):
        files = load_files(package_root())
        diags = layering.run(files)
        assert not [d for d in diags if d.code == "RPL204"], (
            "new package without a layer assignment; "
            "add it to layering.DEFAULT_LAYERS"
        )
