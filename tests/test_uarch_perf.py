"""Tests for the interval model, cycle simulator, and DVFS scaling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uarch.cycle import simulate_cycles
from repro.uarch.dvfs import (
    PERF_PER_FREQ,
    ScalingPoint,
    perf_3d_pct,
    power_3d_w,
    scale_operating_point,
    solve_same_perf,
    solve_same_power,
    solve_same_temp,
    table5_points,
)
from repro.uarch.interval import (
    cpi_breakdown,
    evaluate_ipc,
    frequency_scaling_slope,
    geomean_ipc,
    speedup,
)
from repro.uarch.pipeline import (
    TABLE4_ELIMINATIONS,
    planar_pipeline,
    stacked_pipeline,
)
from repro.uarch.workloads import make_profile, workload_suite


@pytest.fixture(scope="module")
def suite():
    return workload_suite()


class TestIntervalModel:
    def test_cpi_components_positive(self):
        profile = make_profile("specint", 0)
        breakdown = cpi_breakdown(profile, planar_pipeline())
        assert breakdown.base > 0
        assert breakdown.branch > 0
        assert breakdown.total_cpi > breakdown.base
        assert breakdown.ipc == pytest.approx(1 / breakdown.total_cpi)

    def test_ipc_in_physical_range(self, suite):
        for profile in suite[:50]:
            ipc = evaluate_ipc(profile, planar_pipeline())
            assert 0.1 < ipc < 3.6

    def test_shorter_pipeline_is_faster(self, suite):
        planar = planar_pipeline()
        stacked = stacked_pipeline(planar)
        for profile in suite[:25]:
            assert evaluate_ipc(profile, stacked) > evaluate_ipc(
                profile, planar
            )

    def test_total_gain_near_15_percent(self, suite):
        gain = speedup(suite, planar_pipeline(), stacked_pipeline()) - 1
        assert 0.13 <= gain <= 0.17  # paper: ~15%

    def test_table4_row_gains(self, suite):
        # Measured per-row gains must land near the published column.
        targets = {
            "front_end": 0.2, "trace_cache": 0.33, "rename_alloc": 0.66,
            "fp_wire": 4.0, "int_rf_read": 0.5, "data_cache_read": 1.5,
            "instruction_loop": 1.0, "retire_dealloc": 1.0,
            "fp_load": 2.0, "store_lifetime": 3.0,
        }
        planar = planar_pipeline()
        for area, removed in TABLE4_ELIMINATIONS.items():
            partial = stacked_pipeline(planar, {area: removed})
            gain = 100 * (speedup(suite, planar, partial) - 1)
            assert gain == pytest.approx(targets[area], abs=0.35), area

    def test_fp_row_helps_fp_workloads_most(self):
        planar = planar_pipeline()
        partial = stacked_pipeline(planar, {"fp_wire": 2})
        fp_profile = make_profile("specfp", 1)
        int_profile = make_profile("specint", 1)
        fp_gain = evaluate_ipc(fp_profile, partial) / evaluate_ipc(
            fp_profile, planar
        )
        int_gain = evaluate_ipc(int_profile, partial) / evaluate_ipc(
            int_profile, planar
        )
        assert fp_gain > int_gain

    def test_frequency_slope_near_082(self, suite):
        # Table 5: "0.82% performance for 1% frequency".
        slope = frequency_scaling_slope(suite, planar_pipeline())
        assert slope == pytest.approx(0.82, abs=0.05)

    def test_geomean_rejects_empty(self):
        with pytest.raises(ValueError):
            geomean_ipc([], planar_pipeline())


class TestCycleSimulator:
    def test_3d_faster_than_planar(self):
        profile = make_profile("specint", 3)
        planar = simulate_cycles(planar_pipeline(), profile, 20_000)
        stacked = simulate_cycles(stacked_pipeline(), profile, 20_000)
        assert stacked.ipc > planar.ipc

    def test_gain_in_band_of_interval_model(self):
        # Cross-validation: averaged over several workloads, the cycle
        # model's 3D gain should land in the same band as the interval
        # model's (the two abstractions differ per-workload).
        planar_cfg, stacked_cfg = planar_pipeline(), stacked_pipeline()
        cycle_gains, interval_gains = [], []
        for category, index in (
            ("specint", 0), ("specfp", 0), ("productivity", 2),
            ("server", 1), ("multimedia", 0),
        ):
            profile = make_profile(category, index)
            cycle_gains.append(
                simulate_cycles(stacked_cfg, profile, 30_000).ipc
                / simulate_cycles(planar_cfg, profile, 30_000).ipc
                - 1
            )
            interval_gains.append(
                evaluate_ipc(profile, stacked_cfg)
                / evaluate_ipc(profile, planar_cfg)
                - 1
            )
            # Both models must agree 3D wins on every workload.
            assert cycle_gains[-1] > 0
            assert interval_gains[-1] > 0
        cycle_mean = sum(cycle_gains) / len(cycle_gains)
        interval_mean = sum(interval_gains) / len(interval_gains)
        assert cycle_mean == pytest.approx(interval_mean, abs=0.08)

    def test_deterministic(self):
        profile = make_profile("server", 0)
        a = simulate_cycles(planar_pipeline(), profile, 5_000, seed=3)
        b = simulate_cycles(planar_pipeline(), profile, 5_000, seed=3)
        assert a == b

    def test_counts_events(self):
        profile = make_profile("specint", 0)
        result = simulate_cycles(planar_pipeline(), profile, 20_000)
        assert result.mispredicts > 0
        assert result.l1_misses > 0
        assert result.instructions == 20_000

    def test_rejects_empty_run(self):
        with pytest.raises(ValueError):
            simulate_cycles(planar_pipeline(), make_profile("specint", 0), 0)

    def test_branchy_workload_slower(self):
        import dataclasses

        profile = make_profile("specint", 5)
        branchy = dataclasses.replace(profile, mispredict_rate=0.15)
        smooth = dataclasses.replace(profile, mispredict_rate=0.001)
        slow = simulate_cycles(planar_pipeline(), branchy, 20_000)
        fast = simulate_cycles(planar_pipeline(), smooth, 20_000)
        assert fast.ipc > slow.ipc


class TestDvfs:
    def test_power_model_is_v2f(self):
        # P = 147 * 0.85 * V^2 * f.
        assert power_3d_w(1.0, 1.0) == pytest.approx(124.95)
        assert power_3d_w(0.9, 0.9) == pytest.approx(124.95 * 0.9**3)

    def test_perf_model_additive(self):
        assert perf_3d_pct(1.0) == pytest.approx(115.0)
        assert perf_3d_pct(1.18) == pytest.approx(115 + 18 * PERF_PER_FREQ)

    def test_same_power_frequency(self):
        # 125 W * f = 147 W -> f ~ 1.18 (Table 5 row 2).
        assert solve_same_power() == pytest.approx(1.176, abs=0.01)

    def test_same_perf_frequency(self):
        # 15% / 0.82 ~ 18.3% frequency reduction -> Vcc ~ 0.82.
        assert solve_same_perf() == pytest.approx(0.817, abs=0.01)

    def test_table5_published_rows(self):
        rows = {p.name: p for p in table5_points()}
        assert rows["Baseline"].power_w == pytest.approx(147.0)
        assert rows["Same Freq."].power_w == pytest.approx(124.95)
        assert rows["Same Freq."].perf_pct == pytest.approx(115.0)
        # Same Temp at the paper's published 0.92 Vcc.
        assert rows["Same Temp"].power_w == pytest.approx(97.3, abs=0.5)
        assert rows["Same Temp"].perf_pct == pytest.approx(108.4, abs=0.5)
        # Same Perf: ~46% power (paper 68.2 W).
        assert rows["Same Perf."].power_w == pytest.approx(68.2, abs=1.0)
        assert rows["Same Perf."].perf_pct == pytest.approx(100.0, abs=0.3)

    def test_headline_same_temp_tradeoff(self):
        # "a simultaneous 34% power reduction and 8% performance
        # improvement" at neutral thermals.
        rows = {p.name: p for p in table5_points()}
        same_temp = rows["Same Temp"]
        assert 100 - same_temp.power_pct == pytest.approx(34.0, abs=1.0)
        assert same_temp.perf_pct - 100 == pytest.approx(8.4, abs=0.8)

    def test_solve_same_temp_with_linear_model(self):
        # With T = 40 + 0.5 * P the target is analytic.
        thermal = lambda p: 40.0 + 0.5 * p  # noqa: E731
        target = thermal(110.0)
        vcc = solve_same_temp(thermal, target)
        assert power_3d_w(vcc, vcc) == pytest.approx(110.0, rel=1e-3)

    def test_solve_same_temp_unbracketed_raises(self):
        thermal = lambda p: 40.0 + 0.5 * p  # noqa: E731
        with pytest.raises(ValueError, match="not bracketed"):
            solve_same_temp(thermal, 1000.0)

    def test_temperatures_attached_when_thermal_given(self):
        thermal = lambda p: 40.0 + 0.5 * p  # noqa: E731
        rows = table5_points(thermal=thermal)
        for row in rows:
            assert row.temp_c is not None

    def test_scale_operating_point_validation(self):
        with pytest.raises(ValueError):
            power_3d_w(0.0, 1.0)
        with pytest.raises(ValueError):
            perf_3d_pct(-1.0)

    @given(
        vcc=st.floats(min_value=0.6, max_value=1.2),
    )
    @settings(max_examples=30, deadline=None)
    def test_power_monotone_in_vcc_property(self, vcc):
        assert power_3d_w(vcc + 0.01, vcc + 0.01) > power_3d_w(vcc, vcc)

    def test_scaling_point_is_consistent(self):
        point = scale_operating_point("x", 0.95, 0.95)
        assert point.power_pct == pytest.approx(
            100 * point.power_w / 147.0
        )
