"""Tests for the acceptance harness and the instruction-fetch path."""

import pytest

from repro.memsim import baseline_config, replay_trace
from repro.memsim.hierarchy import L1, L2, MemoryHierarchy
from repro.thermal.solver import SolverConfig
from repro.traces.generator import TraceGenerator, WorkloadSpec
from repro.traces.record import AccessType, validate_trace
from repro.validation import (
    Check,
    FAIL,
    PASS,
    SHAPE,
    ValidationReport,
    run_validation,
    validate_dvfs,
    validate_logic_performance,
)


class TestValidationPrimitives:
    def test_check_render(self):
        check = Check("figure-6", "peak", 88.35, 88.52, PASS)
        text = check.render()
        assert "PASS" in text and "figure-6" in text

    def test_check_render_shape_and_note(self):
        check = Check("figure-11", "3D", 112.5, 107.1, SHAPE, "cooler")
        text = check.render()
        assert "SHAPE" in text and "(cooler)" in text

    def test_report_counts(self):
        report = ValidationReport()
        report.add(Check("x", "a", 1.0, 1.0, PASS))
        report.add(Check("x", "b", 1.0, 9.0, FAIL))
        assert report.counts == {PASS: 1, SHAPE: 0, FAIL: 1}
        assert len(report.failures) == 1
        assert "1 pass" in report.render()


class TestValidationSections:
    def test_logic_performance_all_pass(self):
        report = ValidationReport()
        validate_logic_performance(report)
        assert not report.failures
        assert report.counts[PASS] >= 12

    def test_dvfs_all_pass(self):
        report = ValidationReport()
        validate_dvfs(report, SolverConfig(nx=20, ny=20))
        assert not report.failures
        assert report.counts[PASS] == 8

    def test_full_run_without_memory(self):
        report = run_validation(
            grid=SolverConfig(nx=24, ny=24), include_memory=False
        )
        assert not report.failures
        # Thermals + table 4 + table 5 + headline power.
        assert len(report.checks) >= 30


class TestInstructionFetch:
    def make_trace(self, n=60_000, every=4):
        spec = WorkloadSpec(name="conj", n_records=n, ifetch_every=every)
        return list(TraceGenerator(spec, scale=16).records())

    def test_ifetch_records_emitted_and_valid(self):
        records = self.make_trace()
        validate_trace(records)
        kinds = {r.kind for r in records}
        assert AccessType.IFETCH in kinds
        fraction = sum(
            1 for r in records if r.kind == AccessType.IFETCH
        ) / len(records)
        assert fraction == pytest.approx(0.25, abs=0.02)

    def test_ifetch_addresses_are_code(self):
        records = self.make_trace(n=5_000)
        for record in records:
            if record.kind == AccessType.IFETCH:
                assert record.address == record.ip

    def test_ifetch_hits_l1i_mostly(self):
        # RMS kernels are tiny loops: the L1I must absorb nearly all
        # fetches after warmup.
        records = self.make_trace()
        hier = MemoryHierarchy(baseline_config(16))
        replay_trace(records, hierarchy=hier, warmup_fraction=0.3)
        l1i = hier.l1is[0]
        assert l1i.hit_rate > 0.99

    def test_ifetch_path_levels(self):
        hier = MemoryHierarchy(baseline_config(16))
        first = hier.ifetch(0, 0x400000, 0.0)
        assert first.level != L1
        again = hier.ifetch(0, 0x400000, first.completion)
        assert again.level == L1

    def test_ifetch_does_not_pollute_l1d(self):
        hier = MemoryHierarchy(baseline_config(16))
        hier.ifetch(0, 0x400000, 0.0)
        assert not hier.l1s[0].contains(0x400000 >> 6)
        assert hier.l1is[0].contains(0x400000 >> 6)

    def test_replay_with_ifetch_changes_little(self):
        # Loop-resident code: CPMA with ifetch interleaved stays in the
        # same band as the pure-data trace.
        plain = WorkloadSpec(name="conj", n_records=60_000)
        with_if = WorkloadSpec(name="conj", n_records=60_000, ifetch_every=4)
        cpma_plain = replay_trace(
            list(TraceGenerator(plain, scale=16).records()),
            baseline_config(16), warmup_fraction=0.3,
        ).cpma
        cpma_if = replay_trace(
            list(TraceGenerator(with_if, scale=16).records()),
            baseline_config(16), warmup_fraction=0.3,
        ).cpma
        assert cpma_if < cpma_plain * 1.3
