"""Tests for the physical DieStack model and the d2d interface."""

import pytest

from repro.core.stack import (
    D2DInterface,
    Die,
    DieStack,
    D2D_RC_FRACTION,
    OFFDIE_ENERGY_PER_BIT_J,
    build_stack,
)
from repro.floorplan.blocks import uniform_floorplan


def plan(power=50.0, name="die"):
    return uniform_floorplan(name, 10.0, 10.0, power)


class TestD2DInterface:
    def test_rc_is_one_third_of_via_stack(self):
        # "comparable to 1/3 the RC of a typical via stack"
        assert D2DInterface().rc_vs_via_stack == pytest.approx(1 / 3)

    def test_via_count_scales_with_area(self):
        interface = D2DInterface(pitch_um=10.0)
        assert interface.via_count(1.0, 1.0) == 100 * 100
        assert interface.via_count(2.0, 1.0) == 2 * 100 * 100

    def test_energy_far_below_offdie(self):
        # The d2d interface must be orders of magnitude cheaper per bit
        # than the 20 mW/Gb/s off-die bus.
        interface = D2DInterface()
        assert interface.energy_per_bit_j() < OFFDIE_ENERGY_PER_BIT_J / 100

    def test_bandwidth_enormous(self):
        # Dense face-to-face vias give orders of magnitude more BW than
        # the 16 GB/s off-die bus.
        interface = D2DInterface()
        assert interface.bandwidth_gbps(10.0, 10.0) > 1000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            D2DInterface(pitch_um=0.0)
        with pytest.raises(ValueError):
            D2DInterface(signal_fraction=0.0)


class TestDie:
    def test_metal_follows_kind(self):
        assert Die(plan(), kind="logic").metal == "cu"
        assert Die(plan(), kind="dram").metal == "al"

    def test_power_from_floorplan(self):
        assert Die(plan(42.0)).power_w == pytest.approx(42.0)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            Die(plan(), kind="photonic")


class TestDieStack:
    def test_requires_matching_outlines(self):
        small = uniform_floorplan("s", 5.0, 5.0, 10.0)
        with pytest.raises(ValueError, match="matching"):
            DieStack(Die(plan()), Die(small, bulk_um=20.0))

    def test_total_power(self):
        stack = build_stack(plan(60.0, "a"), plan(20.0, "b"))
        assert stack.total_power_w == pytest.approx(80.0)

    def test_build_stack_thicknesses_follow_table2(self):
        stack = build_stack(plan(), plan(10.0))
        assert stack.die_near_sink.bulk_um == 750.0
        assert stack.die_near_bumps.bulk_um == 20.0

    def test_placement_rule_validation(self):
        good = build_stack(plan(60.0), plan(20.0))
        assert good.hot_die_near_sink()
        assert good.validate() == []

        bad = build_stack(plan(20.0), plan(60.0))
        assert not bad.hot_die_near_sink()
        assert any("heat sink" in p for p in bad.validate())

    def test_thick_die2_flagged(self):
        stack = DieStack(
            Die(plan(60.0)), Die(plan(20.0), bulk_um=300.0)
        )
        assert any("thinned" in p for p in stack.validate())

    def test_interface_power_small_at_bus_rates(self):
        # Even at the full 16 GB/s the d2d interface burns far less than
        # the 0.5 W the off-die bus would (Section 3's savings argument).
        stack = build_stack(plan(60.0), plan(20.0))
        assert stack.interface_power_w(16.0) < 0.05

    def test_footprint(self):
        stack = build_stack(plan(), plan(10.0))
        assert stack.footprint_mm2 == pytest.approx(100.0)
