"""Tests for the set-associative cache, DRAM banks, and DRAM cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim.cache import SetAssociativeCache
from repro.memsim.config import (
    CacheConfig,
    DramBankTiming,
    DramCacheConfig,
)
from repro.memsim.dram import BankedDram
from repro.memsim.dramcache import (
    DramCache,
    PAGE_MISS,
    SECTOR_HIT,
    SECTOR_MISS,
)

KB = 1 << 10


def small_cache(size=4 * KB, ways=2, latency=4):
    return SetAssociativeCache(CacheConfig(size, ways=ways, latency=latency))


class TestSetAssociativeCache:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert not cache.lookup(100)
        cache.fill(100)
        assert cache.lookup(100)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction_order(self):
        cache = small_cache(size=2 * 64, ways=2)  # 1 set, 2 ways
        cache.fill(0)
        cache.fill(1)
        cache.lookup(0)       # 0 becomes most-recent
        victim = cache.fill(2)
        assert victim is not None
        assert victim[0] == 1  # 1 was LRU

    def test_dirty_writeback_on_eviction(self):
        cache = small_cache(size=2 * 64, ways=2)
        cache.fill(0, dirty=True)
        cache.fill(1)
        victim = cache.fill(2)
        assert victim == (0, True)
        assert cache.writebacks == 1

    def test_write_sets_dirty(self):
        cache = small_cache(size=2 * 64, ways=2)
        cache.fill(0)
        cache.lookup(0, write=True)
        cache.fill(1)
        victim = cache.fill(2)
        assert victim == (0, True) or victim == (1, False)

    def test_invalidate(self):
        cache = small_cache()
        cache.fill(5)
        assert cache.invalidate(5)
        assert not cache.invalidate(5)
        assert not cache.contains(5)

    def test_contains_does_not_touch_stats(self):
        cache = small_cache()
        cache.fill(5)
        cache.contains(5)
        cache.contains(6)
        assert cache.hits == 0 and cache.misses == 0

    def test_capacity_respected(self):
        cache = small_cache(size=4 * KB, ways=4)  # 64 lines
        for line in range(100):
            cache.fill(line)
        assert cache.resident_lines() <= 64

    def test_hit_rate(self):
        cache = small_cache()
        cache.fill(1)
        cache.lookup(1)
        cache.lookup(2)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_reset_stats_keeps_contents(self):
        cache = small_cache()
        cache.fill(9)
        cache.lookup(9)
        cache.reset_stats()
        assert cache.hits == 0
        assert cache.contains(9)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError, match="power of two"):
            SetAssociativeCache(CacheConfig(3 * 64 * 2, ways=2, latency=1))


class TestFillRegressions:
    """Pin the fill() refill semantics: an earlier version evicted an
    unrelated victim when re-filling an already-resident line, and
    dropped the dirty bit of a line re-installed clean — losing its
    eventual writeback."""

    def test_refill_resident_line_evicts_nothing(self):
        cache = small_cache(size=2 * 64, ways=2)  # 1 set, 2 ways
        cache.fill(0)
        cache.fill(1)
        victim = cache.fill(0)  # refill at capacity: no one must go
        assert victim is None
        assert cache.evictions == 0
        assert cache.contains(0) and cache.contains(1)

    def test_refill_refreshes_lru_position(self):
        cache = small_cache(size=2 * 64, ways=2)
        cache.fill(0)
        cache.fill(1)
        cache.fill(0)           # 0 becomes most-recent again
        victim = cache.fill(2)
        assert victim is not None and victim[0] == 1

    def test_clean_refill_keeps_dirty_bit(self):
        cache = small_cache(size=2 * 64, ways=2)
        cache.fill(0, dirty=True)
        cache.fill(0, dirty=False)  # merge, not overwrite
        cache.fill(1)
        victim = cache.fill(2)
        assert victim == (0, True)
        assert cache.writebacks == 1

    def test_dirty_refill_dirties_clean_line(self):
        cache = small_cache(size=2 * 64, ways=2)
        cache.fill(0, dirty=False)
        cache.fill(0, dirty=True)
        cache.fill(1)
        victim = cache.fill(2)
        assert victim == (0, True)

    def test_write_hit_then_invalidate_loses_writeback(self):
        cache = small_cache(size=2 * 64, ways=2)
        cache.fill(0)
        cache.lookup(0, write=True)
        assert cache.invalidate(0)
        cache.fill(1)
        cache.fill(2)
        victim = cache.fill(3)
        assert victim is not None and victim[1] is False
        assert cache.writebacks == 0


class TestFastStateContract:
    """The (sets, mask) pair handed to the replay fast path must mirror
    lookup() exactly, and credited counts must keep the counter
    identities intact."""

    def test_fast_hit_protocol_matches_lookup(self):
        via_lookup = small_cache()
        via_fast = small_cache()
        for cache in (via_lookup, via_fast):
            cache.fill(7)
            cache.fill(7 + cache.n_sets)  # same set
        via_lookup.lookup(7, write=True)

        sets, mask = via_fast.fast_state()
        entries = sets[7 & mask]
        previous = entries.pop(7, None)
        assert previous is not None
        entries[7] = previous or True
        via_fast.add_fast_hits(1)

        assert via_fast.hits == via_lookup.hits
        assert via_fast._sets == via_lookup._sets

    def test_credited_counts_preserve_identities(self):
        cache = small_cache()
        cache.fill(1)
        cache.lookup(1)
        cache.lookup(2)
        cache.add_fast_hits(10)
        cache.add_fast_misses(4)
        assert cache.hits == 11
        assert cache.misses == 5
        assert cache.accesses == 16
        assert cache.hit_rate == pytest.approx(11 / 16)

    @given(
        lines=st.lists(
            st.integers(min_value=0, max_value=4095), min_size=1, max_size=400
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_occupancy_invariant(self, lines):
        cache = small_cache(size=2 * KB, ways=2)  # 32 lines, 16 sets
        for line in lines:
            if not cache.lookup(line):
                cache.fill(line)
        assert cache.resident_lines() <= 32
        # Every line just filled or touched must map to its own set only.
        assert cache.hits + cache.misses == len(lines)

    @given(
        lines=st.lists(
            st.integers(min_value=0, max_value=63), min_size=1, max_size=200
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_small_working_set_always_hits_after_fill(self, lines):
        # A working set within one way-capacity never self-evicts.
        cache = small_cache(size=8 * KB, ways=8)  # 128 lines, 16 sets
        for line in set(lines):
            cache.fill(line)
        for line in lines:
            assert cache.lookup(line)


class TestDramBankTiming:
    def test_defaults_match_table3(self):
        timing = DramBankTiming()
        assert timing.page_open == 50
        assert timing.precharge == 54
        assert timing.read == 50

    def test_rejects_burst_longer_than_read(self):
        with pytest.raises(ValueError):
            DramBankTiming(read=10, burst=20)


class TestBankedDram:
    def make(self, banks=4, page=4096):
        return BankedDram(banks, page, DramBankTiming())

    def test_page_empty_then_hit(self):
        dram = self.make()
        first = dram.access(0.0, 0)
        assert first == pytest.approx(100.0)  # open 50 + read 50
        second = dram.access(first, 64)       # same page
        assert second - first == pytest.approx(50.0)
        assert dram.page_hits == 1
        assert dram.page_empties == 1

    def test_page_conflict_pays_precharge(self):
        dram = self.make(banks=1, page=4096)
        t1 = dram.access(0.0, 0)
        t2 = dram.access(t1, 8192)  # same bank, different page
        assert t2 - t1 == pytest.approx(54 + 50 + 50)
        assert dram.page_conflicts == 1

    def test_banks_operate_in_parallel(self):
        dram = self.make(banks=4)
        t1 = dram.access(0.0, 0)        # bank 0
        t2 = dram.access(0.0, 4096)     # bank 1: no serialization
        assert t1 == pytest.approx(t2)

    def test_same_bank_serializes_by_occupancy(self):
        dram = self.make(banks=1)
        dram.access(0.0, 0)
        # Second request issued at t=0 waits for the bank's burst slot.
        second = dram.access(0.0, 64)
        assert second > 100.0

    def test_closed_page_policy_never_hits(self):
        dram = BankedDram(4, 4096, DramBankTiming(), open_page_policy=False)
        dram.access(0.0, 0)
        dram.access(200.0, 64)
        assert dram.page_hits == 0
        assert dram.page_empties == 2

    def test_bank_mapping_interleaves_pages(self):
        dram = self.make(banks=4, page=512)
        assert dram.bank_of(0) == 0
        assert dram.bank_of(512) == 1
        assert dram.bank_of(2048) == 0

    def test_stats_reset(self):
        dram = self.make()
        dram.access(0.0, 0)
        dram.reset_stats()
        assert dram.accesses == 0


class TestDramCache:
    def make(self, size=1 << 20):
        return DramCache(DramCacheConfig(size_bytes=size))

    def test_page_miss_then_sector_semantics(self):
        dc = self.make()
        assert dc.lookup(0) == PAGE_MISS
        dc.fill(0)
        assert dc.lookup(0) == SECTOR_HIT
        # Another sector of the same page: present page, invalid sector.
        assert dc.lookup(64) == SECTOR_MISS
        dc.fill(64)
        assert dc.lookup(64) == SECTOR_HIT

    def test_sectors_per_page_matches_table3(self):
        config = DramCacheConfig()
        assert config.page_bytes == 512
        assert config.sector_bytes == 64
        assert config.sectors_per_page == 8
        assert config.banks == 16

    def test_page_eviction_reports_dirty_sectors(self):
        config = DramCacheConfig(size_bytes=2 * 512 * 1, page_bytes=512,
                                 ways=1, banks=1)
        dc = DramCache(config)
        dc.fill(0, dirty=True)
        dc.fill(64, dirty=True)
        set_span = config.n_sets * config.page_bytes
        # Same set (n_sets=2 -> page 2 maps to set 0), evicts page 0.
        victim = dc.fill(2 * 512)
        assert victim is not None
        assert victim[1] == 2  # two dirty sectors written back

    def test_contains_is_side_effect_free(self):
        dc = self.make()
        dc.fill(0)
        assert dc.contains(0)
        assert not dc.contains(64)
        hits_before = dc.sector_hits
        dc.contains(0)
        assert dc.sector_hits == hits_before

    def test_hit_timing_overlaps_tag_and_bank(self):
        dc = self.make()
        dc.fill(0)
        done = dc.hit_timing(0.0, 0)
        # Speculative overlap: completion is the max of tag (16) and
        # d2d + bank; with an open page the bank path is 4 + 50.
        assert done <= 16 + 4 + 50 + 54  # never worse than serial

    def test_write_marks_dirty(self):
        config = DramCacheConfig(size_bytes=2 * 512, page_bytes=512,
                                 ways=1, banks=1)
        dc = DramCache(config)
        dc.fill(0)
        assert dc.lookup(0, write=True) == SECTOR_HIT
        victim = dc.fill(2 * 512)
        assert victim[1] == 1

    def test_resident_pages_bounded(self):
        config = DramCacheConfig(size_bytes=64 * 512, page_bytes=512, ways=4)
        dc = DramCache(config)
        for page in range(200):
            dc.fill(page * 512)
        assert dc.resident_pages() <= 64

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DramCacheConfig(page_bytes=500)  # not multiple of sector
        with pytest.raises(ValueError):
            DramCacheConfig(page_policy="adaptive")

    @given(
        addresses=st.lists(
            st.integers(min_value=0, max_value=1 << 22),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_fill_makes_hit_property(self, addresses):
        dc = self.make(size=1 << 20)
        for address in addresses:
            outcome = dc.lookup(address)
            if outcome != SECTOR_HIT:
                dc.fill(address)
                assert dc.contains(address)
