"""Unit tests for the clock-explicit overload-protection primitives.

No sockets, no sleeps: every state machine takes an explicit monotonic
``now``, so these tests drive time deterministically.
"""

import pytest

from repro.service.protection import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    AdmissionPolicy,
    CircuitBreaker,
    RateLimiter,
    TokenBucket,
)


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=2.0, burst=3.0)
        assert [bucket.try_take(0.0) for _ in range(3)] == [0.0, 0.0, 0.0]
        wait = bucket.try_take(0.0)
        assert wait == pytest.approx(0.5)  # 1 token at 2/s
        # After the advertised wait, the request goes through.
        assert bucket.try_take(0.0 + wait) == 0.0

    def test_tokens_cap_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2.0)
        assert bucket.try_take(0.0) == 0.0
        # A long idle period must not bank more than `burst`.
        assert bucket.try_take(1000.0) == 0.0
        assert bucket.try_take(1000.0) == 0.0
        assert bucket.try_take(1000.0) > 0.0

    def test_cost_above_one(self):
        bucket = TokenBucket(rate=1.0, burst=10.0)
        assert bucket.try_take(0.0, cost=10.0) == 0.0
        assert bucket.try_take(0.0, cost=1.0) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


class TestRateLimiter:
    def test_per_client_isolation(self):
        limiter = RateLimiter(rate=1.0, burst=1.0)
        allowed, _ = limiter.check("a", 0.0)
        assert allowed
        allowed, retry = limiter.check("a", 0.0)
        assert not allowed and retry > 0
        # Client b has its own bucket.
        allowed, _ = limiter.check("b", 0.0)
        assert allowed

    def test_lru_bound_on_client_table(self):
        limiter = RateLimiter(rate=1.0, burst=1.0, max_clients=2)
        for client in ("a", "b", "c", "d"):
            limiter.check(client, 0.0)
        assert len(limiter) == 2
        # Evicted client restarts with a full bucket (errs in the
        # client's favor, never unbounded memory).
        allowed, _ = limiter.check("a", 0.0)
        assert allowed


class TestAdmissionPolicy:
    def test_watermark_sheds_before_capacity(self):
        policy = AdmissionPolicy(depth=8, watermark=4)
        assert policy.admit(0) and policy.admit(3)
        assert not policy.admit(4)
        assert not policy.admit(8)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(depth=0, watermark=1)
        with pytest.raises(ValueError):
            AdmissionPolicy(depth=4, watermark=5)


class TestCircuitBreaker:
    def test_opens_at_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_after_s=5.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.1)
        assert breaker.state == CLOSED and breaker.allow(0.2)
        breaker.record_failure(0.2)
        assert breaker.state == OPEN
        assert not breaker.allow(1.0)
        assert breaker.retry_after(1.0) == pytest.approx(4.2)

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_after_s=1.0)
        breaker.record_failure(0.0)
        breaker.record_success()
        breaker.record_failure(0.1)
        assert breaker.state == CLOSED  # never two *consecutive*

    def test_half_open_single_probe_then_close(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_after_s=1.0)
        breaker.record_failure(0.0)
        assert breaker.state == OPEN
        assert breaker.allow(1.5)  # the probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow(1.6)  # only one probe at a time
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow(1.7)

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_after_s=1.0)
        breaker.record_failure(0.0)
        assert breaker.allow(1.5)
        breaker.record_failure(1.5)
        assert breaker.state == OPEN
        assert not breaker.allow(2.0)
        assert breaker.retry_after(2.0) == pytest.approx(0.5)

    def test_opens_counts_transitions_not_failures(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_after_s=10.0)
        breaker.record_failure(0.0)
        # In-flight work finishing with failures while already open
        # must not inflate the transition counter.
        breaker.record_failure(0.1)
        breaker.record_failure(0.2)
        assert breaker.opens == 1
        assert breaker.snapshot()["state"] == OPEN
