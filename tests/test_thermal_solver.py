"""Physics and regression tests for the finite-volume thermal solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.floorplan import core2duo_floorplan, stacked_cache_die
from repro.floorplan.blocks import uniform_floorplan
from repro.thermal.materials import get_material
from repro.thermal.solver import (
    SolverConfig,
    assemble_system,
    clear_operator_cache,
    geometry_key,
    operator_cache_stats,
    solve_steady_state,
)
from repro.thermal.stack import (
    Layer,
    ThermalStack,
    build_3d_stack,
    build_planar_stack,
)

FAST = SolverConfig(nx=24, ny=24)

UM = 1e-6
MM = 1e-3


def _bare_die_stack(power_w=60.0):
    """A minimal stack whose BOUNDARY layers are two-region (die material
    inside the footprint, epoxy fill outside) — the geometry where the
    old uniform-conductivity conservation check was wrong."""
    die = uniform_floorplan("bare", 10.0, 10.0, power_w)
    epoxy = get_material("epoxy-fillet")
    layers = [
        Layer("bulk-si-1", 750.0 * UM, get_material("bulk-si"), epoxy,
              divisions=2),
        Layer("metal-1", 12.0 * UM, get_material("cu-metal"), epoxy,
              power_plan=die),
        Layer("package", 1.2 * MM, get_material("package"),
              get_material("package")),
    ]
    return ThermalStack("bare die", 10.0 * MM, 10.0 * MM, layers)


class TestSolverPhysics:
    def test_energy_conservation(self, planar_solution):
        # Heat leaving through the boundaries equals the injected power.
        # The per-cell boundary conductances replicate the assembled
        # Robin terms exactly, so this closes to solver precision.
        out = planar_solution.boundary_heat_flow()
        assert out == pytest.approx(planar_solution.stack.total_power, rel=1e-9)

    def test_energy_conservation_3d(self, stacked_solution):
        out = stacked_solution.boundary_heat_flow()
        assert out == pytest.approx(
            stacked_solution.stack.total_power, rel=1e-9
        )

    def test_energy_conservation_two_region_boundary(self):
        """Conservation must close even when a two-region layer forms a
        boundary face (regression: the check used the in-die conductivity
        across the whole face, overstating the off-die flow ~4x here)."""
        solution = solve_steady_state(_bare_die_stack(), FAST)
        out = solution.boundary_heat_flow()
        assert out == pytest.approx(solution.stack.total_power, rel=1e-9)

    def test_per_face_breakdown_sums_to_total(self, planar_solution):
        faces = planar_solution.boundary_heat_flow(per_face=True)
        assert set(faces) == {"heatsink", "motherboard"}
        assert faces["heatsink"] + faces["motherboard"] == pytest.approx(
            planar_solution.boundary_heat_flow(), rel=1e-12
        )

    def test_heatsink_face_dominates(self, planar_solution):
        # The package exists to push heat out through the sink: the
        # forced-air face must carry the overwhelming share.
        faces = planar_solution.boundary_heat_flow(per_face=True)
        assert faces["heatsink"] > 50 * faces["motherboard"]
        assert faces["motherboard"] > 0  # but the board path is real

    def test_flipped_stack_mirrors_the_field(self):
        """Reversing the layer order while swapping the boundary h's is
        the same physical problem upside down: the temperature field must
        mirror in z (and conservation must still close on the flipped
        stack, whose two-region die layers now face the other boundary)."""
        stack = _bare_die_stack()
        flipped = ThermalStack(
            "bare die flipped",
            stack.die_width_m,
            stack.die_height_m,
            list(reversed(stack.layers)),
            stack.domain_size_m,
        )
        config = SolverConfig(
            nx=24, ny=24, heatsink_h=9000.0, motherboard_h=50.0
        )
        mirror_config = SolverConfig(
            nx=24, ny=24, heatsink_h=50.0, motherboard_h=9000.0
        )
        upright = solve_steady_state(stack, config)
        mirrored = solve_steady_state(flipped, mirror_config)
        assert np.allclose(
            upright.temperature,
            mirrored.temperature[::-1],
            rtol=1e-9,
            atol=1e-9,
        )
        out = mirrored.boundary_heat_flow()
        assert out == pytest.approx(flipped.total_power, rel=1e-9)

    def test_maximum_principle(self, planar_solution):
        # With heat sources, no temperature is below ambient.
        assert planar_solution.temperature.min() >= (
            planar_solution.config.ambient_c - 1e-6
        )

    def test_zero_power_gives_ambient_everywhere(self):
        die = uniform_floorplan("cold", 10.0, 10.0, 0.0)
        solution = solve_steady_state(build_planar_stack(die), FAST)
        assert np.allclose(solution.temperature, FAST.ambient_c, atol=1e-8)

    def test_linearity_in_power(self):
        # Steady conduction is linear: doubling power doubles the rise.
        die1 = uniform_floorplan("u", 10.0, 10.0, 50.0)
        die2 = uniform_floorplan("u", 10.0, 10.0, 100.0)
        sol1 = solve_steady_state(build_planar_stack(die1), FAST)
        sol2 = solve_steady_state(build_planar_stack(die2), FAST)
        rise1 = sol1.peak_temperature() - FAST.ambient_c
        rise2 = sol2.peak_temperature() - FAST.ambient_c
        assert rise2 == pytest.approx(2.0 * rise1, rel=1e-9)

    def test_symmetry_for_symmetric_power(self):
        # A centred uniform die must give a laterally symmetric field.
        # (Grid chosen so the rounded die region centres exactly; with
        # mismatched parity the half-cell offset breaks exact symmetry.)
        die = uniform_floorplan("u", 10.0, 10.0, 60.0)
        config = SolverConfig(nx=25, ny=25)
        solution = solve_steady_state(build_planar_stack(die), config)
        field = solution.temperature[0]  # heat-sink plane
        assert np.allclose(field, field[:, ::-1], rtol=1e-9)
        assert np.allclose(field, field[::-1, :], rtol=1e-9)

    def test_better_cooling_is_cooler(self):
        die = uniform_floorplan("u", 10.0, 10.0, 80.0)
        stack = build_planar_stack(die)
        weak = solve_steady_state(
            stack, SolverConfig(nx=24, ny=24, heatsink_h=2000.0)
        )
        strong = solve_steady_state(
            stack, SolverConfig(nx=24, ny=24, heatsink_h=8000.0)
        )
        assert strong.peak_temperature() < weak.peak_temperature()

    def test_hotspot_is_over_the_hot_block(self, planar_solution):
        # The hotspot must sit in a core, not in the (cool) L2 half.
        die_map = planar_solution.die_map("metal-1")
        j, i = np.unravel_index(np.argmax(die_map), die_map.shape)
        # Cores occupy the top half of the die (y > 6 mm).
        assert j >= die_map.shape[0] // 2

    def test_temperature_decreases_away_from_die(self, planar_solution):
        # The die runs hotter than the heat-sink top surface.
        die_peak = planar_solution.layer_peak("metal-1")
        sink = planar_solution.layer_temperature("heat-sink")[0].max()
        assert die_peak > sink

    @given(power=st.floats(min_value=1.0, max_value=200.0))
    @settings(max_examples=8, deadline=None)
    def test_rise_scales_linearly_property(self, power):
        die = uniform_floorplan("u", 10.0, 10.0, power)
        tiny = SolverConfig(nx=12, ny=12)
        solution = solve_steady_state(build_planar_stack(die), tiny)
        rise = solution.peak_temperature() - tiny.ambient_c
        # Rise per watt is a constant of the geometry.
        assert rise / power == pytest.approx(0.3732, rel=0.02)


class TestOperatorCache:
    """The assembled operator + LU factorisation depend only on geometry,
    so solves that share a stack geometry must share one cached operator
    — with bit-identical results to a cold assembly."""

    @pytest.fixture(autouse=True)
    def _fresh_cache(self):
        clear_operator_cache()
        yield
        clear_operator_cache()

    def test_cached_solve_is_bit_identical_to_cold(self):
        die = uniform_floorplan("u", 10.0, 10.0, 60.0)
        stack = build_planar_stack(die)
        cold = solve_steady_state(stack, FAST)
        warm = solve_steady_state(stack, FAST)
        assert np.array_equal(cold.temperature, warm.temperature)
        stats = operator_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 1

    def test_power_plans_share_one_operator(self):
        # Same geometry, different power maps: one assembly, one hit —
        # and the very same matrix object on both systems.
        die1 = uniform_floorplan("a", 10.0, 10.0, 50.0)
        die2 = uniform_floorplan("b", 10.0, 10.0, 125.0)
        sys1 = assemble_system(build_planar_stack(die1), FAST)
        sys2 = assemble_system(build_planar_stack(die2), FAST)
        assert sys1.matrix is sys2.matrix
        assert not np.array_equal(sys1.rhs, sys2.rhs)
        stats = operator_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 1

    def test_geometry_key_ignores_power(self):
        die1 = uniform_floorplan("a", 10.0, 10.0, 50.0)
        die2 = uniform_floorplan("b", 10.0, 10.0, 125.0)
        assert geometry_key(build_planar_stack(die1), FAST) == geometry_key(
            build_planar_stack(die2), FAST
        )

    def test_conductivity_change_is_a_new_key(self):
        die = uniform_floorplan("u", 10.0, 10.0, 60.0)
        stack = build_planar_stack(die)
        swept = stack.replace_layer(
            stack.layer("metal-1").with_conductivity(24.0)
        )
        assert geometry_key(stack, FAST) != geometry_key(swept, FAST)
        assemble_system(stack, FAST)
        assemble_system(swept, FAST)
        stats = operator_cache_stats()
        assert stats["misses"] == 2 and stats["hits"] == 0

    def test_config_change_is_a_new_key(self):
        die = uniform_floorplan("u", 10.0, 10.0, 60.0)
        stack = build_planar_stack(die)
        assemble_system(stack, FAST)
        assemble_system(
            stack, SolverConfig(nx=24, ny=24, heatsink_h=5000.0)
        )
        stats = operator_cache_stats()
        assert stats["misses"] == 2 and stats["hits"] == 0

    def test_reuse_can_be_disabled(self):
        die = uniform_floorplan("u", 10.0, 10.0, 60.0)
        stack = build_planar_stack(die)
        assemble_system(stack, FAST, reuse_operator=False)
        assemble_system(stack, FAST, reuse_operator=False)
        stats = operator_cache_stats()
        assert stats["hits"] == 0 and stats["misses"] == 0
        assert stats["size"] == 0

    def test_cache_is_bounded(self):
        die = uniform_floorplan("u", 10.0, 10.0, 60.0)
        stack = build_planar_stack(die)
        for ambient in range(30, 40):  # 10 distinct geometries
            assemble_system(
                stack, SolverConfig(nx=12, ny=12, ambient_c=float(ambient))
            )
        stats = operator_cache_stats()
        assert stats["size"] == stats["max_size"] < 10
        # The most recent geometry is still resident.
        assemble_system(stack, SolverConfig(nx=12, ny=12, ambient_c=39.0))
        assert operator_cache_stats()["hits"] == 1

    def test_transient_repeat_is_identical(self):
        from repro.thermal.transient import solve_transient

        die = uniform_floorplan("u", 10.0, 10.0, 60.0)
        stack = build_planar_stack(die)
        tiny = SolverConfig(nx=12, ny=12)
        first = solve_transient(stack, tiny, duration_s=0.5, dt_s=0.05)
        again = solve_transient(stack, tiny, duration_s=0.5, dt_s=0.05)
        assert first.peak_c == again.peak_c
        # One assembly; the steady + transient LUs hang off that operator.
        stats = operator_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] >= 1


class TestSolverConfigValidation:
    def test_rejects_tiny_grid(self):
        with pytest.raises(ValueError):
            SolverConfig(nx=2, ny=2)

    def test_rejects_nonpositive_h(self):
        with pytest.raises(ValueError):
            SolverConfig(heatsink_h=0.0)


class TestSolutionQueries:
    def test_layer_planes_cover_all_layers(self, planar_solution):
        stack = planar_solution.stack
        planes = planar_solution.layer_planes
        assert set(planes) == {layer.name for layer in stack.layers}
        total = sum(z1 - z0 for z0, z1 in planes.values())
        assert total == planar_solution.temperature.shape[0]

    def test_die_layers_detected(self, stacked_solution):
        names = stacked_solution.die_layer_names
        assert "bulk-si-1" in names
        assert "metal-1" in names
        assert "bond" in names
        assert "metal-2" in names
        assert "heat-sink" not in names
        assert "package" not in names

    def test_die_map_shape_matches_region(self, planar_solution):
        j0, j1, i0, i1 = planar_solution.die_region
        die_map = planar_solution.die_map("metal-1")
        assert die_map.shape == (j1 - j0, i1 - i0)

    def test_coolest_on_die_below_peak(self, planar_solution):
        assert (
            planar_solution.coolest_on_die()
            < planar_solution.peak_temperature()
        )

    def test_hottest_layer_is_an_active_layer(self, stacked_solution):
        assert stacked_solution.hottest_layer() in (
            "metal-1", "metal-2", "bond", "bulk-si-1", "bulk-si-2"
        )


class TestPaperOperatingPoints:
    """Coarse-grid sanity on the calibrated operating points; the
    benchmarks check the fine-grid values against the paper."""

    def test_baseline_near_88c(self, planar_solution):
        assert 82.0 <= planar_solution.peak_temperature() <= 95.0

    def test_sram_stack_hotter_than_baseline(
        self, planar_solution, stacked_solution
    ):
        # Figure 8: the 12 MB SRAM option is the hottest stack.
        assert (
            stacked_solution.peak_temperature()
            > planar_solution.peak_temperature()
        )

    def test_dram32_cooler_than_sram12(self, baseline_die, stacked_solution):
        nol2 = core2duo_floorplan(with_l2=False)
        dram = stacked_cache_die("dram-32mb", nol2)
        sol32 = solve_steady_state(
            build_3d_stack(nol2, dram, die2_metal="al"), FAST
        )
        assert sol32.peak_temperature() < stacked_solution.peak_temperature()
