"""Tests for material constants (Table 2) and the layer-stack builders."""

import pytest

from repro.floorplan import core2duo_floorplan, stacked_cache_die
from repro.thermal.materials import (
    AMBIENT_C,
    MATERIALS,
    TABLE2_CONSTANTS,
    Material,
    get_material,
)
from repro.thermal.stack import (
    Layer,
    ThermalStack,
    build_3d_stack,
    build_planar_stack,
)


class TestTable2Constants:
    """The published constants, verbatim from Table 2."""

    def test_si1_thickness(self):
        assert TABLE2_CONSTANTS["si1_thickness_um"] == 750.0

    def test_si2_thickness(self):
        assert TABLE2_CONSTANTS["si2_thickness_um"] == 20.0

    def test_si_conductivity(self):
        assert TABLE2_CONSTANTS["si_conductivity"] == 120.0

    def test_cu_metal(self):
        assert TABLE2_CONSTANTS["cu_metal_thickness_um"] == 12.0
        assert TABLE2_CONSTANTS["cu_metal_conductivity"] == 12.0

    def test_al_metal(self):
        assert TABLE2_CONSTANTS["al_metal_thickness_um"] == 2.0
        assert TABLE2_CONSTANTS["al_metal_conductivity"] == 9.0

    def test_bond_layer(self):
        assert TABLE2_CONSTANTS["bond_thickness_um"] == 15.0
        assert TABLE2_CONSTANTS["bond_conductivity"] == 60.0

    def test_heat_sink(self):
        assert TABLE2_CONSTANTS["heat_sink_conductivity"] == 400.0

    def test_ambient(self):
        assert AMBIENT_C == 40.0


class TestMaterial:
    def test_rejects_nonpositive_conductivity(self):
        with pytest.raises(ValueError):
            Material("bad", 0.0)

    def test_get_material(self):
        assert get_material("bulk-si").conductivity == 120.0

    def test_get_material_unknown(self):
        with pytest.raises(KeyError, match="unknown material"):
            get_material("unobtainium")

    def test_all_materials_positive(self):
        for material in MATERIALS.values():
            assert material.conductivity > 0


class TestLayer:
    def test_rejects_nonpositive_thickness(self):
        with pytest.raises(ValueError):
            Layer("l", 0.0, get_material("bulk-si"), get_material("bulk-si"))

    def test_rejects_zero_divisions(self):
        with pytest.raises(ValueError):
            Layer("l", 1e-3, get_material("bulk-si"),
                  get_material("bulk-si"), divisions=0)

    def test_with_conductivity(self):
        layer = Layer("l", 1e-3, get_material("cu-metal"),
                      get_material("epoxy-fillet"))
        swept = layer.with_conductivity(3.0)
        assert swept.material_in.conductivity == 3.0
        assert swept.material_out.conductivity == layer.material_out.conductivity
        assert layer.material_in.conductivity == 12.0  # original untouched


class TestStackBuilders:
    def test_planar_stack_layer_order(self, baseline_die):
        stack = build_planar_stack(baseline_die)
        names = [layer.name for layer in stack.layers]
        assert names.index("heat-sink") < names.index("bulk-si-1")
        assert names.index("bulk-si-1") < names.index("metal-1")
        assert names.index("metal-1") < names.index("package")
        assert names[-1] == "motherboard"

    def test_planar_stack_power(self, baseline_die):
        stack = build_planar_stack(baseline_die)
        assert stack.total_power == pytest.approx(92.0)

    def test_planar_si_thickness_matches_table2(self, baseline_die):
        stack = build_planar_stack(baseline_die)
        assert stack.layer("bulk-si-1").thickness_m == pytest.approx(750e-6)
        assert stack.layer("metal-1").thickness_m == pytest.approx(12e-6)

    def test_3d_stack_has_bond_and_second_die(self, baseline_die):
        cache = stacked_cache_die("sram-8mb", baseline_die)
        stack = build_3d_stack(baseline_die, cache, die2_metal="cu")
        names = [layer.name for layer in stack.layers]
        for expected in ("bond", "metal-2", "bulk-si-2"):
            assert expected in names
        # Face-to-face: metal-1 and metal-2 sandwich the bond layer.
        assert names.index("metal-1") + 1 == names.index("bond")
        assert names.index("bond") + 1 == names.index("metal-2")

    def test_3d_stack_dram_uses_al_metal(self, baseline_die):
        cache = stacked_cache_die("dram-64mb", baseline_die)
        stack = build_3d_stack(baseline_die, cache, die2_metal="al")
        metal2 = stack.layer("metal-2")
        assert metal2.thickness_m == pytest.approx(2e-6)
        assert metal2.material_in.conductivity == 9.0

    def test_3d_stack_die2_is_thinned(self, baseline_die):
        cache = stacked_cache_die("sram-8mb", baseline_die)
        stack = build_3d_stack(baseline_die, cache)
        assert stack.layer("bulk-si-2").thickness_m == pytest.approx(20e-6)

    def test_3d_stack_total_power(self, baseline_die):
        cache = stacked_cache_die("sram-8mb", baseline_die)
        stack = build_3d_stack(baseline_die, cache)
        assert stack.total_power == pytest.approx(106.0)

    def test_3d_requires_matching_outlines(self, baseline_die):
        from repro.floorplan.blocks import uniform_floorplan

        small = uniform_floorplan("small", 5.0, 5.0, 1.0)
        with pytest.raises(ValueError, match="matching die outlines"):
            build_3d_stack(baseline_die, small)

    def test_3d_rejects_unknown_metal(self, baseline_die):
        cache = stacked_cache_die("sram-8mb", baseline_die)
        with pytest.raises(ValueError, match="die2_metal"):
            build_3d_stack(baseline_die, cache, die2_metal="w")

    def test_replace_layer(self, baseline_die):
        stack = build_planar_stack(baseline_die)
        swept = stack.replace_layer(
            stack.layer("metal-1").with_conductivity(3.0)
        )
        assert swept.layer("metal-1").material_in.conductivity == 3.0
        assert stack.layer("metal-1").material_in.conductivity == 12.0

    def test_replace_unknown_layer_raises(self, baseline_die):
        stack = build_planar_stack(baseline_die)
        with pytest.raises(KeyError):
            stack.replace_layer(
                Layer("ghost", 1e-3, get_material("bulk-si"),
                      get_material("bulk-si"))
            )

    def test_duplicate_layer_names_rejected(self, baseline_die):
        layer = Layer("x", 1e-3, get_material("bulk-si"),
                      get_material("bulk-si"))
        with pytest.raises(ValueError, match="duplicate"):
            ThermalStack("s", 0.01, 0.01, [layer, layer])

    def test_die_bigger_than_domain_rejected(self):
        from repro.floorplan.blocks import uniform_floorplan

        huge = uniform_floorplan("huge", 50.0, 50.0, 10.0)
        with pytest.raises(ValueError, match="does not fit"):
            build_planar_stack(huge)
