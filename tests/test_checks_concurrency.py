"""Tests for the RPL5xx concurrency-discipline pass (flow-sensitive).

Fixture modules are tiny distillations of the real runner shapes the
pass exists to police: lease claim/release pairing, journal appends
under lease custody, subprocess/socket lifetimes, explicit clocks.
The mutation tests then take the *real* scheduler/node sources, break
them the way a careless edit would, and assert the pass catches each
injected violation with the expected code.
"""

import ast
import textwrap
from pathlib import Path

from repro.checks.diagnostics import PyFile
from repro.checks.engine import package_root, run_lint
from repro.checks.flow import concurrency

SRC = Path(package_root())


def pf_of(src, rel="runner/mod.py"):
    src = textwrap.dedent(src)
    return PyFile(rel=rel, module="fixture", tree=ast.parse(src),
                  lines=src.splitlines())


def codes(*pfs):
    return [d.code for d in concurrency.run(list(pfs))]


class TestRPL501Leases:
    def test_leak_on_exception_path(self):
        pf = pf_of("""
            def dispatch(leases, fp, ex, now):
                lease = leases.claim(fp, "t", ex, 1, now)
                try:
                    send(ex, fp)
                except OSError:
                    return False
                leases.release(fp)
                return True
        """)
        assert codes(pf) == ["RPL501"]

    def test_release_in_finally_is_clean(self):
        pf = pf_of("""
            def dispatch(leases, fp, ex, now):
                lease = leases.claim(fp, "t", ex, 1, now)
                try:
                    send(ex, fp)
                finally:
                    leases.release(fp)
                return True
        """)
        assert codes(pf) == []

    def test_returning_the_lease_transfers_custody(self):
        pf = pf_of("""
            def acquire(leases, fp, ex, now):
                lease = leases.claim(fp, "t", ex, 1, now)
                return lease
        """)
        assert codes(pf) == []

    def test_self_claim_needs_class_level_discharge(self):
        pf = pf_of("""
            class Sched:
                def grab(self, fp, now):
                    self._leases.claim(fp, "t", "e", 1, now)
        """)
        assert codes(pf) == ["RPL501"]

    def test_self_claim_with_sibling_release_is_clean(self):
        pf = pf_of("""
            class Sched:
                def grab(self, fp, now):
                    self._leases.claim(fp, "t", "e", 1, now)
                def drop(self, fp):
                    self._leases.release(fp)
        """)
        assert codes(pf) == []

    def test_local_leasetable_ctor_is_recognised(self):
        pf = pf_of("""
            from repro.runner.lease import LeaseTable

            def run(fp, now):
                table = LeaseTable(5.0)
                table.claim(fp, "t", "e", 1, now)
        """)
        assert codes(pf) == ["RPL501"]

    def test_non_runner_files_are_out_of_scope(self):
        pf = pf_of("""
            class Sched:
                def grab(self, fp, now):
                    self._leases.claim(fp, "t", "e", 1, now)
        """, rel="thermal/solver.py")
        assert codes(pf) == []


class TestRPL502JournalDiscipline:
    DUPLICATE_BRANCH = """
        class Sched:
            def __init__(self):
                self._journal = Journal("p")
                self._leases = LeaseTable(5.0)
            def on_outcome(self, executor_id, outcome):
                fp = outcome["fp"]
                if fp in self._done:
                    {first}
                    {second}
                    return
                self._leases.release(fp)
                self._journal.append({{"ok": fp}})
    """

    def test_append_before_lease_touch_is_flagged(self):
        pf = pf_of(self.DUPLICATE_BRANCH.format(
            first='self._journal.append({"dup": fp})',
            second='self._leases.release(fp, executor_id)',
        ))
        assert codes(pf) == ["RPL502"]

    def test_release_before_append_is_clean(self):
        pf = pf_of(self.DUPLICATE_BRANCH.format(
            first='self._leases.release(fp, executor_id)',
            second='self._journal.append({"dup": fp})',
        ))
        assert codes(pf) == []

    def test_lease_param_seeds_custody(self):
        pf = pf_of("""
            class Sched:
                def __init__(self):
                    self._journal = Journal("p")
                    self._leases = LeaseTable(5.0)
                def reclaim(self, lease, why):
                    self._journal.append({"requeue": why})
        """)
        assert codes(pf) == []

    def test_journal_only_class_is_exempt(self):
        pf = pf_of("""
            class Audit:
                def __init__(self):
                    self._journal = Journal("p")
                def note(self, what):
                    self._journal.append({"note": what})
        """)
        assert codes(pf) == []


class TestRPL503Resources:
    def test_subprocess_leak_on_exception_path(self):
        pf = pf_of("""
            import subprocess

            def launch(cmd):
                proc = subprocess.Popen(cmd)
                try:
                    wait_ready()
                except TimeoutError:
                    return None
                return proc
        """)
        assert codes(pf) == ["RPL503"]

    def test_kill_in_finally_is_clean(self):
        pf = pf_of("""
            import subprocess

            def launch(cmd):
                proc = subprocess.Popen(cmd)
                try:
                    wait_ready()
                finally:
                    proc.kill()
        """)
        assert codes(pf) == []

    def test_with_open_is_clean(self):
        pf = pf_of("""
            def read(path):
                with open(path) as fh:
                    return fh.read()
        """)
        assert codes(pf) == []

    def test_returning_the_handle_transfers_custody(self):
        pf = pf_of("""
            import socket

            def connect(port):
                sock = socket.create_connection(("127.0.0.1", port))
                return sock
        """)
        assert codes(pf) == []

    def test_self_attr_without_class_close(self):
        # the pre-fix repro.runner.node.Node shape: socket stored on
        # self in __init__, no close anywhere in the class
        pf = pf_of("""
            import socket

            class Node:
                def __init__(self, port):
                    self.sock = socket.create_connection(("h", port))
        """)
        assert codes(pf) == ["RPL503"]

    def test_self_attr_with_class_close_is_clean(self):
        pf = pf_of("""
            import socket

            class Node:
                def __init__(self, port):
                    self.sock = socket.create_connection(("h", port))
                def close(self):
                    self.sock.close()
        """)
        assert codes(pf) == []

    def test_discarded_creator_call_is_flagged(self):
        pf = pf_of("""
            import subprocess

            def fire(cmd):
                subprocess.Popen(cmd)
        """)
        assert codes(pf) == ["RPL503"]


class TestRPL504Clock:
    def test_ambient_clock_with_now_param(self):
        pf = pf_of("""
            import time

            def renew(self, executor_id, now):
                return time.monotonic() + 5.0
        """)
        assert codes(pf) == ["RPL504"]

    def test_threaded_clock_is_clean(self):
        pf = pf_of("""
            def renew(self, executor_id, now):
                return now + 5.0
        """)
        assert codes(pf) == []

    def test_no_clock_param_no_opinion(self):
        # functions without an explicit clock parameter are RPL103's
        # territory (allowlisted ambient-clock call sites), not ours
        pf = pf_of("""
            import time

            def poll(self):
                return time.monotonic()
        """)
        assert codes(pf) == []


class TestMutationsOnRealSources:
    """Acceptance: injected violations are caught with the right code."""

    def _pf_from_source(self, rel, text):
        return PyFile(rel=rel, module="mutant", tree=ast.parse(text),
                      lines=text.splitlines())

    def test_scheduler_journal_swap_triggers_rpl502(self):
        # Appends are funneled through _journal_append (which also
        # notifies the event hook); the pass treats funnel calls as
        # appends at the call site, so swapping the duplicate branch's
        # release below the append is still caught.
        text = (SRC / "runner" / "scheduler.py").read_text()
        fixed = (
            "            self._leases.release(fingerprint, executor_id)\n"
            "            self._journal_append(self._entry(\n"
            "                outcome, executor_id, final=False, "
            "duplicate=True,\n"
            "            ))\n"
        )
        broken = (
            "            self._journal_append(self._entry(\n"
            "                outcome, executor_id, final=False, "
            "duplicate=True,\n"
            "            ))\n"
            "            self._leases.release(fingerprint, executor_id)\n"
        )
        assert fixed in text, "scheduler duplicate branch moved; update test"
        mutant = self._pf_from_source(
            "runner/scheduler.py", text.replace(fixed, broken)
        )
        assert "RPL502" in codes(mutant)

    def test_node_without_close_triggers_rpl503(self):
        text = (SRC / "runner" / "node.py").read_text()
        assert "self.sock.close()" in text, "node close moved; update test"
        mutant = self._pf_from_source(
            "runner/node.py", text.replace("self.sock.close()", "pass")
        )
        assert "RPL503" in codes(mutant)

    def test_lease_leak_injected_into_fixture_module(self):
        clean = pf_of("""
            def dispatch(leases, fp, ex, now):
                lease = leases.claim(fp, "t", ex, 1, now)
                try:
                    send(ex, fp)
                finally:
                    leases.release(fp)
        """)
        assert codes(clean) == []
        leaky_src = textwrap.dedent("""
            def dispatch(leases, fp, ex, now):
                lease = leases.claim(fp, "t", ex, 1, now)
                try:
                    send(ex, fp)
                finally:
                    log(fp)
        """)
        mutant = PyFile(rel="runner/mod.py", module="fixture",
                        tree=ast.parse(leaky_src),
                        lines=leaky_src.splitlines())
        assert codes(mutant) == ["RPL501"]


class TestRealTreeAndExplanations:
    def test_shipped_runner_is_clean(self):
        report = run_lint(select=["RPL5"], baseline_path=None)
        assert [d.render() for d in report.diagnostics] == []

    def test_explanations_cover_all_rpl5_codes(self):
        assert set(concurrency.EXPLANATIONS) == {
            "RPL501", "RPL502", "RPL503", "RPL504",
        }
        for code, exp in concurrency.EXPLANATIONS.items():
            rendered = exp.render()
            assert code in rendered
            assert "why:" in rendered
            assert "example violation:" in rendered
            assert "fix pattern:" in rendered
