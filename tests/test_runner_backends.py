"""Backend interface + scheduler behavior over the inproc backend.

The inproc backend runs experiments synchronously in the test process,
so every scheduler-level property — lease reclaim, work stealing,
duplicate-completion idempotence, executor-crash failover — is exercised
here deterministically and fast.  The subprocess backends get the same
acceptance treatment (plus a real SIGKILL) in
``tests/test_runner_failover.py``.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.resilience.faults import FaultInjector
from repro.runner.backends import make_backend, parse_backend_spec
from repro.runner.journal import read_journal
from repro.runner.supervisor import (
    CampaignConfig,
    RetryPolicy,
    run_campaign,
)
from repro.runner.tasks import CampaignTask

from tests.campaign_fixtures import FAST_REGISTRY_SPEC

FAST_RETRY = RetryPolicy(max_retries=1, backoff_base_s=0.01)


def _task(task_id, experiment_id="quick", **kwargs):
    return CampaignTask(
        task_id=task_id,
        experiment_id=experiment_id,
        kwargs=kwargs,
        seed=7,
        registry_spec=FAST_REGISTRY_SPEC,
    )


def _config(tmp_path, **overrides):
    base = dict(
        workers=2,
        task_timeout_s=30.0,
        retry=FAST_RETRY,
        journal_path=str(tmp_path / "journal.jsonl"),
        backend="inproc",
        poll_interval_s=0.001,
    )
    base.update(overrides)
    return CampaignConfig(**base)


class TestBackendSpec:
    def test_parse_known_specs(self):
        assert parse_backend_spec("local") == {"name": "local"}
        assert parse_backend_spec("inproc") == {"name": "inproc"}
        assert parse_backend_spec("nodes:3") == {
            "name": "nodes", "n_nodes": 3,
        }

    @pytest.mark.parametrize("spec", [
        "remote", "nodes", "nodes:0", "nodes:x", "local:2",
    ])
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            parse_backend_spec(spec)

    def test_config_validates_backend_eagerly(self):
        with pytest.raises(ValueError, match="unknown backend"):
            CampaignConfig(backend="cloud")

    def test_make_backend_dispatches(self):
        config = CampaignConfig(backend="nodes:2")
        assert make_backend("local", config).name == "local"
        assert make_backend("inproc", config).name == "inproc"
        assert make_backend("nodes:2", config).name == "nodes:2"


class TestInprocHappyPath:
    def test_campaign_runs_and_reports_backend(self, tmp_path):
        tasks = [_task("a"), _task("b", "quick-2"), _task("c", value=3)]
        report = run_campaign(tasks, _config(tmp_path))
        assert report.counts == {"ok": 3, "failed": 0, "skipped": 0}
        assert report.backend == "inproc"
        assert not report.degraded
        assert report.per_executor["inproc-0"]["ok"] == 3

    def test_worker_chaos_simulated_and_retried(self, tmp_path):
        injector = FaultInjector(
            forced_failures={"worker-crash:flaky": 1}
        )
        report = run_campaign(
            [_task("flaky")], _config(tmp_path, injector=injector)
        )
        assert report.counts == {"ok": 1, "failed": 0, "skipped": 0}
        assert report.taxonomy == {"crash": 1}
        assert report.retries_used == 1


class TestExecutorCrashFailover:
    def test_crash_reclaims_and_steals_onto_new_incarnation(self, tmp_path):
        tasks = [_task(f"t{i}", value=i) for i in range(3)]
        injector = FaultInjector(forced_failures={"executor-crash": 1})
        report = run_campaign(
            tasks, _config(tmp_path, workers=1, injector=injector)
        )
        # Every task completes despite the executor dying with work.
        assert report.counts == {"ok": 3, "failed": 0, "skipped": 0}
        assert report.executors_lost == 1
        assert report.leases_reclaimed >= 1
        assert report.work_stolen >= 1
        assert report.taxonomy.get("executor-lost", 0) >= 1
        # Losing an executor is degraded even though nothing failed.
        assert report.degraded and report.counts["failed"] == 0
        # The stolen work landed on the next incarnation.
        assert report.per_executor["inproc-1"]["ok"] >= 1

    def test_reclaim_budget_finalizes_unlucky_task(self, tmp_path):
        injector = FaultInjector(forced_failures={"executor-crash": -1})
        report = run_campaign(
            [_task("doomed")],
            _config(
                tmp_path, workers=1, injector=injector,
                lease_reclaim_budget=2,
            ),
        )
        entry = report.tasks[0]
        assert entry["status"] == "executor-lost"
        assert report.counts["failed"] == 1
        assert report.leases_reclaimed == 3  # budget + the final one
        assert report.degraded


class TestDuplicateCompletionIdempotence:
    """Two executors complete the same fingerprint; it counts once.

    Since lease fencing landed, a completion flushed by a healing
    partition *after* its lease was reclaimed carries a stale epoch and
    is journaled ``fenced`` (a zombie write, rejected), not
    ``duplicate`` — the fresh attempt's ``ok`` is the one that counts.
    """

    def _partition_campaign(self, tmp_path):
        tasks = [_task(f"t{i}", value=i) for i in range(2)]
        injector = FaultInjector(forced_failures={"partition": 1})
        config = _config(
            tmp_path,
            workers=1,
            injector=injector,
            # TTL far shorter than the simulated partition, so leases
            # expire mid-blackhole and the work is re-run before the
            # partitioned executor's completions flush.
            lease_ttl_s=0.001,
        )
        return tasks, run_campaign(tasks, config)

    def test_first_fresh_journaled_ok_wins(self, tmp_path):
        tasks, report = self._partition_campaign(tmp_path)
        # The healed partition's late completions ran under reclaimed
        # leases: every one is fenced out of aggregation.
        assert report.fenced_completions >= 1
        # The report counts each task exactly once, all ok.
        assert report.counts == {"ok": 2, "failed": 0, "skipped": 0}
        assert len(report.tasks) == 2

    def test_fenced_journaled_for_audit_not_resume(self, tmp_path):
        tasks, report = self._partition_campaign(tmp_path)
        entries, torn = read_journal(report.journal_path)
        assert torn == 0
        for task in tasks:
            ok_lines = [
                e for e in entries
                if e["fingerprint"] == task.fingerprint
                and e["status"] == "ok"
            ]
            winners = [
                e for e in ok_lines
                if not e.get("duplicate") and not e.get("fenced")
            ]
            zombies = [e for e in ok_lines if e.get("fenced")]
            assert len(winners) == 1
            assert winners[0].get("lease_epoch", 0) >= 1
            for zombie in zombies:
                # Audit lines name the zombie and its stale token.
                assert zombie["executor"] != ""
                assert zombie["lease_epoch"] < winners[0]["lease_epoch"]
        # Resume trusts exactly the winners: nothing re-runs.
        resumed = run_campaign(
            tasks, _config(tmp_path, resume=True)
        )
        assert resumed.counts == {"ok": 2, "failed": 0, "skipped": 2}

    def test_repro_verify_passes_on_duplicate_journal(self, tmp_path, capsys):
        _tasks, report = self._partition_campaign(tmp_path)
        assert cli_main(["verify", report.journal_path]) == 0
        assert "CRC failure" in capsys.readouterr().out


class TestDuplicateDelivery:
    def test_ghost_delivery_discarded_from_aggregation(self, tmp_path):
        tasks = [_task("twice"), _task("once", value=2)]
        injector = FaultInjector(
            forced_failures={"duplicate-delivery:twice": 1}
        )
        report = run_campaign(tasks, _config(tmp_path, injector=injector))
        assert report.counts == {"ok": 2, "failed": 0, "skipped": 0}
        assert report.duplicate_completions == 1
        assert not report.degraded  # both copies agreed; nothing lost


class TestLeaseStall:
    def test_stalled_renewals_expire_and_work_is_rerun(self, tmp_path):
        # t0 sleeps for well over the lease TTL, so with renewals
        # stalled the queued t1's lease is guaranteed to expire while
        # t0 executes (workers=2 claims both leases up front; the
        # backend runs one task per poll).
        tasks = [_task("t0", "slow", sleep_s=0.05), _task("t1", value=1)]
        injector = FaultInjector(forced_failures={"lease-stall": 1})
        report = run_campaign(
            tasks,
            _config(
                tmp_path, workers=2, injector=injector, lease_ttl_s=0.01,
            ),
        )
        assert report.counts == {"ok": 2, "failed": 0, "skipped": 0}
        assert report.leases_reclaimed >= 1


class TestBitIdenticalResume:
    """Acceptance: chaos + resume == unfaulted run, bit for bit."""

    @staticmethod
    def _result_map(report):
        return {
            t["task_id"]: json.dumps(t["result"], sort_keys=True)
            for t in report.tasks
        }

    def test_inproc_crash_then_resume_matches_clean_run(self, tmp_path):
        tasks = [_task(f"t{i}", value=i) for i in range(3)]
        clean = run_campaign(tasks, _config(tmp_path / "clean"))

        injector = FaultInjector(forced_failures={
            "executor-crash": 1,
            "worker-crash:t1": 1,
        })
        faulted = run_campaign(
            tasks,
            _config(
                tmp_path / "chaos", workers=1, injector=injector,
                retry=RetryPolicy(max_retries=0),
            ),
        )
        assert faulted.degraded  # executor loss and/or the failed task
        resumed = run_campaign(
            tasks, _config(tmp_path / "chaos", resume=True)
        )
        assert resumed.counts["failed"] == 0
        assert self._result_map(resumed) == self._result_map(clean)
        # Fingerprints (the identity of what ran) match too.
        assert {t["fingerprint"] for t in resumed.tasks} == {
            t["fingerprint"] for t in clean.tasks
        }


class TestNodeClose:
    """Node.close() releases the control socket deterministically.

    Without it the scheduler only notices a cleanly exiting node when
    its heartbeats stop — a full lease-timeout later.
    """

    def test_close_releases_control_socket(self, tmp_path):
        import argparse
        import socket

        from repro.runner.node import Node

        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        node = None
        conn = None
        try:
            node = Node(argparse.Namespace(
                node_id="n1",
                workers=1,
                heartbeat_every=0.2,
                poll_interval=0.02,
                chaos="",
                scratch=str(tmp_path),
                heartbeat_timeout=5.0,
                kill_grace=0.5,
                connect=port,
            ))
            conn, _addr = listener.accept()
            conn.settimeout(5.0)
            assert node.sock.fileno() != -1
            node.close()
            assert node.sock.fileno() == -1
            node.close()  # idempotent
            # the scheduler side sees EOF immediately, not a timeout
            assert conn.recv(1024) == b""
        finally:
            if conn is not None:
                conn.close()
            listener.close()
            if node is not None:
                node.pool.kill_all(grace_s=0.1)
