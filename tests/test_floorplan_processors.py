"""Tests for the Core 2 Duo and Pentium 4 floorplans and stacking analysis."""

import math

import pytest

from repro.floorplan import (
    CORE2_TOTAL_POWER_W,
    P4_TOTAL_POWER_W,
    core2duo_floorplan,
    pentium4_3d_floorplans,
    pentium4_planar_floorplan,
    pentium4_worstcase_3d,
    power_density_map,
    power_density_report,
    repair_hotspots,
    stacked_cache_die,
)
from repro.floorplan.blocks import Block, Floorplan, FloorplanError
from repro.floorplan.core2duo import (
    L2_4MB_POWER_W,
    STACKED_32MB_DRAM_POWER_W,
    STACKED_64MB_DRAM_POWER_W,
    STACKED_8MB_SRAM_POWER_W,
)
from repro.floorplan.pentium4 import P4_3D_POWER_FACTOR


class TestCore2Duo:
    def test_total_power_is_92w(self):
        assert core2duo_floorplan().total_power == pytest.approx(
            CORE2_TOTAL_POWER_W
        )

    def test_l2_occupies_about_half_the_die(self):
        plan = core2duo_floorplan()
        l2 = plan.block("L2")
        assert 0.4 <= l2.area / plan.die_area <= 0.55

    def test_hotspots_are_fp_rs_ldst(self):
        # Figure 6: "The greatest concentration of power is in the FP
        # units, reservation stations, and the load/store unit".
        plan = core2duo_floorplan()
        densities = sorted(
            plan.blocks, key=lambda b: b.power_density, reverse=True
        )
        top_names = {b.name.split("-")[0] for b in densities[:6]}
        assert top_names == {"FP", "RS", "LdSt"}

    def test_has_two_symmetric_cores(self):
        plan = core2duo_floorplan()
        c1 = [b for b in plan.blocks if b.name.endswith("-c1")]
        c2 = [b for b in plan.blocks if b.name.endswith("-c2")]
        assert len(c1) == len(c2) == 9
        assert sum(b.power for b in c1) == pytest.approx(
            sum(b.power for b in c2)
        )

    def test_no_l2_variant_is_smaller(self):
        base = core2duo_floorplan()
        nol2 = core2duo_floorplan(with_l2=False)
        assert nol2.die_area < base.die_area
        assert "L2" not in nol2
        assert "DRAMTags" in nol2

    def test_stacked_cache_powers_match_figure7(self):
        base = core2duo_floorplan()
        assert stacked_cache_die("sram-8mb", base).total_power == (
            pytest.approx(STACKED_8MB_SRAM_POWER_W)
        )
        assert stacked_cache_die("dram-32mb", base).total_power == (
            pytest.approx(STACKED_32MB_DRAM_POWER_W)
        )
        assert stacked_cache_die("dram-64mb", base).total_power == (
            pytest.approx(STACKED_64MB_DRAM_POWER_W)
        )

    def test_figure7_12mb_totals_106w(self):
        # "increases the total power by 14W to 106W"
        base = core2duo_floorplan()
        cache = stacked_cache_die("sram-8mb", base)
        assert base.total_power + cache.total_power == pytest.approx(106.0)

    def test_stacked_cache_matches_footprint(self):
        base = core2duo_floorplan()
        cache = stacked_cache_die("dram-64mb", base)
        assert cache.die_width == base.die_width
        assert cache.die_height == base.die_height

    def test_unknown_cache_kind_raises(self):
        with pytest.raises(FloorplanError):
            stacked_cache_die("sram-1gb", core2duo_floorplan())

    def test_l2_power_matches_figure7(self):
        assert core2duo_floorplan().block("L2").power == pytest.approx(
            L2_4MB_POWER_W
        )


class TestPentium4:
    def test_total_power_is_147w(self):
        assert pentium4_planar_floorplan().total_power == pytest.approx(
            P4_TOTAL_POWER_W
        )

    def test_scheduler_is_hottest(self):
        # Section 4: "the planar floorplan's hottest area over the
        # instruction scheduler".
        plan = pentium4_planar_floorplan()
        hottest = max(plan.blocks, key=lambda b: b.power_density)
        assert hottest.name == "Sched"

    def test_simd_between_fp_and_rf(self):
        # Figure 9: the SIMD unit is intentionally between FP and RF.
        plan = pentium4_planar_floorplan()
        fp, simd, rf = plan.block("FP"), plan.block("SIMD"), plan.block("RF")
        assert fp.x2 <= simd.x + 1e-9
        assert simd.x2 <= rf.x + 1e-9

    def test_3d_power_is_85_percent(self):
        bottom, top = pentium4_3d_floorplans()
        total = bottom.total_power + top.total_power
        assert total == pytest.approx(
            P4_TOTAL_POWER_W * P4_3D_POWER_FACTOR, rel=1e-6
        )

    def test_3d_footprint_is_about_half(self):
        planar = pentium4_planar_floorplan()
        bottom, _ = pentium4_3d_floorplans()
        ratio = bottom.die_area / planar.die_area
        assert 0.45 <= ratio <= 0.56

    def test_higher_power_die_is_bottom(self):
        bottom, top = pentium4_3d_floorplans()
        assert bottom.total_power > top.total_power

    def test_dcache_overlaps_functional_units(self):
        # Figure 10: the 3D floorplan overlaps D$ (top) with F (bottom).
        bottom, top = pentium4_3d_floorplans()
        dcache, funits = top.block("D$"), bottom.block("F")
        x_overlap = min(dcache.x2, funits.x2) - max(dcache.x, funits.x)
        y_overlap = min(dcache.y2, funits.y2) - max(dcache.y, funits.y)
        assert x_overlap > 0 and y_overlap > 0

    def test_fp_overlaps_simd_rf_area(self):
        bottom, top = pentium4_3d_floorplans()
        fp, simd = top.block("FP"), bottom.block("SIMD")
        x_overlap = min(fp.x2, simd.x2) - max(fp.x, simd.x)
        assert x_overlap > 0

    def test_density_ratio_is_moderate(self):
        # Section 4: iterative repair yields ~1.3x (we allow up to 1.5).
        planar = pentium4_planar_floorplan()
        bottom, top = pentium4_3d_floorplans()
        report = power_density_report(bottom, top, reference=planar)
        assert 1.15 <= report.peak_vs_reference <= 1.55

    def test_worstcase_is_exactly_2x_density(self):
        planar = pentium4_planar_floorplan()
        wb, wt = pentium4_worstcase_3d()
        report = power_density_report(wb, wt, reference=planar)
        assert report.peak_vs_reference == pytest.approx(2.0, rel=0.02)
        assert report.total_power == pytest.approx(P4_TOTAL_POWER_W)

    def test_worstcase_footprint_is_exactly_half(self):
        planar = pentium4_planar_floorplan()
        wb, _ = pentium4_worstcase_3d()
        assert wb.die_area == pytest.approx(planar.die_area / 2, rel=1e-6)


class TestStackingAnalysis:
    def _simple_pair(self):
        bottom = Floorplan("b", 10, 10, [Block("hot", 0, 0, 2, 2, 20.0)])
        top = Floorplan("t", 10, 10, [Block("warm", 0, 0, 2, 2, 8.0)])
        return bottom, top

    def test_density_map_adds_dies(self):
        bottom, top = self._simple_pair()
        combined = power_density_map(bottom, top, nx=10, ny=10)
        assert combined.max() == pytest.approx(7.0)  # (20 + 8) / 4 mm^2

    def test_density_map_requires_matching_outline(self):
        bottom, _ = self._simple_pair()
        other = Floorplan("t", 9, 10)
        with pytest.raises(FloorplanError, match="outline"):
            power_density_map(bottom, other)

    def test_repair_moves_block_off_hotspot(self):
        bottom, top = self._simple_pair()
        repaired, iterations = repair_hotspots(
            bottom, top, target_peak_density=5.5, nx=20, ny=20
        )
        assert iterations >= 1
        combined = power_density_map(bottom, repaired, nx=20, ny=20)
        assert combined.max() <= 5.5 + 1e-6
        # Bottom die untouched.
        assert bottom.block("hot").power == 20.0

    def test_repair_noop_when_already_under_target(self):
        bottom, top = self._simple_pair()
        repaired, iterations = repair_hotspots(
            bottom, top, target_peak_density=100.0
        )
        assert iterations == 0
        assert repaired.block("warm").x == top.block("warm").x

    def test_repair_rejects_bad_target(self):
        bottom, top = self._simple_pair()
        with pytest.raises(FloorplanError):
            repair_hotspots(bottom, top, target_peak_density=0.0)

    def test_repair_gives_up_on_bottom_die_hotspot(self):
        # The hotspot comes entirely from the fixed bottom die: nothing
        # the top-die loop can do.
        bottom = Floorplan("b", 10, 10, [Block("hot", 0, 0, 1, 1, 30.0)])
        top = Floorplan("t", 10, 10, [Block("cool", 5, 5, 2, 2, 1.0)])
        repaired, _ = repair_hotspots(bottom, top, target_peak_density=10.0)
        combined = power_density_map(bottom, repaired)
        assert combined.max() > 10.0  # unfixable, returned best effort
