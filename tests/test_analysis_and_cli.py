"""Tests for the analysis/reporting utilities and the CLI."""

import numpy as np
import pytest

from repro.analysis.compare import ComparisonRow, compare_to_paper
from repro.analysis.heatmap import ascii_heatmap
from repro.analysis.tables import (
    format_dict,
    format_figure5,
    format_table,
    format_table5,
)
from repro.cli import build_parser, main


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "2.50" in text
        assert "30" in text

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text

    def test_format_dict(self):
        text = format_dict({"alpha": 1, "beta": 2.5}, title="t")
        assert "alpha" in text and "2.50" in text

    def test_format_figure5(self):
        cpma = {"svm": {"2D 4MB": 3.0, "3D 12MB": 3.0, "3D 32MB": 1.0,
                        "3D 64MB": 1.0}}
        bw = {"svm": {"2D 4MB": 8.0, "3D 12MB": 8.0, "3D 32MB": 0.0,
                      "3D 64MB": 0.0}}
        text = format_figure5(cpma, bw)
        assert "svm" in text
        assert "Avg" in text  # the figure's average group

    def test_format_table5(self):
        rows = [{"name": "Baseline", "vcc": 1.0, "freq": 1.0,
                 "power_w": 147.0, "power_pct": 100.0, "perf_pct": 100.0,
                 "temp_c": 99.0}]
        text = format_table5(rows)
        assert "Baseline" in text
        assert "147.00" in text

    def test_format_table5_handles_missing_temp(self):
        rows = [{"name": "X", "vcc": 1.0, "freq": 1.0, "power_w": 1.0,
                 "power_pct": 1.0, "perf_pct": 1.0, "temp_c": None}]
        assert "-" in format_table5(rows)


class TestAsciiHeatmap:
    def test_renders_extremes(self):
        field = np.array([[0.0, 1.0], [2.0, 10.0]])
        text = ascii_heatmap(field, width=16)
        assert "@" in text       # hottest ramp char
        assert "scale:" in text

    def test_title_and_scale(self):
        field = np.zeros((4, 4))
        text = ascii_heatmap(field, width=8, title="map")
        assert text.splitlines()[0] == "map"
        assert "0.00" in text

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.zeros(5))

    def test_explicit_range(self):
        field = np.full((4, 4), 5.0)
        text = ascii_heatmap(field, vmin=0.0, vmax=10.0)
        # Mid-scale value: neither the coolest nor the hottest char.
        body = text.splitlines()[0]
        assert "@" not in body and body.strip() != ""

    def test_orientation_bottom_row_first(self):
        field = np.zeros((8, 8))
        field[0:2, :] = 100.0  # hot stripe at y=0 (bottom)
        text = ascii_heatmap(field, width=8)
        lines = text.splitlines()
        assert "@" in lines[-2]      # bottom rendered last (before scale)
        assert "@" not in lines[0]


class TestCompare:
    def test_comparison_row_deviation(self):
        row = ComparisonRow("x", paper=100.0, measured=110.0, unit="C")
        assert row.deviation_pct == pytest.approx(10.0)
        assert "+10.0%" in row.render()

    def test_comparison_row_no_paper_value(self):
        row = ComparisonRow("x", paper=None, measured=1.0)
        assert row.deviation_pct is None
        assert "-" in row.render()

    def test_compare_to_paper_skips_missing(self):
        text = compare_to_paper(
            {"a": 1.0, "b": 2.0}, {"a": 1.1}, title="T"
        )
        assert "a" in text
        assert "\nb" not in text


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure-5" in out
        assert "table-4" in out

    def test_run_table4(self, capsys):
        assert main(["run", "table-4"]) == 0
        out = capsys.readouterr().out
        assert "total_gain_pct" in out

    def test_run_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "figure-42"])

    def test_thermal_map(self, capsys):
        assert main(["thermal-map", "--nx", "20", "--width", "32"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6b" in out
        assert "scale:" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_memory_command_small(self, capsys):
        assert main([
            "memory", "--workloads", "svd", "--scale", "16",
            "--length-factor", "0.2",
        ]) == 0
        out = capsys.readouterr().out
        assert "svd" in out
        assert "Figure 8a" in out
