"""Dependency-chain edge cases: the replayer completes or raises — never hangs.

Satellite coverage for ``traces/deps.py`` and the replay dependency rule:
self-dependencies, forward dependencies, long same-cpu chains, and
cross-cpu chains.
"""

import pytest

from repro.memsim import baseline_config
from repro.memsim.replay import replay_trace
from repro.resilience import TraceCorruptionError, make_raw_record
from repro.traces.deps import DependencyTracker
from repro.traces.record import AccessType, NO_DEP, TraceRecord, validate_trace


def load(uid, cpu=0, address=None, dep=NO_DEP):
    address = address if address is not None else 0x1000 + uid * 8192
    return TraceRecord(uid, cpu, AccessType.LOAD, address, 0x400000, dep)


class TestDependencyTracker:
    def test_chain_through_registers(self):
        tracker = DependencyTracker()
        tracker.produce("ptr", 3)
        assert tracker.dependency_on("ptr") == 3
        tracker.produce("ptr", 9)  # overwritten by a later load
        assert tracker.dependency_on("ptr") == 9

    def test_unknown_register_and_none(self):
        tracker = DependencyTracker()
        assert tracker.dependency_on("never-written") == NO_DEP
        assert tracker.dependency_on(None) == NO_DEP

    def test_clear_and_reset(self):
        tracker = DependencyTracker()
        tracker.produce("a", 1)
        tracker.produce("b", 2)
        tracker.clear("a")
        assert tracker.dependency_on("a") == NO_DEP
        tracker.reset()
        assert tracker.dependency_on("b") == NO_DEP

    def test_negative_uid_rejected(self):
        with pytest.raises(ValueError):
            DependencyTracker().produce("r", -1)


class TestDependencyChainReplay:
    def test_long_same_cpu_chain_completes(self):
        # A 200-deep pointer chase on one cpu: each load depends on the
        # previous one.  Must finish, with latency reflecting serialization.
        chained = [load(0)] + [load(i, dep=i - 1) for i in range(1, 200)]
        independent = [load(i) for i in range(200)]
        dep_stats = replay_trace(
            chained, baseline_config(), warmup_fraction=0.0
        )
        ind_stats = replay_trace(
            independent, baseline_config(), warmup_fraction=0.0
        )
        assert dep_stats.n_accesses == 200
        assert dep_stats.wall_cycles > ind_stats.wall_cycles

    def test_cross_cpu_chain_completes(self):
        # Producer on cpu 0, consumer on cpu 1, alternating: the
        # completion table is shared, so cross-cpu deps serialize too.
        records = [load(0, cpu=0)]
        for uid in range(1, 100):
            records.append(load(uid, cpu=uid % 2, dep=uid - 1))
        stats = replay_trace(records, baseline_config(), warmup_fraction=0.0)
        assert stats.n_accesses == 100

    def test_self_dependency_raises_not_hangs(self):
        records = [load(0), make_raw_record(
            1, 0, AccessType.LOAD, 0x2000, 0x400000, dep_uid=1
        )]
        with pytest.raises(TraceCorruptionError) as info:
            replay_trace(
                records, baseline_config(), warmup_fraction=0.0, mode="strict"
            )
        assert info.value.reason == "self-dep"

    def test_forward_dependency_raises_not_hangs(self):
        records = [load(0), make_raw_record(
            1, 0, AccessType.LOAD, 0x2000, 0x400000, dep_uid=50
        )]
        with pytest.raises(TraceCorruptionError) as info:
            replay_trace(
                records, baseline_config(), warmup_fraction=0.0, mode="strict"
            )
        assert info.value.reason == "forward-dep"

    def test_lenient_mode_completes_on_bad_chains(self):
        records = [load(0)]
        records.append(make_raw_record(
            1, 0, AccessType.LOAD, 0x2000, 0x400000, dep_uid=1
        ))
        records.append(make_raw_record(
            2, 0, AccessType.LOAD, 0x3000, 0x400000, dep_uid=77
        ))
        records.extend(load(uid, dep=uid - 1) for uid in range(3, 50))
        stats = replay_trace(
            records, baseline_config(), warmup_fraction=0.0, mode="lenient"
        )
        assert stats.quarantined == 2
        assert stats.n_accesses == 48

    def test_dependency_on_store_never_waits(self):
        # Stores produce no register values; a "dependency" naming a
        # store uid finds no completion entry and issues immediately.
        records = [
            TraceRecord(0, 0, AccessType.STORE, 0x1000, 0x400000),
            load(1, dep=0),
        ]
        stats = replay_trace(records, baseline_config(), warmup_fraction=0.0)
        assert stats.n_accesses == 2


class TestValidateTraceCpuIds:
    def test_cpu_bound_check(self):
        records = [load(0, cpu=0), load(1, cpu=1)]
        validate_trace(records, n_cpus=2)
        with pytest.raises(TraceCorruptionError, match="cpu"):
            validate_trace(records, n_cpus=1)

    def test_missing_dep_detected(self):
        records = [load(5), load(6, dep=2)]
        with pytest.raises(TraceCorruptionError, match="missing"):
            validate_trace(records)
