"""Integrity-checked state: checkpoint envelopes, journal CRCs, resume.

The corruption contract end to end: a flipped bit in any persisted
artifact (checkpoint payload, journal line) or any stale journal entry
is *detected* — quarantined, re-run, or reported via ``repro verify`` —
never silently resumed from.
"""

import json

import numpy as np
import pytest

from repro.oracles.config import get_oracle_config, set_oracle_mode
from repro.oracles.report import reset_oracles
from repro.resilience import (
    CheckpointError,
    FaultInjector,
    StateIntegrityError,
    load_checkpoint,
    quarantine_file,
    save_checkpoint,
    verify_checkpoint,
)
from repro.runner.journal import Journal, make_entry, scan_journal
from repro.runner.supervisor import (
    CampaignConfig,
    RetryPolicy,
    run_campaign,
)
from repro.runner.tasks import CampaignTask

from tests.campaign_fixtures import FAST_REGISTRY_SPEC


@pytest.fixture(autouse=True)
def _clean_oracles():
    previous = get_oracle_config()
    reset_oracles()
    yield
    set_oracle_mode(previous)
    reset_oracles()


class TestCheckpointIntegrity:
    STATE = {"index": 7, "temps": [311.0, 305.5]}

    def test_round_trip(self, tmp_path):
        path = tmp_path / "state.ckpt"
        save_checkpoint("replay", self.STATE, path)
        assert load_checkpoint(path, "replay") == self.STATE

    def test_bit_flip_detected(self, tmp_path):
        path = tmp_path / "state.ckpt"
        save_checkpoint("replay", self.STATE, path)
        FaultInjector(seed=5).flip_file_bits(path, n_flips=1, offset_min=96)
        with pytest.raises(StateIntegrityError, match="sha256"):
            load_checkpoint(path, "replay")

    def test_quarantine_moves_corrupt_file_aside(self, tmp_path):
        path = tmp_path / "state.ckpt"
        save_checkpoint("replay", self.STATE, path)
        FaultInjector(seed=5).flip_file_bits(path, n_flips=1, offset_min=96)
        with pytest.raises(StateIntegrityError):
            load_checkpoint(path, "replay", quarantine=True)
        assert not path.exists()
        assert (tmp_path / "state.ckpt.quarantined").exists()

    def test_verify_is_read_only(self, tmp_path):
        path = tmp_path / "state.ckpt"
        save_checkpoint("transient", self.STATE, path)
        summary = verify_checkpoint(path)
        assert summary["kind"] == "transient"
        assert summary["nbytes"] > 0
        FaultInjector(seed=5).flip_file_bits(path, n_flips=1, offset_min=96)
        with pytest.raises(CheckpointError):
            verify_checkpoint(path)
        assert path.exists()  # verify never quarantines

    def test_quarantine_file_helper(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"garbage")
        target = quarantine_file(path)
        assert target.name == "junk.bin.quarantined"
        assert target.read_bytes() == b"garbage"


def _entry(task, status="ok", **overrides):
    fields = dict(
        task_id=task.task_id,
        experiment_id=task.experiment_id,
        fingerprint=task.fingerprint,
        status=status,
        attempt=0,
        final=True,
        seed=task.seed,
        kwargs=task.kwargs,
        result={"value": 42},
    )
    fields.update(overrides)
    return make_entry(**fields)


def _task(task_id, **kwargs):
    return CampaignTask(
        task_id=task_id,
        experiment_id="quick",
        kwargs=kwargs,
        seed=7,
        registry_spec=FAST_REGISTRY_SPEC,
    )


def _resume(tasks, journal_path):
    return run_campaign(tasks, CampaignConfig(
        workers=1,
        task_timeout_s=60.0,
        retry=RetryPolicy(max_retries=0, backoff_base_s=0.05),
        journal_path=str(journal_path),
        resume=True,
    ))


class TestJournalCrc:
    def test_appended_lines_carry_crc(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with Journal(path) as journal:
            journal.append(_entry(_task("t")))
        line = json.loads(path.read_text().strip())
        assert len(line["crc"]) == 8
        entries, torn, crc_failed = scan_journal(path)
        assert (len(entries), torn, crc_failed) == (1, 0, 0)

    def test_tampered_line_dropped_and_counted(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with Journal(path) as journal:
            journal.append(_entry(_task("t")))
        path.write_text(path.read_text().replace('"value": 42', '"value": 43'))
        entries, torn, crc_failed = scan_journal(path)
        assert (len(entries), torn, crc_failed) == (0, 0, 1)

    def test_legacy_line_without_crc_accepted(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        entry = _entry(_task("t"))  # no crc key: pre-oracles journal
        path.write_text(json.dumps(entry, sort_keys=True, default=str) + "\n")
        entries, torn, crc_failed = scan_journal(path)
        assert (len(entries), torn, crc_failed) == (1, 0, 0)

    def test_invalid_utf8_line_is_torn_not_fatal(self, tmp_path):
        # Regression: a bit flip can leave bytes that do not decode;
        # the scan must count the line, not die in the codec.
        path = tmp_path / "journal.jsonl"
        with Journal(path) as journal:
            journal.append(_entry(_task("t")))
            journal.append(_entry(_task("u")))
        raw = bytearray(path.read_bytes())
        raw[5] = 0xF0
        path.write_bytes(bytes(raw))
        entries, torn, crc_failed = scan_journal(path)
        assert len(entries) == 1
        assert torn + crc_failed == 1


class TestStaleResume:
    def test_clean_entry_is_skipped(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        task = _task("healthy")
        with Journal(journal_path) as journal:
            journal.append(_entry(task))
        report = _resume([task], journal_path)
        assert report.counts["skipped"] == 1
        assert report.stale_resume == 0
        assert not report.degraded

    def test_stale_fingerprint_forces_rerun(self, tmp_path):
        # The stored fingerprint matches the task (so resume finds it)
        # but the line's own recorded kwargs were tampered after
        # writing: recomputation belies the fingerprint, so the entry
        # must not be trusted.
        journal_path = tmp_path / "journal.jsonl"
        task = _task("healthy")
        with Journal(journal_path) as journal:
            journal.append(_entry(task, kwargs={"value": 99}))
        report = _resume([task], journal_path)
        assert report.stale_resume == 1
        assert report.counts["skipped"] == 0
        assert report.counts["ok"] == 1  # re-run fresh, trustworthy
        assert not report.degraded

    def test_crc_failed_entry_forces_rerun(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        task = _task("healthy")
        with Journal(journal_path) as journal:
            journal.append(_entry(task))
        tampered = journal_path.read_text().replace(
            '"value": 42', '"value": 43'
        )
        journal_path.write_text(tampered)
        report = _resume([task], journal_path)
        assert report.corrupt_journal_lines == 1
        assert report.counts["skipped"] == 0
        assert report.counts["ok"] == 1
        assert not report.degraded


class TestVerifyCli:
    def _main(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def test_checkpoint_ok_and_corrupt(self, tmp_path, capsys):
        path = tmp_path / "state.ckpt"
        save_checkpoint("replay", {"x": np.arange(8)}, path)
        assert self._main("verify", str(path)) == 0
        assert "checkpoint OK" in capsys.readouterr().out
        FaultInjector(seed=5).flip_file_bits(path, n_flips=1, offset_min=96)
        assert self._main("verify", str(path)) == 1

    def test_journal_ok_and_corrupt(self, tmp_path, capsys):
        path = tmp_path / "journal.jsonl"
        with Journal(path) as journal:
            journal.append(_entry(_task("t")))
        assert self._main("verify", str(path)) == 0
        assert "journal with 1 verifiable" in capsys.readouterr().out
        path.write_text(path.read_text().replace('"value": 42', '"value": 43'))
        assert self._main("verify", str(path)) == 1

    def test_missing_artifact_is_usage_error(self, tmp_path):
        assert self._main("verify", str(tmp_path / "nope.bin")) == 2


class TestRunOraclesExit:
    def test_detected_corruption_exits_three(self, capsys):
        from repro.cli import main
        from repro.thermal import solver as thermal_solver
        from repro.thermal.solver import clear_operator_cache

        clear_operator_cache()
        thermal_solver.arm_operator_corruption(
            lambda op: FaultInjector(seed=11).flip_array_bits(
                op.matrix.data, n_flips=1
            )
        )
        try:
            code = main(["run", "table-5", "--oracles", "strict", "--nx", "16"])
        finally:
            thermal_solver.arm_operator_corruption(None)
            clear_operator_cache()
        assert code == 3
        out = capsys.readouterr().out
        assert "DEGRADED [thermal.operator-crc]" in out
