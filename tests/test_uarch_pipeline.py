"""Tests for the pipeline model, workload suite, and power roll-up."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uarch.pipeline import (
    PipelineConfig,
    TABLE4_ELIMINATIONS,
    planar_pipeline,
    stacked_pipeline,
    stages_eliminated_fraction,
)
from repro.uarch.power import (
    PowerBreakdown,
    planar_power_breakdown,
    power_reduction_fraction,
    stacked_power_breakdown,
    stacked_power_w,
)
from repro.uarch.workloads import (
    CATEGORY_COUNTS,
    make_profile,
    suite_by_category,
    workload_suite,
)


class TestPipelineConfig:
    def test_mispredict_penalty_exceeds_30(self):
        # "a branch miss-prediction penalty of more than 30 clock cycles"
        assert planar_pipeline().mispredict_penalty > 30

    def test_total_stages_exceed_mispredict_clocks(self):
        # "The number of pipe stages ... is much greater than the
        # miss-prediction clocks."
        planar = planar_pipeline()
        assert planar.total_stages > planar.mispredict_penalty

    def test_fp_latency_includes_wire(self):
        planar = planar_pipeline()
        assert planar.fp_latency == planar.exec_fp_latency + 2

    def test_rejects_invalid_stages(self):
        with pytest.raises(ValueError):
            PipelineConfig(front_end=0)
        with pytest.raises(ValueError):
            PipelineConfig(fp_wire_latency=-1)

    def test_stage_counts_cover_table4(self):
        counts = planar_pipeline().stage_counts()
        assert set(counts) == set(TABLE4_ELIMINATIONS)


class TestStageElimination:
    def test_full_3d_removes_about_25_percent(self):
        planar = planar_pipeline()
        stacked = stacked_pipeline(planar)
        fraction = stages_eliminated_fraction(planar, stacked)
        assert 0.22 <= fraction <= 0.30  # paper: ~25%

    def test_table4_fractions_row_by_row(self):
        # The published "% of Stages Eliminated" column.
        planar = planar_pipeline()
        expected = {
            "front_end": 0.125, "trace_cache": 0.20, "rename_alloc": 0.25,
            "int_rf_read": 0.25, "data_cache_read": 0.25,
            "instruction_loop": 1 / 6, "retire_dealloc": 0.20,
            "fp_load": 5 / 14, "store_lifetime": 0.30,
        }
        counts = planar.stage_counts()
        for area, fraction in expected.items():
            removed = TABLE4_ELIMINATIONS[area]
            assert removed / counts[area] == pytest.approx(fraction, rel=0.05)

    def test_fp_wire_fully_eliminated(self):
        stacked = stacked_pipeline()
        assert stacked.fp_wire_latency == 0

    def test_partial_elimination(self):
        planar = planar_pipeline()
        partial = stacked_pipeline(planar, {"data_cache_read": 1})
        assert partial.data_cache_read == planar.data_cache_read - 1
        assert partial.front_end == planar.front_end  # untouched

    def test_mispredict_penalty_shrinks(self):
        planar = planar_pipeline()
        stacked = stacked_pipeline(planar)
        assert stacked.mispredict_penalty < planar.mispredict_penalty

    def test_unknown_area_raises(self):
        with pytest.raises(KeyError):
            stacked_pipeline(areas={"bogus": 1})

    def test_cannot_remove_all_stages(self):
        with pytest.raises(ValueError):
            stacked_pipeline(areas={"trace_cache": 5})


class TestWorkloadSuite:
    def test_suite_exceeds_650(self):
        # "over 650 single thread benchmark traces"
        assert len(workload_suite()) > 650

    def test_all_eight_categories(self):
        categories = suite_by_category()
        assert set(categories) == {
            "specint", "specfp", "kernels", "multimedia",
            "internet", "productivity", "server", "workstation",
        }
        for name, count in CATEGORY_COUNTS.items():
            assert len(categories[name]) == count

    def test_deterministic(self):
        assert workload_suite(seed=1) == workload_suite(seed=1)
        assert workload_suite(seed=1) != workload_suite(seed=2)

    def test_category_character(self):
        # SPECFP must be FP-heavy relative to SPECINT, and SPECINT
        # branch-heavy relative to SPECFP (category archetypes).
        categories = suite_by_category()

        def mean(ws, attr):
            return sum(getattr(w, attr) for w in ws) / len(ws)

        assert mean(categories["specfp"], "fp_freq") > 5 * mean(
            categories["specint"], "fp_freq"
        )
        assert mean(categories["specint"], "branch_freq") > 2 * mean(
            categories["specfp"], "branch_freq"
        )

    def test_unknown_category_raises(self):
        with pytest.raises(KeyError):
            make_profile("games", 0)

    @given(index=st.integers(min_value=0, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_profiles_are_physical(self, index):
        profile = make_profile("workstation", index)
        assert 0 < profile.branch_freq < 1
        assert profile.mispredict_rate <= 0.25
        assert profile.load_freq + profile.store_freq < 1
        assert 1.0 <= profile.base_ilp <= 4.0


class TestPowerRollup:
    def test_planar_total_is_147(self):
        assert planar_power_breakdown().total == pytest.approx(147.0)

    def test_3d_power_near_125(self):
        # Paper: "3D" column of Table 5 at same frequency = 125 W.
        assert stacked_power_w() == pytest.approx(125.0, abs=1.0)

    def test_reduction_is_15_percent(self):
        assert power_reduction_fraction() == pytest.approx(0.15, abs=0.01)

    def test_repeaters_halved(self):
        planar = planar_power_breakdown()
        stacked = stacked_power_breakdown(planar)
        assert stacked.repeaters == pytest.approx(planar.repeaters / 2)

    def test_logic_and_leakage_unchanged(self):
        planar = planar_power_breakdown()
        stacked = stacked_power_breakdown(planar)
        assert stacked.logic == planar.logic
        assert stacked.leakage == planar.leakage

    def test_latches_track_stage_elimination(self):
        planar = planar_power_breakdown()
        stacked = stacked_power_breakdown(planar)
        fraction = stages_eliminated_fraction(
            planar_pipeline(), stacked_pipeline()
        )
        assert stacked.latches == pytest.approx(
            planar.latches * (1 - fraction)
        )

    def test_breakdown_rejects_negative(self):
        with pytest.raises(ValueError):
            PowerBreakdown(-1, 0, 0, 0, 0)

    def test_scales_with_total(self):
        assert planar_power_breakdown(100.0).total == pytest.approx(100.0)
