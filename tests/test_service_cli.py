"""CLI-level tests for the service PR: batch ``repro verify``, the
``repro serve`` command, and the backend tallies in ``sweep --json``."""

import http.client
import json
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.oracles.integrity import attach_crc
from repro.resilience.checkpoint import save_checkpoint
from repro.resilience.faults import FaultInjector
from repro.runner.journal import Journal
from repro.runner.supervisor import CampaignReport

SRC = str(Path(__file__).resolve().parents[1] / "src")


def run_cli(*args, timeout=300):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=timeout,
    )


def _write_good_journal(path):
    journal = Journal(path)
    journal.append(attach_crc({
        "v": 1, "fingerprint": "ab12", "status": "ok", "event": "x",
    }))
    journal.close()


class TestVerifyBatch:
    def _populate(self, root):
        save_checkpoint("t", {"x": 1}, root / "good.ckpt")
        _write_good_journal(root / "good.jsonl")
        (root / "sub").mkdir()
        save_checkpoint("t", {"y": 2}, root / "sub" / "nested.ckpt")
        # Quarantined and temporary artifacts are skipped, not corrupt.
        (root / "old.result.quarantined").write_bytes(b"\x00garbage")
        (root / "inflight.tmp").write_bytes(b"partial")
        (root / "empty.jsonl").write_bytes(b"")

    def test_clean_directory_exits_zero(self, tmp_path):
        self._populate(tmp_path)
        proc = run_cli("verify", str(tmp_path))
        assert proc.returncode == 0, proc.stderr
        assert "3 ok" in proc.stdout
        assert "0 corrupt" in proc.stdout
        assert "3 skipped" in proc.stdout
        assert "CORRUPT" not in proc.stdout

    def test_corrupt_item_exits_one_with_per_file_report(self, tmp_path):
        self._populate(tmp_path)
        bad = tmp_path / "bad.ckpt"
        save_checkpoint("t", {"z": 3}, bad)
        FaultInjector(seed=1).flip_file_bits(
            str(bad), n_flips=4, offset_min=16
        )
        torn = tmp_path / "torn.jsonl"
        torn.write_text('{"not": "a crc journal"}\n')
        proc = run_cli("verify", str(tmp_path))
        assert proc.returncode == 1
        assert "2 corrupt" in proc.stdout
        # Per-file report names each corrupt artifact.
        assert f"CORRUPT {bad}" in proc.stdout
        assert f"CORRUPT {torn}" in proc.stdout
        assert "CORRUPT artifact(s)" in proc.stderr

    def test_single_file_mode_unchanged(self, tmp_path):
        good = tmp_path / "one.ckpt"
        save_checkpoint("t", {"x": 1}, good)
        proc = run_cli("verify", str(good))
        assert proc.returncode == 0
        assert "checkpoint OK" in proc.stdout

    def test_service_result_cache_verifies_as_a_directory(self, tmp_path):
        from tests.test_service_resultcache import make_entry
        from repro.service.resultcache import ResultCache

        cache = ResultCache(tmp_path / "results")
        cache.store("deadbeefcafef00d", make_entry())
        proc = run_cli("verify", str(tmp_path / "results"))
        assert proc.returncode == 0
        assert "1 ok" in proc.stdout


class TestServeCommand:
    def test_invalid_config_exits_two(self, tmp_path):
        proc = run_cli("serve", "--breaker-threshold", "0",
                       "--data-dir", str(tmp_path))
        assert proc.returncode == 2
        assert "serve:" in proc.stderr

    def test_unknown_chaos_mode_exits_two(self, tmp_path):
        proc = run_cli("serve", "--chaos-force", "explode",
                       "--data-dir", str(tmp_path))
        assert proc.returncode == 2
        assert "unknown chaos mode" in proc.stderr

    def test_boots_and_answers_healthz(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--data-dir", str(tmp_path / "svc"),
             "--registry", "tests.campaign_fixtures:FAST_REGISTRY"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            line = proc.stdout.readline()
            assert "repro service on http://" in line
            port = int(line.split("http://127.0.0.1:")[1].split(" ")[0])
            deadline = time.monotonic() + 20
            status = None
            while time.monotonic() < deadline:
                try:
                    conn = http.client.HTTPConnection(
                        "127.0.0.1", port, timeout=5
                    )
                    conn.request("GET", "/healthz")
                    status = conn.getresponse().status
                    conn.close()
                    break
                except OSError:
                    time.sleep(0.1)
            assert status == 200
        finally:
            proc.terminate()
            proc.wait(timeout=15)


class TestBackendTallies:
    def test_report_to_dict_groups_backend_tallies(self):
        report = CampaignReport(
            backend="nodes:2",
            executors_lost=1,
            leases_reclaimed=2,
            work_stolen=2,
            duplicate_completions=1,
            fenced_completions=1,
            per_executor={"node-0": {"ok": 3, "failed": 1}},
        )
        tallies = report.to_dict()["backend_tallies"]
        assert tallies == {
            "backend": "nodes:2",
            "executors_lost": 1,
            "leases_reclaimed": 2,
            "work_stolen": 2,
            "duplicates_discarded": 1,
            "fenced_discarded": 1,
            "per_executor": {"node-0": {"ok": 3, "failed": 1}},
        }

    def test_sweep_json_emits_backend_tallies(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        proc = run_cli(
            "sweep", "table-4", "--backend", "inproc",
            "--journal", str(journal), "--json",
        )
        assert proc.returncode == 0, proc.stderr
        report = json.loads(proc.stdout)
        tallies = report["backend_tallies"]
        assert tallies["backend"] == "inproc"
        assert tallies["executors_lost"] == 0
        assert "per_executor" in tallies
