"""Equivalence of the chunked array fast path with per-record replay.

``feed_array`` promises bit-identical behaviour to feeding each record
through ``feed`` — not just matching summary stats but identical
*internal* state: cache contents and LRU order, coherence directory,
prefetch history, ROBs, completion tables, timing accumulators.  These
tests compare full state snapshots across memory configurations, warmup
placements, ifetch interleavings, and checkpoint/resume splits.
"""

import numpy as np
import pytest

from repro.memsim.config import (
    baseline_config,
    stacked_dram_config,
    stacked_sram_config,
)
from repro.memsim.hierarchy import MemoryHierarchy
from repro.memsim.replay import TraceReplayer, replay_trace
from repro.traces.generator import (
    TRACE_DTYPE,
    TraceGenerator,
    WorkloadSpec,
    records_to_array,
)

SEED = 1234
SCALE = 8


def _cache_state(cache):
    if cache is None:
        return None
    return {
        "hits": cache.hits,
        "misses": cache.misses,
        "evictions": cache.evictions,
        "writebacks": cache.writebacks,
        # Dict order IS the LRU order, so == checks it too.
        "sets": [list(entries.items()) for entries in cache._sets],
    }


def _dram_cache_state(dc):
    if dc is None:
        return None
    return {
        "sector_hits": dc.sector_hits,
        "sector_misses": dc.sector_misses,
        "page_misses": dc.page_misses,
        "page_evictions": dc.page_evictions,
        "dirty_sector_writebacks": dc.dirty_sector_writebacks,
        "sets": [list(entries.items()) for entries in dc._sets],
        "dirty": [list(entries.items()) for entries in dc._dirty],
        "bank_free": list(dc.banks._bank_free),
        "open_pages": list(dc.banks._open_page),
    }


def full_state(replayer):
    """Everything observable about a replayer, for exact comparison."""
    h = replayer.hierarchy
    dram_caches = [
        _cache_state(h.stacked_sram),
        _dram_cache_state(h.stacked_dram),
    ]
    return {
        "l1d": [_cache_state(c) for c in h.l1s],
        "l1i": [_cache_state(c) for c in h.l1is],
        "l2": _cache_state(h.l2),
        "stacked": dram_caches,
        "directory": dict(h._directory),
        "miss_history": [list(d) for d in h._miss_history],
        "level_counts": dict(h.level_counts),
        "offchip_accesses": h.offchip_accesses,
        "invalidations": h.invalidations,
        "prefetches": h.prefetches,
        "index": replayer.index,
        "next_free": list(replayer._next_free),
        "outstanding": [list(o) for o in replayer._outstanding],
        "robs": [list(r) for r in replayer._robs],
        "completion": dict(replayer._completion),
        "measured": replayer._measured,
        "latency_sum": replayer._latency_sum,
        "level_latency_sum": dict(replayer._level_latency_sum),
        "level_latency_n": dict(replayer._level_latency_n),
        "measure_start": replayer._measure_start,
        "end_time": replayer._end_time,
    }


def _trace(kernel="smvm", n_records=20_000, ifetch_every=0):
    spec = WorkloadSpec(
        name=kernel,
        n_records=n_records,
        seed=SEED,
        ifetch_every=ifetch_every,
    )
    records = list(TraceGenerator(spec, scale=SCALE).records())
    return records, records_to_array(records)


def _run_pair(records, array, config, warmup_until=0):
    reference = TraceReplayer(config, warmup_until=warmup_until)
    reference.feed_many(records)
    fast = TraceReplayer(config, warmup_until=warmup_until)
    fast.feed_array(array)
    return reference, fast


CONFIGS = {
    "baseline": lambda: baseline_config(SCALE),
    "stacked-sram": lambda: stacked_sram_config(SCALE),
    "stacked-dram-32": lambda: stacked_dram_config(32, SCALE),
    "stacked-dram-64": lambda: stacked_dram_config(64, SCALE),
}


class TestFullStateEquivalence:
    @pytest.mark.parametrize("config_name", sorted(CONFIGS))
    def test_every_memory_config(self, config_name):
        records, array = _trace()
        reference, fast = _run_pair(
            records, array, CONFIGS[config_name](), warmup_until=6000
        )
        assert full_state(reference) == full_state(fast)

    @pytest.mark.parametrize("ifetch_every", [3, 5])
    def test_with_ifetch_interleave(self, ifetch_every):
        records, array = _trace(ifetch_every=ifetch_every)
        reference, fast = _run_pair(
            records, array, baseline_config(SCALE), warmup_until=6000
        )
        assert full_state(reference) == full_state(fast)

    @pytest.mark.parametrize("warmup_until", [0, 1, 9_999, 19_999, 20_000])
    def test_warmup_boundary_placements(self, warmup_until):
        """Including boundaries that land mid-span and at the very ends."""
        records, array = _trace()
        reference, fast = _run_pair(
            records, array, baseline_config(SCALE), warmup_until=warmup_until
        )
        assert full_state(reference) == full_state(fast)

    def test_store_heavy_kernel_with_coherence_traffic(self):
        records, array = _trace(kernel="savdf")
        reference, fast = _run_pair(
            records, array, baseline_config(SCALE), warmup_until=6000
        )
        assert full_state(reference) == full_state(fast)


class TestFeedArrayMechanics:
    def test_rejects_wrong_dtype(self):
        replayer = TraceReplayer(baseline_config(SCALE))
        with pytest.raises(ValueError, match="TRACE_DTYPE"):
            replayer.feed_array(np.zeros(4, dtype=np.int64))

    def test_checkpoint_requires_path(self):
        _, array = _trace(n_records=2_000)
        replayer = TraceReplayer(baseline_config(SCALE))
        with pytest.raises(ValueError, match="checkpoint_path"):
            replayer.feed_array(array, checkpoint_every=100)

    def test_stop_after_matches_partial_feed(self):
        records, array = _trace(n_records=10_000)
        partial = TraceReplayer(baseline_config(SCALE))
        partial.feed_array(array, stop_after=4_321)
        reference = TraceReplayer(baseline_config(SCALE))
        reference.feed_many(records[:4_321])
        assert full_state(partial) == full_state(reference)

    def test_checkpoint_resume_roundtrip(self, tmp_path):
        """Interrupt mid-array, restore, continue: identical end state."""
        records, array = _trace(n_records=12_000)
        config = baseline_config(SCALE)
        path = tmp_path / "replay.ckpt"

        interrupted = TraceReplayer(config, warmup_until=3_000)
        interrupted.feed_array(
            array, checkpoint_every=2_500, checkpoint_path=path,
            stop_after=7_500,
        )
        resumed = TraceReplayer.restore(path)
        assert resumed.index == 7_500
        resumed.feed_array(array[resumed.index:])

        straight = TraceReplayer(config, warmup_until=3_000)
        straight.feed_array(array)
        assert full_state(resumed) == full_state(straight)

    def test_guarded_replay_falls_back_to_record_path(self):
        """A strict guard forces per-record validation; results match the
        unguarded run on a clean stream."""
        records, array = _trace(n_records=8_000)
        clean = replay_trace(
            array, baseline_config(SCALE), warmup_fraction=0.3
        )
        guarded = replay_trace(
            array, baseline_config(SCALE), warmup_fraction=0.3, mode="strict"
        )
        assert guarded.quarantined == 0
        assert guarded.cpma == clean.cpma
        assert guarded.level_counts == clean.level_counts

    def test_replay_trace_accepts_array_and_records_identically(self):
        records, array = _trace(n_records=8_000)
        from_records = replay_trace(
            records, baseline_config(SCALE), warmup_fraction=0.4
        )
        from_array = replay_trace(
            array, baseline_config(SCALE), warmup_fraction=0.4
        )
        assert from_records == from_array

    def test_hierarchy_reuse_after_fast_path_flush(self):
        """Counters credited by flush_fast_counts keep hit-rate identities
        intact on the underlying caches."""
        _, array = _trace(n_records=8_000)
        hierarchy = MemoryHierarchy(baseline_config(SCALE))
        replayer = TraceReplayer(hierarchy=hierarchy)
        replayer.feed_array(array)
        for cache in hierarchy.l1s + hierarchy.l1is:
            assert cache.accesses == cache.hits + cache.misses
        total_satisfied = sum(hierarchy.level_counts.values())
        assert total_satisfied == 8_000
