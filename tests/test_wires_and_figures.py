"""Tests for the wire-delay model, the SVG figure renderer, and the
DRAM-cache tag accounting."""

import xml.etree.ElementTree as ET

import pytest

from repro.analysis.figures import (
    SvgCanvas,
    render_figure3,
    render_figure5,
    render_grouped_bars,
    render_lines,
    render_paper_comparison_bars,
)
from repro.floorplan import pentium4_3d_floorplans, pentium4_planar_floorplan
from repro.memsim.config import DramCacheConfig
from repro.uarch.wires import (
    WirePath,
    fp_wire_saving,
    load_to_use_saving,
    planar_path,
    stacked_path,
    stage_saving,
)

MB = 1 << 20


@pytest.fixture(scope="module")
def p4_plans():
    planar = pentium4_planar_floorplan()
    bottom, top = pentium4_3d_floorplans()
    return planar, bottom, top


class TestWireModel:
    def test_load_to_use_saves_one_stage(self, p4_plans):
        # "eliminating the one clock cycle of delay in the load-to-use
        # delay" (Section 4).
        planar, bottom, top = p4_plans
        assert load_to_use_saving(planar, bottom, top) == 1

    def test_fp_wire_saves_two_stages(self, p4_plans):
        # "This placement adds two cycles to the latency of all FP
        # instructions" — removed by the 3D floorplan.
        planar, bottom, top = p4_plans
        assert fp_wire_saving(planar, bottom, top) == 2

    def test_stacked_path_much_shorter(self, p4_plans):
        planar, bottom, top = p4_plans
        before = planar_path(planar, "D$", "F")
        after = stacked_path(bottom, top, "D$", "F")
        # "half as much routing distance" — at least halved here.
        assert after.length_mm < before.length_mm / 2

    def test_die_crossing_counted(self, p4_plans):
        _, bottom, top = p4_plans
        cross = stacked_path(bottom, top, "D$", "F")  # D$ top, F bottom
        same = stacked_path(bottom, top, "SIMD", "RF")  # both bottom
        assert cross.crossings == 1
        assert same.crossings == 0

    def test_d2d_hop_is_cheap(self):
        # The hop must cost far less than a wire stage.
        with_hop = WirePath(1.0, crossings=1)
        without = WirePath(1.0, crossings=0)
        assert with_hop.delay_ps() - without.delay_ps() < 50.0

    def test_stages_floor_division(self):
        assert WirePath(0.1).stages() == 0
        long = WirePath(100.0)
        assert long.stages() >= 1

    def test_stage_saving_never_negative(self, p4_plans):
        planar, bottom, top = p4_plans
        # Sched and F are adjacent on the bottom die: short either way,
        # and the saving must never go negative.
        assert stage_saving(planar, bottom, top, "Sched", "F") >= 0

    def test_faster_clock_needs_more_stages(self, p4_plans):
        planar, _, _ = p4_plans
        path = planar_path(planar, "D$", "F")
        assert path.stages(clock_ps=100.0) >= path.stages(clock_ps=250.0)


class TestTagAccounting:
    def test_paper_tag_sizes(self):
        # "the tag size increases the size of the baseline die by about
        # 2MB"; "for ... 64MB DRAM the tag size is about 4MB".
        assert DramCacheConfig(size_bytes=32 * MB).tag_store_bytes() == 2 * MB
        assert DramCacheConfig(size_bytes=64 * MB).tag_store_bytes() == 4 * MB

    def test_tag_overhead_fraction(self):
        config = DramCacheConfig(size_bytes=32 * MB)
        assert config.tag_area_overhead() == pytest.approx(0.5)

    def test_tag_entry_size_validated(self):
        with pytest.raises(ValueError):
            DramCacheConfig(size_bytes=32 * MB).tag_store_bytes(0)


class TestSvgCanvas:
    def test_empty_canvas_is_valid_svg(self, tmp_path):
        canvas = SvgCanvas(100, 50)
        path = canvas.save(tmp_path / "empty.svg")
        root = ET.parse(path).getroot()
        assert root.tag.endswith("svg")

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            SvgCanvas(0, 10)

    def test_escapes_text(self, tmp_path):
        canvas = SvgCanvas(100, 50)
        canvas.text(5, 5, "a < b & c")
        path = canvas.save(tmp_path / "escaped.svg")
        ET.parse(path)  # would raise on unescaped characters

    def test_tooltip_titles(self, tmp_path):
        canvas = SvgCanvas(100, 50)
        canvas.rect(0, 0, 10, 10, "#000", title="value: 42")
        text = canvas.to_string()
        assert "<title>value: 42</title>" in text


class TestFigureRenderers:
    def test_grouped_bars(self, tmp_path):
        path = render_grouped_bars(
            {"a": {"x": 1.0, "y": 2.0}, "b": {"x": 3.0, "y": 0.5}},
            ["x", "y"], "T", "units", tmp_path / "bars.svg",
        )
        root = ET.parse(path).getroot()
        rects = [e for e in root.iter() if e.tag.endswith("rect")]
        # Background + 4 bars + 2 legend swatches.
        assert len(rects) == 7

    def test_grouped_bars_rejects_empty(self, tmp_path):
        with pytest.raises(ValueError):
            render_grouped_bars({}, ["x"], "T", "u", tmp_path / "x.svg")

    def test_lines(self, tmp_path):
        path = render_lines(
            {"s1": {1.0: 2.0, 2.0: 3.0}, "s2": {1.0: 1.0, 2.0: 0.5}},
            "T", "x", "y", tmp_path / "lines.svg",
        )
        root = ET.parse(path).getroot()
        polylines = [e for e in root.iter() if e.tag.endswith("polyline")]
        circles = [e for e in root.iter() if e.tag.endswith("circle")]
        assert len(polylines) == 2
        assert len(circles) == 4

    def test_figure3_renderer(self, tmp_path):
        result = {
            "cu_metal": {60.0: 106.0, 12.0: 108.0, 3.0: 115.0},
            "bond": {60.0: 108.0, 12.0: 110.0, 3.0: 114.0},
        }
        path = render_figure3(result, tmp_path / "f3.svg")
        text = path.read_text()
        assert "Cu metal layers" in text
        assert "Bonding layer" in text

    def test_figure5_renderer(self, tmp_path):
        cpma = {"svm": {"2D 4MB": 3.8, "3D 12MB": 3.8, "3D 32MB": 2.8,
                        "3D 64MB": 2.8}}
        bw = {"svm": {"2D 4MB": 1.8, "3D 12MB": 1.8, "3D 32MB": 0.0,
                      "3D 64MB": 0.0}}
        paths = render_figure5(cpma, bw, tmp_path / "a.svg",
                               tmp_path / "b.svg")
        assert len(paths) == 2
        for path in paths:
            ET.parse(path)

    def test_comparison_bars(self, tmp_path):
        path = render_paper_comparison_bars(
            {"2D": 88.5, "3D": 92.1},
            {"2D": 88.35, "3D": 92.85},
            "Fig 8", "peak C", tmp_path / "f8.svg",
        )
        text = path.read_text()
        assert "measured" in text
        assert "paper" in text

    def test_zero_values_render(self, tmp_path):
        path = render_grouped_bars(
            {"w": {"a": 0.0, "b": 1.0}}, ["a", "b"], "T", "u",
            tmp_path / "zero.svg",
        )
        ET.parse(path)
