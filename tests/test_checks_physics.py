"""Tests for the RPL4xx physics-hygiene pass."""

import ast
import textwrap

from repro.checks import physics
from repro.checks.diagnostics import PyFile


def make_file(source, rel="thermal/model.py"):
    source = textwrap.dedent(source)
    return PyFile(rel=rel, module="repro." + rel[:-3].replace("/", "."),
                  tree=ast.parse(source), lines=source.splitlines())


def codes(diags):
    return sorted(d.code for d in diags)


class TestScope:
    def test_materials_module_is_exempt(self):
        assert not physics.in_scope("thermal/materials.py")

    def test_thermal_and_power_in_scope(self):
        assert physics.in_scope("thermal/solver.py")
        assert physics.in_scope("uarch/power.py")

    def test_other_packages_out_of_scope(self):
        assert not physics.in_scope("memsim/dram.py")
        assert not physics.in_scope("uarch/pipeline.py")


class TestFindings:
    def test_bare_material_literal_is_rpl401(self):
        diags = physics.check_file(make_file("""
            m = Material("mystery", 390.0)
        """))
        assert codes(diags) == ["RPL401"]

    def test_material_from_names_is_clean(self):
        diags = physics.check_file(make_file("""
            m = Material(name, conductivity)
        """))
        assert diags == []

    def test_with_conductivity_literal_is_rpl402(self):
        diags = physics.check_file(make_file("""
            layer2 = layer.with_conductivity(60.0)
        """))
        assert codes(diags) == ["RPL402"]

    def test_physics_keyword_literal_is_rpl402(self):
        diags = physics.check_file(make_file("""
            stack = build(conductivity=12.0, name="x")
        """))
        assert codes(diags) == ["RPL402"]

    def test_physics_default_literal_is_rpl403(self):
        diags = physics.check_file(make_file("""
            def solve(grid, total_w=147.0):
                pass
        """))
        assert codes(diags) == ["RPL403"]

    def test_named_constant_flows_are_clean(self):
        diags = physics.check_file(make_file("""
            from repro.thermal.materials import HEATSINK_H_EFF

            def solve(grid, h_eff=HEATSINK_H_EFF):
                return grid.apply(h_eff=h_eff)
        """))
        assert diags == []

    def test_module_constants_are_not_flagged(self):
        # named module-level constants ARE the remedy
        diags = physics.check_file(make_file("""
            LOCAL_H_EFF = 5400.0
        """))
        assert diags == []

    def test_non_physics_keywords_ignored(self):
        diags = physics.check_file(make_file("""
            x = f(nx=48, ny=48, width=56)
        """))
        assert diags == []


class TestRunScoping:
    def test_out_of_scope_files_skipped(self):
        dirty = make_file("m = Material('x', 1.5)", rel="memsim/dram.py")
        assert physics.run([dirty]) == []

    def test_in_scope_files_checked(self):
        dirty = make_file("m = Material('x', 1.5)", rel="thermal/stack.py")
        assert codes(physics.run([dirty])) == ["RPL401"]
