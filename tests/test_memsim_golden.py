"""Golden replay counters for every Table 1 kernel.

Pins the memory-simulation outcome of each RMS kernel at a fixed seed:
the chunked array fast path must reproduce these numbers *bit-for-bit*,
and must agree exactly with the per-record reference path.  Any change
to trace generation, cache policy, or the replay hot path that shifts a
single hit shows up here as a diff against the pinned table — the
guard the vectorized fast path is developed against.

Regenerate after an *intentional* semantic change with::

    PYTHONPATH=src python - <<'PY'
    from tests.test_memsim_golden import regenerate
    print(regenerate())
    PY
"""

import pytest

from repro.memsim.config import baseline_config
from repro.memsim.replay import replay_trace
from repro.traces.generator import (
    TraceGenerator,
    WorkloadSpec,
    records_to_array,
)
from repro.traces.kernels.registry import kernel_names

N_RECORDS = 30_000
SEED = 1234
SCALE = 8
WARMUP = 0.3

#: Pinned outcome per kernel: (n_accesses, cpma, wall_cycles,
#: level_counts, invalidations).  Floats are exact — replay arithmetic
#: is deterministic double-precision with a fixed operation order.
GOLDEN = {
    "conj": (21000, 5.873904761904762, 61676.0,
             {"l1": 19436, "l2": 0, "stacked": 0, "memory": 1564}, 0),
    "dsym": (21000, 4.7291428571428575, 49656.0,
             {"l1": 18738, "l2": 824, "stacked": 0, "memory": 1438}, 0),
    "gauss": (21000, 3.8586666666666667, 40516.0,
              {"l1": 20126, "l2": 0, "stacked": 0, "memory": 874}, 1),
    "pcg": (21000, 10.887238095238095, 114316.0,
            {"l1": 14237, "l2": 3321, "stacked": 0, "memory": 3442}, 0),
    "smvm": (21000, 5.287809523809524, 55522.0,
             {"l1": 17915, "l2": 1599, "stacked": 0, "memory": 1486}, 0),
    "ssym": (21000, 5.514857142857143, 57906.0,
             {"l1": 19747, "l2": 0, "stacked": 0, "memory": 1253}, 0),
    "strans": (21000, 4.8914285714285715, 51360.0,
               {"l1": 19384, "l2": 367, "stacked": 0, "memory": 1249}, 0),
    "savdf": (21000, 5.342666666666666, 56098.0,
              {"l1": 18519, "l2": 806, "stacked": 0, "memory": 1675}, 411),
    "savif": (21000, 7.284190476190476, 76484.0,
              {"l1": 18231, "l2": 817, "stacked": 0, "memory": 1952}, 189),
    "sus": (21000, 6.2782857142857145, 65922.0,
            {"l1": 18286, "l2": 718, "stacked": 0, "memory": 1996}, 238),
    "svd": (21000, 1.3687619047619048, 14372.0,
            {"l1": 20678, "l2": 100, "stacked": 0, "memory": 222}, 275),
    "svm": (21000, 3.775809523809524, 39646.0,
            {"l1": 19220, "l2": 457, "stacked": 0, "memory": 1323}, 0),
}


def _signature(stats):
    return (
        stats.n_accesses,
        stats.cpma,
        stats.wall_cycles,
        dict(stats.level_counts),
        stats.invalidations,
    )


def regenerate():
    """Recompute the golden table (for intentional semantic changes)."""
    table = {}
    for name in kernel_names():
        spec = WorkloadSpec(name=name, n_records=N_RECORDS, seed=SEED)
        array = TraceGenerator(spec, scale=SCALE).arrays()
        stats = replay_trace(
            array, baseline_config(SCALE), warmup_fraction=WARMUP
        )
        table[name] = _signature(stats)
    return table


def test_golden_covers_every_registered_kernel():
    assert sorted(GOLDEN) == sorted(kernel_names())


@pytest.mark.parametrize("kernel", sorted(GOLDEN))
def test_golden_counters(kernel):
    """Array fast path reproduces the pinned counters bit-for-bit, and
    the per-record reference path agrees with it exactly."""
    spec = WorkloadSpec(name=kernel, n_records=N_RECORDS, seed=SEED)
    records = list(TraceGenerator(spec, scale=SCALE).records())
    array = records_to_array(records)

    fast = replay_trace(array, baseline_config(SCALE), warmup_fraction=WARMUP)
    assert _signature(fast) == GOLDEN[kernel]

    reference = replay_trace(
        records, baseline_config(SCALE), warmup_fraction=WARMUP
    )
    assert _signature(reference) == _signature(fast)
    assert reference.avg_latency == fast.avg_latency
    assert reference.level_latency == fast.level_latency
    assert reference.bandwidth_gbps == fast.bandwidth_gbps
    assert reference.offchip_fraction == fast.offchip_fraction
