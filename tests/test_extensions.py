"""Tests for the extension features: multi-die stacks, the transient
thermal solver, block splitting / auto 3D floorplanning, and
memory-in-stack hierarchies."""

import numpy as np
import pytest

from repro.floorplan import (
    auto_stack,
    core2duo_floorplan,
    footprint_ratio,
    pentium4_planar_floorplan,
    power_density_report,
    split_block,
    stacked_cache_die,
)
from repro.floorplan.blocks import Block, Floorplan, FloorplanError
from repro.thermal import (
    DieSpec,
    SolverConfig,
    build_3d_stack,
    build_multi_stack,
    solve_steady_state,
    solve_transient,
)
from repro.thermal.stack import build_planar_stack

FAST = SolverConfig(nx=20, ny=20)


@pytest.fixture(scope="module")
def cpu_die():
    return core2duo_floorplan()


@pytest.fixture(scope="module")
def dram_die(cpu_die):
    return stacked_cache_die("dram-32mb", cpu_die)


class TestMultiDieStacks:
    def test_two_die_matches_dedicated_builder(self, cpu_die, dram_die):
        dedicated = solve_steady_state(
            build_3d_stack(cpu_die, dram_die, die2_metal="al"), FAST
        )
        multi = solve_steady_state(
            build_multi_stack(
                [DieSpec(cpu_die), DieSpec(dram_die, metal="al")]
            ),
            FAST,
        )
        assert multi.peak_temperature() == pytest.approx(
            dedicated.peak_temperature(), abs=1e-6
        )

    def test_more_dies_more_heat(self, cpu_die, dram_die):
        peaks = []
        for n_dram in (1, 2, 4):
            dies = [DieSpec(cpu_die)] + [
                DieSpec(dram_die, metal="al") for _ in range(n_dram)
            ]
            solution = solve_steady_state(build_multi_stack(dies), FAST)
            peaks.append(solution.peak_temperature())
        assert peaks[0] < peaks[1] < peaks[2]

    def test_hbm_class_stack_is_thermally_viable(self, cpu_die, dram_die):
        # Four DRAM dies (128 MB at the paper's densities) must still be
        # within a few degrees of the baseline — the observation that
        # presaged HBM and 3D V-Cache.
        baseline = solve_steady_state(build_planar_stack(cpu_die), FAST)
        dies = [DieSpec(cpu_die)] + [
            DieSpec(dram_die, metal="al") for _ in range(4)
        ]
        stack = solve_steady_state(build_multi_stack(dies), FAST)
        assert stack.peak_temperature() - baseline.peak_temperature() < 6.0

    def test_energy_conserved(self, cpu_die, dram_die):
        dies = [DieSpec(cpu_die)] + [
            DieSpec(dram_die, metal="al") for _ in range(3)
        ]
        solution = solve_steady_state(build_multi_stack(dies), FAST)
        assert solution.boundary_heat_flow() == pytest.approx(
            solution.stack.total_power, rel=1e-6
        )

    def test_layer_naming(self, cpu_die, dram_die):
        stack = build_multi_stack(
            [DieSpec(cpu_die), DieSpec(dram_die, metal="al"),
             DieSpec(dram_die, metal="al")]
        )
        names = [layer.name for layer in stack.layers]
        for expected in ("metal-1", "bond-1", "metal-2", "bulk-si-2",
                         "bond-2", "metal-3", "bulk-si-3"):
            assert expected in names

    def test_rejects_single_die(self, cpu_die):
        with pytest.raises(ValueError, match="at least two"):
            build_multi_stack([DieSpec(cpu_die)])

    def test_rejects_mismatched_outlines(self, cpu_die):
        from repro.floorplan.blocks import uniform_floorplan

        small = uniform_floorplan("small", 5, 5, 1.0)
        with pytest.raises(ValueError, match="share an outline"):
            build_multi_stack([DieSpec(cpu_die), DieSpec(small)])

    def test_rejects_unknown_metal(self, cpu_die, dram_die):
        with pytest.raises(ValueError, match="metal"):
            build_multi_stack(
                [DieSpec(cpu_die), DieSpec(dram_die, metal="graphene")]
            )


class TestTransientSolver:
    @pytest.fixture(scope="class")
    def stack(self, cpu_die):
        return build_planar_stack(cpu_die)

    def test_starts_at_ambient(self, stack):
        run = solve_transient(stack, FAST, duration_s=0.5, dt_s=0.25)
        assert run.peak_c[0] == pytest.approx(FAST.ambient_c)

    def test_monotone_warmup(self, stack):
        run = solve_transient(stack, FAST, duration_s=5.0, dt_s=0.5)
        assert all(
            b >= a - 1e-9 for a, b in zip(run.peak_c, run.peak_c[1:])
        )

    def test_converges_to_steady_state(self, stack):
        steady = solve_steady_state(stack, FAST).peak_temperature()
        run = solve_transient(stack, FAST, duration_s=300.0, dt_s=5.0)
        assert run.peak_c[-1] == pytest.approx(steady, abs=0.5)

    def test_never_overshoots_steady(self, stack):
        steady = solve_steady_state(stack, FAST).peak_temperature()
        run = solve_transient(stack, FAST, duration_s=50.0, dt_s=1.0)
        assert max(run.peak_c) <= steady + 1e-6

    def test_power_step_down_cools(self, stack):
        run = solve_transient(
            stack, FAST, duration_s=40.0, dt_s=1.0,
            power_schedule=lambda t: 0.5 if t > 20.0 else 1.0,
        )
        idx_20s = run.times_s.index(20.0)
        assert run.peak_c[-1] < run.peak_c[idx_20s]

    def test_time_to_fraction(self, stack):
        run = solve_transient(stack, FAST, duration_s=20.0, dt_s=0.5)
        t63 = run.time_to_fraction(0.63)
        t95 = run.time_to_fraction(0.95)
        assert 0 < t63 <= t95

    def test_validation(self, stack):
        with pytest.raises(ValueError):
            solve_transient(stack, FAST, duration_s=0.0)
        with pytest.raises(ValueError):
            run = solve_transient(
                stack, FAST, duration_s=1.0, dt_s=0.5,
                power_schedule=lambda t: -1.0,
            )
        run = solve_transient(stack, FAST, duration_s=1.0, dt_s=0.5)
        with pytest.raises(ValueError):
            run.time_to_fraction(0.0)

    def test_initial_condition_respected(self, stack):
        steady = solve_steady_state(stack, FAST)
        run = solve_transient(
            stack, FAST, duration_s=2.0, dt_s=0.5,
            initial=steady.temperature,
        )
        # Starting at steady state, nothing changes.
        assert run.peak_c[-1] == pytest.approx(
            steady.peak_temperature(), abs=0.05
        )


class TestBlockSplitting:
    def test_split_block_halves(self):
        block = Block("big", 1.0, 1.0, 4.0, 2.0, 10.0)
        bottom, top = split_block(block)
        assert bottom.power == top.power == 5.0
        assert bottom.area == top.area == block.area / 2
        assert bottom.power_density == pytest.approx(block.power_density)
        assert (bottom.x, bottom.y) == (top.x, top.y) == (1.0, 1.0)

    def test_auto_stack_conserves_power(self):
        planar = pentium4_planar_floorplan()
        bottom, top = auto_stack(planar, split=["L2"])
        assert bottom.total_power + top.total_power == pytest.approx(
            planar.total_power
        )

    def test_auto_stack_shrinks_footprint(self):
        planar = pentium4_planar_floorplan()
        bottom, _ = auto_stack(planar, split=["L2", "D$"])
        assert footprint_ratio(planar, bottom) < 0.9

    def test_auto_stack_balances_power(self):
        planar = pentium4_planar_floorplan()
        bottom, top = auto_stack(planar)
        imbalance = abs(bottom.total_power - top.total_power)
        assert imbalance < 0.2 * planar.total_power
        assert bottom.total_power >= top.total_power  # hot die to sink

    def test_auto_stack_outlines_match(self):
        planar = pentium4_planar_floorplan()
        bottom, top = auto_stack(planar, split=["L2"])
        assert bottom.die_width == top.die_width
        assert bottom.die_height == top.die_height

    def test_auto_stack_rejects_unknown_split(self):
        with pytest.raises(FloorplanError, match="unknown"):
            auto_stack(pentium4_planar_floorplan(), split=["L9"])

    def test_auto_stack_result_is_solvable(self):
        planar = pentium4_planar_floorplan()
        bottom, top = auto_stack(planar, split=["L2"])
        report = power_density_report(bottom, top)
        assert report.total_power == pytest.approx(planar.total_power)
        from repro.thermal import simulate_stack

        solution = simulate_stack(bottom, top, config=FAST)
        assert solution.peak_temperature() > FAST.ambient_c


class TestMemoryInStack:
    def test_no_offdie_traffic(self):
        from repro.memsim import replay_trace, stacked_memory_config
        from repro.traces import generate_trace

        trace = generate_trace("gauss", n_records=150_000, scale=16)
        stats = replay_trace(
            trace, stacked_memory_config(16), warmup_fraction=0.3
        )
        assert stats.bandwidth_gbps == 0.0
        assert stats.bus_power_w == 0.0
        assert stats.offchip_fraction == 0.0

    def test_faster_than_offdie_memory(self):
        from repro.memsim import (
            baseline_config,
            replay_trace,
            stacked_memory_config,
        )
        from repro.traces import generate_trace

        trace = generate_trace("gauss", n_records=300_000, scale=16)
        offdie = replay_trace(trace, baseline_config(16), warmup_fraction=0.3)
        on_stack = replay_trace(
            trace, stacked_memory_config(16), warmup_fraction=0.3
        )
        assert on_stack.cpma < offdie.cpma


class TestNumericsRegressionGuards:
    def test_transient_mass_positive(self, cpu_die):
        from repro.thermal.solver import assemble_system

        system = assemble_system(build_planar_stack(cpu_die), FAST)
        assert np.all(system.mass > 0)

    def test_assembled_matrix_is_symmetric(self, cpu_die):
        from repro.thermal.solver import assemble_system

        system = assemble_system(build_planar_stack(cpu_die), FAST)
        asym = abs(system.matrix - system.matrix.T)
        assert asym.max() < 1e-9
