"""The harness catches real bugs and shrinks them to tiny repros.

A simulation harness that never fails checks nothing, so these tests
re-introduce known lease-safety bugs into the *real* scheduler
(:mod:`repro.dst.mutations`) and assert that seed exploration finds a
violating history, that the shrinker reduces its schedule to a handful
of events, and that the emitted artifact replays to the same verdict —
failing under the bug, passing once the bug is reverted.
"""

import pytest

from repro.dst import generate_schedule, replay, run_history
from repro.dst.harness import explore
from repro.dst.mutations import MUTATIONS, apply_mutation
from repro.dst.shrink import shrink_schedule

#: How many seeds exploration may scan before we call the mutation
#: missed.  Both known mutations fall over well inside this window
#: (seed 5 at the time of writing), but the assertion is on the window,
#: not the exact seed, so profile tweaks don't invalidate the test.
SEED_WINDOW = 24

#: The issue's acceptance bar: a deliberate lease-safety bug must
#: shrink to a repro of at most this many schedule events.
MAX_MINIMAL_EVENTS = 10


def _first_failing_seed():
    for seed in range(SEED_WINDOW):
        history = run_history(seed)
        if not history.ok:
            return seed, history
    return None, None


class TestMutationsAreCaughtAndShrunk:
    @pytest.mark.parametrize("mutation", sorted(MUTATIONS))
    def test_caught_shrunk_and_replayable(self, mutation, tmp_path):
        with apply_mutation(mutation):
            seed, history = _first_failing_seed()
            assert seed is not None, (
                f"mutation {mutation!r} survived {SEED_WINDOW} seeds — "
                f"the harness is not checking what it claims to check"
            )
            minimal, final = shrink_schedule(
                seed, generate_schedule(seed, "quick")
            )
            assert len(minimal) <= MAX_MINIMAL_EVENTS
            assert len(minimal) <= len(generate_schedule(seed, "quick"))
            assert not final.ok
            # The violation names the safety property the mutation
            # broke: a zombie write or a double-counted completion.
            blob = " ".join(final.violations)
            assert "zombie" in blob or "double" in blob, final.violations
            # The minimal schedule replays deterministically under the
            # bug...
            again = run_history(seed, schedule=minimal)
            assert not again.ok
            assert again.violations == final.violations
        # ...and is clean once the mutation is reverted: the repro
        # isolates the bug, not some harness artifact.
        fixed = run_history(seed, schedule=minimal)
        assert fixed.ok, fixed.violations

    def test_explore_emits_replayable_artifact(self, tmp_path):
        artifact = tmp_path / "minimal.json"
        with apply_mutation("drop-fencing"):
            outcome = explore(SEED_WINDOW, artifact_path=artifact)
            assert outcome["ok"] is False
            assert outcome["failing_seed"] is not None
            assert outcome["minimal_events"] <= MAX_MINIMAL_EVENTS
            assert outcome["artifact"] == str(artifact)
            replayed = replay(artifact)
            assert not replayed.ok
            assert replayed.violations == outcome["violations"]
        assert replay(artifact).ok


class TestShrinkContract:
    def test_refuses_a_passing_schedule(self):
        with pytest.raises(ValueError, match="does not violate"):
            shrink_schedule(0, generate_schedule(0, "quick"))

    def test_unknown_mutation_rejected(self):
        with pytest.raises(ValueError, match="unknown mutation"):
            with apply_mutation("no-such-bug"):
                pass
