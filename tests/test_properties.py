"""Cross-cutting property-based tests on core invariants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.floorplan import (
    pentium4_3d_floorplans,
    pentium4_planar_floorplan,
)
from repro.memsim import baseline_config, replay_trace
from repro.memsim.cache import SetAssociativeCache
from repro.memsim.config import CacheConfig
from repro.memsim.hierarchy import MemoryHierarchy
from repro.traces import generate_trace
from repro.traces.record import AccessType, NO_DEP, TraceRecord
from repro.uarch.pipeline import planar_pipeline, stacked_pipeline
from repro.uarch.wires import stacked_pipeline_from_floorplans

KB = 1 << 10


class TestLruStackProperty:
    """LRU is a stack algorithm: for a fixed set count, adding ways can
    never turn a hit into a miss (the inclusion property)."""

    @given(
        lines=st.lists(
            st.integers(min_value=0, max_value=255), min_size=10,
            max_size=400,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_more_ways_never_fewer_hits(self, lines):
        # Same 16 sets; 2 ways vs 4 ways.
        small = SetAssociativeCache(CacheConfig(16 * 2 * 64, ways=2, latency=1))
        big = SetAssociativeCache(CacheConfig(16 * 4 * 64, ways=4, latency=1))
        for line in lines:
            if not small.lookup(line):
                small.fill(line)
            if not big.lookup(line):
                big.fill(line)
        assert big.hits >= small.hits

    @given(
        lines=st.lists(
            st.integers(min_value=0, max_value=1023), min_size=10,
            max_size=300,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_inclusion_of_resident_sets(self, lines):
        # Every line resident in the smaller cache is resident in the
        # larger same-set-count cache at every point in time.
        small = SetAssociativeCache(CacheConfig(16 * 2 * 64, ways=2, latency=1))
        big = SetAssociativeCache(CacheConfig(16 * 8 * 64, ways=8, latency=1))
        touched = set()
        for line in lines:
            for cache in (small, big):
                if not cache.lookup(line):
                    cache.fill(line)
            touched.add(line)
            for check in touched:
                if small.contains(check):
                    assert big.contains(check)


class TestCoherenceInvariants:
    def test_write_leaves_single_copy(self):
        hier = MemoryHierarchy(baseline_config())
        line_addr = 0x8000
        # Both cpus read, then cpu1 writes.
        hier.access(0, False, line_addr, 0.0)
        hier.access(1, False, line_addr, 100.0)
        hier.access(1, True, line_addr, 200.0)
        line = line_addr >> 6
        assert not hier.l1s[0].contains(line)
        assert hier.l1s[1].contains(line)

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=15, deadline=None)
    def test_no_stale_copies_after_random_traffic(self, seed):
        rng = random.Random(seed)
        hier = MemoryHierarchy(baseline_config())
        last_writer = {}
        for _ in range(300):
            cpu = rng.randrange(2)
            line = rng.randrange(16)
            write = rng.random() < 0.4
            hier.access(cpu, write, line * 64, 0.0)
            if write:
                last_writer[line] = cpu
        # After a write, the non-writing cpu must not hold the line
        # unless it re-read it later — we only assert the directory is
        # consistent with the L1 contents.
        for line in range(16):
            mask = hier._directory.get(line, 0)
            for cpu in range(2):
                assert bool(mask & (1 << cpu)) == hier.l1s[cpu].contains(line)

    def test_invalidation_count_matches_events(self):
        hier = MemoryHierarchy(baseline_config())
        for i in range(8):
            hier.access(0, False, i * 64, 0.0)   # cpu0 reads 8 lines
            hier.access(1, True, i * 64, 0.0)    # cpu1 writes them all
        assert hier.invalidations == 8


class TestReplayInvariants:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_wall_at_least_slot_bound(self, seed):
        # Two cpus at 1 ref/cycle: wall >= refs per cpu.
        records = generate_trace("svd", n_records=4000, scale=16, seed=seed)
        stats = replay_trace(records, baseline_config(16), warmup_fraction=0.0)
        assert stats.wall_cycles >= stats.n_accesses / 2 - 1

    def test_level_latencies_ordered(self):
        records = generate_trace("gauss", n_records=150_000, scale=16)
        stats = replay_trace(records, baseline_config(16), warmup_fraction=0.3)
        lat = stats.level_latency
        assert lat["l1"] < lat["l2"] < lat["memory"]

    def test_single_record_trace(self):
        records = [TraceRecord(0, 0, AccessType.LOAD, 0x1000, 0, NO_DEP)]
        stats = replay_trace(records, baseline_config(), warmup_fraction=0.0)
        assert stats.n_accesses == 1

    def test_store_only_trace(self):
        records = [
            TraceRecord(i, 0, AccessType.STORE, i * 64, 0, NO_DEP)
            for i in range(100)
        ]
        stats = replay_trace(records, baseline_config(), warmup_fraction=0.0)
        assert stats.n_accesses == 100


class TestPipelineDerivation:
    def test_floorplan_derived_matches_published(self):
        # The wire rows derived from the Figure 9/10 geometry reproduce
        # the published Table 4 eliminations exactly.
        planar_fp = pentium4_planar_floorplan()
        bottom, top = pentium4_3d_floorplans()
        derived = stacked_pipeline_from_floorplans(planar_fp, bottom, top)
        assert derived == stacked_pipeline(planar_pipeline())

    def test_derived_never_exceeds_available_stages(self):
        planar_fp = pentium4_planar_floorplan()
        bottom, top = pentium4_3d_floorplans()
        derived = stacked_pipeline_from_floorplans(planar_fp, bottom, top)
        assert derived.fp_wire_latency >= 0
        assert derived.data_cache_read >= 1


class TestTraceDeterminismAcrossProcesses:
    def test_workload_suite_profile_values_stable(self):
        # Regression pin: the string-seeded RNG must stay deterministic
        # (tuple hashing would break under PYTHONHASHSEED).
        from repro.uarch.workloads import make_profile

        profile = make_profile("specint", 0)
        assert profile.branch_freq == pytest.approx(0.171836, abs=1e-4)

    def test_trace_head_stable(self):
        records = generate_trace("svm", n_records=5, scale=16)
        assert [r.address for r in records] == [
            records[0].address, records[1].address, records[2].address,
            records[3].address, records[4].address,
        ]
        # First access is the test-vector refresh at the private base.
        assert records[0].address >= 0x8000_0000
