"""Tests for the closed-loop thermal/DVFS co-simulation.

Covers the workload drivers, the three DTM policies against hand-built
observations, the engine's epoch loop on a small grid, the registered
experiments (``table5_dynamic``, ``dtm_load_spike``,
``dtm_policy_compare``) against their Table 5 acceptance criteria, the
analysis reports, the bench pair, and the ``dtm`` CLI subcommand.
"""

import json

import pytest

from repro.analysis.coupled import (
    format_epoch_trace,
    format_policy_comparison,
    format_spike_report,
    pareto_front,
)
from repro.bench.suite import bench_coupled_loop
from repro.cli import main
from repro.core.experiments import REGISTRY, run_experiment
from repro.coupled import (
    CoupledConfig,
    DtmObservation,
    NoDtm,
    PidDtm,
    PredictiveDtm,
    ThresholdDtm,
    bursty_load_spikes,
    constant_load,
    make_policy,
    run_coupled_loop,
    step_load,
)
from repro.coupled.drivers import SPIKE_JITTER
from repro.uarch.dvfs import power_3d_w

#: Small-grid engine config shared by the integration tests: big enough
#: for a physical field, small enough that the whole class runs in
#: seconds.
TINY = CoupledConfig(
    nx=10,
    n_epochs=4,
    epoch_s=1.0,
    dt_s=0.5,
    calibration_s=5.0,
    calibration_dt_s=0.5,
)


def mkobs(**overrides):
    """A plausible mid-run observation; override what the test varies."""
    base = dict(
        epoch=3,
        t_s=8.0,
        peak_c=90.0,
        ceiling_c=97.0,
        vcc=0.90,
        power_w=100.0,
        activity=1.0,
        epoch_s=2.0,
        tau_s=1.0,
        epoch_response=1.0,
        ambient_c=45.0,
        rise_per_watt=0.5,
        vcc_min=0.70,
        vcc_max=1.00,
    )
    base.update(overrides)
    return DtmObservation(**base)


@pytest.fixture(scope="module")
def tiny_run():
    return run_coupled_loop(ThresholdDtm(), constant_load(1.0), TINY)


class TestDrivers:
    def test_constant_load(self):
        load = constant_load(0.8)
        assert load(0, 0.0) == 0.8
        assert load(17, 99.0) == 0.8

    def test_constant_load_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            constant_load(-0.1)

    def test_step_load(self):
        load = step_load(0.5, 1.2, t_step_s=10.0)
        assert load(0, 0.0) == 0.5
        assert load(5, 10.0) == 1.2
        assert load(9, 99.0) == 1.2

    def test_bursty_deterministic(self):
        a = bursty_load_spikes(seed=7)
        b = bursty_load_spikes(seed=7)
        assert [a(e, 0.0) for e in range(64)] == [
            b(e, 0.0) for e in range(64)
        ]
        c = bursty_load_spikes(seed=8)
        assert [a(e, 0.0) for e in range(64)] != [
            c(e, 0.0) for e in range(64)
        ]

    def test_bursty_shape(self):
        load = bursty_load_spikes(
            seed=0, base=0.6, spike=1.2, period=32, burst=16, ramp=8
        )
        # Quiet phase leads each period; the burst fills its tail.
        for epoch in range(16):
            assert load(epoch, 0.0) <= 0.6 * (1 + SPIKE_JITTER)
        # The ramp climbs toward the spike, then holds there.
        levels = [load(e, 0.0) for e in range(16, 32)]
        assert levels[0] < levels[4] < levels[7]
        for level in levels[7:]:
            assert level >= 1.2 * (1 - SPIKE_JITTER)
        # The next period starts quiet again.
        assert load(32, 0.0) <= 0.6 * (1 + SPIKE_JITTER)

    def test_bursty_validation(self):
        with pytest.raises(ValueError, match="shorter than the period"):
            bursty_load_spikes(period=16, burst=16)
        with pytest.raises(ValueError, match="ramp"):
            bursty_load_spikes(burst=16, ramp=17)
        with pytest.raises(ValueError, match="ramp"):
            bursty_load_spikes(ramp=0)


class TestThresholdDtm:
    def test_steps_down_above_setpoint(self):
        policy = ThresholdDtm(vcc_step=0.02, guard_c=3.0, band_c=2.0)
        obs = mkobs(peak_c=95.0, vcc=0.90)  # setpoint 94
        assert policy.decide(obs) == pytest.approx(0.88)

    def test_steps_up_below_band(self):
        policy = ThresholdDtm(vcc_step=0.02, guard_c=3.0, band_c=2.0)
        obs = mkobs(peak_c=91.0, vcc=0.90)  # below 94 - 2
        assert policy.decide(obs) == pytest.approx(0.92)

    def test_holds_inside_band(self):
        policy = ThresholdDtm(vcc_step=0.02, guard_c=3.0, band_c=2.0)
        obs = mkobs(peak_c=93.0, vcc=0.90)
        assert policy.decide(obs) == pytest.approx(0.90)

    def test_clamps_at_floor(self):
        policy = ThresholdDtm()
        obs = mkobs(peak_c=99.0, vcc=0.70)
        assert policy.decide(obs) == pytest.approx(0.70)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError, match="positive"):
            ThresholdDtm(vcc_step=0.0)
        with pytest.raises(ValueError, match="positive"):
            ThresholdDtm(band_c=-1.0)


class TestPidDtm:
    def test_throttles_when_hot(self):
        policy = PidDtm()
        obs = mkobs(peak_c=98.0, vcc=0.90)  # error = 94 - 98 < 0
        assert policy.decide(obs) < 0.90

    def test_speeds_up_when_cool(self):
        policy = PidDtm()
        obs = mkobs(peak_c=80.0, vcc=0.90)
        assert policy.decide(obs) > 0.90

    def test_reset_clears_history(self):
        policy = PidDtm()
        first = policy.decide(mkobs(peak_c=98.0, vcc=0.90))
        policy.reset()
        again = policy.decide(mkobs(peak_c=98.0, vcc=0.90))
        # The velocity form primes on the first post-reset call, so an
        # identical observation must yield the identical decision.
        assert again == pytest.approx(first)


class TestPredictiveDtm:
    def test_parks_at_setpoint(self):
        # epoch_response = 1 makes the one-epoch projection the steady
        # map itself, so the bisection should land exactly where
        # ambient + rise_per_watt * P(v) equals the setpoint.
        policy = PredictiveDtm(guard_c=3.0)
        obs = mkobs(epoch_response=1.0)
        vcc = policy.decide(obs)
        setpoint = obs.ceiling_c - 3.0

        def t_ss(v):
            return obs.ambient_c + obs.rise_per_watt * power_3d_w(v, v)

        assert obs.vcc_min < vcc < obs.vcc_max
        assert t_ss(vcc) <= setpoint
        assert t_ss(vcc + 5e-4) > setpoint

    def test_full_speed_when_cool_enough(self):
        # A generous ceiling: even vcc_max projects under the setpoint.
        policy = PredictiveDtm(guard_c=3.0)
        obs = mkobs(epoch_response=1.0, ceiling_c=200.0)
        assert policy.decide(obs) == obs.vcc_max

    def test_floor_when_hopeless(self):
        policy = PredictiveDtm(guard_c=3.0)
        obs = mkobs(epoch_response=1.0, ceiling_c=50.0)
        assert policy.decide(obs) == obs.vcc_min

    def test_activity_trend_extrapolation(self):
        # A ramping load: the second decision extrapolates the trend
        # (activity 0.5 -> 1.0 projects 1.5) and throttles harder than
        # a fresh policy that only sees the persistence level 1.0.
        ramped = PredictiveDtm(guard_c=3.0)
        ramped.decide(mkobs(epoch_response=1.0, activity=0.5))
        trending = ramped.decide(mkobs(epoch_response=1.0, activity=1.0))
        fresh = PredictiveDtm(guard_c=3.0)
        persistence = fresh.decide(mkobs(epoch_response=1.0, activity=1.0))
        assert trending < persistence

    def test_tau_fallback_without_epoch_response(self):
        # With no measured response the projection falls back to the
        # single-tau exponential; a long epoch relative to tau still
        # converges near the steady parking point.
        policy = PredictiveDtm(guard_c=3.0)
        obs = mkobs(epoch_response=0.0, tau_s=0.1, epoch_s=10.0)
        vcc = policy.decide(obs)
        assert obs.vcc_min < vcc < obs.vcc_max


class TestPolicyFactory:
    def test_known_names(self):
        assert isinstance(make_policy("none"), NoDtm)
        assert isinstance(make_policy("threshold"), ThresholdDtm)
        assert isinstance(make_policy("pid"), PidDtm)
        assert isinstance(make_policy("predictive"), PredictiveDtm)

    def test_kwargs_forwarded(self):
        policy = make_policy("threshold", vcc_step=0.05)
        assert policy.vcc_step == 0.05

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown DTM policy"):
            make_policy("bangbang")

    def test_no_dtm_holds(self):
        assert NoDtm().decide(mkobs(peak_c=120.0, vcc=0.95)) == 0.95


class TestCoupledConfig:
    def test_rejects_nonpositive_epoch(self):
        with pytest.raises(ValueError, match="positive"):
            CoupledConfig(epoch_s=0.0)

    def test_rejects_bad_vcc_ordering(self):
        with pytest.raises(ValueError, match="vcc_min"):
            CoupledConfig(vcc_min=0.9, vcc_init=0.8)

    def test_rejects_unknown_start(self):
        with pytest.raises(ValueError, match="start"):
            CoupledConfig(start="lukewarm")


class TestEngine:
    def test_trace_shape(self, tiny_run):
        assert len(tiny_run.epochs) == TINY.n_epochs
        assert tiny_run.policy == "threshold"
        assert tiny_run.ceiling_c > 0
        assert tiny_run.tau_s > 0
        for trace in tiny_run.epochs:
            assert trace.peak_c > 0
            assert TINY.vcc_min <= trace.vcc <= TINY.vcc_max
            assert trace.power_w == pytest.approx(
                sum(trace.power_breakdown_w.values())
            )

    def test_cold_start_heats_monotonically(self):
        # Constant full load from ambient with no throttling: each
        # epoch ends hotter (the throttled tiny_run dips once the
        # threshold policy engages).
        run = run_coupled_loop(NoDtm(), constant_load(1.0), TINY)
        peaks = [e.peak_c for e in run.epochs]
        assert peaks == sorted(peaks)
        assert peaks[0] < peaks[-1]

    def test_deterministic(self, tiny_run):
        again = run_coupled_loop(ThresholdDtm(), constant_load(1.0), TINY)
        assert [e.peak_c for e in again.epochs] == [
            e.peak_c for e in tiny_run.epochs
        ]
        assert [e.vcc for e in again.epochs] == [
            e.vcc for e in tiny_run.epochs
        ]

    def test_steady_start_is_warm(self):
        run = run_coupled_loop(
            NoDtm(),
            constant_load(1.0),
            CoupledConfig(
                nx=10,
                n_epochs=2,
                epoch_s=1.0,
                dt_s=0.5,
                start="steady",
                calibration_s=5.0,
                calibration_dt_s=0.5,
            ),
        )
        # A warm platform under unchanged load barely moves.
        assert abs(run.epochs[-1].peak_c - run.epochs[0].peak_c) < 1.0

    def test_power_scales_with_vcc_cubed(self, tiny_run):
        nominal = tiny_run.nominal_power_w
        full = tiny_run.epochs[0]
        assert full.vcc == 1.0
        assert full.power_w == pytest.approx(nominal, rel=1e-9)

    def test_negative_activity_rejected(self):
        with pytest.raises(ValueError, match="negative activity"):
            run_coupled_loop(NoDtm(), lambda epoch, t_s: -0.5, TINY)

    def test_dict_roundtrip(self, tiny_run):
        out = tiny_run.to_dict()
        assert out["policy"] == "threshold"
        assert len(out["epochs"]) == TINY.n_epochs
        summary = tiny_run.summary()
        for key in (
            "final_vcc", "max_peak_c", "exceeded_epochs",
            "avg_perf_pct", "energy_j",
        ):
            assert key in summary
        assert tiny_run.energy_j == pytest.approx(
            sum(e.power_w * TINY.epoch_s for e in tiny_run.epochs)
        )


class TestRegisteredExperiments:
    def test_registered(self):
        for experiment_id in (
            "table5_dynamic", "dtm_load_spike", "dtm_policy_compare"
        ):
            assert experiment_id in REGISTRY
            assert REGISTRY.get(experiment_id).paper_values

    def test_table5_dynamic_converges_to_same_temp(self):
        outcome = run_experiment("table5_dynamic", seed=0)
        assert outcome.ok, outcome.error
        result = outcome.result
        converged = result["converged"]
        # Table 5's Same Temp point: Vcc ~0.92, ~66% of planar power,
        # ~108% of planar performance — reached closed-loop from a cold
        # start, never busting the planar-peak ceiling on the way.
        assert converged["vcc"] == pytest.approx(0.92, abs=0.04)
        assert 60.0 <= converged["power_pct"] <= 80.0
        assert converged["perf_pct"] > 100.0
        assert result["exceeded_epochs"] == 0

    def test_dtm_load_spike_control_vs_policies(self):
        outcome = run_experiment("dtm_load_spike", seed=0)
        assert outcome.ok, outcome.error
        result = outcome.result
        assert result["control_exceeded_epochs"] > 0
        assert result["dtm_exceeded_epochs"]
        for policy, exceeded in result["dtm_exceeded_epochs"].items():
            assert exceeded == 0, f"{policy} broke the ceiling"

    def test_dtm_policy_compare_shape(self):
        outcome = run_experiment("dtm_policy_compare", seed=0, nx=12)
        assert outcome.ok, outcome.error
        summaries = outcome.result["policies"]
        assert [s["policy"] for s in summaries] == [
            "none", "threshold", "pid", "predictive"
        ]
        # The unthrottled control runs hottest.
        none = next(s for s in summaries if s["policy"] == "none")
        assert none["max_peak_c"] == max(s["max_peak_c"] for s in summaries)


class TestAnalysisReports:
    def _summaries(self):
        def summary(policy, perf, peak):
            return {
                "policy": policy,
                "ceiling_c": 97.0,
                "tau_s": 1.0,
                "final_vcc": 0.9,
                "final_power_w": 100.0,
                "final_peak_c": peak,
                "max_peak_c": peak,
                "exceeded_epochs": 0,
                "avg_perf_pct": perf,
                "energy_j": 1000.0,
            }

        return [
            summary("a", 100.0, 90.0),
            summary("b", 90.0, 95.0),   # dominated by a
            summary("c", 100.0, 95.0),  # dominated by a
            summary("d", 110.0, 96.0),  # faster but hotter: on the front
        ]

    def test_pareto_front(self):
        assert pareto_front(self._summaries()) == [
            True, False, False, True
        ]

    def test_pareto_front_single(self):
        assert pareto_front(self._summaries()[:1]) == [True]

    def test_format_policy_comparison(self):
        text = format_policy_comparison(self._summaries())
        assert "DTM policy comparison" in text
        assert "pareto" in text
        assert "dominated" in text

    def test_format_epoch_trace(self, tiny_run):
        text = format_epoch_trace(tiny_run.to_dict())
        assert "policy=threshold" in text
        assert "peak_c" in text
        assert text.count("\n") >= TINY.n_epochs

    def test_format_epoch_trace_truncates(self, tiny_run):
        short = format_epoch_trace(tiny_run.to_dict(), max_rows=2)
        assert len(short) < len(format_epoch_trace(tiny_run.to_dict()))

    def test_format_spike_report(self):
        summaries = self._summaries()
        result = {
            "ceiling_c": 97.0,
            "policies": {s["policy"]: s for s in summaries},
            "control_exceeded_epochs": 20,
            "dtm_exceeded_epochs": {"threshold": 0, "pid": 0},
        }
        text = format_spike_report(result)
        assert "control exceeded 20 epochs" in text
        assert "PASS" in text
        result["dtm_exceeded_epochs"]["pid"] = 3
        assert "FAIL" in format_spike_report(result)


class TestBenchPair:
    def test_cold_and_warm_agree(self):
        res = bench_coupled_loop(nx=10, n_epochs=3, repeats=1)
        assert res.name == "coupled-loop"
        assert res.equivalent
        assert res.reference_s > 0
        assert res.optimized_s > 0


class TestDtmCli:
    ARGS = [
        "--nx", "10", "--epochs", "3", "--epoch-s", "1.0", "--dt", "0.5",
    ]

    def test_single_policy_trace(self, capsys):
        code = main(
            ["dtm", "--policy", "predictive", "--load", "constant"]
            + self.ARGS
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "policy=predictive" in out

    def test_all_policies_comparison(self, capsys):
        code = main(["dtm", "--load", "constant"] + self.ARGS)
        assert code == 0
        out = capsys.readouterr().out
        assert "DTM policy comparison" in out
        assert "pareto" in out

    def test_json_output(self, capsys):
        code = main(
            ["dtm", "--policy", "threshold", "--load", "constant",
             "--json"] + self.ARGS
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "threshold" in payload
        assert len(payload["threshold"]["epochs"]) == 3
