"""Unit tests for the ``repro bench`` harness: timing primitives,
report round-trip, and the baseline regression gate's arithmetic."""

import pytest

from repro.bench.harness import (
    BENCH_SCHEMA,
    BenchResult,
    compare_to_baseline,
    load_report,
    time_best,
    write_report,
)


def _result(name, reference_s, optimized_s, equivalent=True):
    return BenchResult(
        name=name,
        reference_s=reference_s,
        optimized_s=optimized_s,
        equivalent=equivalent,
    )


class TestTimeBest:
    def test_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            time_best(lambda: None, repeats=0)

    def test_returns_nonnegative_seconds(self):
        assert time_best(lambda: sum(range(100)), repeats=2) >= 0.0

    def test_calls_fn_exactly_repeats_times(self):
        calls = []
        time_best(lambda: calls.append(1), repeats=5)
        assert len(calls) == 5


class TestBenchResult:
    def test_speedup(self):
        assert _result("x", 3.0, 1.0).speedup == 3.0

    def test_speedup_with_zero_optimized_time(self):
        assert _result("x", 1.0, 0.0).speedup == float("inf")

    def test_to_dict_carries_speedup(self):
        entry = _result("x", 2.0, 0.5).to_dict()
        assert entry["speedup"] == 4.0
        assert entry["name"] == "x"


class TestReportRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = tmp_path / "bench.json"
        write_report(
            [_result("a", 1.0, 0.25)], path, extra={"tier": "quick"}
        )
        report = load_report(path)
        assert report["schema"] == BENCH_SCHEMA
        assert report["tier"] == "quick"
        assert report["results"][0]["speedup"] == 4.0

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "something-else/9", "results": []}')
        with pytest.raises(ValueError, match="schema"):
            load_report(path)


class TestRegressionGate:
    def _report(self, *results):
        return {"schema": BENCH_SCHEMA,
                "results": [r.to_dict() for r in results]}

    def test_no_regression_when_equal(self):
        report = self._report(_result("a", 3.0, 1.0))
        assert compare_to_baseline(report, report) == []

    def test_within_threshold_passes(self):
        # Baseline 4.0x, current 3.1x: above the 4.0 * 0.75 = 3.0 floor.
        current = self._report(_result("a", 3.1, 1.0))
        baseline = self._report(_result("a", 4.0, 1.0))
        assert compare_to_baseline(current, baseline, threshold=0.25) == []

    def test_below_threshold_regresses(self):
        # Baseline 4.0x, current 2.9x: below the 3.0 floor.
        current = self._report(_result("a", 2.9, 1.0))
        baseline = self._report(_result("a", 4.0, 1.0))
        problems = compare_to_baseline(current, baseline, threshold=0.25)
        assert len(problems) == 1
        assert "a" in problems[0]

    def test_faster_than_baseline_passes(self):
        current = self._report(_result("a", 8.0, 1.0))
        baseline = self._report(_result("a", 4.0, 1.0))
        assert compare_to_baseline(current, baseline) == []

    def test_new_benchmark_is_ignored(self):
        current = self._report(_result("brand-new", 1.0, 1.0))
        baseline = self._report(_result("a", 4.0, 1.0))
        assert compare_to_baseline(current, baseline) == []

    def test_removed_benchmark_is_ignored(self):
        current = self._report(_result("a", 4.0, 1.0))
        baseline = self._report(
            _result("a", 4.0, 1.0), _result("gone", 9.0, 1.0)
        )
        assert compare_to_baseline(current, baseline) == []

    def test_non_equivalent_always_regresses(self):
        # Even a massive speedup fails if the answers differ.
        current = self._report(_result("a", 100.0, 1.0, equivalent=False))
        baseline = self._report(_result("a", 4.0, 1.0))
        problems = compare_to_baseline(current, baseline)
        assert len(problems) == 1
        assert "equivalent" in problems[0]

    def test_threshold_validation(self):
        report = self._report(_result("a", 1.0, 1.0))
        with pytest.raises(ValueError):
            compare_to_baseline(report, report, threshold=0.0)
        with pytest.raises(ValueError):
            compare_to_baseline(report, report, threshold=1.0)
