"""Unit tests for the clock-free lease table.

Every transition takes ``now`` as a parameter, so these tests drive the
whole lease life cycle — claim, renew, expire, release, evict — with
plain numbers and zero sleeps.
"""

import pytest

from repro.runner.leases import LeaseTable


def _table(ttl=10.0):
    return LeaseTable(ttl_s=ttl)


class TestClaim:
    def test_claim_grants_lease_with_ttl_deadline(self):
        table = _table(ttl=10.0)
        lease = table.claim("fp-1", "t1", "node-0", 0, now=100.0)
        assert lease.deadline == 110.0
        assert lease.executor_id == "node-0"
        assert "fp-1" in table
        assert len(table) == 1

    def test_double_claim_rejected(self):
        table = _table()
        table.claim("fp-1", "t1", "node-0", 0, now=0.0)
        with pytest.raises(RuntimeError, match="already leased"):
            table.claim("fp-1", "t1", "node-1", 1, now=1.0)

    def test_invalid_ttl_rejected(self):
        with pytest.raises(ValueError, match="ttl_s"):
            LeaseTable(ttl_s=0.0)


class TestRenewAndExpiry:
    def test_renew_is_executor_scoped(self):
        table = _table(ttl=10.0)
        table.claim("fp-1", "t1", "node-0", 0, now=0.0)
        table.claim("fp-2", "t2", "node-0", 0, now=0.0)
        table.claim("fp-3", "t3", "node-1", 0, now=0.0)
        assert table.renew("node-0", now=5.0) == 2
        # node-0's leases pushed to 15.0; node-1's still expires at 10.0
        expired = table.expired(now=12.0)
        assert [lease.fingerprint for lease in expired] == ["fp-3"]
        assert len(table) == 2

    def test_expired_pops_everything_past_deadline(self):
        table = _table(ttl=5.0)
        table.claim("fp-1", "t1", "node-0", 0, now=0.0)
        table.claim("fp-2", "t2", "node-1", 0, now=3.0)
        assert table.expired(now=4.0) == []
        gone = table.expired(now=6.0)
        assert [lease.fingerprint for lease in gone] == ["fp-1"]
        assert table.expired(now=9.0)[0].fingerprint == "fp-2"
        assert len(table) == 0

    def test_renewals_counted(self):
        table = _table()
        table.claim("fp-1", "t1", "node-0", 0, now=0.0)
        table.renew("node-0", now=1.0)
        table.renew("node-0", now=2.0)
        assert table.get("fp-1").renewals == 2


class TestReleaseAndEvict:
    def test_release_unscoped(self):
        table = _table()
        table.claim("fp-1", "t1", "node-0", 0, now=0.0)
        released = table.release("fp-1")
        assert released.task_id == "t1"
        assert "fp-1" not in table
        assert table.release("fp-1") is None

    def test_scoped_release_ignores_other_executor(self):
        # A late completion from the executor that lost the lease must
        # not evict the claim of the executor the task was re-granted to.
        table = _table()
        table.claim("fp-1", "t1", "node-1", 1, now=0.0)
        assert table.release("fp-1", executor_id="node-0") is None
        assert "fp-1" in table
        assert table.release("fp-1", executor_id="node-1") is not None

    def test_evict_executor_pops_only_its_leases(self):
        table = _table()
        table.claim("fp-1", "t1", "node-0", 0, now=0.0)
        table.claim("fp-2", "t2", "node-0", 0, now=0.0)
        table.claim("fp-3", "t3", "node-1", 0, now=0.0)
        evicted = table.evict_executor("node-0", now=1.0)
        assert sorted(lease.fingerprint for lease in evicted) == [
            "fp-1", "fp-2",
        ]
        assert list(table.held_by("node-1"))[0].fingerprint == "fp-3"
        assert len(table) == 1
