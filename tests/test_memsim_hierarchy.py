"""Tests for the bus, the assembled hierarchy, and trace replay."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim.bus import OffDieBus
from repro.memsim.config import (
    BusConfig,
    CacheConfig,
    HierarchyConfig,
    baseline_config,
    stacked_dram_config,
    stacked_sram_config,
)
from repro.memsim.hierarchy import L1, L2, MEMORY, STACKED, MemoryHierarchy
from repro.memsim.replay import replay_trace
from repro.traces.record import AccessType, NO_DEP, TraceRecord

KB, MB = 1 << 10, 1 << 20


def loads(addresses, cpu=0, deps=None):
    deps = deps or {}
    return [
        TraceRecord(i, cpu, AccessType.LOAD, a, 0x400000, deps.get(i, NO_DEP))
        for i, a in enumerate(addresses)
    ]


class TestOffDieBus:
    def test_transfer_time(self):
        bus = OffDieBus(BusConfig(bytes_per_cycle=4.0))
        done = bus.transfer(0.0, 64)
        assert done == pytest.approx(16.0)

    def test_contention_serializes(self):
        bus = OffDieBus(BusConfig(bytes_per_cycle=4.0))
        bus.transfer(0.0, 64)
        done = bus.transfer(0.0, 64)
        assert done == pytest.approx(32.0)
        assert bus.total_wait_cycles == pytest.approx(16.0)

    def test_bandwidth_and_power(self):
        bus = OffDieBus(BusConfig())
        bus.transfer(0.0, 4000)
        bw = bus.bandwidth_gbps(elapsed_cycles=4000.0, clock_ghz=4.0)
        assert bw == pytest.approx(4.0)  # 1 B/cycle at 4 GHz
        power = bus.power_w(4000.0, 4.0)
        # 4 GB/s = 32 Gb/s at 20 mW/Gb/s = 0.64 W.
        assert power == pytest.approx(0.64)

    def test_rejects_empty_transfer(self):
        bus = OffDieBus(BusConfig())
        with pytest.raises(ValueError):
            bus.transfer(0.0, 0)

    def test_account_only_counts_bytes(self):
        bus = OffDieBus(BusConfig())
        bus.account_only(64)
        assert bus.total_bytes == 64


class TestHierarchyConfigs:
    def test_table3_baseline(self):
        config = baseline_config()
        assert config.l1d.size_bytes == 32 * KB
        assert config.l1d.ways == 8
        assert config.l1d.latency == 4
        assert config.l2.size_bytes == 4 * MB
        assert config.l2.ways == 16
        assert config.l2.latency == 16
        assert config.bus.bytes_per_cycle == 4.0

    def test_stacked_sram_adds_8mb_at_24_cycles(self):
        config = stacked_sram_config()
        assert config.stacked_sram.size_bytes == 8 * MB
        assert config.stacked_sram.latency == 24
        assert config.last_level_capacity == 12 * MB

    def test_stacked_dram_drops_l2(self):
        config = stacked_dram_config(32)
        assert config.l2 is None
        assert config.stacked_dram.size_bytes == 32 * MB

    def test_stacked_dram_validates_capacity(self):
        with pytest.raises(ValueError):
            stacked_dram_config(48)

    def test_scale_divides_capacities(self):
        config = baseline_config(scale=8)
        assert config.l2.size_bytes == 512 * KB

    def test_cannot_have_both_stacked_levels(self):
        from repro.memsim.config import DramCacheConfig

        with pytest.raises(ValueError):
            HierarchyConfig(
                stacked_sram=CacheConfig(1 * MB, ways=16, latency=24),
                stacked_dram=DramCacheConfig(size_bytes=32 * MB),
            )


class TestMemoryHierarchy:
    def small(self):
        return MemoryHierarchy(
            HierarchyConfig(
                l1d=CacheConfig(1 * KB, ways=2, latency=4),
                l2=CacheConfig(64 * KB, ways=16, latency=16),
            )
        )

    def test_l1_hit_fast_path(self):
        hier = self.small()
        first = hier.access(0, False, 0x1000, 0.0)
        assert first.level == MEMORY
        second = hier.access(0, False, 0x1000, first.completion)
        assert second.level == L1
        assert second.completion - first.completion == pytest.approx(4.0)

    def test_l2_hit_after_l1_eviction(self):
        hier = self.small()
        hier.access(0, False, 0x1000, 0.0)
        # Evict 0x1000 from the tiny L1 by filling its set.
        for i in range(1, 4):
            hier.access(0, False, 0x1000 + i * 1024, 0.0)
        result = hier.access(0, False, 0x1000, 1e6)
        assert result.level == L2

    def test_memory_access_crosses_bus(self):
        hier = self.small()
        result = hier.access(0, False, 0x9000, 0.0)
        assert result.offchip
        assert hier.bus.total_bytes >= 64  # the returned line

    def test_memory_latency_in_expected_band(self):
        hier = self.small()
        result = hier.access(0, False, 0x9000, 0.0)
        # 4 (L1) + 16 (L2) + cmd 2 + bank 100 + controller 88 + bus 16.
        assert 180.0 <= result.completion <= 300.0

    def test_coherence_invalidation_on_remote_write(self):
        hier = self.small()
        hier.access(0, False, 0x4000, 0.0)   # cpu0 caches the line
        hier.access(1, True, 0x4000, 500.0)  # cpu1 writes it
        assert hier.invalidations == 1
        # cpu0 must now miss its L1.
        result = hier.access(0, False, 0x4000, 1000.0)
        assert result.level != L1

    def test_read_sharing_no_invalidation(self):
        hier = self.small()
        hier.access(0, False, 0x4000, 0.0)
        hier.access(1, False, 0x4000, 500.0)
        assert hier.invalidations == 0

    def test_stacked_dram_path(self):
        hier = MemoryHierarchy(stacked_dram_config(32, scale=32))
        first = hier.access(0, False, 0x5000, 0.0)
        assert first.level == MEMORY
        # Evict from L1 (32KB, 8-way): fill the set with other lines.
        for i in range(1, 9):
            hier.access(0, False, 0x5000 + i * 32 * KB, 0.0)
        again = hier.access(0, False, 0x5000, 1e6)
        assert again.level == STACKED
        assert not again.offchip

    def test_prefetcher_pulls_on_die_lines(self):
        hier = self.small()
        # Prime two sequential lines into the L2 (via memory).
        for line in range(8):
            hier.access(0, False, line * 64, 0.0)
        # Evict them from L1 (line stride 1 walks every L1 set) and
        # re-stream: sequential misses should trigger on-die prefetches.
        for i in range(64):
            hier.access(0, False, 0x40000 + i * 64, 0.0)
        before = hier.prefetches
        for line in range(8):
            hier.access(0, False, line * 64, 1e7)
        assert hier.prefetches > before

    def test_reset_stats(self):
        hier = self.small()
        hier.access(0, False, 0x1000, 0.0)
        hier.reset_stats()
        assert hier.total_accesses == 0
        assert hier.bus.total_bytes == 0


class TestReplay:
    def test_dependency_honored(self):
        # Ld2 depends on Ld1 (a memory miss): its latency must include
        # waiting for Ld1.
        records = loads([0x100000, 0x200000], deps={1: 0})
        stats = replay_trace(records, baseline_config(), warmup_fraction=0.0)
        assert stats.n_accesses == 2
        # Second access issued after first completed (~200+ cycles), so
        # the wall clock is about two full memory latencies.
        assert stats.wall_cycles > 350.0

    def test_independent_loads_overlap(self):
        dep_records = loads([0x100000, 0x200000], deps={1: 0})
        indep_records = loads([0x100000, 0x200000])
        dep = replay_trace(dep_records, baseline_config(), warmup_fraction=0.0)
        indep = replay_trace(
            indep_records, baseline_config(), warmup_fraction=0.0
        )
        assert indep.wall_cycles < dep.wall_cycles

    def test_cpma_definition(self):
        records = loads([0x1000] * 100)
        stats = replay_trace(records, baseline_config(), warmup_fraction=0.0)
        assert stats.cpma == pytest.approx(
            stats.wall_cycles / (stats.n_accesses / 2)
        )

    def test_warmup_excluded_from_stats(self):
        records = loads([0x100000 + i * 64 for i in range(100)])
        full = replay_trace(records, baseline_config(), warmup_fraction=0.0)
        warm = replay_trace(records, baseline_config(), warmup_fraction=0.5)
        assert warm.n_accesses == 50
        assert full.n_accesses == 100

    def test_mshr_limit_throttles(self):
        # With one MSHR, misses serialize; with eight they overlap.
        import dataclasses

        records = loads([0x100000 + i * 4096 for i in range(64)])
        narrow = dataclasses.replace(baseline_config(), mshrs_per_cpu=1)
        wide = dataclasses.replace(baseline_config(), mshrs_per_cpu=8)
        slow = replay_trace(records, narrow, warmup_fraction=0.0)
        fast = replay_trace(records, wide, warmup_fraction=0.0)
        assert slow.wall_cycles > fast.wall_cycles * 2

    def test_bandwidth_reported(self):
        records = loads([0x100000 + i * 64 for i in range(500)])
        stats = replay_trace(records, baseline_config(), warmup_fraction=0.0)
        assert stats.bandwidth_gbps > 0
        assert stats.bus_power_w > 0

    def test_rejects_bad_warmup(self):
        records = loads([0x1000])
        with pytest.raises(ValueError):
            replay_trace(records, baseline_config(), warmup_fraction=1.0)

    def test_level_counts_sum_to_accesses(self):
        records = loads([0x1000 + (i % 37) * 64 for i in range(300)])
        stats = replay_trace(records, baseline_config(), warmup_fraction=0.0)
        assert sum(stats.level_counts.values()) == 300

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_latency_at_least_l1_property(self, seed):
        import random

        rng = random.Random(seed)
        records = loads([rng.randrange(1 << 24) & ~63 for _ in range(100)])
        stats = replay_trace(records, baseline_config(), warmup_fraction=0.0)
        assert stats.avg_latency >= 4.0  # L1 latency is the floor
