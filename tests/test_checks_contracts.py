"""Tests for the RPL3xx experiment-contract pass."""

import ast
import textwrap

from repro.checks import contracts
from repro.checks.diagnostics import PyFile
from repro.checks.engine import load_files, package_root, repo_root


def make_registry_file(source, rel=contracts.EXPERIMENTS_REL):
    source = textwrap.dedent(source)
    return PyFile(rel=rel, module="repro.core.experiments",
                  tree=ast.parse(source), lines=source.splitlines())


def codes(diags):
    return sorted(d.code for d in diags)


REGISTRY_TEMPLATE = """
def _run_figure9(**kwargs):
    {body}

REGISTRY = [
    Experiment(id="figure-9", title="t", paper_values={{}}, run=_run_figure9),
]
"""


class TestExperimentContracts:
    def test_docstring_naming_artifact_is_clean(self, tmp_path):
        pf = make_registry_file(REGISTRY_TEMPLATE.format(
            body='"""Figure 9: a floorplan."""'
        ))
        (tmp_path / "test_x.py").write_text("uses figure-9")
        assert contracts.check_experiments(pf, tmp_path) == []

    def test_missing_docstring_is_rpl301(self, tmp_path):
        pf = make_registry_file(REGISTRY_TEMPLATE.format(body="return {}"))
        (tmp_path / "test_x.py").write_text("uses figure-9")
        assert codes(contracts.check_experiments(pf, tmp_path)) == ["RPL301"]

    def test_docstring_not_naming_artifact_is_rpl302(self, tmp_path):
        pf = make_registry_file(REGISTRY_TEMPLATE.format(
            body='"""Some other words entirely."""'
        ))
        (tmp_path / "test_x.py").write_text("uses figure-9")
        assert codes(contracts.check_experiments(pf, tmp_path)) == ["RPL302"]

    def test_missing_kwargs_is_rpl303(self, tmp_path):
        source = """
        def _run_t(nx):
            \"\"\"Table 9.\"\"\"

        R = [Experiment(id="table-9", title="t", paper_values={}, run=_run_t)]
        """
        pf = make_registry_file(source)
        (tmp_path / "test_x.py").write_text("uses table-9")
        assert codes(contracts.check_experiments(pf, tmp_path)) == ["RPL303"]

    def test_untested_experiment_is_rpl304(self, tmp_path):
        pf = make_registry_file(REGISTRY_TEMPLATE.format(
            body='"""Figure 9."""'
        ))
        (tmp_path / "test_x.py").write_text("nothing relevant")
        assert codes(contracts.check_experiments(pf, tmp_path)) == ["RPL304"]

    def test_no_tests_dir_skips_rpl304(self):
        pf = make_registry_file(REGISTRY_TEMPLATE.format(
            body='"""Figure 9."""'
        ))
        assert contracts.check_experiments(pf, None) == []


class TestKernelTable1Mapping:
    def test_known_workload_is_clean(self):
        pf = make_registry_file("""
        K = [KernelEntry("gauss", f, 1, "d")]
        """, rel=contracts.KERNELS_REL)
        diags = contracts.check_kernels(pf)
        assert [d for d in diags if d.code == "RPL305"] == []

    def test_rogue_kernel_is_rpl305(self):
        pf = make_registry_file("""
        K = [KernelEntry("linpack", f, 1, "d")]
        """, rel=contracts.KERNELS_REL)
        diags = contracts.check_kernels(pf)
        assert "RPL305" in codes(diags)

    def test_missing_table1_workload_is_rpl306(self):
        pf = make_registry_file("""
        K = [KernelEntry("gauss", f, 1, "d")]
        """, rel=contracts.KERNELS_REL)
        missing = [d for d in contracts.check_kernels(pf)
                   if d.code == "RPL306"]
        assert len(missing) == len(contracts.TABLE1_WORKLOADS) - 1

    def test_empty_module_produces_nothing(self):
        pf = make_registry_file("x = 1", rel=contracts.KERNELS_REL)
        assert contracts.check_kernels(pf) == []


class TestRepoRegistry:
    def test_shipped_registry_is_contract_clean(self):
        files = load_files(package_root())
        tests_dir = repo_root() / "tests"
        assert contracts.run(files, tests_dir=tests_dir) == []

    def test_table1_set_matches_design_doc(self):
        assert len(contracts.TABLE1_WORKLOADS) == 12
