"""End-to-end tests of the simulation service over real sockets.

Each test boots a :class:`ServiceThread` on a free port with the fast
fixture registry and the synchronous ``inproc`` backend, then speaks
plain HTTP at it.  These are the acceptance tests of the robustness
claims: single-flight coalescing, byte-identical serving, rate-limit
and watermark shedding, the circuit breaker under a backend partition,
verify-before-serve re-runs of corrupted artifacts, and slow-client
timeouts — with the hard invariant that chaos traffic only ever sees
200/400/404/408/429/503, never a 500.
"""

import http.client
import json
import socket
import threading
import time

import pytest

from repro.resilience.faults import FaultInjector
from repro.service.server import ServiceConfig, ServiceThread

from tests.campaign_fixtures import FAST_REGISTRY_SPEC

POLL_DEADLINE_S = 60.0


def request(port, method, path, body=None, client="t", timeout=15.0):
    """One HTTP exchange; returns ``(status, headers, raw_body)``."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request(
            method,
            path,
            body=json.dumps(body) if body is not None else None,
            headers={"X-Client-Id": client},
        )
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


def submit(port, experiment, seed=None, kwargs=None, client="t"):
    return request(
        port, "POST", "/jobs",
        {"experiment": experiment, "seed": seed, "kwargs": kwargs or {}},
        client=client,
    )


def poll_until(port, job_id, states=("done", "failed"), client="t"):
    """Poll GET /jobs/{id} until a terminal state; returns last body."""
    deadline = time.monotonic() + POLL_DEADLINE_S
    while time.monotonic() < deadline:
        status, _headers, raw = request(
            port, "GET", f"/jobs/{job_id}", client=client
        )
        if status == 200 and json.loads(raw).get("status") in states:
            return json.loads(raw), raw
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never reached {states}")


def service(tmp_path, **overrides):
    defaults = dict(
        port=0,
        data_dir=str(tmp_path / "svc"),
        registry_spec=FAST_REGISTRY_SPEC,
        backend="inproc",
        job_timeout_s=30.0,
        rate_per_s=500.0,
        burst=500.0,
    )
    defaults.update(overrides)
    return ServiceThread(ServiceConfig(**defaults))


class TestRoundtrip:
    def test_submit_poll_serve_byte_identical(self, tmp_path):
        with service(tmp_path) as svc:
            status, _h, raw = submit(svc.port, "quick", seed=7)
            assert status == 200
            job_id = json.loads(raw)["job_id"]
            view, first = poll_until(svc.port, job_id)
            assert view["status"] == "done"
            assert view["result"]["value"] == 42
            assert view["cached"] is True
            # Two requests for the same fingerprint: byte-identical.
            _s, _h, second = request(svc.port, "GET", f"/jobs/{job_id}")
            assert first == second
            # Re-POSTing the same triple is a cache hit, same bytes.
            status, _h, third = submit(svc.port, "quick", seed=7)
            assert status == 200 and third == first

    def test_different_seeds_are_different_jobs(self, tmp_path):
        with service(tmp_path) as svc:
            _s, _h, a = submit(svc.port, "quick", seed=1)
            _s, _h, b = submit(svc.port, "quick", seed=2)
            assert json.loads(a)["job_id"] != json.loads(b)["job_id"]

    def test_experiment_error_fails_cleanly(self, tmp_path):
        with service(tmp_path) as svc:
            _s, _h, raw = submit(svc.port, "boom")
            view, _raw = poll_until(svc.port, json.loads(raw)["job_id"])
            assert view["status"] == "failed"
            assert view["error"]
            # An experiment bug is not a backend fault: breaker closed.
            _s, _h, stats = request(svc.port, "GET", "/stats")
            assert json.loads(stats)["breaker"]["state"] == "closed"

    def test_bad_requests_and_unknown_routes(self, tmp_path):
        with service(tmp_path) as svc:
            status, _h, raw = submit(svc.port, "no-such-experiment")
            assert status == 400 and b"unknown experiment" in raw
            status, _h, _raw = request(
                svc.port, "POST", "/jobs", {"experiment": "quick",
                                            "kwargs": "not-a-dict"}
            )
            assert status == 400
            status, _h, _raw = request(svc.port, "GET", "/jobs/ffffffff")
            assert status == 404
            status, _h, _raw = request(svc.port, "GET", "/nope")
            assert status == 404

    def test_healthz_and_stats_shapes(self, tmp_path):
        with service(tmp_path) as svc:
            _s, _h, raw = request(svc.port, "GET", "/healthz")
            health = json.loads(raw)
            assert health["ok"] is True
            assert health["breaker"]["state"] == "closed"
            _s, _h, raw = request(svc.port, "GET", "/stats")
            stats = json.loads(raw)
            assert stats["backend"]["spec"] == "inproc"
            # The lease-table/backend tallies scripts consume.
            for key in ("executors_lost", "leases_reclaimed",
                        "work_stolen", "duplicates_discarded"):
                assert key in stats["backend"]
            assert stats["queue"]["capacity"] == 64


class TestSingleFlight:
    def test_concurrent_submissions_one_simulation(self, tmp_path):
        with service(tmp_path, parallel_jobs=2) as svc:
            n_clients = 8
            results = [None] * n_clients

            def one(i):
                results[i] = submit(
                    svc.port, "slow", seed=5,
                    kwargs={"sleep_s": 0.8}, client=f"c{i}",
                )

            threads = [
                threading.Thread(target=one, args=(i,))
                for i in range(n_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert all(status == 200 for status, _h, _r in results)
            job_ids = {json.loads(raw)["job_id"] for _s, _h, raw in results}
            assert len(job_ids) == 1  # content-addressed: one job
            job_id = job_ids.pop()
            _view, first = poll_until(svc.port, job_id)
            _s, _h, stats = request(svc.port, "GET", "/stats")
            jobs = json.loads(stats)["jobs"]
            # The acceptance criterion: N submissions, ONE simulation.
            assert jobs["simulations"] == 1
            assert jobs["coalesced"] >= 1
            # And everyone reads back the identical bytes.
            _s, _h, second = request(svc.port, "GET", f"/jobs/{job_id}")
            assert first == second


class TestShedding:
    def test_rate_limit_429_with_retry_after(self, tmp_path):
        with service(tmp_path, rate_per_s=1.0, burst=2.0) as svc:
            statuses, retry_after = [], None
            for i in range(6):
                status, headers, _raw = submit(
                    svc.port, "quick", seed=100 + i, client="greedy"
                )
                statuses.append(status)
                if status == 429:
                    retry_after = headers.get("retry-after")
            assert 429 in statuses
            assert retry_after is not None and int(retry_after) >= 1
            # Another client is not collateral damage.
            status, _h, _raw = submit(
                svc.port, "quick", seed=999, client="innocent"
            )
            assert status == 200

    def test_healthz_unmetered_under_rate_limit(self, tmp_path):
        with service(tmp_path, rate_per_s=1.0, burst=1.0) as svc:
            submit(svc.port, "quick", seed=1, client="x")
            for _ in range(5):
                status, _h, _raw = request(
                    svc.port, "GET", "/healthz", client="x"
                )
                assert status == 200

    def test_queue_watermark_sheds_503(self, tmp_path):
        with service(
            tmp_path,
            parallel_jobs=1,
            queue_depth=2,
            shed_watermark=1,
        ) as svc:
            statuses = []
            for i in range(6):
                status, _h, _raw = submit(
                    svc.port, "slow", seed=i, kwargs={"sleep_s": 1.5},
                    client=f"c{i}",
                )
                statuses.append(status)
            assert 503 in statuses  # over the watermark: shed
            assert set(statuses) <= {200, 503}  # bounded, never an error

    def test_shed_submission_leaves_no_ghost_job(self, tmp_path):
        from repro.core.experiments import task_fingerprint

        with service(
            tmp_path,
            parallel_jobs=1,
            queue_depth=2,
            shed_watermark=1,
        ) as svc:
            shed_seed = None
            for i in range(6):
                status, _h, _raw = submit(
                    svc.port, "slow", seed=i, kwargs={"sleep_s": 1.0}
                )
                if status == 503:
                    shed_seed = i
                    break
            assert shed_seed is not None
            fp = task_fingerprint("slow", {"sleep_s": 1.0}, shed_seed)
            # A shed submission was never admitted: no ghost record
            # that a later coalesce could wait on forever.
            status, _h, _raw = request(svc.port, "GET", f"/jobs/{fp}")
            assert status == 404
            # Once load drains, the same triple is admissible again
            # and runs to completion.
            deadline = time.monotonic() + POLL_DEADLINE_S
            while time.monotonic() < deadline:
                status, _h, raw = submit(
                    svc.port, "slow", seed=shed_seed,
                    kwargs={"sleep_s": 1.0},
                )
                if status == 200:
                    break
                time.sleep(0.1)
            assert status == 200
            view, _raw = poll_until(svc.port, fp)
            assert view["status"] == "done"


class TestChaos:
    def test_backend_partition_breaker_opens_then_heals(self, tmp_path):
        injector = FaultInjector(
            seed=0, forced_failures={"backend-partition": 3}
        )
        with service(
            tmp_path,
            injector=injector,
            breaker_threshold=2,
            breaker_reset_s=0.2,
            max_job_attempts=6,
        ) as svc:
            codes = []
            status, _h, raw = submit(svc.port, "quick", seed=50)
            codes.append(status)
            job_id = json.loads(raw)["job_id"]
            # Keep poking while the partition plays out; some POSTs for
            # new work should shed 503 off the open breaker.
            for i in range(40):
                status, _h, _raw = submit(svc.port, "quick", seed=200 + i)
                codes.append(status)
                time.sleep(0.03)
            assert set(codes) <= {200, 429, 503}
            view, _raw = poll_until(svc.port, job_id)
            assert view["status"] == "done"  # healed: partition budget ran dry
            _s, _h, raw = request(svc.port, "GET", "/stats")
            stats = json.loads(raw)
            assert stats["breaker"]["opens"] >= 1
            assert stats["service"].get("partition_injected", 0) == 3
            assert not any(k.startswith("http_5") and k != "http_503"
                           for k in stats["service"])

    def test_request_flood_shed_then_recovery(self, tmp_path):
        injector = FaultInjector(
            seed=0, forced_failures={"request-flood": 2}
        )
        with service(
            tmp_path, injector=injector, rate_per_s=200.0, burst=20.0
        ) as svc:
            codes = []
            for i in range(8):
                status, _h, _raw = submit(
                    svc.port, "quick", seed=300 + i, client="flooder"
                )
                codes.append(status)
            # The amplified requests drain the bucket: some 429s, but
            # only the shed codes, and the service stays up.
            assert 429 in codes
            assert set(codes) <= {200, 429}
            _view, _raw = poll_until(
                svc.port,
                json.loads(submit(svc.port, "quick", seed=300)[2])["job_id"],
            )

    def test_corrupt_cached_result_requeued_and_rerun(self, tmp_path):
        injector = FaultInjector(
            seed=0, forced_failures={"corrupt-cached-result": 1}
        )
        with service(tmp_path, injector=injector) as svc:
            _s, _h, raw = submit(svc.port, "quick", seed=77)
            job_id = json.loads(raw)["job_id"]
            # The first completion's artifact is rotted post-store; the
            # serve path must quarantine it and re-run, then serve a
            # clean result.  Polling rides through the requeue.
            view, _raw = poll_until(svc.port, job_id)
            assert view["status"] == "done"
            assert view["result"]["value"] == 42
            _s, _h, raw = request(svc.port, "GET", "/stats")
            stats = json.loads(raw)
            # Exactly one extra simulation: corrupt, re-run, serve.
            assert stats["jobs"]["simulations"] == 2
            assert stats["cache"]["quarantined"] == 1
            assert stats["service"]["corruption_injected"] == 1
            quarantined = list(
                (tmp_path / "svc" / "results").glob("*.quarantined")
            )
            assert len(quarantined) == 1

    def test_injected_slow_client_408(self, tmp_path):
        injector = FaultInjector(
            seed=0, forced_failures={"slow-client": 1}
        )
        with service(tmp_path, injector=injector) as svc:
            status, _h, _raw = request(svc.port, "GET", "/healthz")
            assert status == 408
            status, _h, _raw = request(svc.port, "GET", "/healthz")
            assert status == 200  # budget consumed; service healthy


class TestSlowClientReal:
    def test_dribbled_headers_time_out_408(self, tmp_path):
        with service(tmp_path, header_timeout_s=0.3) as svc:
            with socket.create_connection(
                ("127.0.0.1", svc.port), timeout=10.0
            ) as sock:
                sock.sendall(b"GET /healthz HTTP/1.1\r\nHost: x")
                # ...and never finish the headers.
                data = sock.recv(4096)
            assert b"408" in data.split(b"\r\n", 1)[0]
            # The stalled socket did not wedge the service.
            status, _h, _raw = request(svc.port, "GET", "/healthz")
            assert status == 200


class TestWarmRestart:
    def test_cache_survives_restart_and_serves_identically(self, tmp_path):
        with service(tmp_path) as svc:
            _s, _h, raw = submit(svc.port, "quick", seed=31)
            job_id = json.loads(raw)["job_id"]
            _view, first = poll_until(svc.port, job_id)
        # Fresh process state, same data dir: the content-addressed
        # artifact alone is authoritative.
        with service(tmp_path) as svc:
            status, _h, second = request(svc.port, "GET", f"/jobs/{job_id}")
            assert status == 200
            assert second == first
            _s, _h, stats = request(svc.port, "GET", "/stats")
            assert json.loads(stats)["jobs"]["simulations"] == 0


class TestDispatcherRevalidation:
    """_process must re-check job state after parking on the breaker.

    While a dispatcher sleeps on an open circuit, the job it holds can
    be failed, shed, or completed by someone else; marking it running
    afterwards would silently overwrite that transition (and burn an
    attempt).  Regression test for the RPL602 finding.
    """

    def test_breaker_park_revalidates_job_state(self, tmp_path):
        import asyncio

        from repro.service.jobstore import FAILED
        from repro.service.server import ReproService, ServiceConfig

        config = ServiceConfig(
            port=0,
            data_dir=str(tmp_path / "svc"),
            registry_spec=FAST_REGISTRY_SPEC,
            backend="inproc",
            breaker_threshold=1,
            breaker_reset_s=0.3,
        )
        svc = ReproService(config)
        try:
            job, created = svc.jobs.get_or_create(
                "fp-reval", "quick", {}, 7, FAST_REGISTRY_SPEC
            )
            assert created
            svc.breaker.record_failure(svc.now())  # threshold=1: opens

            async def run():
                task = asyncio.create_task(svc._process("fp-reval"))
                await asyncio.sleep(0.05)  # parked on the open breaker
                svc.jobs.mark_failed(job, "shed by operator", "Shed")
                await asyncio.wait_for(task, timeout=10.0)

            asyncio.run(run())
            # the dispatcher observed the transition and backed off:
            # no mark_running (which would flip state and bump attempts)
            assert job.state == FAILED
            assert job.attempts == 0
        finally:
            svc.jobs.close()
            svc._pool.shutdown(wait=False)
