"""Torn-write sweep over service spool journals and cached results.

The service's durability story is "quarantine or replay, never garbage":
a journal truncated at *any* byte offset must scan to a clean prefix of
the original entries (the job whose line was torn simply re-runs), and
a result-cache artifact truncated at any offset must quarantine rather
than serve.  These tests brute-force every offset instead of sampling —
the sweep is cheap and the property is exactly per-byte.
"""

import json

import pytest

from repro.oracles.integrity import attach_crc
from repro.runner.journal import (
    Journal,
    completed_fingerprints,
    make_entry,
    scan_journal,
)
from repro.service.resultcache import ResultCache


def _spool_entries():
    """Entries shaped like a service spool journal: per-attempt outcome
    lines for one fingerprint plus audit lines that must never win."""
    fp = "feedbeef" * 8
    other = "abadcafe" * 8
    return fp, [
        make_entry("job-1", "dst-unit-a", fp, "error", attempt=1,
                   final=False, kwargs={"value": 3}, error="boom",
                   error_type="RuntimeError"),
        make_entry("job-1", "dst-unit-a", fp, "ok", attempt=2, final=True,
                   kwargs={"value": 3}, result={"value": 7, "tag": "t"},
                   executor="w1", lease_epoch=2),
        make_entry("job-1", "dst-unit-a", fp, "ok", attempt=3, final=True,
                   kwargs={"value": 3}, result={"value": 99, "tag": "z"},
                   executor="w2", duplicate=True, lease_epoch=1),
        make_entry("job-2", "dst-unit-b", other, "ok", attempt=1,
                   final=True, kwargs={"value": 5},
                   result={"value": 25, "tag": "u"}, executor="w1",
                   lease_epoch=1),
    ]


@pytest.fixture()
def spool_journal(tmp_path):
    fp, entries = _spool_entries()
    path = tmp_path / "spool" / f"{fp}.a2.jsonl"
    with Journal(path) as journal:
        for entry in entries:
            journal.append(entry)
    return fp, entries, path


class TestTruncationSweep:
    def test_every_byte_offset_yields_a_clean_prefix(
        self, spool_journal, tmp_path
    ):
        """scan_journal at every truncation point: never raises, never
        fabricates, returns only a complete prefix of what was written."""
        fp, entries, path = spool_journal
        raw = path.read_bytes()
        full, torn, crc_failed = scan_journal(path)
        assert (len(full), torn, crc_failed) == (len(entries), 0, 0)
        cut_path = tmp_path / "cut.jsonl"
        for offset in range(len(raw) + 1):
            cut_path.write_bytes(raw[:offset])
            got, torn, crc_failed = scan_journal(cut_path)
            assert crc_failed == 0, f"offset {offset}: CRC noise from a cut"
            assert torn <= 1, f"offset {offset}: one cut tore {torn} lines"
            # A truncation can only remove whole entries from the tail
            # (plus at most one torn fragment) — never corrupt a
            # surviving one and never invent one.
            assert got == full[: len(got)], f"offset {offset}"

    def test_winner_is_served_whole_or_replayed(
        self, spool_journal, tmp_path
    ):
        """The resume decision under truncation: either the exact
        winning entry survives, or the fingerprint is absent and the
        job re-runs.  Duplicate audit lines never get promoted."""
        fp, entries, path = spool_journal
        raw = path.read_bytes()
        winner = completed_fingerprints(scan_journal(path)[0])[fp]
        assert winner["result"] == {"value": 7, "tag": "t"}
        cut_path = tmp_path / "cut.jsonl"
        for offset in range(len(raw) + 1):
            cut_path.write_bytes(raw[:offset])
            done = completed_fingerprints(scan_journal(cut_path)[0])
            if fp in done:
                assert done[fp] == winner, f"offset {offset}"
            # else: replay — the job simply runs again.

    def test_append_after_truncation_repairs_the_tail(
        self, spool_journal, tmp_path
    ):
        """A retry appending after a mid-line kill must not weld onto
        the torn fragment: the fragment alone is sacrificed."""
        fp, entries, path = spool_journal
        raw = path.read_bytes()
        # Cut strictly inside the last line.
        last_start = raw.rstrip(b"\n").rfind(b"\n") + 1
        cut_path = tmp_path / "retry.jsonl"
        cut_path.write_bytes(raw[: last_start + 10])
        retry = make_entry("job-2", "dst-unit-b", "abadcafe" * 8, "ok",
                           attempt=2, final=True, kwargs={"value": 5},
                           result={"value": 25, "tag": "u"})
        with Journal(cut_path) as journal:
            journal.append(retry)
        got, torn, crc_failed = scan_journal(cut_path)
        assert torn == 1 and crc_failed == 0
        assert got[-1]["attempt"] == 2
        # Everything before the retry is an untouched prefix of the
        # original journal.
        assert got[:-1] == scan_journal(path)[0][: len(got) - 1]

    def test_in_line_bitflip_is_crc_failed_not_served(
        self, spool_journal, tmp_path
    ):
        """Corruption *inside* a line that still parses as JSON must be
        caught by the per-line CRC, not resumed from."""
        fp, entries, path = spool_journal
        lines = path.read_bytes().splitlines(keepends=True)
        doctored = json.loads(lines[1])
        doctored["result"] = {"value": 8, "tag": "t"}  # flipped value
        lines[1] = (
            json.dumps(doctored, sort_keys=True).encode() + b"\n"
        )
        bad = tmp_path / "flipped.jsonl"
        bad.write_bytes(b"".join(lines))
        got, torn, crc_failed = scan_journal(bad)
        assert crc_failed == 1 and torn == 0
        assert fp not in completed_fingerprints(got)


class TestResultCacheTruncationSweep:
    def test_every_truncation_quarantines_never_serves(self, tmp_path):
        fp = "cafe" * 16
        entry = attach_crc(make_entry(
            "job-1", "dst-unit-a", fp, "ok", attempt=1, final=True,
            kwargs={"value": 1}, result={"value": 3, "tag": "q"},
        ))
        reference = ResultCache(tmp_path / "ref")
        artifact = reference.store(fp, entry).read_bytes()
        loaded, why = reference.load_verified(fp)
        assert why == "hit" and loaded["result"] == {"value": 3, "tag": "q"}
        for offset in range(len(artifact)):
            cache = ResultCache(tmp_path / f"cut-{offset}")
            cache.path(fp).write_bytes(artifact[:offset])
            loaded, why = cache.load_verified(fp)
            assert loaded is None, f"offset {offset}: served a truncation"
            assert why.startswith("quarantined"), f"offset {offset}: {why}"
            # Quarantine moved the file aside: the next read is a plain
            # miss and the caller re-simulates.
            assert not cache.path(fp).exists()
            assert cache.load_verified(fp) == (None, "miss")
