"""Shared fixtures for the test suite.

Thermal solves dominate test runtime, so fixtures cache coarse-grid
solutions at session scope; correctness properties (conservation,
ordering, maximum principle) hold at any resolution.
"""

import pytest

from repro.floorplan import core2duo_floorplan, stacked_cache_die
from repro.thermal.solver import SolverConfig, solve_steady_state
from repro.thermal.stack import build_3d_stack, build_planar_stack

#: Coarse grid for fast thermal tests.
FAST_GRID = SolverConfig(nx=24, ny=24)


@pytest.fixture(scope="session")
def fast_solver_config():
    return FAST_GRID


@pytest.fixture(scope="session")
def baseline_die():
    return core2duo_floorplan()


@pytest.fixture(scope="session")
def planar_solution(baseline_die):
    return solve_steady_state(build_planar_stack(baseline_die), FAST_GRID)


@pytest.fixture(scope="session")
def stacked_solution(baseline_die):
    cache = stacked_cache_die("sram-8mb", baseline_die)
    stack = build_3d_stack(baseline_die, cache, die2_metal="cu")
    return solve_steady_state(stack, FAST_GRID)
