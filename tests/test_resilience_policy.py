"""Fallback-ladder tests: every degradation rung must actually engage."""

import numpy as np
import pytest

from repro.floorplan.core2duo import core2duo_floorplan
from repro.resilience import (
    FaultInjector,
    GuardViolation,
    LadderReport,
    SolverDivergenceError,
    solve_steady_state_resilient,
    solve_transient_resilient,
)
from repro.thermal.solver import SolverConfig, solve_steady_state
from repro.thermal.stack import build_planar_stack
from repro.thermal.transient import solve_transient


@pytest.fixture(scope="module")
def stack():
    return build_planar_stack(core2duo_floorplan())


CFG = SolverConfig(nx=12, ny=12)


class TestSteadyLadder:
    def test_healthy_run_uses_lu(self, stack):
        report = LadderReport()
        solution = solve_steady_state_resilient(stack, CFG, report=report)
        assert solution.method == "lu"
        assert not solution.degraded
        assert solution.residual < 1e-8
        assert report.method == "lu"

    def test_forced_lu_failure_falls_back_to_cg(self, stack):
        report = LadderReport()
        injector = FaultInjector(forced_failures={"lu": 1})
        solution = solve_steady_state_resilient(
            stack, CFG, injector=injector, report=report
        )
        assert solution.method == "cg"
        assert not solution.degraded
        # CG solves the same discrete system: temperatures must agree.
        reference = solve_steady_state(stack, CFG)
        assert solution.peak_temperature() == pytest.approx(
            reference.peak_temperature(), abs=1e-3
        )
        assert injector.injected["forced:lu"] == 1

    def test_forced_lu_and_cg_failure_degrades_to_coarse(self, stack):
        report = LadderReport()
        injector = FaultInjector(forced_failures={"lu": 1, "cg": 1})
        solution = solve_steady_state_resilient(
            stack, CFG, injector=injector, report=report
        )
        assert solution.degraded is True
        assert solution.method == "lu-coarse"
        assert report.degraded is True
        # Half the lateral resolution, same physics: peak within a few C.
        assert solution.temperature.shape[1] == CFG.ny // 2
        reference = solve_steady_state(stack, CFG)
        assert solution.peak_temperature() == pytest.approx(
            reference.peak_temperature(), abs=10.0
        )

    def test_every_rung_failing_raises_with_attempt_log(self, stack):
        injector = FaultInjector(
            forced_failures={"lu": 1, "cg": 1, "coarse": -1}
        )
        with pytest.raises(SolverDivergenceError) as info:
            solve_steady_state_resilient(stack, CFG, injector=injector)
        assert info.value.method == "ladder"
        assert len(info.value.partial["attempts"]) == 4

    def test_nan_power_is_rejected_not_repaired(self, stack):
        # A NaN power injection is bad input; no ladder rung can fix it.
        # (Before the guard, NaN power silently became *zero* power.)
        bad_plan = core2duo_floorplan().scaled_power(float("nan"))
        bad_stack = build_planar_stack(bad_plan)
        with pytest.raises(GuardViolation) as info:
            solve_steady_state_resilient(bad_stack, CFG)
        assert info.value.guard == "power-map"


class TestSolverGuardsWired:
    def test_steady_state_records_residual(self, stack):
        solution = solve_steady_state(stack, CFG)
        assert 0.0 <= solution.residual < 1e-8
        assert solution.method == "lu"
        assert solution.degraded is False


class TestTransientResilience:
    def test_nonfinite_initial_raises(self, stack):
        from repro.thermal.solver import assemble_system

        n = assemble_system(stack, CFG).matrix.shape[0]
        with pytest.raises(SolverDivergenceError, match="non-finite"):
            solve_transient(
                stack, CFG, duration_s=0.2, dt_s=0.1,
                initial=np.full(n, np.nan),
            )

    def test_step_halving_retries_then_succeeds(self, stack):
        report = LadderReport()
        injector = FaultInjector(forced_failures={"transient": 2})
        result = solve_transient_resilient(
            stack, CFG, duration_s=0.4, dt_s=0.2, max_halvings=3,
            injector=injector, report=report,
        )
        # Two forced failures -> accepted on the third attempt at dt/4.
        assert report.method == "transient-dt=0.05"
        assert report.degraded is True
        assert result.times_s[-1] == pytest.approx(0.4)

    def test_step_halving_exhaustion_raises(self, stack):
        injector = FaultInjector(forced_failures={"transient": -1})
        with pytest.raises(SolverDivergenceError, match="halvings"):
            solve_transient_resilient(
                stack, CFG, duration_s=0.2, dt_s=0.1, max_halvings=2,
                injector=injector,
            )

    def test_healthy_transient_not_degraded(self, stack):
        report = LadderReport()
        result = solve_transient_resilient(
            stack, CFG, duration_s=0.2, dt_s=0.1, report=report
        )
        assert report.degraded is False
        assert len(result.times_s) == 3
