"""Tests for the resilience error taxonomy, run guards, and checkpoints."""

import numpy as np
import pytest

from repro.resilience import (
    CheckpointError,
    GuardViolation,
    ReproError,
    SolverDivergenceError,
    TraceCorruptionError,
    TraceGuard,
    check_finite,
    check_power_map,
    check_residual,
    check_temperature_bounds,
    load_checkpoint,
    make_raw_record,
    relative_residual,
    save_checkpoint,
)
from repro.traces.record import AccessType, NO_DEP, TraceRecord


class TestErrorTaxonomy:
    def test_hierarchy(self):
        assert issubclass(SolverDivergenceError, ReproError)
        assert issubclass(TraceCorruptionError, ReproError)
        assert issubclass(CheckpointError, ReproError)
        assert issubclass(GuardViolation, ReproError)

    def test_trace_and_guard_errors_are_valueerrors(self):
        # Older callers guard trace parsing with ``except ValueError``.
        assert issubclass(TraceCorruptionError, ValueError)
        assert issubclass(GuardViolation, ValueError)

    def test_partial_payload(self):
        err = SolverDivergenceError("x", residual=0.5, method="cg",
                                    partial={"step": 3})
        assert err.partial == {"step": 3}
        assert err.residual == 0.5
        assert err.method == "cg"
        assert ReproError("x").partial == {}

    def test_trace_corruption_metadata(self):
        err = TraceCorruptionError("bad", uid=17, reason="forward-dep")
        assert err.uid == 17
        assert err.reason == "forward-dep"


class TestSolverGuards:
    def test_check_finite_passes_and_raises(self):
        check_finite(np.ones(4))
        with pytest.raises(SolverDivergenceError, match="non-finite"):
            check_finite(np.array([1.0, np.nan]))
        with pytest.raises(SolverDivergenceError):
            check_finite(np.array([np.inf]))

    def test_temperature_bounds(self):
        check_temperature_bounds(np.full((2, 2), 85.0))
        with pytest.raises(GuardViolation, match="plausible"):
            check_temperature_bounds(np.array([85.0, 1000.0]))
        with pytest.raises(GuardViolation):
            check_temperature_bounds(np.array([-200.0]))

    def test_residual(self):
        matrix = np.diag([2.0, 4.0])
        rhs = np.array([2.0, 4.0])
        x = np.array([1.0, 1.0])
        assert relative_residual(matrix, x, rhs) == pytest.approx(0.0)
        assert check_residual(matrix, x, rhs) == pytest.approx(0.0)
        with pytest.raises(SolverDivergenceError) as info:
            check_residual(matrix, np.array([2.0, 2.0]), rhs, tol=1e-6)
        assert info.value.residual > 1e-6
        with pytest.raises(SolverDivergenceError, match="non-finite"):
            check_residual(matrix, np.array([np.nan, 1.0]), rhs)

    def test_power_map(self):
        check_power_map(np.zeros(3))
        with pytest.raises(GuardViolation, match="negative"):
            check_power_map(np.array([1.0, -0.5]))
        with pytest.raises(GuardViolation, match="non-finite"):
            check_power_map(np.array([np.nan]))


def _rec(uid, cpu=0, kind=AccessType.LOAD, address=0x1000, dep=NO_DEP):
    return make_raw_record(uid, cpu, kind, address, 0x400000, dep)


class TestTraceGuard:
    def test_clean_stream_admits_everything(self):
        guard = TraceGuard(n_cpus=2)
        for uid in range(5):
            assert guard.admit(_rec(uid, cpu=uid % 2))
        assert guard.checked == 5
        assert guard.quarantined == 0

    @pytest.mark.parametrize("bad,reason", [
        (_rec(3, dep=3), "self-dep"),
        (_rec(3, dep=9), "forward-dep"),
        (_rec(3, cpu=7), "bad-cpu"),
        (_rec(3, cpu=-1), "bad-cpu"),
        (_rec(3, address=-4), "bad-address"),
        (_rec(3, dep=-5), "bad-dep"),
    ])
    def test_strict_raises_with_reason(self, bad, reason):
        guard = TraceGuard(n_cpus=2, strict=True)
        with pytest.raises(TraceCorruptionError) as info:
            guard.admit(bad)
        assert info.value.reason == reason

    def test_non_monotonic_uid(self):
        guard = TraceGuard(n_cpus=2, strict=True)
        assert guard.admit(_rec(5))
        with pytest.raises(TraceCorruptionError) as info:
            guard.admit(_rec(5))
        assert info.value.reason == "non-monotonic-uid"

    def test_lenient_quarantines_and_counts(self):
        guard = TraceGuard(n_cpus=2, strict=False)
        assert guard.admit(_rec(0))
        assert not guard.admit(_rec(1, cpu=9))
        assert not guard.admit(_rec(2, dep=2))
        assert guard.admit(_rec(3))
        assert guard.quarantined == 2
        assert guard.quarantined_by_reason == {"bad-cpu": 1, "self-dep": 1}
        report = guard.report()
        assert report["checked"] == 4
        assert report["quarantined:bad-cpu"] == 1

    def test_quarantined_record_does_not_advance_uid_watermark(self):
        guard = TraceGuard(n_cpus=2, strict=False)
        assert not guard.admit(_rec(10, cpu=9))
        assert guard.admit(_rec(2))  # uid 2 is still fresh


class TestCheckpointFiles:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "state.ckpt"
        save_checkpoint("replay", {"x": np.arange(3), "n": 7}, path)
        state = load_checkpoint(path, kind="replay")
        assert state["n"] == 7
        np.testing.assert_array_equal(state["x"], np.arange(3))

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            load_checkpoint(tmp_path / "nope.ckpt", kind="replay")

    def test_foreign_file(self, tmp_path):
        path = tmp_path / "foreign.bin"
        path.write_bytes(b"definitely not a checkpoint")
        with pytest.raises(CheckpointError, match="bad magic"):
            load_checkpoint(path, kind="replay")

    def test_truncated_file(self, tmp_path):
        path = tmp_path / "state.ckpt"
        save_checkpoint("replay", {"big": np.zeros(1000)}, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointError, match="truncated or corrupt"):
            load_checkpoint(path, kind="replay")

    def test_wrong_kind(self, tmp_path):
        path = tmp_path / "state.ckpt"
        save_checkpoint("transient", {"step": 1}, path)
        with pytest.raises(CheckpointError, match="expected 'replay'"):
            load_checkpoint(path, kind="replay")

    def test_atomic_write_leaves_no_temp_file(self, tmp_path):
        path = tmp_path / "state.ckpt"
        save_checkpoint("replay", {"n": 1}, path)
        assert [p.name for p in tmp_path.iterdir()] == ["state.ckpt"]


class TestRecordConstructionValidation:
    def test_negative_cpu_rejected(self):
        with pytest.raises(TraceCorruptionError, match="cpu id"):
            TraceRecord(0, -1, AccessType.LOAD, 0x1000, 0x400000)

    def test_bad_kind_rejected(self):
        with pytest.raises(TraceCorruptionError, match="kind"):
            TraceRecord(0, 0, 42, 0x1000, 0x400000)

    def test_reason_tags(self):
        with pytest.raises(TraceCorruptionError) as info:
            TraceRecord(3, 0, AccessType.LOAD, 0x1000, 0, dep_uid=3)
        assert info.value.reason == "self-dep"
        with pytest.raises(TraceCorruptionError) as info:
            TraceRecord(3, 0, AccessType.LOAD, 0x1000, 0, dep_uid=8)
        assert info.value.reason == "forward-dep"
