"""Tests for baseline add/suppress/expire semantics and the lint engine."""

import json

import pytest

from repro.checks.baseline import (
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.checks.diagnostics import CODES, Diagnostic
from repro.checks.engine import (
    load_files,
    package_root,
    render_text,
    run_lint,
    to_json,
)


def diag(code="RPL102", path="a.py", line=3, context="x = random.random()"):
    return Diagnostic(path=path, line=line, col=0, code=code,
                      message="m", context=context)


class TestBaselineRoundTrip:
    def test_save_then_load(self, tmp_path):
        path = tmp_path / "baseline.json"
        entries = save_baseline(path, [diag(), diag(line=9)])
        assert entries == {"RPL102|a.py|x = random.random()": 2}
        assert load_baseline(path) == entries

    def test_versioned_format_rejected_on_mismatch(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": {}}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(path)

    def test_malformed_entries_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 1, "entries": [1, 2]}))
        with pytest.raises(ValueError, match="entries"):
            load_baseline(path)


class TestApplySemantics:
    def test_suppresses_up_to_budget(self):
        baseline = {diag().baseline_key: 1}
        new, suppressed, stale = apply_baseline([diag()], baseline)
        assert new == [] and len(suppressed) == 1 and stale == {}

    def test_excess_findings_are_new(self):
        baseline = {diag().baseline_key: 1}
        new, suppressed, stale = apply_baseline(
            [diag(line=3), diag(line=8)], baseline
        )
        assert len(new) == 1 and len(suppressed) == 1

    def test_line_moves_do_not_unsuppress(self):
        # same code/path/context, different line: still grandfathered
        baseline = {diag(line=3).baseline_key: 1}
        new, suppressed, _ = apply_baseline([diag(line=300)], baseline)
        assert new == [] and len(suppressed) == 1

    def test_fixed_violation_expires_as_stale(self):
        baseline = {diag().baseline_key: 1, "RPL999|gone.py|old line": 2}
        new, suppressed, stale = apply_baseline([diag()], baseline)
        assert new == []
        assert stale == {"RPL999|gone.py|old line": 2}

    def test_no_baseline_everything_is_new(self):
        new, suppressed, stale = apply_baseline([diag()], {})
        assert len(new) == 1 and suppressed == [] and stale == {}


class TestEngine:
    def test_run_lint_on_repo_is_fast_and_baselined(self, tmp_path):
        import time

        start = time.perf_counter()
        report = run_lint()
        elapsed = time.perf_counter() - start
        assert elapsed < 5.0, f"lint took {elapsed:.1f}s (budget 5s)"
        # the shipped tree must be clean against the committed baseline
        assert report.ok, [d.render() for d in report.new]
        assert report.suppressed, "baseline should be exercised"
        assert report.stale_baseline == {}

    def test_select_filters_passes(self):
        report = run_lint(select=["RPL4"])
        assert all(d.code.startswith("RPL4") for d in report.diagnostics)

    def test_injected_violation_fails(self, tmp_path):
        report_clean = run_lint()
        bad = tmp_path / "repro_bad"
        bad.mkdir()
        for pf in ("__init__.py",):
            (bad / pf).write_text("")
        (bad / "mod.py").write_text(
            "import random\nVALUE = random.random()\n"
        )
        report = run_lint(root=bad, baseline_path=None)
        assert not report.ok
        assert [d.code for d in report.new] == ["RPL102"]
        del report_clean

    def test_unparseable_file_is_rpl000(self, tmp_path):
        root = tmp_path / "pkg"
        root.mkdir()
        (root / "broken.py").write_text("def f(:\n")
        report = run_lint(root=root, baseline_path=None)
        assert [d.code for d in report.new] == ["RPL000"]

    def test_render_text_shape(self):
        report = run_lint()
        text = render_text(report)
        assert "verdict: OK" in text
        assert "6 passes" in text

    def test_json_shape(self):
        payload = to_json(run_lint())
        assert payload["version"] == 1
        assert payload["passes"] == [
            "determinism", "layering", "contracts", "physics",
            "concurrency", "async",
        ]
        assert set(payload["codes"]) == set(CODES)
        assert payload["ok"] is True
        counts = payload["counts"]
        assert counts["total"] == counts["new"] + counts["baselined"]
        for entry in payload["diagnostics"]:
            assert entry["code"] in CODES
            assert isinstance(entry["baselined"], bool)

    def test_load_files_maps_modules(self):
        files = load_files(package_root())
        by_rel = {pf.rel: pf.module for pf in files}
        assert by_rel["thermal/solver.py"] == "repro.thermal.solver"
        assert by_rel["__init__.py"] == "repro"
        assert by_rel["traces/kernels/__init__.py"] == "repro.traces.kernels"
