"""End-to-end tests for the supervised campaign runner.

These spawn real worker subprocesses, so every campaign here uses the
fast fixture registry (``tests.campaign_fixtures``) and tight budgets.
The acceptance scenario from the issue — one healthy task, one injected
crash, one hang past the timeout, then ``--resume`` re-running only the
failures — is :class:`TestAcceptanceScenario`.
"""

import pytest

from repro.resilience.faults import FaultInjector
from repro.runner.journal import completed_fingerprints, read_journal
from repro.runner.supervisor import (
    CampaignConfig,
    RetryPolicy,
    run_campaign,
)
from repro.runner.tasks import CampaignTask

from tests.campaign_fixtures import FAST_REGISTRY_SPEC

#: Fast-failing retry schedule for tests.
FAST_RETRY = RetryPolicy(max_retries=1, backoff_base_s=0.05)


def _task(task_id, experiment_id=None, **kwargs):
    return CampaignTask(
        task_id=task_id,
        experiment_id=experiment_id or task_id,
        kwargs=kwargs,
        seed=7,
        registry_spec=FAST_REGISTRY_SPEC,
    )


def _by_id(report):
    return {t["task_id"]: t for t in report.tasks}


class TestAcceptanceScenario:
    """Healthy + crash + hang, then resume re-runs only the failures."""

    @pytest.fixture(scope="class")
    def campaign(self, tmp_path_factory):
        journal = tmp_path_factory.mktemp("campaign") / "journal.jsonl"
        tasks = [
            _task("healthy", "quick"),
            _task("crashy", "quick-2"),
            _task("hanger", "degraded-solve"),
        ]
        injector = FaultInjector(forced_failures={
            "worker-crash:crashy": -1,   # crash on every attempt
            "worker-hang:hanger": -1,    # hang on every attempt
        })
        first = run_campaign(tasks, CampaignConfig(
            workers=3,
            task_timeout_s=2.5,
            retry=FAST_RETRY,
            journal_path=str(journal),
            injector=injector,
        ))
        resumed = run_campaign(tasks, CampaignConfig(
            workers=3,
            task_timeout_s=30.0,
            retry=FAST_RETRY,
            journal_path=str(journal),
            resume=True,
        ))
        return journal, first, resumed

    def test_healthy_task_journaled(self, campaign):
        journal, first, _ = campaign
        healthy = _by_id(first)["healthy"]
        assert healthy["status"] == "ok"
        assert healthy["result"]["value"] == 42
        done = completed_fingerprints(read_journal(journal)[0])
        assert _task("healthy", "quick").fingerprint in done

    def test_crash_retried_to_budget_then_final(self, campaign):
        journal, first, _ = campaign
        crashy = _by_id(first)["crashy"]
        assert crashy["status"] == "crash"
        assert crashy["retries_used"] == FAST_RETRY.max_retries
        attempts = [e for e in read_journal(journal)[0]
                    if e["task_id"] == "crashy" and not e.get("resumed")]
        # one initial + max_retries retries, every one a crash
        assert [e["status"] for e in attempts][:2] == ["crash", "crash"]
        assert first.taxonomy["crash"] == 2

    def test_hang_killed_at_wall_timeout(self, campaign):
        _, first, _ = campaign
        hanger = _by_id(first)["hanger"]
        assert hanger["status"] == "timeout"
        assert hanger["elapsed_s"] >= 2.4  # ran the full budget, then died
        assert "wall-clock" in hanger["error"]

    def test_first_report_is_degraded_but_complete(self, campaign):
        _, first, _ = campaign
        assert first.degraded and not first.ok
        assert first.counts == {"ok": 1, "failed": 2, "skipped": 0}
        assert first.retries_used == 2
        assert first.wall_clock_s > 0

    def test_resume_reruns_only_failures(self, campaign):
        _, _, resumed = campaign
        tasks = _by_id(resumed)
        assert tasks["healthy"].get("resumed") is True
        assert tasks["crashy"]["status"] == "ok"
        assert tasks["hanger"]["status"] == "ok"
        assert resumed.resumed_ok == 1
        assert resumed.counts == {"ok": 3, "failed": 0, "skipped": 1}
        assert not resumed.degraded

    def test_resumed_run_surfaces_degraded_solves(self, campaign):
        # "hanger" runs the degraded-solve fixture on resume: its result
        # carries fallback-ladder provenance the report must surface.
        _, _, resumed = campaign
        assert resumed.degraded_solves == 1
        assert resumed.fallback_solves == 1


class TestWatchdog:
    def test_stalled_heartbeat_killed_before_wall_timeout(self, tmp_path):
        tasks = [_task("stalled", "quick")]
        injector = FaultInjector(
            forced_failures={"worker-stall:stalled": -1}
        )
        report = run_campaign(tasks, CampaignConfig(
            workers=1,
            task_timeout_s=60.0,
            heartbeat_every_s=0.1,
            heartbeat_timeout_s=1.0,
            retry=RetryPolicy(max_retries=0),
            journal_path=str(tmp_path / "j.jsonl"),
            injector=injector,
        ))
        entry = _by_id(report)["stalled"]
        assert entry["status"] == "worker-dead"
        assert report.wall_clock_s < 20.0  # watchdog, not the 60s budget
        assert report.taxonomy == {"worker-dead": 1}


class TestFailureModes:
    def test_corrupt_result_retried_then_recovers(self, tmp_path):
        tasks = [_task("flaky", "quick")]
        injector = FaultInjector(
            forced_failures={"worker-corrupt-result:flaky": 1}
        )
        report = run_campaign(tasks, CampaignConfig(
            workers=1,
            task_timeout_s=30.0,
            retry=FAST_RETRY,
            journal_path=str(tmp_path / "j.jsonl"),
            injector=injector,
        ))
        entry = _by_id(report)["flaky"]
        assert entry["status"] == "ok"
        assert report.retries_used == 1
        assert report.taxonomy == {"corrupt-result": 1}
        assert not report.degraded

    def test_experiment_error_captured_structurally(self, tmp_path):
        report = run_campaign(
            [_task("boom")],
            CampaignConfig(
                workers=1,
                task_timeout_s=30.0,
                retry=RetryPolicy(max_retries=0),
                journal_path=str(tmp_path / "j.jsonl"),
            ),
        )
        entry = _by_id(report)["boom"]
        assert entry["status"] == "error"
        assert entry["error_type"] == "ValueError"
        assert "intentional fixture failure" in entry["error"]
        assert report.taxonomy == {"ValueError": 1}

    def test_duplicate_task_ids_rejected(self, tmp_path):
        tasks = [_task("same", "quick"), _task("same", "quick-2")]
        with pytest.raises(ValueError, match="duplicate task id"):
            run_campaign(tasks, CampaignConfig(
                journal_path=str(tmp_path / "j.jsonl")
            ))


class TestRetryPolicy:
    def test_deterministic_jitter(self):
        policy = RetryPolicy(max_retries=3, backoff_base_s=0.1)
        a = policy.delay_s("fp-1", 1)
        assert a == policy.delay_s("fp-1", 1)  # reproducible
        assert a != policy.delay_s("fp-2", 1)  # decorrelated across tasks

    def test_exponential_growth(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_factor=2.0,
                             jitter_frac=0.0)
        assert policy.delay_s("fp", 2) == pytest.approx(0.2)
        assert policy.delay_s("fp", 3) == pytest.approx(0.4)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="workers"):
            CampaignConfig(workers=0)
        with pytest.raises(ValueError, match="task_timeout_s"):
            CampaignConfig(task_timeout_s=0)
        with pytest.raises(ValueError, match="heartbeat_timeout_s"):
            CampaignConfig(heartbeat_timeout_s=0.1, heartbeat_every_s=0.2)
