"""Checkpoint/resume tests: interrupted runs continue bit-identically."""

import pytest

from repro.floorplan.core2duo import core2duo_floorplan
from repro.memsim import baseline_config
from repro.memsim.hierarchy import MemoryHierarchy
from repro.memsim.replay import TraceReplayer, replay_trace
from repro.resilience import CheckpointError
from repro.thermal.solver import SolverConfig
from repro.thermal.stack import build_planar_stack
from repro.thermal.transient import solve_transient
from repro.traces.generator import generate_trace


@pytest.fixture(scope="module")
def trace():
    return generate_trace("smvm", n_records=12000, seed=42)


class TestReplayCheckpointResume:
    def test_interrupted_replay_resumes_within_one_percent(
        self, trace, tmp_path
    ):
        # Acceptance criterion: CPMA of interrupted+resumed within 1%
        # of an uninterrupted run (full-state snapshots make it exact).
        full = replay_trace(trace, baseline_config(), warmup_fraction=0.3)

        path = tmp_path / "replay.ckpt"
        replayer = TraceReplayer(
            hierarchy=MemoryHierarchy(baseline_config()),
            warmup_until=int(len(trace) * 0.3),
        )
        # "Interrupt" mid-run: checkpoint every 2000, die after 7000.
        replayer.feed_many(
            trace, checkpoint_every=2000, checkpoint_path=path,
            stop_after=7000,
        )
        resumed = replay_trace(trace, resume_from=path)
        assert resumed.cpma == pytest.approx(full.cpma, rel=0.01)
        assert resumed.cpma == pytest.approx(full.cpma, rel=1e-12)
        assert resumed.n_accesses == full.n_accesses
        assert resumed.bandwidth_gbps == pytest.approx(
            full.bandwidth_gbps, rel=1e-12
        )

    def test_resume_restores_mid_warmup_interruption(self, trace, tmp_path):
        # Interrupt *before* the warmup boundary: the resumed run must
        # still place the measurement window correctly.
        full = replay_trace(trace, baseline_config(), warmup_fraction=0.3)
        path = tmp_path / "early.ckpt"
        replayer = TraceReplayer(
            hierarchy=MemoryHierarchy(baseline_config()),
            warmup_until=int(len(trace) * 0.3),
        )
        replayer.feed_many(
            trace, checkpoint_every=1000, checkpoint_path=path,
            stop_after=2000,
        )
        resumed = replay_trace(trace, resume_from=path)
        assert resumed.cpma == pytest.approx(full.cpma, rel=1e-12)

    def test_restore_reports_position(self, trace, tmp_path):
        path = tmp_path / "replay.ckpt"
        replayer = TraceReplayer(hierarchy=MemoryHierarchy(baseline_config()))
        replayer.feed_many(
            trace, checkpoint_every=3000, checkpoint_path=path,
            stop_after=6000,
        )
        restored = TraceReplayer.restore(path)
        assert restored.index == 6000

    def test_checkpoint_requires_path(self, trace):
        replayer = TraceReplayer(hierarchy=MemoryHierarchy(baseline_config()))
        with pytest.raises(ValueError, match="checkpoint_path"):
            replayer.feed_many(trace, checkpoint_every=100)

    def test_resume_from_wrong_kind_raises(self, trace, tmp_path):
        from repro.resilience import save_checkpoint

        path = tmp_path / "wrong.ckpt"
        save_checkpoint("transient", {"step": 1}, path)
        with pytest.raises(CheckpointError):
            replay_trace(trace, baseline_config(), resume_from=path)


class TestTransientCheckpointResume:
    @pytest.fixture(scope="class")
    def stack(self):
        return build_planar_stack(core2duo_floorplan())

    CFG = SolverConfig(nx=10, ny=10)

    def test_interrupted_transient_resumes_exactly(self, stack, tmp_path):
        path = tmp_path / "transient.ckpt"
        full = solve_transient(stack, self.CFG, duration_s=1.0, dt_s=0.1)
        # Interrupted run covers only the first 0.6 s, checkpointing.
        solve_transient(
            stack, self.CFG, duration_s=0.6, dt_s=0.1,
            checkpoint_every=2, checkpoint_path=path,
        )
        resumed = solve_transient(
            stack, self.CFG, duration_s=1.0, dt_s=0.1, resume_from=path
        )
        assert resumed.times_s == full.times_s
        assert resumed.peak_c[-1] == pytest.approx(full.peak_c[-1], abs=1e-9)

    def test_incompatible_checkpoint_rejected(self, stack, tmp_path):
        path = tmp_path / "transient.ckpt"
        solve_transient(
            stack, self.CFG, duration_s=0.2, dt_s=0.1,
            checkpoint_every=1, checkpoint_path=path,
        )
        with pytest.raises(CheckpointError, match="dt"):
            solve_transient(
                stack, self.CFG, duration_s=1.0, dt_s=0.05, resume_from=path
            )
        other = SolverConfig(nx=8, ny=8)
        with pytest.raises(CheckpointError, match="n="):
            solve_transient(
                stack, other, duration_s=1.0, dt_s=0.1, resume_from=path
            )
