"""Section 3: Memory+Logic stacking — configurations, performance, thermals.

Builds the four configurations of Figure 7:

(a) the 2D baseline with its on-die 4 MB SRAM L2;
(b) +8 MB stacked SRAM for a 12 MB L2 (total power +14 W);
(c) 32 MB stacked DRAM replacing the SRAM L2 (tags on the CPU die);
(d) 64 MB stacked DRAM on the unchanged baseline die (the 4 MB SRAM
    becomes the tag store).

and evaluates each on the RMS trace suite (CPMA + off-die bandwidth +
bus power, Figure 5) and in the thermal model (Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.stack import DieStack, build_stack
from repro.floorplan.blocks import Floorplan
from repro.floorplan.core2duo import core2duo_floorplan, stacked_cache_die
from repro.memsim.config import (
    HierarchyConfig,
    baseline_config,
    stacked_dram_config,
    stacked_sram_config,
)
from repro.memsim.replay import ReplayStats, replay_trace
from repro.oracles.config import get_oracle_config
from repro.oracles.invariants import check_cpma_band
from repro.oracles.report import record_check, record_violation
from repro.thermal.model import simulate_planar, simulate_stack
from repro.thermal.solver import SolverConfig
from repro.traces.generator import TraceGenerator, WorkloadSpec
from repro.traces.kernels.registry import kernel_names

#: Configuration names in Figure 5/7/8 order.
MEMORY_CONFIG_NAMES: Tuple[str, ...] = ("2D 4MB", "3D 12MB", "3D 32MB", "3D 64MB")

#: Per-workload trace length and warmup fraction at the reference scale
#: (scale=8).  Long enough that fitting workloads reach steady state
#: within the warmup and capacity-sensitive workloads make multiple
#: passes over their footprints afterwards.
TRACE_PLAN: Dict[str, Tuple[int, float]] = {
    "conj": (600_000, 0.50),
    "dsym": (600_000, 0.50),
    "gauss": (1_600_000, 0.35),
    "pcg": (1_500_000, 0.35),
    "smvm": (1_500_000, 0.35),
    "ssym": (600_000, 0.50),
    "strans": (1_600_000, 0.35),
    "savdf": (500_000, 0.50),
    "savif": (500_000, 0.50),
    "sus": (1_000_000, 0.40),
    "svd": (600_000, 0.55),
    "svm": (1_800_000, 0.35),
}


@dataclass(frozen=True)
class MemoryOnLogicConfig:
    """One Memory+Logic configuration: hierarchy + physical stack.

    Attributes:
        name: Figure 7 label.
        hierarchy: Memory-hierarchy configuration (Table 3 derived).
        cpu_die: CPU die floorplan.
        cache_die: Stacked cache die floorplan, or None for the planar
            baseline.
        cache_die_metal: ``"cu"`` (SRAM die) or ``"al"`` (DRAM die).
    """

    name: str
    hierarchy: HierarchyConfig
    cpu_die: Floorplan
    cache_die: Optional[Floorplan]
    cache_die_metal: str = "cu"

    @property
    def is_stacked(self) -> bool:
        return self.cache_die is not None

    @property
    def total_power_w(self) -> float:
        power = self.cpu_die.total_power
        if self.cache_die is not None:
            power += self.cache_die.total_power
        return power


def build_memory_configs(scale: int = 1) -> List[MemoryOnLogicConfig]:
    """The four Figure 7 configurations.

    *scale* divides cache capacities (see
    :func:`repro.memsim.config.baseline_config`); floorplans and thermals
    are unaffected (the thermal experiment uses the published die powers).
    """
    base_die = core2duo_floorplan()
    nol2_die = core2duo_floorplan(with_l2=False)
    return [
        MemoryOnLogicConfig(
            name="2D 4MB",
            hierarchy=baseline_config(scale),
            cpu_die=base_die,
            cache_die=None,
        ),
        MemoryOnLogicConfig(
            name="3D 12MB",
            hierarchy=stacked_sram_config(scale),
            cpu_die=base_die,
            cache_die=stacked_cache_die("sram-8mb", base_die),
            cache_die_metal="cu",
        ),
        MemoryOnLogicConfig(
            name="3D 32MB",
            hierarchy=stacked_dram_config(32, scale),
            cpu_die=nol2_die,
            cache_die=stacked_cache_die("dram-32mb", nol2_die),
            cache_die_metal="al",
        ),
        MemoryOnLogicConfig(
            name="3D 64MB",
            hierarchy=stacked_dram_config(64, scale),
            cpu_die=base_die,
            cache_die=stacked_cache_die("dram-64mb", base_die),
            cache_die_metal="al",
        ),
    ]


def stack_for_config(config: MemoryOnLogicConfig) -> Optional[DieStack]:
    """The physical die stack of a stacked configuration (None for 2D)."""
    if config.cache_die is None:
        return None
    kind = "dram" if config.cache_die_metal == "al" else "logic"
    return build_stack(config.cpu_die, config.cache_die, bumps_kind=kind)


@dataclass
class MemoryOnLogicResult:
    """Results of the full Section 3 study.

    Attributes:
        cpma: ``cpma[workload][config_name]`` cycles per memory access.
        bandwidth: Same shape, off-die bandwidth GB/s.
        bus_power: Same shape, bus power W.
        peak_temps: ``peak_temps[config_name]`` peak die temperature, C.
        replay: Full :class:`ReplayStats` per (workload, config).
    """

    cpma: Dict[str, Dict[str, float]]
    bandwidth: Dict[str, Dict[str, float]]
    bus_power: Dict[str, Dict[str, float]]
    peak_temps: Dict[str, float]
    replay: Dict[str, Dict[str, ReplayStats]]

    def average_cpma(self, config_name: str) -> float:
        """Mean CPMA over the workloads (the figure's "Avg" group)."""
        values = [row[config_name] for row in self.cpma.values()]
        return sum(values) / len(values)

    def average_bandwidth(self, config_name: str) -> float:
        values = [row[config_name] for row in self.bandwidth.values()]
        return sum(values) / len(values)

    def cpma_reduction(self, config_name: str = "3D 32MB") -> float:
        """Average-CPMA reduction vs the baseline (paper: 13% at 32 MB)."""
        return 1.0 - self.average_cpma(config_name) / self.average_cpma("2D 4MB")

    def max_cpma_reduction(self, config_name: str = "3D 32MB") -> float:
        """Best per-workload CPMA reduction (paper: up to ~55%)."""
        return max(
            1.0 - row[config_name] / row["2D 4MB"]
            for row in self.cpma.values()
        )

    def bus_power_reduction(self, config_name: str = "3D 32MB") -> float:
        """Average bus-power reduction (paper: ~66% / ~0.5 W)."""
        base = self.average_bandwidth("2D 4MB")
        new = self.average_bandwidth(config_name)
        return 1.0 - new / base if base else 0.0


def run_performance_study(
    workloads: Optional[List[str]] = None,
    scale: int = 8,
    length_factor: float = 1.0,
    seed: int = 1234,
) -> MemoryOnLogicResult:
    """Run the Figure 5 sweep: every workload on every configuration.

    Args:
        workloads: Subset of RMS kernels (default: all twelve).
        scale: Capacity/footprint scale divisor (see DESIGN.md; 8 keeps
            the full sweep to a few minutes).
        length_factor: Multiplier on the per-workload trace lengths (use
            < 1 for quick runs; shapes degrade below ~0.25).
        seed: Trace generation seed.

    Returns:
        A :class:`MemoryOnLogicResult` without thermals (see
        :func:`run_thermal_study`).
    """
    workloads = workloads or kernel_names()
    configs = build_memory_configs(scale)
    cpma: Dict[str, Dict[str, float]] = {}
    bandwidth: Dict[str, Dict[str, float]] = {}
    bus_power: Dict[str, Dict[str, float]] = {}
    replay: Dict[str, Dict[str, ReplayStats]] = {}
    for name in workloads:
        n_records, warmup = TRACE_PLAN[name]
        n_records = max(10_000, int(n_records * length_factor))
        spec = WorkloadSpec(name=name, n_records=n_records, seed=seed)
        records = TraceGenerator(spec, scale=scale).arrays()
        cpma[name] = {}
        bandwidth[name] = {}
        bus_power[name] = {}
        replay[name] = {}
        for config in configs:
            stats = replay_trace(
                records, config.hierarchy, warmup_fraction=warmup
            )
            cpma[name][config.name] = stats.cpma
            bandwidth[name][config.name] = stats.bandwidth_gbps
            bus_power[name][config.name] = stats.bus_power_w
            replay[name][config.name] = stats
            if get_oracle_config().enabled:
                # CPMA sanity band per Table 1 kernel: a value far
                # outside the published behaviour means bookkeeping
                # corruption, not a modelling change.
                record_check("uarch.cpma-band")
                for problem in check_cpma_band(name, stats.cpma):
                    record_violation(
                        "uarch.cpma-band",
                        "memsim",
                        f"{config.name}: {problem}",
                    )
    return MemoryOnLogicResult(
        cpma=cpma,
        bandwidth=bandwidth,
        bus_power=bus_power,
        peak_temps={},
        replay=replay,
    )


def run_thermal_study(
    solver: Optional[SolverConfig] = None,
    solver_meta: Optional[Dict[str, Dict[str, object]]] = None,
) -> Dict[str, float]:
    """Solve the four configurations thermally (Figure 8a).

    Returns peak temperature per configuration name.  If *solver_meta*
    is given, it is filled with each configuration's solver provenance
    (residual/method/degraded) so degraded fallback solves stay visible
    in campaign reports.
    """
    temps: Dict[str, float] = {}
    for config in build_memory_configs():
        if config.cache_die is None:
            solution = simulate_planar(config.cpu_die, solver)
        else:
            solution = simulate_stack(
                config.cpu_die,
                config.cache_die,
                die2_metal=config.cache_die_metal,
                config=solver,
            )
        temps[config.name] = solution.peak_temperature()
        if solver_meta is not None:
            solver_meta[config.name] = solution.solver_info()
    return temps


def run_memory_study(
    workloads: Optional[List[str]] = None,
    scale: int = 8,
    length_factor: float = 1.0,
    solver: Optional[SolverConfig] = None,
    with_thermals: bool = True,
) -> MemoryOnLogicResult:
    """The complete Section 3 study: performance plus thermals."""
    result = run_performance_study(workloads, scale, length_factor)
    if with_thermals:
        result.peak_temps = run_thermal_study(solver)
    return result
