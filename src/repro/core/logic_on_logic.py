"""Section 4: Logic+Logic stacking — performance, power, thermals, DVFS.

Combines the substrates into the paper's Logic+Logic flow:

1. evaluate the planar and 3D pipelines over the 650-trace suite
   (Table 4's per-row and total performance gains);
2. roll up the 3D power saving (repeaters, latches, clock grid);
3. solve the planar floorplan, the repaired 3D floorplan, and the 2x
   worst case thermally (Figure 11);
4. scale voltage/frequency per Table 5, with temperatures from the
   thermal model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.floorplan.pentium4 import (
    pentium4_3d_floorplans,
    pentium4_planar_floorplan,
    pentium4_worstcase_3d,
)
from repro.floorplan.stacking import power_density_report
from repro.thermal.model import simulate_planar, simulate_stack
from repro.thermal.solver import SolverConfig
from repro.uarch.dvfs import ScalingPoint, table5_points
from repro.uarch.interval import speedup
from repro.uarch.pipeline import (
    TABLE4_ELIMINATIONS,
    planar_pipeline,
    stacked_pipeline,
    stages_eliminated_fraction,
)
from repro.uarch.power import (
    planar_power_breakdown,
    power_reduction_fraction,
    stacked_power_breakdown,
)
from repro.uarch.workloads import WorkloadProfile, workload_suite


@dataclass
class LogicOnLogicResult:
    """Results of the full Section 4 study.

    Attributes:
        per_row_gains: Table 4: functional area -> performance gain (%).
        total_gain_pct: Total 3D performance gain (%; paper ~15).
        stages_eliminated_pct: Pipe stages eliminated (%; paper ~25).
        planar_power_w: Planar total power (147).
        stacked_power_w: 3D total power (paper ~125).
        power_reduction_pct: Power saving (%; paper 15).
        peak_temp_2d: Planar peak temperature, C (paper 98.6).
        peak_temp_3d: 3D floorplan peak temperature, C (paper 112.5).
        peak_temp_worstcase: 2x-density worst case, C (paper 124.75).
        density_ratio_3d: Peak combined power density vs planar (paper ~1.3).
        density_ratio_worstcase: Same for the worst case (2.0).
        table5: Table 5 scaling points with solved temperatures.
    """

    per_row_gains: Dict[str, float]
    total_gain_pct: float
    stages_eliminated_pct: float
    planar_power_w: float
    stacked_power_w: float
    power_reduction_pct: float
    peak_temp_2d: float = 0.0
    peak_temp_3d: float = 0.0
    peak_temp_worstcase: float = 0.0
    density_ratio_3d: float = 0.0
    density_ratio_worstcase: float = 0.0
    table5: List[ScalingPoint] = field(default_factory=list)


def run_performance_study(
    suite: Optional[List[WorkloadProfile]] = None,
) -> LogicOnLogicResult:
    """Table 4: per-row and total gains over the workload suite."""
    suite = suite or workload_suite()
    planar = planar_pipeline()
    stacked = stacked_pipeline(planar)
    per_row: Dict[str, float] = {}
    for area, removed in TABLE4_ELIMINATIONS.items():
        partial = stacked_pipeline(planar, {area: removed})
        per_row[area] = 100.0 * (speedup(suite, planar, partial) - 1.0)
    total = 100.0 * (speedup(suite, planar, stacked) - 1.0)
    breakdown = planar_power_breakdown()
    stacked_w = stacked_power_breakdown(breakdown).total
    return LogicOnLogicResult(
        per_row_gains=per_row,
        total_gain_pct=total,
        stages_eliminated_pct=100.0
        * stages_eliminated_fraction(planar, stacked),
        planar_power_w=breakdown.total,
        stacked_power_w=stacked_w,
        power_reduction_pct=100.0 * power_reduction_fraction(),
    )


def thermal_map_3d_power(
    solver: Optional[SolverConfig] = None,
) -> Callable[[float], float]:
    """A power->temperature map for the 3D floorplan.

    Steady-state conduction is linear in power, so one solve of the 3D
    floorplan at its nominal 125 W yields peak temperature at any power
    by scaling the rise over ambient.  Used for Table 5's temperature
    column.
    """
    bottom, top = pentium4_3d_floorplans()
    nominal = bottom.total_power + top.total_power
    solution = simulate_stack(bottom, top, die2_metal="cu", config=solver)
    ambient = (solver or SolverConfig()).ambient_c
    rise = solution.peak_temperature() - ambient

    def temp_at(power_w: float) -> float:
        if power_w < 0:
            raise ValueError("power must be non-negative")
        return ambient + rise * power_w / nominal

    return temp_at


def run_thermal_study(
    solver: Optional[SolverConfig] = None,
    solver_meta: Optional[Dict[str, Dict[str, object]]] = None,
) -> Dict[str, float]:
    """Figure 11: 2D baseline, repaired 3D, and worst-case peak temps.

    If *solver_meta* is given, it is filled with each configuration's
    solver provenance (residual/method/degraded).
    """
    planar = pentium4_planar_floorplan()
    bottom, top = pentium4_3d_floorplans()
    worst_b, worst_t = pentium4_worstcase_3d()
    solutions = {
        "2D Baseline": simulate_planar(planar, solver),
        "3D": simulate_stack(bottom, top, die2_metal="cu", config=solver),
        "3D Worstcase": simulate_stack(
            worst_b, worst_t, die2_metal="cu", config=solver
        ),
    }
    if solver_meta is not None:
        for name, solution in solutions.items():
            solver_meta[name] = solution.solver_info()
    return {
        name: solution.peak_temperature()
        for name, solution in solutions.items()
    }


def run_logic_study(
    suite: Optional[List[WorkloadProfile]] = None,
    solver: Optional[SolverConfig] = None,
    with_thermals: bool = True,
    solve_temp_point: bool = False,
) -> LogicOnLogicResult:
    """The complete Section 4 study."""
    result = run_performance_study(suite)
    if not with_thermals:
        return result
    temps = run_thermal_study(solver)
    result.peak_temp_2d = temps["2D Baseline"]
    result.peak_temp_3d = temps["3D"]
    result.peak_temp_worstcase = temps["3D Worstcase"]

    planar = pentium4_planar_floorplan()
    bottom, top = pentium4_3d_floorplans()
    report = power_density_report(bottom, top, reference=planar)
    result.density_ratio_3d = report.peak_vs_reference or 0.0
    worst_b, worst_t = pentium4_worstcase_3d()
    report_worst = power_density_report(worst_b, worst_t, reference=planar)
    result.density_ratio_worstcase = report_worst.peak_vs_reference or 0.0

    thermal = thermal_map_3d_power(solver)
    result.table5 = table5_points(
        thermal=thermal,
        baseline_temp=result.peak_temp_2d,
        solve_temp_point=solve_temp_point,
    )
    return result
