"""Registry of the paper's tables and figures as runnable experiments.

Every evaluation artifact of the paper maps to one entry here; each
entry's ``run`` callable executes the experiment (possibly scaled down
via keyword arguments) and returns a result dictionary.  The benchmark
harness in ``benchmarks/`` drives these, and ``repro.analysis`` renders
them next to the published values.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import random
import time
import traceback
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.oracles.report import oracle_report, reset_oracles
from repro.resilience.errors import ReproError


def task_fingerprint(
    experiment_id: str,
    kwargs: Optional[Dict[str, Any]] = None,
    seed: Optional[int] = None,
) -> str:
    """Stable hash of one exact experiment invocation.

    Canonical-JSON over ``(experiment_id, kwargs, seed)``: the campaign
    journal keys resume decisions on this, and an outcome carrying it
    can be re-run in isolation bit-for-bit (``repro run <id> --seed N``
    with the journaled kwargs).
    """
    blob = json.dumps(
        {"experiment_id": experiment_id, "kwargs": kwargs or {}, "seed": seed},
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class Experiment:
    """One reproducible table/figure.

    Attributes:
        id: Paper artifact id, e.g. ``"figure-5"``.
        title: What the paper reports.
        paper_values: The published numbers (for comparison output).
        run: Callable producing measured values.
    """

    id: str
    title: str
    paper_values: Dict[str, Any]
    run: Callable[..., Dict[str, Any]]


@dataclass
class ExperimentOutcome:
    """Result of a guarded experiment run (see :func:`run_experiment`).

    Attributes:
        experiment_id: Which experiment ran.
        ok: True if the run completed.
        result: The measured values (empty on failure).
        error: Stringified failure, or None.
        error_type: Exception class name, or None.
        partial: Intermediate results the failing engine surfaced via
            :class:`~repro.resilience.errors.ReproError.partial`.
        elapsed_s: Wall-clock run time.
        seed: RNG seed applied before the run (None if unseeded).
        kwargs: Keyword arguments the experiment ran with.
        fingerprint: :func:`task_fingerprint` of (id, kwargs, seed) — a
            journaled failure plus this triple reproduces the run
            bit-for-bit.
        oracles: Structured :class:`~repro.oracles.report.OracleReport`
            dict for this run — check counts, violations, and whether
            the result is ``degraded`` (oracle fired, run fell back to
            a trusted path).  Empty when oracles were off.
    """

    experiment_id: str
    ok: bool
    result: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    error_type: Optional[str] = None
    partial: Dict[str, Any] = field(default_factory=dict)
    elapsed_s: float = 0.0
    seed: Optional[int] = None
    kwargs: Dict[str, Any] = field(default_factory=dict)
    fingerprint: str = ""
    oracles: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable view (CLI ``--json``, worker results)."""
        return asdict(self)


class ExperimentRegistry:
    """Name-indexed registry of the paper's runnable artifacts."""

    def __init__(self) -> None:
        self._experiments: Dict[str, Experiment] = {}

    def register(self, experiment: Experiment) -> Experiment:
        if experiment.id in self._experiments:
            raise ValueError(f"experiment {experiment.id!r} already registered")
        self._experiments[experiment.id] = experiment
        return experiment

    def get(self, experiment_id: str) -> Experiment:
        """Look up an experiment; a miss names every valid id."""
        try:
            return self._experiments[experiment_id]
        except KeyError:
            raise KeyError(
                f"unknown experiment {experiment_id!r}; "
                f"known: {sorted(self._experiments)}"
            ) from None

    def list(self) -> List[str]:
        """All registered experiment ids, in registration order."""
        return list(self._experiments)

    def __iter__(self) -> Iterator[Experiment]:
        return iter(self._experiments.values())

    def __contains__(self, experiment_id: str) -> bool:
        return experiment_id in self._experiments

    def __len__(self) -> int:
        return len(self._experiments)


def _run_figure3(**kwargs: Any) -> Dict[str, Any]:
    """Figure 3: peak temperature vs. Cu-metal / bond-layer conductivity."""
    from repro.floorplan.pentium4 import pentium4_3d_floorplans
    from repro.thermal.solver import SolverConfig, solve_steady_state
    from repro.thermal.stack import build_3d_stack

    nx = kwargs.get("nx", 48)
    sweep = kwargs.get("conductivities", [60.0, 30.0, 12.0, 6.0, 3.0])
    bottom, top = pentium4_3d_floorplans()
    base = build_3d_stack(bottom, top, die2_metal="cu")
    config = SolverConfig(nx=nx, ny=nx)
    cu_curve: Dict[float, float] = {}
    bond_curve: Dict[float, float] = {}
    for k in sweep:
        s_cu = base.replace_layer(base.layer("metal-1").with_conductivity(k))
        s_cu = s_cu.replace_layer(s_cu.layer("metal-2").with_conductivity(k))
        cu_curve[k] = solve_steady_state(s_cu, config).peak_temperature()
        s_bond = base.replace_layer(base.layer("bond").with_conductivity(k))
        bond_curve[k] = solve_steady_state(s_bond, config).peak_temperature()
    return {"cu_metal": cu_curve, "bond": bond_curve}


def _run_figure5(**kwargs: Any) -> Dict[str, Any]:
    """Figure 5: CPMA and off-die bandwidth, 12 RMS workloads x 4 caches."""
    from repro.core.memory_on_logic import run_performance_study

    result = run_performance_study(
        workloads=kwargs.get("workloads"),
        scale=kwargs.get("scale", 8),
        length_factor=kwargs.get("length_factor", 1.0),
    )
    return {
        "cpma": result.cpma,
        "bandwidth": result.bandwidth,
        "avg_cpma_reduction_32mb": result.cpma_reduction("3D 32MB"),
        "max_cpma_reduction_32mb": result.max_cpma_reduction("3D 32MB"),
        "bus_power_reduction_32mb": result.bus_power_reduction("3D 32MB"),
    }


def _run_figure6(**kwargs: Any) -> Dict[str, Any]:
    """Figure 6: baseline Core 2 Duo thermal map (88.35 C peak / 59 C)."""
    from repro.floorplan.core2duo import core2duo_floorplan
    from repro.thermal.model import simulate_planar
    from repro.thermal.solver import SolverConfig

    nx = kwargs.get("nx", 48)
    solution = simulate_planar(
        core2duo_floorplan(), SolverConfig(nx=nx, ny=nx)
    )
    return {
        "peak_c": solution.peak_temperature(),
        "coolest_c": solution.coolest_on_die(),
        "hottest_layer": solution.hottest_layer(),
        "solver": solution.solver_info(),
    }


def _run_figure8(**kwargs: Any) -> Dict[str, Any]:
    """Figure 8: peak temperature of the four Memory+Logic stack configs."""
    from repro.core.memory_on_logic import run_thermal_study
    from repro.thermal.solver import SolverConfig

    nx = kwargs.get("nx", 48)
    meta: Dict[str, Dict[str, Any]] = {}
    result: Dict[str, Any] = dict(
        run_thermal_study(SolverConfig(nx=nx, ny=nx), solver_meta=meta)
    )
    result["solver"] = meta
    return result


def _run_figure11(**kwargs: Any) -> Dict[str, Any]:
    """Figure 11: Logic+Logic thermals (2D baseline / 3D / 3D worst case)."""
    from repro.core.logic_on_logic import run_thermal_study
    from repro.thermal.solver import SolverConfig

    nx = kwargs.get("nx", 48)
    meta: Dict[str, Dict[str, Any]] = {}
    result: Dict[str, Any] = dict(
        run_thermal_study(SolverConfig(nx=nx, ny=nx), solver_meta=meta)
    )
    result["solver"] = meta
    return result


def _run_table4(**kwargs: Any) -> Dict[str, Any]:
    """Table 4: pipe stages eliminated and per-area performance gains."""
    from repro.core.logic_on_logic import run_performance_study

    result = run_performance_study()
    return {
        "per_row_gains_pct": result.per_row_gains,
        "total_gain_pct": result.total_gain_pct,
        "stages_eliminated_pct": result.stages_eliminated_pct,
    }


def _run_table5(**kwargs: Any) -> Dict[str, Any]:
    """Table 5: voltage/frequency scaling points of the 3D floorplan."""
    from repro.core.logic_on_logic import run_logic_study
    from repro.thermal.solver import SolverConfig

    nx = kwargs.get("nx", 48)
    result = run_logic_study(
        solver=SolverConfig(nx=nx, ny=nx),
        solve_temp_point=kwargs.get("solve_temp_point", False),
    )
    return {
        "rows": [
            {
                "name": p.name,
                "vcc": p.vcc,
                "freq": p.freq,
                "power_w": p.power_w,
                "power_pct": p.power_pct,
                "perf_pct": p.perf_pct,
                "temp_c": p.temp_c,
            }
            for p in result.table5
        ]
    }


def _run_table5_dynamic(**kwargs: Any) -> Dict[str, Any]:
    """table5_dynamic: closed-loop DVFS convergence to the Same Temp point.

    Where ``table-5`` *solves* for the Same Temp voltage analytically,
    this experiment *finds* it dynamically: the predictive DTM policy
    steers the coupled thermal/performance loop from a cold start at
    full V/f until the stack parks where its steady peak matches the
    planar ceiling.  The converged operating point is the mean of the
    trailing epochs.
    """
    from repro.coupled import (
        CoupledConfig,
        PredictiveDtm,
        constant_load,
        run_coupled_loop,
    )
    from repro.uarch.dvfs import PLANAR_POWER_W

    config = CoupledConfig(
        nx=kwargs.get("nx", 20),
        n_epochs=kwargs.get("n_epochs", 40),
        epoch_s=kwargs.get("epoch_s", 2.0),
        dt_s=kwargs.get("dt_s", 0.5),
    )
    result = run_coupled_loop(PredictiveDtm(), constant_load(1.0), config)
    tail = result.epochs[-min(5, len(result.epochs)):]
    vcc = sum(e.vcc for e in tail) / len(tail)
    power_w = sum(e.power_w for e in tail) / len(tail)
    perf_pct = sum(e.perf_pct for e in tail) / len(tail)
    out = result.to_dict()
    out["converged"] = {
        "vcc": vcc,
        "freq": vcc,
        "power_w": power_w,
        "power_pct": 100.0 * power_w / PLANAR_POWER_W,
        "perf_pct": perf_pct,
    }
    return out


def _run_dtm_load_spike(**kwargs: Any) -> Dict[str, Any]:
    """dtm_load_spike: every DTM policy vs. a bursty load-spike schedule.

    The no-DTM control run must bust the thermal ceiling during the
    sustained spikes; each throttling policy must ride them out below
    it.  A steady-state study cannot express this scenario at all —
    it is the closed loop's reason to exist.
    """
    from repro.coupled import (
        CoupledConfig,
        NoDtm,
        PidDtm,
        PredictiveDtm,
        ThresholdDtm,
        bursty_load_spikes,
        run_coupled_loop,
    )

    config = CoupledConfig(
        nx=kwargs.get("nx", 20),
        n_epochs=kwargs.get("n_epochs", 64),
        epoch_s=kwargs.get("epoch_s", 1.0),
        dt_s=kwargs.get("dt_s", 0.5),
        start="steady",
    )
    load = bursty_load_spikes(seed=kwargs.get("seed", 0))
    # Per-policy knobs: the threshold actuator slews 3%/epoch to keep
    # pace with the ramp; the PID needs the widest guard because it is
    # purely reactive (no lookahead, no immediate full-range actuation).
    policies = [
        NoDtm(),
        ThresholdDtm(vcc_step=0.03),
        PidDtm(guard_c=6.0),
        PredictiveDtm(),
    ]
    runs = {p.name: run_coupled_loop(p, load, config) for p in policies}
    return {
        "ceiling_c": runs["none"].ceiling_c,
        "policies": {name: r.summary() for name, r in runs.items()},
        "control_exceeded_epochs": runs["none"].exceeded_epochs,
        "dtm_exceeded_epochs": {
            name: r.exceeded_epochs
            for name, r in runs.items()
            if name != "none"
        },
    }


def _run_dtm_policy_compare(**kwargs: Any) -> Dict[str, Any]:
    """dtm_policy_compare: performance/temperature Pareto of the policies.

    All four policies run the design-point workload from a warm
    (full-power steady) start — hotter than the ceiling, so every
    controller must pull the stack down and then hold it.  The
    summaries feed the Pareto comparison in ``repro.analysis``.
    """
    from repro.coupled import (
        CoupledConfig,
        NoDtm,
        PidDtm,
        PredictiveDtm,
        ThresholdDtm,
        constant_load,
        run_coupled_loop,
    )

    config = CoupledConfig(
        nx=kwargs.get("nx", 20),
        n_epochs=kwargs.get("n_epochs", 30),
        epoch_s=kwargs.get("epoch_s", 2.0),
        dt_s=kwargs.get("dt_s", 0.5),
        start="steady",
    )
    load = constant_load(1.0)
    summaries = [
        run_coupled_loop(policy, load, config).summary()
        for policy in (NoDtm(), ThresholdDtm(), PidDtm(), PredictiveDtm())
    ]
    return {"policies": summaries}


def _run_headlines(**kwargs: Any) -> Dict[str, Any]:
    """Section 3/4 headline numbers (perf gain, power saving, stages)."""
    from repro.core.logic_on_logic import run_performance_study
    from repro.floorplan.core2duo import core2duo_floorplan
    from repro.thermal.model import simulate_planar
    from repro.thermal.solver import SolverConfig

    logic = run_performance_study()
    headlines: Dict[str, Any] = {
        "logic_perf_gain_pct": logic.total_gain_pct,
        "logic_power_reduction_pct": logic.power_reduction_pct,
        "stages_eliminated_pct": logic.stages_eliminated_pct,
    }
    # One coarse baseline solve so campaign reports can headline the
    # thermal engine's health (method/residual/degraded) cheaply.
    if kwargs.get("thermal", True):
        nx = kwargs.get("nx", 24)
        solution = simulate_planar(
            core2duo_floorplan(), SolverConfig(nx=nx, ny=nx)
        )
        headlines["baseline_peak_c"] = solution.peak_temperature()
        headlines["thermal_solver"] = solution.solver_info()
    return headlines


REGISTRY = ExperimentRegistry()
for _experiment in [
        Experiment(
            id="figure-3",
            title="Peak temperature vs Cu-metal and bond-layer conductivity",
            paper_values={
                "shape": "both curves fall with k; Cu metal is steeper",
                "cu_range_c": (82.5, 89.0),
                "bond_range_c": (82.5, 86.5),
            },
            run=_run_figure3,
        ),
        Experiment(
            id="figure-5",
            title="CPMA and off-die BW for 12 RMS workloads x 4 capacities",
            paper_values={
                "avg_cpma_reduction_32mb": 0.13,
                "max_cpma_reduction_32mb": 0.55,
                "bw_reduction_32mb": "3x",
                "winners": ["gauss", "pcg", "smvm", "strans", "sus", "svm"],
            },
            run=_run_figure5,
        ),
        Experiment(
            id="figure-6",
            title="Baseline Core 2 Duo thermal map",
            paper_values={"peak_c": 88.35, "coolest_c": 59.0},
            run=_run_figure6,
        ),
        Experiment(
            id="figure-8",
            title="Peak temperature of the four Memory+Logic configurations",
            paper_values={
                "2D 4MB": 88.35,
                "3D 12MB": 92.85,
                "3D 32MB": 88.43,
                "3D 64MB": 90.27,
            },
            run=_run_figure8,
        ),
        Experiment(
            id="figure-11",
            title="Logic+Logic thermals: baseline / 3D / worst case",
            paper_values={
                "2D Baseline": 98.6,
                "3D": 112.5,
                "3D Worstcase": 124.75,
            },
            run=_run_figure11,
        ),
        Experiment(
            id="table-4",
            title="Pipe stages eliminated and per-area performance gains",
            paper_values={
                "front_end": 0.2,
                "trace_cache": 0.33,
                "rename_alloc": 0.66,
                "fp_wire": 4.0,
                "int_rf_read": 0.5,
                "data_cache_read": 1.5,
                "instruction_loop": 1.0,
                "retire_dealloc": 1.0,
                "fp_load": 2.0,
                "store_lifetime": 3.0,
                "total": 15.0,
                "stages_eliminated": 25.0,
            },
            run=_run_table4,
        ),
        Experiment(
            id="table-5",
            title="Voltage/frequency scaling of the 3D floorplan",
            paper_values={
                "Baseline": dict(power_w=147, perf_pct=100, temp_c=99, vcc=1.0, freq=1.0),
                "Same Pwr": dict(power_w=147, perf_pct=129, temp_c=127, vcc=1.0, freq=1.18),
                "Same Freq.": dict(power_w=125, perf_pct=115, temp_c=113, vcc=1.0, freq=1.0),
                "Same Temp": dict(power_w=97.28, perf_pct=108, temp_c=99, vcc=0.92, freq=0.92),
                "Same Perf.": dict(power_w=68.2, perf_pct=100, temp_c=77, vcc=0.82, freq=0.82),
            },
            run=_run_table5,
        ),
        Experiment(
            id="table5_dynamic",
            title="Closed-loop DVFS convergence to the Same Temp point",
            paper_values={
                "vcc": 0.92,
                "freq": 0.92,
                "power_w": 97.28,
                "power_pct": 66.0,
                "perf_pct": 108.0,
            },
            run=_run_table5_dynamic,
        ),
        Experiment(
            id="dtm_load_spike",
            title="DTM policies riding out bursty load spikes",
            paper_values={
                "control_exceeds_ceiling": True,
                "dtm_exceeds_ceiling": False,
            },
            run=_run_dtm_load_spike,
        ),
        Experiment(
            id="dtm_policy_compare",
            title="Performance/temperature Pareto of the DTM policies",
            paper_values={
                "policies": ["none", "threshold", "pid", "predictive"],
            },
            run=_run_dtm_policy_compare,
        ),
        Experiment(
            id="headlines",
            title="Section 3/4 headline results",
            paper_values={
                "logic_perf_gain_pct": 15.0,
                "logic_power_reduction_pct": 15.0,
                "memory_avg_cpma_reduction_pct": 13.0,
                "memory_bus_power_reduction_pct": 66.0,
            },
            run=_run_headlines,
        ),
]:
    REGISTRY.register(_experiment)

#: Backward-compatible dict view of the registry.
EXPERIMENTS: Dict[str, Experiment] = {e.id: e for e in REGISTRY}


def get_experiment(experiment_id: str) -> Experiment:
    """Look up an experiment by its paper artifact id."""
    return REGISTRY.get(experiment_id)


def list_experiments() -> List[str]:
    """All registered experiment ids."""
    return REGISTRY.list()


def run_experiment(
    experiment_id: str,
    strict: bool = False,
    registry: Optional[ExperimentRegistry] = None,
    seed: Optional[int] = None,
    **kwargs: Any,
) -> ExperimentOutcome:
    """Run one experiment inside a run guard.

    On success the outcome carries the measured values; on failure it
    carries the structured error (class name + message) and whatever
    partial results the failing engine attached to its
    :class:`~repro.resilience.errors.ReproError`, so a long study that
    dies three figures in still reports the first two.

    Args:
        experiment_id: Registered artifact id (see :func:`list_experiments`).
        strict: If True, re-raise the failure instead of capturing it
            (lookup errors for unknown ids always raise).
        registry: Registry to resolve the id against (the module-level
            :data:`REGISTRY` by default).
        seed: If given, seeds the ``random`` and ``numpy.random`` global
            generators before the run, and is recorded on the outcome so
            the run can be reproduced exactly.
        **kwargs: Forwarded to the experiment's ``run`` callable.
    """
    experiment = (registry or REGISTRY).get(experiment_id)
    fingerprint = task_fingerprint(experiment_id, kwargs, seed)
    if seed is not None:
        random.seed(seed)
        with contextlib.suppress(ImportError):  # numpy is a hard dep
            import numpy as np

            np.random.seed(seed % 2**32)
    # Oracle scoreboard is per-run: reset here so the outcome's report
    # covers exactly this experiment, success or failure.
    reset_oracles()
    start = time.perf_counter()
    try:
        result = experiment.run(**kwargs)
    except Exception as exc:
        if strict:
            raise
        return ExperimentOutcome(
            experiment_id=experiment_id,
            ok=False,
            error=f"{exc}" or traceback.format_exc(limit=1).strip(),
            error_type=type(exc).__name__,
            partial=dict(exc.partial) if isinstance(exc, ReproError) else {},
            elapsed_s=time.perf_counter() - start,
            seed=seed,
            kwargs=dict(kwargs),
            fingerprint=fingerprint,
            oracles=_collect_oracles(),
        )
    return ExperimentOutcome(
        experiment_id=experiment_id,
        ok=True,
        result=result,
        elapsed_s=time.perf_counter() - start,
        seed=seed,
        kwargs=dict(kwargs),
        fingerprint=fingerprint,
        oracles=_collect_oracles(),
    )


def _collect_oracles() -> Dict[str, Any]:
    """Snapshot the oracle scoreboard; empty when oracles are off."""
    report = oracle_report()
    if report.mode == "off" and report.total_checks == 0:
        return {}
    return report.to_dict()
