"""The paper's primary contribution: 3D die-stacked microarchitecture
design and evaluation.

This package ties the substrates together into the two studies of the
paper:

* :mod:`repro.core.stack` — the physical 3D stack model: dies, the
  face-to-face die-to-die via interface, and its electrical properties.
* :mod:`repro.core.memory_on_logic` — Section 3: the four Memory+Logic
  configurations (4 MB baseline, +8 MB SRAM, 32 MB DRAM, 64 MB DRAM),
  their memory-hierarchy performance on the RMS workloads, and their
  thermals.
* :mod:`repro.core.logic_on_logic` — Section 4: the Logic+Logic split of
  the Pentium 4-class machine, its performance/power/thermals, and the
  Table 5 DVFS trade-offs.
* :mod:`repro.core.experiments` — the registry mapping every table and
  figure in the paper to a runnable experiment.
"""

from repro.core.stack import D2DInterface, Die, DieStack
from repro.core.memory_on_logic import (
    MemoryOnLogicConfig,
    MemoryOnLogicResult,
    MEMORY_CONFIG_NAMES,
    build_memory_configs,
    run_memory_study,
    stack_for_config,
)
from repro.core.logic_on_logic import (
    LogicOnLogicResult,
    run_logic_study,
    thermal_map_3d_power,
)
from repro.core.experiments import EXPERIMENTS, get_experiment, list_experiments

__all__ = [
    "D2DInterface",
    "Die",
    "DieStack",
    "MemoryOnLogicConfig",
    "MemoryOnLogicResult",
    "MEMORY_CONFIG_NAMES",
    "build_memory_configs",
    "run_memory_study",
    "stack_for_config",
    "LogicOnLogicResult",
    "run_logic_study",
    "thermal_map_3d_power",
    "EXPERIMENTS",
    "get_experiment",
    "list_experiments",
]
