"""Physical model of a two-die face-to-face 3D stack (Figure 1).

Captures the structural facts the paper builds on: two dies bonded
face-to-face through a dense die-to-die (d2d) via interface whose
electrical characteristics resemble on-die vias (not I/O pads), with
through-silicon vias (TSVs) carrying power and I/O through the thinned
die #2, and the thick die #1 facing the heat sink.

The d2d interface model quantifies the paper's key electrical claim: "The
RC of the all copper die to die interconnect used to interface the DRAM
to the processor is comparable to 1/3 the RC of a typical via stack from
first metal to last metal" — which is what makes the stacked interface
dramatically lower-power than off-die I/O (20 mW/Gb/s buses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.floorplan.blocks import Floorplan, stack_outline_matches

# Re-exported so existing callers keep working; the constants live with
# the physical stacking substrate (see repro.floorplan.stacking).
from repro.floorplan.stacking import D2D_RC_FRACTION, VIA_STACK_RC

#: Energy per bit of a conventional off-die bus at 20 mW/Gb/s, joules.
OFFDIE_ENERGY_PER_BIT_J = 20e-3 / 1e9

#: d2d via pitch, micrometres (dense face-to-face interfaces of the era).
D2D_PITCH_UM = 10.0


@dataclass(frozen=True)
class D2DInterface:
    """The face-to-face die-to-die via interface.

    Attributes:
        pitch_um: Via pitch, micrometres.
        signal_fraction: Fraction of vias carrying signals (the rest are
            power/ground and mechanical).
        rc_vs_via_stack: RC relative to a first-to-last-metal via stack.
        latency_cycles: Core cycles to cross the interface.
    """

    pitch_um: float = D2D_PITCH_UM
    signal_fraction: float = 0.5
    rc_vs_via_stack: float = D2D_RC_FRACTION
    latency_cycles: int = 4

    def __post_init__(self) -> None:
        if self.pitch_um <= 0:
            raise ValueError("via pitch must be positive")
        if not 0 < self.signal_fraction <= 1:
            raise ValueError("signal fraction must be in (0, 1]")

    def via_count(self, width_mm: float, height_mm: float) -> int:
        """Total d2d vias across a bonded area."""
        per_mm = 1000.0 / self.pitch_um
        return int(width_mm * per_mm) * int(height_mm * per_mm)

    def signal_count(self, width_mm: float, height_mm: float) -> int:
        """Signal vias available across a bonded area."""
        return int(self.via_count(width_mm, height_mm) * self.signal_fraction)

    def energy_per_bit_j(self) -> float:
        """Energy per bit crossing the d2d interface.

        Scaled from the off-die figure by the RC ratio: switching energy
        is proportional to the capacitance driven, and the d2d path is
        ~1/3 of a via stack versus the board-level trace an off-die bus
        drives (~50x a via stack).
        """
        via_stack_vs_offdie = 1.0 / 50.0
        return (
            OFFDIE_ENERGY_PER_BIT_J * self.rc_vs_via_stack * via_stack_vs_offdie
        )

    def bandwidth_gbps(
        self, width_mm: float, height_mm: float, ghz: float = 4.0
    ) -> float:
        """Aggregate interface bandwidth, GB/s, at one bit/cycle per via."""
        return self.signal_count(width_mm, height_mm) * ghz / 8.0


@dataclass(frozen=True)
class Die:
    """One die in the stack.

    Attributes:
        floorplan: Block-level floorplan (power map).
        kind: ``"logic"`` or ``"dram"`` — selects the metal stack
            (Table 2: 12 um Cu for logic, 2 um Al for DRAM).
        bulk_um: Bulk silicon thickness, micrometres.
    """

    floorplan: Floorplan
    kind: str = "logic"
    bulk_um: float = 750.0

    def __post_init__(self) -> None:
        if self.kind not in ("logic", "dram"):
            raise ValueError(f"die kind must be 'logic' or 'dram', got {self.kind!r}")
        if self.bulk_um <= 0:
            raise ValueError("bulk thickness must be positive")

    @property
    def metal(self) -> str:
        return "cu" if self.kind == "logic" else "al"

    @property
    def power_w(self) -> float:
        return self.floorplan.total_power


@dataclass
class DieStack:
    """A two-die face-to-face stack.

    Die ordering follows Figure 1 / Table 2: ``die_near_sink`` keeps its
    full-thickness bulk Si toward the heat sink; ``die_near_bumps`` is
    thinned for the TSVs that carry power and I/O.

    The paper's placement rule is enforced as a validation (not an
    error): :meth:`validate` reports whether the highest-power die is
    closest to the heat sink.
    """

    die_near_sink: Die
    die_near_bumps: Die
    interface: D2DInterface = field(default_factory=D2DInterface)

    def __post_init__(self) -> None:
        if not stack_outline_matches(
            self.die_near_sink.floorplan, self.die_near_bumps.floorplan
        ):
            raise ValueError(
                "face-to-face bonding requires matching die outlines"
            )

    @property
    def total_power_w(self) -> float:
        return self.die_near_sink.power_w + self.die_near_bumps.power_w

    @property
    def footprint_mm2(self) -> float:
        plan = self.die_near_sink.floorplan
        return plan.die_width * plan.die_height

    def hot_die_near_sink(self) -> bool:
        """True if the placement follows the paper's rule ("the highest
        power die is placed closest to the heat sink")."""
        return self.die_near_sink.power_w >= self.die_near_bumps.power_w

    def interface_bandwidth_gbps(self, ghz: float = 4.0) -> float:
        """Peak d2d bandwidth over the bonded area."""
        plan = self.die_near_sink.floorplan
        return self.interface.bandwidth_gbps(
            plan.die_width, plan.die_height, ghz
        )

    def interface_power_w(self, traffic_gbps: float) -> float:
        """Interface power at a given traffic level, watts."""
        bits_per_s = traffic_gbps * 8e9
        return bits_per_s * self.interface.energy_per_bit_j()

    def validate(self) -> List[str]:
        """Design-rule report: empty list means clean."""
        problems: List[str] = []
        if not self.hot_die_near_sink():
            problems.append(
                "higher-power die is away from the heat sink "
                f"({self.die_near_bumps.power_w:.1f} W over "
                f"{self.die_near_sink.power_w:.1f} W)"
            )
        if self.die_near_bumps.bulk_um > 100.0:
            problems.append(
                "die #2 must be thinned to 20-100 um for TSV construction "
                f"(got {self.die_near_bumps.bulk_um} um)"
            )
        return problems


def build_stack(
    near_sink: Floorplan,
    near_bumps: Floorplan,
    bumps_kind: str = "logic",
    interface: Optional[D2DInterface] = None,
) -> DieStack:
    """Convenience constructor following Table 2's thicknesses."""
    return DieStack(
        die_near_sink=Die(near_sink, kind="logic", bulk_um=750.0),
        die_near_bumps=Die(near_bumps, kind=bumps_kind, bulk_um=20.0),
        interface=interface or D2DInterface(),
    )
