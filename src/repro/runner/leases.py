"""Lease table: who is allowed to be running which task fingerprint.

The scheduler (:mod:`repro.runner.scheduler`) grants an executor a
**lease** on a task fingerprint before handing it the work.  A lease is
a claim with a deadline: the executor must keep renewing it (its backend
translates heartbeats into renewals) or the scheduler treats the
executor as dead, reclaims the lease, and re-queues the task for a
surviving executor to steal.  Because completions are matched by
fingerprint and resolved first-write-wins in the journal, a reclaimed
task that *both* executors eventually finish is counted exactly once.

This module is deliberately **clock-free**: every method takes the
current time (or a deadline) as a parameter, so the lease state machine
is a pure data structure — trivially testable, and immune to the
wall-clock/monotonic confusion the scheduler exists to avoid.  Callers
use ``time.monotonic()`` values throughout; wall-clock time never enters
the table.

Lease life cycle::

    claim ──▶ ACTIVE ──renew──▶ ACTIVE (deadline pushed out)
                │ │
                │ └──release (outcome arrived) ──▶ gone
                └──deadline passes ──▶ expired() pops it ──▶ reclaimed
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class Lease:
    """One executor's claim on one task fingerprint.

    Attributes:
        fingerprint: Task fingerprint the lease covers (the idempotence
            key: completions are matched on this).
        task_id: Campaign task id, for reports and journal lines.
        executor_id: Executor currently holding the claim.
        attempt: Attempt number the claim was granted for.
        granted_at: Monotonic timestamp of the grant.
        deadline: Monotonic timestamp after which the lease is expired.
        renewals: How many times the lease has been renewed.
        epoch: Fencing token: the grant's position in the fingerprint's
            grant history (1 for the first claim, 2 for the first
            re-grant after a reclaim, ...).  The scheduler stamps the
            epoch into the assignment and rejects completions carrying
            an epoch at or below the last *reclaimed* epoch, so a
            zombie executor's late write can never shadow the result
            of a fresher attempt.
    """

    fingerprint: str
    task_id: str
    executor_id: str
    attempt: int
    granted_at: float
    deadline: float
    renewals: int = 0
    epoch: int = 1


@dataclass
class LeaseTable:
    """All active leases, keyed by fingerprint (one lease per task).

    Attributes:
        ttl_s: Lease time-to-live; ``claim``/``renew`` set the deadline
            to ``now + ttl_s``.
    """

    ttl_s: float = 15.0
    _by_fp: Dict[str, Lease] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.ttl_s <= 0:
            raise ValueError("ttl_s must be positive")

    def claim(
        self,
        fingerprint: str,
        task_id: str,
        executor_id: str,
        attempt: int,
        now: float,
        epoch: int = 1,
    ) -> Lease:
        """Grant *executor_id* a lease on *fingerprint*.

        Raises:
            RuntimeError: the fingerprint is already leased — the
                scheduler must release or expire a claim before
                re-granting it, or two executors would both believe
                they own the task *by design* rather than by partition.
        """
        existing = self._by_fp.get(fingerprint)
        if existing is not None:
            raise RuntimeError(
                f"fingerprint {fingerprint[:12]} already leased to "
                f"{existing.executor_id!r} (attempt {existing.attempt})"
            )
        lease = Lease(
            fingerprint=fingerprint,
            task_id=task_id,
            executor_id=executor_id,
            attempt=attempt,
            granted_at=now,
            deadline=now + self.ttl_s,
            epoch=epoch,
        )
        self._by_fp[fingerprint] = lease
        return lease

    def renew(self, executor_id: str, now: float) -> int:
        """Push out the deadline of every lease *executor_id* holds.

        A renewal is executor-scoped, not task-scoped: one heartbeat
        from a node proves the whole node alive, so all of its claims
        stay good.  Returns the number of leases renewed.
        """
        renewed = 0
        for lease in self._by_fp.values():
            if lease.executor_id == executor_id:
                lease.deadline = now + self.ttl_s
                lease.renewals += 1
                renewed += 1
        return renewed

    def release(
        self, fingerprint: str, executor_id: Optional[str] = None
    ) -> Optional[Lease]:
        """Drop the lease on *fingerprint*; returns it, or None.

        With *executor_id* given, only a lease held by that executor is
        released — a late completion from a partitioned node must not
        evict the lease of the executor the task was re-granted to.
        """
        lease = self._by_fp.get(fingerprint)
        if lease is None:
            return None
        if executor_id is not None and lease.executor_id != executor_id:
            return None
        return self._by_fp.pop(fingerprint)

    def expired(self, now: float) -> List[Lease]:
        """Pop and return every lease whose deadline has passed."""
        out = [
            lease for lease in self._by_fp.values() if lease.deadline <= now
        ]
        for lease in out:
            del self._by_fp[lease.fingerprint]
        return out

    def held_by(self, executor_id: str) -> List[Lease]:
        """Every active lease *executor_id* holds."""
        return [
            lease for lease in self._by_fp.values()
            if lease.executor_id == executor_id
        ]

    def evict_executor(self, executor_id: str, now: float) -> List[Lease]:
        """Pop every lease held by a known-dead executor.

        Unlike :meth:`expired`, this does not wait for the TTL: when a
        backend *knows* an executor died (its control socket closed, its
        process was reaped) the scheduler reclaims immediately.  *now*
        is unused but taken for signature symmetry with the other
        transitions (and future grace windows).
        """
        del now
        out = self.held_by(executor_id)
        for lease in out:
            del self._by_fp[lease.fingerprint]
        return out

    def get(self, fingerprint: str) -> Optional[Lease]:
        return self._by_fp.get(fingerprint)

    def __len__(self) -> int:
        return len(self._by_fp)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._by_fp
