"""Supervised campaign runner: crash-isolated, resumable batch execution.

The paper's evaluation is a campaign of independent artifacts; this
package runs them under a lease-based scheduler over a pluggable
executor backend (``local`` | ``inproc`` | ``nodes:N``), with wall-clock
timeouts, heartbeat watchdogs, bounded retry with deterministic jitter,
and an append-only JSONL journal that makes a killed campaign resumable
(``repro sweep --resume``) — even when the thing that was killed is one
of the executors.

* :mod:`repro.runner.tasks` — task model + glob selection/fingerprints.
* :mod:`repro.runner.journal` — torn-line-tolerant JSONL journal.
* :mod:`repro.runner.worker` — the subprocess entry point.
* :mod:`repro.runner.pool` — supervised pool of worker subprocesses.
* :mod:`repro.runner.supervisor` — campaign config + report model.
* :mod:`repro.runner.scheduler` — the campaign loop: queue, leases,
  retries, journal authority, idempotent completion.
* :mod:`repro.runner.leases` — the clock-free lease table.
* :mod:`repro.runner.backends` — executor backends (mechanism).
* :mod:`repro.runner.node` — node-process entry point (``nodes:N``).
"""

import importlib

#: Lazy re-exports (PEP 562): the worker subprocess imports this package
#: on every launch (``python -m repro.runner.worker``), and must not pay
#: for the supervisor's imports before its heartbeat starts.
_EXPORTS = {
    "CampaignTask": "tasks",
    "select_tasks": "tasks",
    "DEFAULT_REGISTRY_SPEC": "tasks",
    "Journal": "journal",
    "read_journal": "journal",
    "completed_fingerprints": "journal",
    "make_entry": "journal",
    "JOURNAL_VERSION": "journal",
    "CampaignConfig": "supervisor",
    "CampaignReport": "supervisor",
    "CampaignRunner": "supervisor",
    "RetryPolicy": "supervisor",
    "run_campaign": "supervisor",
    "Scheduler": "scheduler",
    "Lease": "leases",
    "LeaseTable": "leases",
    "WorkerPool": "pool",
    "Assignment": "backends",
    "BackendEvent": "backends",
    "ExecutorBackend": "backends",
    "make_backend": "backends",
    "parse_backend_spec": "backends",
}


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    module = importlib.import_module(f"repro.runner.{module_name}")
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = list(_EXPORTS)
