"""Node process entry point: one executor owning a pool of workers.

``python -m repro.runner.node --connect PORT --node-id ID ...`` is what
the ``nodes:N`` backend (:mod:`repro.runner.backends.nodes`) spawns once
per node.  A node stands in for a remote machine: it dials the
scheduler's control socket on localhost, announces itself, and then

* accepts ``task`` messages and runs each spec in a crash-isolated
  worker subprocess (:class:`repro.runner.pool.WorkerPool` — the same
  supervision the local backend uses, one hop away);
* sends a ``heartbeat`` line every ``--heartbeat-every`` seconds, which
  the scheduler turns into lease renewals for everything this node has
  claimed;
* sends an ``outcome`` line per finished attempt.

Module-level imports are stdlib-only (the pool is too), so a node is as
cheap to start as a worker.  The control protocol is JSON lines, one
object per line, in both directions:

* scheduler → node: ``{"type": "task", "spec": {...}, "timeout_s": t}``,
  ``{"type": "shutdown"}``
* node → scheduler: ``{"type": "hello", "node": id, "pid": p}``,
  ``{"type": "heartbeat", "node": id}``,
  ``{"type": "outcome", "node": id, "outcome": {...}}``

Chaos directives (``--chaos '{"mode": ...}'``, built from
:meth:`repro.resilience.faults.FaultInjector.executor_fault`) make the
node misbehave so failover tests can prove the scheduler survives it:

* ``executor-crash`` — ``os._exit`` the whole node the moment its first
  finished outcome is ready, *before* sending it: the worst case, where
  claimed-and-completed work is lost with the executor.
* ``partition`` — blackhole the control socket (no sends, no reads) for
  ``partition_s`` seconds after the first task arrives; finished
  outcomes queue up and flush when the partition heals, arriving after
  the scheduler has already reclaimed the leases — the
  duplicate-completion path.
* ``lease-stall`` — stop heartbeating forever while workers keep
  running and outcomes keep flowing.

(``duplicate-delivery`` is injected by the scheduler, which submits the
same assignment twice; no node cooperation needed.)
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional

#: Exit code for an injected executor crash (distinctive in logs).
EXECUTOR_CRASH_EXIT_CODE = 31


def _send(sock: socket.socket, message: Dict[str, Any]) -> None:
    sock.sendall((json.dumps(message) + "\n").encode("utf-8"))


class Node:
    """One node's control loop; see module docstring for the protocol."""

    def __init__(self, args: argparse.Namespace) -> None:
        # Deferred import keeps `--help` and arg errors socket-free.
        from repro.runner.pool import WorkerPool

        self.node_id: str = args.node_id
        self.max_workers: int = args.workers
        self.heartbeat_every_s: float = args.heartbeat_every
        self.poll_interval_s: float = args.poll_interval
        self.chaos: Dict[str, Any] = (
            json.loads(args.chaos) if args.chaos else {}
        )
        scratch = args.scratch or tempfile.mkdtemp(
            prefix=f"repro-node-{self.node_id}-"
        )
        self.pool = WorkerPool(
            scratch=scratch,
            heartbeat_timeout_s=args.heartbeat_timeout,
            kill_grace_s=args.kill_grace,
        )
        self.sock = socket.create_connection(
            ("127.0.0.1", args.connect), timeout=10.0
        )
        self.sock.settimeout(0.0)  # non-blocking reads; sends are short
        self._read_buffer = b""
        self._queued: List[Dict[str, Any]] = []  # (spec, timeout) backlog
        self._partition_until: float = -1.0
        self._held: List[Dict[str, Any]] = []  # messages blackholed
        self._stalled = False
        self._saw_task = False
        self._next_beat = 0.0

    def close(self) -> None:
        """Release the control socket (idempotent).

        The OS would reclaim it at process exit, but an explicit close
        lets the scheduler see EOF immediately instead of waiting out
        a heartbeat timeout when the node exits cleanly.
        """
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - close never fails on Linux
            pass

    # -- control-plane I/O ---------------------------------------------------

    def _partitioned(self, now: float) -> bool:
        return now < self._partition_until

    def _post(self, message: Dict[str, Any], now: float) -> None:
        """Send *message*, or hold it back while partitioned."""
        if self._partitioned(now):
            if message["type"] != "heartbeat":  # beats are lost, not queued
                self._held.append(message)
            return
        for held in self._held:
            _send(self.sock, held)
        self._held = []
        _send(self.sock, message)

    def _read_messages(self, now: float) -> List[Dict[str, Any]]:
        if self._partitioned(now):
            return []  # a blackhole drops both directions
        try:
            chunk = self.sock.recv(65536)
        except (BlockingIOError, InterruptedError):
            return []
        except OSError:
            raise SystemExit(0) from None  # control socket gone: shut down
        if chunk == b"":
            raise SystemExit(0)  # scheduler closed the socket
        self._read_buffer += chunk
        messages = []
        while b"\n" in self._read_buffer:
            line, self._read_buffer = self._read_buffer.split(b"\n", 1)
            if line.strip():
                messages.append(json.loads(line.decode("utf-8")))
        return messages

    # -- main loop -----------------------------------------------------------

    def run(self) -> int:
        mode = self.chaos.get("mode")
        _send(self.sock, {
            "type": "hello",
            "node": self.node_id,
            "pid": os.getpid(),
            "workers": self.max_workers,
        })
        shutting_down = False
        while True:
            now = time.monotonic()
            for message in self._read_messages(now):
                if message.get("type") == "task":
                    self._saw_task = True
                    if mode == "partition" and self._partition_until < 0:
                        self._partition_until = now + float(
                            self.chaos.get("partition_s", 2.0)
                        )
                    self._queued.append(message)
                elif message.get("type") == "shutdown":
                    shutting_down = True

            while self._queued and self.pool.running < self.max_workers:
                task = self._queued.pop(0)
                self.pool.launch(
                    task["spec"], float(task.get("timeout_s", 300.0))
                )

            outcomes, _beats = self.pool.poll()
            for outcome in outcomes:
                if mode == "executor-crash":
                    # Die with completed-but-unreported work: the
                    # scheduler must reclaim the lease and re-run.
                    os._exit(EXECUTOR_CRASH_EXIT_CODE)
                self._post({
                    "type": "outcome",
                    "node": self.node_id,
                    "outcome": outcome,
                }, now)

            if mode == "lease-stall" and self._saw_task:
                self._stalled = True
            if now >= self._next_beat and not self._stalled:
                self._post({"type": "heartbeat", "node": self.node_id}, now)
                self._next_beat = now + self.heartbeat_every_s

            if shutting_down and not self._queued and not self.pool.running:
                return 0
            time.sleep(self.poll_interval_s)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.runner.node",
        description="campaign executor node (spawned by the nodes:N "
                    "backend; not for direct use)",
    )
    parser.add_argument("--connect", type=int, required=True,
                        help="scheduler control port on 127.0.0.1")
    parser.add_argument("--node-id", required=True)
    parser.add_argument("--workers", type=int, default=2,
                        help="max concurrent worker subprocesses")
    parser.add_argument("--heartbeat-every", type=float, default=0.2)
    parser.add_argument("--heartbeat-timeout", type=float, default=10.0)
    parser.add_argument("--kill-grace", type=float, default=1.0)
    parser.add_argument("--poll-interval", type=float, default=0.02)
    parser.add_argument("--scratch", default="")
    parser.add_argument("--chaos", default="",
                        help="JSON chaos directive (fault injection)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    node = Node(args)
    try:
        return node.run()
    finally:
        node.pool.kill_all(grace_s=0.2)
        node.close()


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
