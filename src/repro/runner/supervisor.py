"""Supervised campaign execution: crash-isolated workers under a watchdog.

The paper's evaluation is a campaign of independent artifacts (Figures
3-11, Tables 4-5); one hung solver or OOM-killed worker must not take
down the study.  :func:`run_campaign` therefore runs every
:class:`~repro.runner.tasks.CampaignTask` in its own subprocess
(``python -m repro.runner.worker``) and supervises it with:

* a **wall-clock timeout** per task — a worker past its budget is
  killed, not waited on;
* a **heartbeat watchdog** — workers touch a heartbeat file from a
  daemon thread, so a worker that stops beating is killed as *dead*
  long before its wall-clock budget, while a slow-but-alive worker is
  left to finish;
* **bounded retries** with exponential backoff and deterministic
  jitter derived from the task fingerprint, so two campaigns over the
  same tasks retry on the identical schedule;
* an **append-only JSONL journal** (:mod:`repro.runner.journal`)
  recording every attempt, so a killed campaign resumes by replaying
  the journal and re-running only tasks without an ``ok`` entry.

A campaign that ends with failures still returns a complete
:class:`CampaignReport` — per-task status, error-taxonomy counts,
retries used, wall clock — flagged ``degraded`` instead of raising.
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.experiments import task_fingerprint
from repro.resilience.faults import FaultInjector
from repro.runner.journal import (
    Journal,
    completed_fingerprints,
    make_entry,
    scan_journal,
)
from repro.runner.tasks import CampaignTask


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff + deterministic jitter.

    Attributes:
        max_retries: Extra attempts after the first (0 disables retry).
        backoff_base_s: Delay before the first retry.
        backoff_factor: Multiplier per subsequent retry.
        jitter_frac: Fraction of the delay added as jitter; the jitter
            is drawn from ``random.Random(f"{fingerprint}:{attempt}")``
            so it is reproducible, not synchronized across tasks.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.25
    backoff_factor: float = 2.0
    jitter_frac: float = 0.5

    def delay_s(self, fingerprint: str, attempt: int) -> float:
        """Backoff before retry number *attempt* (1-based)."""
        base = self.backoff_base_s * self.backoff_factor ** max(0, attempt - 1)
        rng = random.Random(f"{fingerprint}:{attempt}")
        return base * (1.0 + self.jitter_frac * rng.random())


@dataclass
class CampaignConfig:
    """Knobs for one campaign run (CLI: ``repro sweep``)."""

    workers: int = 2
    task_timeout_s: float = 300.0
    heartbeat_every_s: float = 0.2
    heartbeat_timeout_s: float = 10.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    journal_path: str = "campaign.jsonl"
    resume: bool = False
    scratch_dir: Optional[str] = None
    injector: Optional[FaultInjector] = None
    poll_interval_s: float = 0.02
    kill_grace_s: float = 1.0
    oracle_mode: str = "sample"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.task_timeout_s <= 0:
            raise ValueError("task_timeout_s must be positive")
        if self.heartbeat_timeout_s <= self.heartbeat_every_s:
            raise ValueError(
                "heartbeat_timeout_s must exceed heartbeat_every_s"
            )


@dataclass
class CampaignReport:
    """Degraded-but-complete summary of a campaign.

    ``degraded`` means the campaign finished but at least one task
    exhausted its retry budget; the per-task entries say which and why.
    """

    tasks: List[Dict[str, Any]] = field(default_factory=list)
    counts: Dict[str, int] = field(default_factory=dict)
    taxonomy: Dict[str, int] = field(default_factory=dict)
    retries_used: int = 0
    wall_clock_s: float = 0.0
    degraded: bool = False
    degraded_solves: int = 0
    fallback_solves: int = 0
    journal_path: str = ""
    resumed_ok: int = 0
    torn_journal_lines: int = 0
    corrupt_journal_lines: int = 0
    stale_resume: int = 0
    oracle_checks: int = 0
    oracle_violations: int = 0

    @property
    def ok(self) -> bool:
        """True when every task (fresh or resumed) ended ``ok``."""
        return not self.degraded

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tasks": list(self.tasks),
            "counts": dict(self.counts),
            "taxonomy": dict(self.taxonomy),
            "retries_used": self.retries_used,
            "wall_clock_s": self.wall_clock_s,
            "degraded": self.degraded,
            "degraded_solves": self.degraded_solves,
            "fallback_solves": self.fallback_solves,
            "journal_path": self.journal_path,
            "resumed_ok": self.resumed_ok,
            "torn_journal_lines": self.torn_journal_lines,
            "corrupt_journal_lines": self.corrupt_journal_lines,
            "stale_resume": self.stale_resume,
            "oracle_checks": self.oracle_checks,
            "oracle_violations": self.oracle_violations,
        }


@dataclass
class _Attempt:
    """Runtime state of one launched worker."""

    task: CampaignTask
    attempt: int
    proc: subprocess.Popen
    result_path: Path
    heartbeat_path: Path
    started_mono: float
    deadline_mono: float


def _solver_meta_counts(node: Any) -> Tuple[int, int]:
    """Count (degraded, fallback) solver-info dicts nested in a result.

    The thermal experiments attach ``{"residual", "method", "degraded"}``
    dicts (see :meth:`ThermalSolution.solver_info`); surfacing them here
    is what keeps a fallback-ladder run visible in campaign reports
    instead of silently blending with exact solves.
    """
    degraded = fallback = 0
    if isinstance(node, dict):
        if {"residual", "method", "degraded"} <= set(node):
            if node.get("degraded"):
                degraded += 1
            if str(node.get("method", "lu")) != "lu":
                fallback += 1
        for value in node.values():
            d, f = _solver_meta_counts(value)
            degraded += d
            fallback += f
    elif isinstance(node, (list, tuple)):
        for value in node:
            d, f = _solver_meta_counts(value)
            degraded += d
            fallback += f
    return degraded, fallback


def _kill(proc: subprocess.Popen, grace_s: float) -> None:
    """Terminate, then kill after *grace_s*; always reaps the child."""
    if proc.poll() is not None:
        return
    proc.terminate()
    try:
        proc.wait(timeout=grace_s)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()


class CampaignRunner:
    """Drives one campaign; see module docstring for the contract."""

    def __init__(self, config: Optional[CampaignConfig] = None) -> None:
        self.config = config or CampaignConfig()

    # -- worker lifecycle ----------------------------------------------------

    def _launch(self, task: CampaignTask, attempt: int,
                scratch: Path) -> _Attempt:
        config = self.config
        stem = f"{task.task_id.replace(os.sep, '_')}.a{attempt}"
        spec_path = scratch / f"{stem}.spec.json"
        result_path = scratch / f"{stem}.result.json"
        heartbeat_path = scratch / f"{stem}.heartbeat"

        chaos = None
        if config.injector is not None:
            chaos = config.injector.worker_fault(task.task_id, attempt)
        spec = dict(task.to_spec())
        spec.update(
            result_path=str(result_path),
            heartbeat_path=str(heartbeat_path),
            heartbeat_every_s=config.heartbeat_every_s,
            chaos=chaos,
            chaos_seed=(
                config.injector.seed if config.injector is not None else 0
            ),
            oracle_mode=config.oracle_mode,
            sys_path=[p for p in sys.path if p],
        )
        spec_path.write_text(json.dumps(spec), encoding="utf-8")
        result_path.unlink(missing_ok=True)
        heartbeat_path.touch()  # baseline mtime: launch time

        env = dict(os.environ)
        package_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.runner.worker", str(spec_path)],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        now = time.monotonic()
        return _Attempt(
            task=task,
            attempt=attempt,
            proc=proc,
            result_path=result_path,
            heartbeat_path=heartbeat_path,
            started_mono=now,
            deadline_mono=now + config.task_timeout_s,
        )

    def _collect_exited(self, run: _Attempt) -> Dict[str, Any]:
        """Attempt outcome for a worker that exited on its own."""
        returncode = run.proc.returncode
        elapsed = time.monotonic() - run.started_mono
        task = run.task
        common = dict(
            task_id=task.task_id,
            experiment_id=task.experiment_id,
            fingerprint=task.fingerprint,
            seed=task.seed,
            kwargs=task.kwargs,
            attempt=run.attempt,
            elapsed_s=round(elapsed, 4),
        )
        if not run.result_path.exists():
            return dict(
                common,
                status="crash",
                error=f"worker exited with code {returncode} "
                      f"and produced no result",
                error_type="WorkerCrash",
            )
        try:
            payload = json.loads(run.result_path.read_text(encoding="utf-8"))
            if not isinstance(payload, dict) or "ok" not in payload:
                raise ValueError("result payload missing 'ok'")
        except (ValueError, OSError) as exc:
            return dict(
                common,
                status="corrupt-result",
                error=f"unreadable worker result: {exc}",
                error_type="CorruptResult",
            )
        if payload["ok"]:
            return dict(
                common,
                status="ok",
                result=payload.get("result", {}),
                oracles=payload.get("oracles") or {},
            )
        return dict(
            common,
            status="error",
            error=payload.get("error"),
            error_type=payload.get("error_type") or "Exception",
            oracles=payload.get("oracles") or {},
        )

    def _collect_killed(self, run: _Attempt, status: str,
                        why: str) -> Dict[str, Any]:
        _kill(run.proc, self.config.kill_grace_s)
        task = run.task
        return dict(
            task_id=task.task_id,
            experiment_id=task.experiment_id,
            fingerprint=task.fingerprint,
            seed=task.seed,
            kwargs=task.kwargs,
            attempt=run.attempt,
            elapsed_s=round(time.monotonic() - run.started_mono, 4),
            status=status,
            error=why,
            error_type="WorkerTimeout" if status == "timeout" else "WorkerDead",
        )

    def _check_running(self, run: _Attempt) -> Optional[Dict[str, Any]]:
        """Poll one worker; an attempt-outcome dict once it is over."""
        if run.proc.poll() is not None:
            return self._collect_exited(run)
        now = time.monotonic()
        if now >= run.deadline_mono:
            return self._collect_killed(
                run, "timeout",
                f"exceeded wall-clock budget of "
                f"{self.config.task_timeout_s:g}s; killed",
            )
        try:
            beat_age = time.time() - run.heartbeat_path.stat().st_mtime
        except OSError:
            beat_age = now - run.started_mono
        if beat_age > self.config.heartbeat_timeout_s:
            return self._collect_killed(
                run, "worker-dead",
                f"no heartbeat for {beat_age:.1f}s "
                f"(limit {self.config.heartbeat_timeout_s:g}s); killed",
            )
        return None

    @staticmethod
    def _entry_is_stale(entry: Dict[str, Any]) -> bool:
        """A journaled-ok line whose fingerprint belies its own inputs.

        The resume index is keyed on the *stored* fingerprint, so a line
        whose ``fingerprint`` field no longer matches a recomputation
        over its own recorded ``(experiment_id, kwargs, seed)`` would be
        trusted for a task it never actually ran.  Detect and re-run.
        """
        expected = task_fingerprint(
            entry.get("experiment_id", ""),
            entry.get("kwargs") or {},
            entry.get("seed"),
        )
        return expected != entry.get("fingerprint")

    # -- campaign loop -------------------------------------------------------

    def run(self, tasks: Sequence[CampaignTask]) -> CampaignReport:
        config = self.config
        started = time.monotonic()
        seen: set = set()
        for task in tasks:
            if task.task_id in seen:
                raise ValueError(f"duplicate task id {task.task_id!r}")
            seen.add(task.task_id)

        report = CampaignReport(journal_path=str(config.journal_path))
        resumed: Dict[str, Dict[str, Any]] = {}
        if config.resume:
            entries, torn, crc_failed = scan_journal(config.journal_path)
            report.torn_journal_lines = torn
            report.corrupt_journal_lines = crc_failed
            resumed = completed_fingerprints(entries)

        #: (task, attempt, eligible_at_monotonic) waiting to launch.
        pending: List[Tuple[CampaignTask, int, float]] = []
        for task in tasks:
            done = resumed.get(task.fingerprint)
            if done is not None and not self._entry_is_stale(done):
                report.resumed_ok += 1
                report.tasks.append(dict(done, status="ok", resumed=True))
            else:
                if done is not None:
                    # Journaled-ok entry whose stored fingerprint does
                    # not match its own recorded inputs: the line was
                    # edited or corrupted after writing.  Re-run rather
                    # than resume from untrustworthy state.
                    report.stale_resume += 1
                pending.append((task, 0, started))

        running: List[_Attempt] = []
        final_by_task: Dict[str, Dict[str, Any]] = {}
        scratch_ctx = None
        if config.scratch_dir is None:
            scratch_ctx = tempfile.TemporaryDirectory(prefix="repro-sweep-")
            scratch = Path(scratch_ctx.name)
        else:
            scratch = Path(config.scratch_dir)
            scratch.mkdir(parents=True, exist_ok=True)

        journal = Journal(config.journal_path)
        try:
            while pending or running:
                now = time.monotonic()
                pending.sort(key=lambda item: item[2])
                while (len(running) < config.workers and pending
                       and pending[0][2] <= now):
                    task, attempt, _ = pending.pop(0)
                    running.append(self._launch(task, attempt, scratch))

                still_running: List[_Attempt] = []
                for run in running:
                    outcome = self._check_running(run)
                    if outcome is None:
                        still_running.append(run)
                        continue
                    self._record(outcome, run.task, journal, report,
                                 pending, final_by_task)
                running = still_running
                if pending or running:
                    time.sleep(config.poll_interval_s)
        except BaseException:
            for run in running:
                _kill(run.proc, 0.2)
            raise
        finally:
            journal.close()
            if scratch_ctx is not None:
                scratch_ctx.cleanup()

        for task in tasks:
            entry = final_by_task.get(task.task_id)
            if entry is not None:
                report.tasks.append(entry)
        report.counts = {
            "ok": sum(1 for t in report.tasks if t["status"] == "ok"),
            "failed": sum(1 for t in report.tasks if t["status"] != "ok"),
            "skipped": report.resumed_ok,
        }
        report.degraded = report.counts["failed"] > 0
        for entry in report.tasks:
            d, f = _solver_meta_counts(entry.get("result", {}))
            report.degraded_solves += d
            report.fallback_solves += f
            if entry.get("resumed"):
                # Oracle tallies belong to the run that produced them: a
                # resumed-ok task's violations were surfaced (and its
                # campaign degraded) back then, and its journaled result
                # already came off the trusted reference path — they do
                # not re-degrade this campaign.
                continue
            oracles = entry.get("oracles") or {}
            report.oracle_checks += int(oracles.get("total_checks", 0))
            report.oracle_violations += len(oracles.get("violations", []))
        # An oracle violation means some result came off an untrusted
        # fast path; the campaign completed but is not clean.  (Stale or
        # CRC-failed journal lines are *not* degrading on their own —
        # the affected tasks were re-run fresh — but stay on the report.)
        if report.oracle_violations:
            report.degraded = True
        report.wall_clock_s = round(time.monotonic() - started, 4)
        return report

    def _record(
        self,
        outcome: Dict[str, Any],
        task: CampaignTask,
        journal: Journal,
        report: CampaignReport,
        pending: List[Tuple[CampaignTask, int, float]],
        final_by_task: Dict[str, Dict[str, Any]],
    ) -> None:
        """Journal one attempt outcome; schedule a retry or finalize."""
        config = self.config
        failed = outcome["status"] != "ok"
        retryable = failed and outcome["attempt"] < config.retry.max_retries
        entry = make_entry(
            task_id=outcome["task_id"],
            experiment_id=outcome["experiment_id"],
            fingerprint=outcome["fingerprint"],
            status=outcome["status"],
            attempt=outcome["attempt"],
            final=not retryable,
            seed=outcome.get("seed"),
            kwargs=outcome.get("kwargs"),
            elapsed_s=outcome.get("elapsed_s", 0.0),
            error=outcome.get("error"),
            error_type=outcome.get("error_type"),
            result=outcome.get("result"),
            oracles=outcome.get("oracles"),
        )
        journal.append(entry)
        if failed:
            key = (outcome.get("error_type")
                   if outcome["status"] == "error"
                   else outcome["status"]) or outcome["status"]
            report.taxonomy[key] = report.taxonomy.get(key, 0) + 1
        if retryable:
            attempt = outcome["attempt"] + 1
            report.retries_used += 1
            delay = config.retry.delay_s(task.fingerprint, attempt)
            pending.append((task, attempt, time.monotonic() + delay))
        else:
            final = dict(entry)
            final["retries_used"] = outcome["attempt"]
            final_by_task[task.task_id] = final


def run_campaign(
    tasks: Sequence[CampaignTask],
    config: Optional[CampaignConfig] = None,
) -> CampaignReport:
    """Run *tasks* under supervision; never raises for task failures."""
    return CampaignRunner(config).run(tasks)
