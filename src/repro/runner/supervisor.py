"""Campaign configuration and report model (policy data, no loop).

Historically this module *was* the campaign runner; the loop now lives
in :mod:`repro.runner.scheduler` (task queue, lease table, retries,
journal authority) with execution delegated to pluggable
:mod:`repro.runner.backends`.  What remains here is the shared
vocabulary both halves speak:

* :class:`RetryPolicy` — bounded retry with deterministic jitter.
* :class:`CampaignConfig` — every knob of one campaign run, including
  which backend executes it (``local`` | ``inproc`` | ``nodes:N``) and
  the lease TTL that governs failover.
* :class:`CampaignReport` — the degraded-but-complete summary, now with
  per-backend accounting (executors lost, leases reclaimed, duplicate
  completions discarded, work stolen).

``CampaignRunner`` and :func:`run_campaign` are still importable from
here for compatibility; they resolve lazily to the scheduler so this
module never imports the machinery it configures.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.experiments import task_fingerprint
from repro.resilience.faults import FaultInjector


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff + deterministic jitter.

    Attributes:
        max_retries: Extra attempts after the first (0 disables retry).
        backoff_base_s: Delay before the first retry.
        backoff_factor: Multiplier per subsequent retry.
        jitter_frac: Fraction of the delay added as jitter; the jitter
            is drawn from ``random.Random(f"{fingerprint}:{attempt}")``
            so it is reproducible, not synchronized across tasks.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.25
    backoff_factor: float = 2.0
    jitter_frac: float = 0.5

    def delay_s(self, fingerprint: str, attempt: int) -> float:
        """Backoff before retry number *attempt* (1-based)."""
        base = self.backoff_base_s * self.backoff_factor ** max(0, attempt - 1)
        rng = random.Random(f"{fingerprint}:{attempt}")
        return base * (1.0 + self.jitter_frac * rng.random())


@dataclass
class CampaignConfig:
    """Knobs for one campaign run (CLI: ``repro sweep``).

    ``backend`` picks the executor backend: ``local`` (subprocess pool),
    ``inproc`` (synchronous, deterministic), or ``nodes:N`` (N node
    processes over a control socket).  ``workers`` is the concurrency
    *per executor*; a ``nodes:3`` campaign with ``workers=2`` runs up to
    6 tasks at once.  ``lease_ttl_s`` is how long a claimed task may go
    without its executor proving itself alive before the scheduler
    reclaims the lease and lets a surviving executor steal the work;
    ``lease_reclaim_budget`` bounds how many times one task may be
    reclaimed before it is finalized as failed.

    The last three knobs exist for deterministic simulation
    (:mod:`repro.dst`): ``clock`` swaps the scheduler's time source
    (any object with ``monotonic()`` and ``sleep(seconds)``; None means
    the real monotonic clock), ``event_hook`` receives
    ``(kind, payload)`` after every scheduler decision (claim, outcome,
    reclaim, journal append, ...), and ``journal_factory`` builds the
    journal from its path (None means :class:`repro.runner.journal.
    Journal`) so a simulated journal can tear writes on purpose.
    """

    workers: int = 2
    task_timeout_s: float = 300.0
    heartbeat_every_s: float = 0.2
    heartbeat_timeout_s: float = 10.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    journal_path: str = "campaign.jsonl"
    resume: bool = False
    scratch_dir: Optional[str] = None
    injector: Optional[FaultInjector] = None
    poll_interval_s: float = 0.02
    kill_grace_s: float = 1.0
    oracle_mode: str = "sample"
    backend: str = "local"
    lease_ttl_s: float = 15.0
    lease_reclaim_budget: int = 3
    workers_per_node: int = 0  # 0: inherit ``workers``
    clock: Optional[Any] = None
    event_hook: Optional[Callable[[str, Dict[str, Any]], None]] = None
    journal_factory: Optional[Callable[[str], Any]] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.task_timeout_s <= 0:
            raise ValueError("task_timeout_s must be positive")
        if self.heartbeat_timeout_s <= self.heartbeat_every_s:
            raise ValueError(
                "heartbeat_timeout_s must exceed heartbeat_every_s"
            )
        if self.lease_ttl_s <= 0:
            raise ValueError("lease_ttl_s must be positive")
        if self.lease_reclaim_budget < 0:
            raise ValueError("lease_reclaim_budget must be >= 0")
        # Fail on a malformed backend spec at config time, not after
        # the campaign scratch dir is already on disk.
        from repro.runner.backends import parse_backend_spec

        parse_backend_spec(self.backend)


@dataclass
class CampaignReport:
    """Degraded-but-complete summary of a campaign.

    ``degraded`` means the campaign finished but something was not
    clean: a task exhausted its retry budget, an oracle caught a
    violation, or an executor died mid-campaign (even when surviving
    executors stole and finished all of its work).  The per-task
    entries and the backend accounting say which and why.
    """

    tasks: List[Dict[str, Any]] = field(default_factory=list)
    counts: Dict[str, int] = field(default_factory=dict)
    taxonomy: Dict[str, int] = field(default_factory=dict)
    retries_used: int = 0
    wall_clock_s: float = 0.0
    degraded: bool = False
    degraded_solves: int = 0
    fallback_solves: int = 0
    journal_path: str = ""
    resumed_ok: int = 0
    torn_journal_lines: int = 0
    corrupt_journal_lines: int = 0
    stale_resume: int = 0
    oracle_checks: int = 0
    oracle_violations: int = 0
    backend: str = "local"
    executors_lost: int = 0
    leases_reclaimed: int = 0
    duplicate_completions: int = 0
    fenced_completions: int = 0
    work_stolen: int = 0
    per_executor: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every task (fresh or resumed) ended ``ok``."""
        return not self.degraded

    def backend_tallies(self) -> Dict[str, Any]:
        """Grouped backend/lease-table accounting for this campaign.

        The machine-readable block ``repro sweep --json`` emits and the
        service ``/stats`` endpoint aggregates: executors lost mid-run,
        leases reclaimed after missed heartbeats, tasks stolen by
        surviving executors, and duplicate completions discarded when a
        presumed-dead executor answered after all.
        """
        return {
            "backend": self.backend,
            "executors_lost": self.executors_lost,
            "leases_reclaimed": self.leases_reclaimed,
            "work_stolen": self.work_stolen,
            "duplicates_discarded": self.duplicate_completions,
            "fenced_discarded": self.fenced_completions,
            "per_executor": {
                executor: dict(counts)
                for executor, counts in self.per_executor.items()
            },
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tasks": list(self.tasks),
            "counts": dict(self.counts),
            "taxonomy": dict(self.taxonomy),
            "retries_used": self.retries_used,
            "wall_clock_s": self.wall_clock_s,
            "degraded": self.degraded,
            "degraded_solves": self.degraded_solves,
            "fallback_solves": self.fallback_solves,
            "journal_path": self.journal_path,
            "resumed_ok": self.resumed_ok,
            "torn_journal_lines": self.torn_journal_lines,
            "corrupt_journal_lines": self.corrupt_journal_lines,
            "stale_resume": self.stale_resume,
            "oracle_checks": self.oracle_checks,
            "oracle_violations": self.oracle_violations,
            "backend": self.backend,
            "executors_lost": self.executors_lost,
            "leases_reclaimed": self.leases_reclaimed,
            "duplicate_completions": self.duplicate_completions,
            "fenced_completions": self.fenced_completions,
            "work_stolen": self.work_stolen,
            "per_executor": {
                executor: dict(counts)
                for executor, counts in self.per_executor.items()
            },
            "backend_tallies": self.backend_tallies(),
        }


def solver_meta_counts(node: Any) -> Tuple[int, int]:
    """Count (degraded, fallback) solver-info dicts nested in a result.

    The thermal experiments attach ``{"residual", "method", "degraded"}``
    dicts (see :meth:`ThermalSolution.solver_info`); surfacing them here
    is what keeps a fallback-ladder run visible in campaign reports
    instead of silently blending with exact solves.
    """
    degraded = fallback = 0
    if isinstance(node, dict):
        if {"residual", "method", "degraded"} <= set(node):
            if node.get("degraded"):
                degraded += 1
            if str(node.get("method", "lu")) != "lu":
                fallback += 1
        for value in node.values():
            d, f = solver_meta_counts(value)
            degraded += d
            fallback += f
    elif isinstance(node, (list, tuple)):
        for value in node:
            d, f = solver_meta_counts(value)
            degraded += d
            fallback += f
    return degraded, fallback


def entry_is_stale(entry: Dict[str, Any]) -> bool:
    """A journaled-ok line whose fingerprint belies its own inputs.

    The resume index is keyed on the *stored* fingerprint, so a line
    whose ``fingerprint`` field no longer matches a recomputation over
    its own recorded ``(experiment_id, kwargs, seed)`` would be trusted
    for a task it never actually ran.  Detect and re-run.
    """
    expected = task_fingerprint(
        entry.get("experiment_id", ""),
        entry.get("kwargs") or {},
        entry.get("seed"),
    )
    return expected != entry.get("fingerprint")


#: Names resolved lazily from the scheduler for compatibility: the
#: campaign loop moved there, but ``from repro.runner.supervisor import
#: run_campaign`` keeps working.
_SCHEDULER_EXPORTS = ("CampaignRunner", "Scheduler", "run_campaign")


def __getattr__(name: str):
    if name in _SCHEDULER_EXPORTS:
        import importlib

        module = importlib.import_module("repro.runner.scheduler")
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_SCHEDULER_EXPORTS))
