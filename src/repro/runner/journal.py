"""Append-only JSONL result journal for resumable campaigns.

One line per *attempt outcome*, written with a single ``write()`` on a
file opened in append mode and fsynced, so a campaign killed mid-write
leaves at most one torn trailing line — which :func:`read_journal`
tolerates and reports instead of refusing the whole file.  Resume
(:func:`completed_fingerprints`) replays the journal and skips any task
whose exact fingerprint (experiment id + kwargs + seed) already has an
``ok`` entry; failed tasks are re-run.

Every line written carries a crc32 over its canonical JSON encoding
(the ``crc`` key, see :mod:`repro.oracles.integrity`), so a bit flipped
*inside* a line — which still parses as valid JSON — is detected on
read instead of silently resuming from a corrupted result.  CRC-failed
lines are dropped and counted (:func:`scan_journal`), which makes the
supervisor re-run the affected task.  Lines without a ``crc`` key
(pre-oracles journals) are accepted unchecked.
"""

from __future__ import annotations

import io
import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.oracles.integrity import attach_crc, verify_entry_crc

#: Journal line format version; bump on incompatible schema changes.
JOURNAL_VERSION = 1

#: Attempt outcomes a journal line may carry.  ``ok`` and ``error`` come
#: from inside the worker (the experiment ran to a verdict); the rest
#: are supervisor verdicts about the worker itself.
STATUSES = (
    "ok",            # experiment completed, result captured
    "error",         # experiment raised; structured error captured
    "crash",         # worker exited abnormally / produced no result
    "timeout",       # worker exceeded the wall-clock budget and was killed
    "worker-dead",   # heartbeat stopped; worker killed by the watchdog
    "corrupt-result",  # worker's result file was unreadable garbage
    "executor-lost",  # executor holding the lease died/stalled; reclaimed
)

PathLike = Union[str, Path]


def make_entry(
    task_id: str,
    experiment_id: str,
    fingerprint: str,
    status: str,
    attempt: int,
    final: bool,
    *,
    seed: Optional[int] = None,
    kwargs: Optional[Dict[str, Any]] = None,
    elapsed_s: float = 0.0,
    error: Optional[str] = None,
    error_type: Optional[str] = None,
    result: Optional[Dict[str, Any]] = None,
    oracles: Optional[Dict[str, Any]] = None,
    executor: Optional[str] = None,
    duplicate: bool = False,
    lease_epoch: Optional[int] = None,
    fenced: bool = False,
) -> Dict[str, Any]:
    """Build one schema-checked journal line.

    ``executor`` records which executor produced the attempt (backend
    accounting/forensics).  ``duplicate=True`` marks an audit line for a
    completion that arrived *after* another executor's ``ok`` already
    won the fingerprint — journaled for the record, excluded from
    resume (see :func:`completed_fingerprints`) and aggregation.
    ``lease_epoch`` is the fencing token the attempt ran under (the
    grant's position in the fingerprint's grant history); ``fenced=True``
    marks an audit line for a completion the scheduler *rejected*
    because its lease epoch was at or below the last reclaimed epoch —
    a zombie executor's late write, recorded but never resumed from.
    """
    if status not in STATUSES:
        raise ValueError(f"unknown journal status {status!r}; known: {STATUSES}")
    entry = {
        "v": JOURNAL_VERSION,
        "task_id": task_id,
        "experiment_id": experiment_id,
        "fingerprint": fingerprint,
        "seed": seed,
        "kwargs": dict(kwargs or {}),
        "status": status,
        "attempt": attempt,
        "final": final,
        "elapsed_s": elapsed_s,
        "error": error,
        "error_type": error_type,
        "result": result if result is not None else {},
    }
    if executor:
        entry["executor"] = executor
    if duplicate:
        entry["duplicate"] = True
    if lease_epoch is not None:
        entry["lease_epoch"] = int(lease_epoch)
    if fenced:
        entry["fenced"] = True
    if oracles:
        entry["oracles"] = oracles
    return entry


class Journal:
    """Single-writer append-only JSONL journal.

    Only the supervisor writes the journal (workers hand results back
    through per-task scratch files), so append-mode writes need no lock.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self._handle: Optional[io.TextIOWrapper] = None

    def append(self, entry: Dict[str, Any]) -> None:
        """Append one entry as a single atomic-enough write + fsync.

        The entry's per-line crc32 is (re)computed here so the stored
        CRC always covers exactly the bytes written.
        """
        line = json.dumps(attach_crc(entry), sort_keys=True, default=str)
        if "\n" in line:  # defensive: JSONL invariant
            line = line.replace("\n", " ")
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            existed = self.path.exists()
            # A run killed mid-write leaves a torn final line with no
            # newline; appending straight after it would weld this entry
            # onto the torn tail and lose BOTH (the merged line parses as
            # neither).  Terminate the tail first so only the torn line
            # is sacrificed.
            self._repair_torn_tail()
            # long-lived handle by design; closed in close()
            self._handle = open(  # noqa: SIM115
                self.path, "a", encoding="utf-8"
            )
            if not existed:
                # fsyncing the file persists its *bytes*; whether the
                # file has a name at all lives in the directory.  A
                # crash between create and directory flush loses the
                # whole journal despite every per-line fsync.
                self._fsync_dir(self.path.parent)
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    @staticmethod
    def _fsync_dir(directory: Path) -> None:
        """Flush a directory entry; best-effort where unsupported."""
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:
            return  # e.g. platforms that cannot open directories
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def _repair_torn_tail(self) -> None:
        """Newline-terminate the file if its last byte is not ``\\n``."""
        try:
            size = self.path.stat().st_size
        except FileNotFoundError:
            return
        if size == 0:
            return
        with open(self.path, "rb+") as handle:
            handle.seek(-1, os.SEEK_END)
            if handle.read(1) != b"\n":
                handle.write(b"\n")
                handle.flush()
                os.fsync(handle.fileno())
                # The repair rewrote the tail; make sure the directory
                # entry (size/metadata journaling on some filesystems)
                # is durable too before new lines land after it.
                self._fsync_dir(self.path.parent)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def scan_journal(
    path: PathLike,
) -> Tuple[List[Dict[str, Any]], int, int]:
    """Read every verifiable entry; returns ``(entries, torn, crc_failed)``.

    Unparseable lines (a kill mid-append, disk-full truncation) are
    counted as *torn*, not fatal: a resumable journal must survive
    exactly the failures it exists to record.  Entries from a future
    format version are also skipped and counted as torn.  Lines that
    parse but fail their per-line CRC — a bit flip *inside* the JSON —
    are dropped and counted as *crc_failed* so the caller re-runs the
    task instead of trusting a corrupted record.
    """
    entries: List[Dict[str, Any]] = []
    torn = 0
    crc_failed = 0
    path = Path(path)
    if not path.exists():
        return entries, torn, crc_failed
    # errors="replace": a bit flip can leave bytes that are not valid
    # UTF-8; the replacement char then fails JSON parsing (torn) or the
    # per-line CRC (crc_failed) for that one line instead of aborting
    # the whole scan with UnicodeDecodeError.
    with open(path, encoding="utf-8", errors="replace") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                torn += 1
                continue
            if not isinstance(entry, dict) or "fingerprint" not in entry:
                torn += 1
                continue
            if entry.get("v", 0) > JOURNAL_VERSION:
                torn += 1
                continue
            if not verify_entry_crc(entry):
                crc_failed += 1
                continue
            entries.append(entry)
    return entries, torn, crc_failed


def read_journal(path: PathLike) -> Tuple[List[Dict[str, Any]], int]:
    """Back-compat wrapper over :func:`scan_journal`: ``(entries, torn)``.

    CRC-failed lines are silently dropped here; callers that must
    distinguish corruption from tearing use :func:`scan_journal`.
    """
    entries, torn, _ = scan_journal(path)
    return entries, torn


def completed_fingerprints(
    entries: Iterable[Dict[str, Any]],
) -> Dict[str, Dict[str, Any]]:
    """Map fingerprint -> winning ``ok`` entry (resume skips these).

    Duplicate-completion audit lines (``duplicate: true``) never win:
    the first journaled ``ok`` is the result of record, on resume as
    during the live campaign.  Fenced audit lines (``fenced: true``)
    never win either — they record a zombie executor's rejected write,
    not a result.
    """
    done: Dict[str, Dict[str, Any]] = {}
    for entry in entries:
        if (
            entry.get("status") == "ok"
            and not entry.get("duplicate")
            and not entry.get("fenced")
        ):
            done.setdefault(entry["fingerprint"], entry)
    return done
