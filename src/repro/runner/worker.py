"""Worker process entry point: ``python -m repro.runner.worker <spec.json>``.

The supervisor never shares memory with a worker.  Everything crosses
the boundary through three files named in the spec:

* **spec** (read) — the task: experiment id, kwargs, seed, registry
  import spec, chaos directive.
* **heartbeat** (written) — touched every ``heartbeat_every_s`` by a
  daemon thread started *before* the heavy simulation imports, so the
  supervisor's watchdog can tell "still importing scipy" from "dead".
* **result** (written once) — the JSON-serialized
  :class:`~repro.core.experiments.ExperimentOutcome`, written to a temp
  file and renamed, so the supervisor either sees a complete result or
  none at all.

Module-level imports are stdlib-only on purpose: heartbeats must start
within milliseconds of process launch, long before ``repro.core`` pulls
in numpy/scipy.

Chaos directives (from :meth:`repro.resilience.faults.FaultInjector
.worker_fault`) make the worker misbehave on demand so campaign tests
can prove the supervisor survives it:

* ``crash`` — exit abruptly with no result, like a segfault or OOM kill.
* ``hang`` — spin forever *with* heartbeats: only the wall-clock
  timeout can end it.
* ``stall`` — spin forever *without* heartbeats: the watchdog should
  kill it long before the wall-clock budget.
* ``corrupt-result`` — report success but write garbage where the
  result should be.
* ``flip-operator`` — flip one bit in the next cached thermal operator
  the experiment reuses; the run *completes* but the oracle layer must
  detect it and mark the result degraded.
"""

from __future__ import annotations

import importlib
import json
import os
import sys
import threading
import time
from typing import Any, Dict

#: Exit code for an injected crash (distinctive in supervisor logs).
CRASH_EXIT_CODE = 23


def _start_heartbeat(path: str, every_s: float) -> threading.Event:
    """Touch *path* every *every_s* seconds until the event is set."""
    stop = threading.Event()

    def beat() -> None:
        while not stop.is_set():
            try:
                with open(path, "a"):
                    os.utime(path, None)
            except OSError:
                pass  # scratch dir vanished; the supervisor will notice
            stop.wait(every_s)

    thread = threading.Thread(target=beat, name="heartbeat", daemon=True)
    thread.start()
    return stop


def _write_result(path: str, payload: Dict[str, Any]) -> None:
    """Write *payload* atomically: temp file + fsync + rename."""
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, default=str)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _resolve_registry(registry_spec: str):
    module_name, _, attribute = registry_spec.partition(":")
    module = importlib.import_module(module_name)
    return getattr(module, attribute)


def run_spec(spec: Dict[str, Any]) -> int:
    """Execute one task spec; returns the process exit code."""
    for extra in spec.get("sys_path", []):
        if extra not in sys.path:
            sys.path.insert(0, extra)

    heartbeat_stop = _start_heartbeat(
        spec["heartbeat_path"], float(spec.get("heartbeat_every_s", 0.2))
    )

    chaos = spec.get("chaos")
    if chaos == "crash":
        os._exit(CRASH_EXIT_CODE)
    if chaos in ("hang", "stall"):
        if chaos == "stall":
            heartbeat_stop.set()
        while True:  # killed by the supervisor (timeout or watchdog)
            time.sleep(0.1)
    if chaos == "corrupt-result":
        with open(spec["result_path"], "w", encoding="utf-8") as handle:
            handle.write('{"ok": tru')  # torn JSON, as a dying disk writes
        return 0

    # Heavy imports only now, with heartbeats already flowing.
    from repro.core.experiments import run_experiment
    from repro.oracles.config import set_oracle_mode

    if spec.get("oracle_mode"):
        set_oracle_mode(spec["oracle_mode"])
    if chaos == "flip-operator":
        # Arm a one-shot bit flip against the next cached thermal
        # operator this worker reuses: the strict/sample oracle must
        # catch it (detection is what the chaos CI job asserts).
        from repro.resilience.faults import FaultInjector
        from repro.thermal import solver as thermal_solver

        injector = FaultInjector(seed=int(spec.get("chaos_seed", 0)))
        thermal_solver.arm_operator_corruption(
            lambda op: injector.flip_array_bits(op.matrix.data, n_flips=1)
        )

    registry = _resolve_registry(
        spec.get("registry_spec", "repro.core.experiments:REGISTRY")
    )
    outcome = run_experiment(
        spec["experiment_id"],
        strict=False,
        registry=registry,
        seed=spec.get("seed"),
        **spec.get("kwargs", {}),
    )
    _write_result(
        spec["result_path"],
        {
            "schema": 1,
            "task_id": spec.get("task_id", spec["experiment_id"]),
            "ok": outcome.ok,
            "result": outcome.result,
            "error": outcome.error,
            "error_type": outcome.error_type,
            "partial": outcome.partial,
            "elapsed_s": outcome.elapsed_s,
            "seed": outcome.seed,
            "fingerprint": outcome.fingerprint,
            "oracles": outcome.oracles,
        },
    )
    heartbeat_stop.set()
    return 0


def main(argv) -> int:
    if len(argv) != 1:
        print("usage: python -m repro.runner.worker <spec.json>",
              file=sys.stderr)
        return 2
    with open(argv[0], encoding="utf-8") as handle:
        spec = json.load(handle)
    return run_spec(spec)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main(sys.argv[1:]))
