"""Supervised pool of ``repro.runner.worker`` subprocesses.

This is the one place a worker subprocess is launched, watched, and
reaped.  Both executor backends that own real workers use it: the local
backend (:mod:`repro.runner.backends.local`) runs a pool inside the
scheduler process, and every node process (:mod:`repro.runner.node`)
runs its own pool on the far side of a control socket.  Module-level
imports are stdlib-only so the node entry point stays as cheap to start
as the worker itself.

Per worker it enforces:

* a **wall-clock timeout** — a worker past its budget is killed, not
  waited on;
* a **heartbeat watchdog** — the worker touches a heartbeat file from a
  daemon thread; a worker whose heartbeat stops is killed as *dead*
  long before its wall-clock budget.

Liveness is judged **only on the monotonic clock**: the pool remembers
the last *observed change* of the heartbeat file's mtime and the
``time.monotonic()`` instant it noticed the change, and declares death
when too much monotonic time passes without a change.  Comparing
``time.time() - st_mtime`` (what the old supervisor did) misjudges a
healthy worker as dead across an NTP step backward on the filesystem's
clock, and misses a dead one across a step forward; on coarse-mtime
filesystems the raw difference is noise.  Watching mtime *transitions*
against a monotonic deadline is immune to both.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

#: Result-payload keys copied into an ``ok`` outcome.
_OK_KEYS = ("result", "oracles")


@dataclass
class WorkerHandle:
    """Runtime state of one launched worker subprocess."""

    key: str
    spec: Dict[str, Any]
    proc: subprocess.Popen
    result_path: Path
    heartbeat_path: Path
    started_mono: float
    deadline_mono: float
    #: Last heartbeat mtime observed (ns, raw value; only *changes*
    #: matter, never its distance to any clock).
    last_beat_mtime_ns: int
    #: Monotonic instant the mtime was last observed to change.
    last_beat_mono: float


def kill_process(proc: subprocess.Popen, grace_s: float) -> None:
    """Terminate, then kill after *grace_s*; always reaps the child."""
    if proc.poll() is not None:
        return
    proc.terminate()
    try:
        proc.wait(timeout=grace_s)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()


class WorkerPool:
    """Launches worker subprocesses from task specs and supervises them.

    Args:
        scratch: Directory for spec/result/heartbeat files.
        heartbeat_timeout_s: Monotonic seconds without an observed
            heartbeat-mtime change before a worker is declared dead.
        kill_grace_s: Grace between SIGTERM and SIGKILL when reaping.
    """

    def __init__(
        self,
        scratch: Path,
        heartbeat_timeout_s: float = 10.0,
        kill_grace_s: float = 1.0,
    ) -> None:
        self.scratch = Path(scratch)
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.kill_grace_s = kill_grace_s
        self._running: List[WorkerHandle] = []

    # -- launch --------------------------------------------------------------

    def launch(self, spec: Dict[str, Any], timeout_s: float) -> WorkerHandle:
        """Write *spec* to scratch and start one worker subprocess.

        The spec must already carry the task identity fields
        (``task_id``, ``experiment_id``, ``fingerprint``, ``seed``,
        ``kwargs``, ``attempt``); the pool adds the per-attempt file
        paths it owns (``result_path``, ``heartbeat_path``).
        """
        self.scratch.mkdir(parents=True, exist_ok=True)
        stem = (
            f"{str(spec['task_id']).replace(os.sep, '_')}"
            f".a{int(spec.get('attempt', 0))}"
        )
        if spec.get("delivery"):
            # An injected duplicate delivery of the same attempt must
            # not share scratch files with the original.
            stem += f".d{int(spec['delivery'])}"
        spec_path = self.scratch / f"{stem}.spec.json"
        result_path = self.scratch / f"{stem}.result.json"
        heartbeat_path = self.scratch / f"{stem}.heartbeat"
        spec = dict(
            spec,
            result_path=str(result_path),
            heartbeat_path=str(heartbeat_path),
        )
        spec_path.write_text(json.dumps(spec), encoding="utf-8")
        result_path.unlink(missing_ok=True)
        heartbeat_path.touch()  # baseline mtime: launch time

        env = dict(os.environ)
        package_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.runner.worker", str(spec_path)],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        now = time.monotonic()
        handle = WorkerHandle(
            key=stem,
            spec=spec,
            proc=proc,
            result_path=result_path,
            heartbeat_path=heartbeat_path,
            started_mono=now,
            deadline_mono=now + timeout_s,
            last_beat_mtime_ns=self._mtime_ns(heartbeat_path),
            last_beat_mono=now,
        )
        self._running.append(handle)
        return handle

    @staticmethod
    def _mtime_ns(path: Path) -> int:
        try:
            return path.stat().st_mtime_ns
        except OSError:
            return -1

    # -- polling -------------------------------------------------------------

    def poll(self) -> Tuple[List[Dict[str, Any]], int]:
        """Advance every worker; returns ``(outcomes, beats)``.

        *outcomes* are attempt-outcome dicts (see :meth:`_collect_exited`)
        for workers that finished — exited, timed out, or were killed by
        the watchdog — this call.  *beats* counts workers whose
        heartbeat advanced, so a backend can translate liveness into
        lease renewals.
        """
        outcomes: List[Dict[str, Any]] = []
        beats = 0
        still: List[WorkerHandle] = []
        for handle in self._running:
            outcome, beat = self._check(handle)
            beats += beat
            if outcome is None:
                still.append(handle)
            else:
                outcomes.append(outcome)
        self._running = still
        return outcomes, beats

    def _check(
        self, handle: WorkerHandle
    ) -> Tuple[Optional[Dict[str, Any]], int]:
        """Poll one worker: ``(outcome or None, heartbeat advanced?)``."""
        now = time.monotonic()
        beat = 0
        mtime_ns = self._mtime_ns(handle.heartbeat_path)
        if mtime_ns != handle.last_beat_mtime_ns:
            handle.last_beat_mtime_ns = mtime_ns
            handle.last_beat_mono = now
            beat = 1
        if handle.proc.poll() is not None:
            return self._collect_exited(handle), beat
        if now >= handle.deadline_mono:
            budget = handle.deadline_mono - handle.started_mono
            return self._collect_killed(
                handle, "timeout",
                f"exceeded wall-clock budget of {budget:g}s; killed",
            ), beat
        quiet_s = now - handle.last_beat_mono
        if quiet_s > self.heartbeat_timeout_s:
            return self._collect_killed(
                handle, "worker-dead",
                f"no heartbeat for {quiet_s:.1f}s "
                f"(limit {self.heartbeat_timeout_s:g}s); killed",
            ), beat
        return None, beat

    # -- outcome construction ------------------------------------------------

    def _common(self, handle: WorkerHandle) -> Dict[str, Any]:
        spec = handle.spec
        return dict(
            task_id=spec["task_id"],
            experiment_id=spec["experiment_id"],
            fingerprint=spec["fingerprint"],
            seed=spec.get("seed"),
            kwargs=spec.get("kwargs") or {},
            attempt=int(spec.get("attempt", 0)),
            elapsed_s=round(time.monotonic() - handle.started_mono, 4),
            lease_epoch=spec.get("lease_epoch"),
        )

    def _collect_exited(self, handle: WorkerHandle) -> Dict[str, Any]:
        """Attempt outcome for a worker that exited on its own."""
        common = self._common(handle)
        returncode = handle.proc.returncode
        if not handle.result_path.exists():
            return dict(
                common,
                status="crash",
                error=f"worker exited with code {returncode} "
                      f"and produced no result",
                error_type="WorkerCrash",
            )
        try:
            payload = json.loads(
                handle.result_path.read_text(encoding="utf-8")
            )
            if not isinstance(payload, dict) or "ok" not in payload:
                raise ValueError("result payload missing 'ok'")
        except (ValueError, OSError) as exc:
            return dict(
                common,
                status="corrupt-result",
                error=f"unreadable worker result: {exc}",
                error_type="CorruptResult",
            )
        if payload["ok"]:
            return dict(
                common,
                status="ok",
                result=payload.get("result", {}),
                oracles=payload.get("oracles") or {},
            )
        return dict(
            common,
            status="error",
            error=payload.get("error"),
            error_type=payload.get("error_type") or "Exception",
            oracles=payload.get("oracles") or {},
        )

    def _collect_killed(
        self, handle: WorkerHandle, status: str, why: str
    ) -> Dict[str, Any]:
        kill_process(handle.proc, self.kill_grace_s)
        return dict(
            self._common(handle),
            status=status,
            error=why,
            error_type=(
                "WorkerTimeout" if status == "timeout" else "WorkerDead"
            ),
        )

    # -- lifecycle -----------------------------------------------------------

    @property
    def running(self) -> int:
        """Number of live workers."""
        return len(self._running)

    def kill_all(self, grace_s: Optional[float] = None) -> None:
        """Reap every worker (campaign abort / shutdown)."""
        grace = self.kill_grace_s if grace_s is None else grace_s
        for handle in self._running:
            kill_process(handle.proc, grace)
        self._running = []
