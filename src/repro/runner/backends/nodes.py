"""Multi-process socket backend: N node processes, each a worker pool.

``--backend nodes:N`` spawns N ``python -m repro.runner.node``
processes and drives them over a JSON-lines control socket on
localhost.  Each node owns its own pool of worker subprocesses, its own
scratch directory, and its own life: SIGKILL a node and the scheduler
side of this backend sees the socket close, reports the executor dead,
and the scheduler immediately reclaims its leases for surviving nodes
to steal — the stand-in for a host dropping out of a multi-host sweep.

The backend is mechanism only.  It forwards task specs, translates node
heartbeats into ``renew`` events and node outcomes into ``outcome``
events, and reports executor death exactly once.  What any of that
*means* (retry, reclaim, duplicate) is the scheduler's call.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.runner.backends import Assignment, BackendEvent, ExecutorBackend
from repro.runner.pool import kill_process

#: How long start() waits for every node to dial in and say hello.
CONNECT_TIMEOUT_S = 15.0


@dataclass
class _NodeState:
    """Scheduler-side view of one node process."""

    node_id: str
    proc: subprocess.Popen
    conn: Optional[socket.socket] = None
    read_buffer: bytes = b""
    outstanding: int = 0
    pid: int = 0
    dead: bool = False
    dead_reason: str = ""
    dead_reported: bool = False
    chaos: Dict[str, Any] = field(default_factory=dict)


class NodesBackend(ExecutorBackend):
    """N independent node processes behind one control socket."""

    def __init__(self, config: Any, n_nodes: int) -> None:
        self.name = f"nodes:{n_nodes}"
        self.config = config
        self.n_nodes = n_nodes
        self._server: Optional[socket.socket] = None
        self._nodes: Dict[str, _NodeState] = {}

    # -- lifecycle -----------------------------------------------------------

    @property
    def _workers_per_node(self) -> int:
        return int(
            getattr(self.config, "workers_per_node", 0)
            or self.config.workers
        )

    def start(self, scratch: Path) -> None:
        scratch = Path(scratch)
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.bind(("127.0.0.1", 0))
        server.listen(self.n_nodes)
        server.settimeout(CONNECT_TIMEOUT_S)
        self._server = server
        port = server.getsockname()[1]

        env = dict(os.environ)
        package_root = str(Path(__file__).resolve().parents[3])
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )
        injector = getattr(self.config, "injector", None)
        for i in range(self.n_nodes):
            node_id = f"node-{i}"
            chaos: Dict[str, Any] = {}
            if injector is not None and hasattr(injector, "executor_fault"):
                mode = injector.executor_fault(node_id)
                if mode is not None:
                    chaos = {"mode": mode}
                    if mode == "partition":
                        chaos["partition_s"] = 2.5 * float(
                            getattr(self.config, "lease_ttl_s", 15.0)
                        )
            node_scratch = scratch / node_id
            node_scratch.mkdir(parents=True, exist_ok=True)
            argv = [
                sys.executable, "-m", "repro.runner.node",
                "--connect", str(port),
                "--node-id", node_id,
                "--workers", str(self._workers_per_node),
                "--heartbeat-every", str(self.config.heartbeat_every_s),
                "--heartbeat-timeout", str(self.config.heartbeat_timeout_s),
                "--kill-grace", str(self.config.kill_grace_s),
                "--poll-interval", str(self.config.poll_interval_s),
                "--scratch", str(node_scratch),
            ]
            if chaos:
                argv += ["--chaos", json.dumps(chaos)]
            proc = subprocess.Popen(
                argv, env=env,
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            )
            self._nodes[node_id] = _NodeState(
                node_id=node_id, proc=proc, chaos=chaos,
            )
        self._accept_hellos()

    def _accept_hellos(self) -> None:
        """Match incoming connections to nodes by their hello line."""
        assert self._server is not None
        waiting = {
            node_id for node_id, state in self._nodes.items()
            if state.conn is None
        }
        while waiting:
            try:
                conn, _addr = self._server.accept()
            except socket.timeout:
                break
            conn.settimeout(5.0)
            try:
                hello = self._read_hello(conn)
            except (OSError, ValueError):
                conn.close()
                continue
            node_id = hello.get("node")
            state = self._nodes.get(node_id)
            if state is None or state.conn is not None:
                conn.close()
                continue
            conn.settimeout(0.0)  # non-blocking from here on
            state.conn = conn
            state.pid = int(hello.get("pid", 0))
            waiting.discard(node_id)
        for node_id in waiting:  # never dialed in: dead on arrival
            self._mark_dead(
                self._nodes[node_id], "node never connected"
            )

    @staticmethod
    def _read_hello(conn: socket.socket) -> Dict[str, Any]:
        buffer = b""
        while b"\n" not in buffer:
            chunk = conn.recv(4096)
            if chunk == b"":
                raise ValueError("connection closed before hello")
            buffer += chunk
        line = buffer.split(b"\n", 1)[0]
        return json.loads(line.decode("utf-8"))

    def stop(self) -> None:
        for state in self._nodes.values():
            if state.conn is not None and not state.dead:
                try:
                    state.conn.sendall(b'{"type": "shutdown"}\n')
                except OSError:
                    pass
            if state.conn is not None:
                state.conn.close()
                state.conn = None
            kill_process(state.proc, grace_s=1.0)
        if self._server is not None:
            self._server.close()
            self._server = None

    # -- introspection (failover tests SIGKILL through this) -----------------

    def node_pids(self) -> Dict[str, int]:
        """Live node ids -> OS pids."""
        return {
            node_id: state.pid or state.proc.pid
            for node_id, state in self._nodes.items()
            if not state.dead
        }

    def executors(self) -> List[str]:
        return [
            node_id for node_id, state in self._nodes.items()
            if not state.dead and state.conn is not None
        ]

    # -- scheduling ----------------------------------------------------------

    def try_submit(self, assignment: Assignment) -> Optional[str]:
        candidates = [
            state for state in self._nodes.values()
            if not state.dead and state.conn is not None
            and state.outstanding < self._workers_per_node
        ]
        if not candidates:
            return None
        state = min(candidates, key=lambda s: (s.outstanding, s.node_id))
        message = json.dumps({
            "type": "task",
            "spec": assignment.spec,
            "timeout_s": assignment.timeout_s,
        }) + "\n"
        try:
            state.conn.sendall(message.encode("utf-8"))
        except OSError as exc:
            self._mark_dead(state, f"send failed: {exc}")
            return None
        state.outstanding += 1
        return state.node_id

    def poll(self) -> List[BackendEvent]:
        events: List[BackendEvent] = []
        for state in self._nodes.values():
            if not state.dead:
                events.extend(self._drain(state))
            if state.dead and not state.dead_reported:
                state.dead_reported = True
                events.append(BackendEvent(
                    kind="executor-dead",
                    executor=state.node_id,
                    detail=state.dead_reason,
                ))
        return events

    def _drain(self, state: _NodeState) -> List[BackendEvent]:
        """Read every pending control message from one node."""
        events: List[BackendEvent] = []
        if state.conn is None:
            return events
        while True:
            try:
                chunk = state.conn.recv(65536)
            except (BlockingIOError, InterruptedError):
                break
            except OSError as exc:
                self._mark_dead(state, f"control socket error: {exc}")
                break
            if chunk == b"":
                # EOF: the node process died (SIGKILL included) or shut
                # its socket — either way the executor is gone *now*.
                self._mark_dead(state, "control socket closed")
                break
            state.read_buffer += chunk
        while b"\n" in state.read_buffer:
            line, state.read_buffer = state.read_buffer.split(b"\n", 1)
            if not line.strip():
                continue
            try:
                message = json.loads(line.decode("utf-8"))
            except ValueError:
                continue  # garbage on the control plane: skip the line
            kind = message.get("type")
            if kind == "heartbeat":
                events.append(BackendEvent(
                    kind="renew", executor=state.node_id,
                ))
            elif kind == "outcome":
                state.outstanding = max(0, state.outstanding - 1)
                events.append(BackendEvent(
                    kind="outcome",
                    executor=state.node_id,
                    outcome=message.get("outcome") or {},
                ))
        return events

    def _mark_dead(self, state: _NodeState, reason: str) -> None:
        if state.dead:
            return
        state.dead = True
        state.dead_reason = reason
        state.outstanding = 0
        if state.conn is not None:
            state.conn.close()
            state.conn = None
        kill_process(state.proc, grace_s=0.2)
