"""Pluggable executor backends for the campaign scheduler.

The scheduler (:mod:`repro.runner.scheduler`) owns *policy* — the task
queue, the lease table, retries, and the journal.  A backend owns
*mechanism*: it accepts task assignments, runs them somewhere, and
reports events back.  Three implementations cover the space:

* :class:`~repro.runner.backends.local.LocalBackend` (``local``) — the
  classic pool of crash-isolated worker subprocesses in the scheduler's
  own process tree.
* :class:`~repro.runner.backends.inproc.InprocBackend` (``inproc``) —
  runs experiments synchronously in the scheduler process.  No
  subprocesses, no clocks in the data path: the fast deterministic
  backend for scheduler tests (and chaos *simulation*, including
  duplicate completion delivery).
* :class:`~repro.runner.backends.nodes.NodesBackend` (``nodes:N``) — N
  separate **node** processes, each owning a pool of workers, driven
  over a control socket.  A node stands in for a remote host: it can be
  SIGKILLed, partitioned, or stalled independently of the scheduler,
  which is exactly what the failover tests do.

A backend never touches the journal and never decides what a failure
*means* — it reports, the scheduler rules.  All three speak the same
vocabulary:

* :class:`Assignment` — one attempt of one task, with the fully built
  worker spec.
* :class:`BackendEvent` — ``outcome`` (an attempt finished, here is the
  attempt-outcome dict), ``renew`` (an executor proved itself alive;
  renew its leases), or ``executor-dead`` (an executor is *known* dead;
  reclaim immediately instead of waiting out the lease TTL).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

#: Backend spec strings ``make_backend`` understands (``nodes`` takes a
#: ``:N`` suffix).
BACKEND_NAMES = ("local", "inproc", "nodes")


@dataclass(frozen=True)
class Assignment:
    """One attempt of one task, handed from scheduler to backend.

    Attributes:
        task_id: Campaign task id.
        experiment_id: Registered experiment to run.
        fingerprint: Task fingerprint — the idempotence key.
        seed: RNG seed, or None.
        kwargs: Experiment keyword arguments.
        attempt: Attempt number (0-based, monotone per task).
        timeout_s: Wall-clock budget for this attempt.
        spec: Complete worker spec (everything
            ``repro.runner.worker`` needs except the scratch-file paths
            the executing pool fills in).
    """

    task_id: str
    experiment_id: str
    fingerprint: str
    seed: Optional[int]
    kwargs: Dict[str, Any]
    attempt: int
    timeout_s: float
    spec: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class BackendEvent:
    """One thing a backend observed since the last poll.

    Attributes:
        kind: ``"outcome"``, ``"renew"``, or ``"executor-dead"``.
        executor: Executor id the event concerns.
        outcome: Attempt-outcome dict (``kind == "outcome"`` only).
        detail: Human-readable context (``executor-dead`` reason).
    """

    kind: str
    executor: str
    outcome: Optional[Dict[str, Any]] = None
    detail: str = ""


class ExecutorBackend(ABC):
    """Mechanism half of the scheduler/backend split.

    Lifecycle: ``start`` → (``try_submit`` | ``poll``)* → ``stop``.
    ``stop`` must be idempotent and safe after a partial ``start``.
    """

    #: Human-readable backend spec (``local``, ``inproc``, ``nodes:2``).
    name: str = "?"

    @abstractmethod
    def start(self, scratch: Path) -> None:
        """Bring up executors; *scratch* is the campaign scratch dir."""

    @abstractmethod
    def stop(self) -> None:
        """Tear down every executor and release resources."""

    @abstractmethod
    def executors(self) -> List[str]:
        """Ids of currently live executors."""

    @abstractmethod
    def try_submit(self, assignment: Assignment) -> Optional[str]:
        """Accept *assignment* if any executor has capacity.

        Returns the executor id the work was placed on, or None when
        saturated (the scheduler keeps the task queued and retries on
        the next dispatch round).
        """

    @abstractmethod
    def poll(self) -> List[BackendEvent]:
        """Events observed since the last poll; never blocks."""

    def __enter__(self) -> "ExecutorBackend":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()


def parse_backend_spec(spec: str) -> Dict[str, Any]:
    """Parse a ``--backend`` string: ``local`` | ``inproc`` | ``nodes:N``.

    Raises:
        ValueError: unknown name or malformed node count.
    """
    name, _, arg = (spec or "local").partition(":")
    if name not in BACKEND_NAMES:
        raise ValueError(
            f"unknown backend {spec!r}; known: local, inproc, nodes:N"
        )
    if name == "nodes":
        try:
            n_nodes = int(arg)
        except ValueError:
            raise ValueError(
                f"backend {spec!r}: node count must be an integer"
            ) from None
        if n_nodes < 1:
            raise ValueError(f"backend {spec!r}: need at least one node")
        return {"name": "nodes", "n_nodes": n_nodes}
    if arg:
        raise ValueError(f"backend {name!r} takes no argument, got {spec!r}")
    return {"name": name}


def make_backend(spec: str, config: Any) -> ExecutorBackend:
    """Build the backend *spec* names, configured from *config*.

    *config* is a :class:`repro.runner.supervisor.CampaignConfig`
    (duck-typed here to keep this package import-light: backends are
    mechanism, the config dataclass lives with the policy layer).
    """
    parsed = parse_backend_spec(spec)
    if parsed["name"] == "local":
        from repro.runner.backends.local import LocalBackend

        return LocalBackend(config)
    if parsed["name"] == "inproc":
        from repro.runner.backends.inproc import InprocBackend

        return InprocBackend(config)
    from repro.runner.backends.nodes import NodesBackend

    return NodesBackend(config, n_nodes=parsed["n_nodes"])


__all__ = [
    "Assignment",
    "BackendEvent",
    "BACKEND_NAMES",
    "ExecutorBackend",
    "make_backend",
    "parse_backend_spec",
]
