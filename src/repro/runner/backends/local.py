"""Local-subprocess executor backend: the classic worker pool.

One executor (``local``) owning ``config.workers`` crash-isolated
worker subprocesses in the scheduler's own process tree — exactly the
execution model the pre-backend supervisor had, now behind the
:class:`~repro.runner.backends.ExecutorBackend` interface.

The executor itself is the scheduler's process, so it cannot die
independently of the campaign; the backend renews its leases on every
poll, and per-worker death (crash, timeout, stalled heartbeat) is
handled *inside* the pool and surfaces as ordinary attempt outcomes.
Scheduler-level lease expiry is a pure backstop here.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, List, Optional

from repro.runner.backends import Assignment, BackendEvent, ExecutorBackend
from repro.runner.pool import WorkerPool

#: The single executor id this backend exposes.
EXECUTOR_ID = "local"


class LocalBackend(ExecutorBackend):
    """Pool of worker subprocesses inside the scheduler process."""

    def __init__(self, config: Any) -> None:
        self.name = "local"
        self.config = config
        self._pool: Optional[WorkerPool] = None

    def start(self, scratch: Path) -> None:
        self._pool = WorkerPool(
            scratch=Path(scratch),
            heartbeat_timeout_s=self.config.heartbeat_timeout_s,
            kill_grace_s=self.config.kill_grace_s,
        )

    def stop(self) -> None:
        if self._pool is not None:
            self._pool.kill_all()
            self._pool = None

    def executors(self) -> List[str]:
        return [EXECUTOR_ID] if self._pool is not None else []

    def try_submit(self, assignment: Assignment) -> Optional[str]:
        if self._pool is None or self._pool.running >= self.config.workers:
            return None
        self._pool.launch(assignment.spec, assignment.timeout_s)
        return EXECUTOR_ID

    def poll(self) -> List[BackendEvent]:
        if self._pool is None:
            return []
        outcomes, _beats = self._pool.poll()
        # The local executor is this very process: being here to poll
        # *is* the proof of life, so its leases renew unconditionally
        # (individual worker death already surfaced as an outcome).
        events: List[BackendEvent] = [
            BackendEvent(kind="renew", executor=EXECUTOR_ID)
        ]
        events.extend(
            BackendEvent(kind="outcome", executor=EXECUTOR_ID, outcome=o)
            for o in outcomes
        )
        return events
