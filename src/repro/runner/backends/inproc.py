"""In-process executor backend: synchronous, clock-free, deterministic.

Runs every assignment directly in the scheduler process — no worker
subprocesses, no heartbeat files, no wall clock in the data path — so
scheduler-level behavior (leases, retries, duplicate-completion
idempotence, executor loss and work stealing) can be tested exactly and
fast.  One assignment executes per :meth:`poll`, which gives the
scheduler a dispatch/renew turn between tasks, the same cadence a real
backend produces.

Worker-level chaos directives in the spec are *simulated* (a synthetic
``crash``/``timeout``/``worker-dead``/``corrupt-result`` outcome — the
directive's observable effect, without a process to kill).  Executor-
level chaos from the injector is simulated too:

* ``executor-crash`` — the current executor incarnation drops its
  queued work and is reported dead; a new incarnation
  (``inproc-<g+1>``) comes up, so reclaimed leases have somewhere to be
  work-stolen to.
* ``partition`` — renewals and finished outcomes are buffered for a
  fixed number of polls, then flushed: leases expire mid-blackhole and
  the late flush exercises the duplicate-completion path.
* ``lease-stall`` — renewals stop forever; outcomes keep flowing.

(``duplicate-delivery`` is injected by the *scheduler*, which submits
the same assignment twice — that fault is backend-agnostic.)

``flip-operator`` is ignored here: arming in-memory operator corruption
inside the scheduler process would poison shared cache state; the
subprocess backends cover it.
"""

from __future__ import annotations

import importlib
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.runner.backends import Assignment, BackendEvent, ExecutorBackend

#: Polls a simulated partition blackholes events for.
PARTITION_POLLS = 8

#: Simulated outcomes for worker chaos directives.
_CHAOS_OUTCOMES = {
    "crash": ("crash", "WorkerCrash",
              "worker crashed (simulated by inproc backend)"),
    "hang": ("timeout", "WorkerTimeout",
             "exceeded wall-clock budget (simulated by inproc backend)"),
    "stall": ("worker-dead", "WorkerDead",
              "no heartbeat (simulated by inproc backend)"),
    "corrupt-result": ("corrupt-result", "CorruptResult",
                       "unreadable worker result (simulated by inproc "
                       "backend)"),
}


def _resolve_registry(registry_spec: str) -> Any:
    module_name, _, attribute = registry_spec.partition(":")
    module = importlib.import_module(module_name)
    return getattr(module, attribute)


def execute_assignment(assignment: Assignment) -> Dict[str, Any]:
    """Run one assignment synchronously; returns the attempt outcome.

    The single in-process execution path, shared by
    :class:`InprocBackend` and the deterministic-simulation fabric
    (:mod:`repro.dst.fabric`): chaos directives in the spec become
    synthetic outcomes, everything else goes through the real
    :func:`repro.core.experiments.run_experiment` with the oracle mode
    saved and restored around the call.
    """
    spec = assignment.spec
    common = dict(
        task_id=assignment.task_id,
        experiment_id=assignment.experiment_id,
        fingerprint=assignment.fingerprint,
        seed=assignment.seed,
        kwargs=dict(assignment.kwargs),
        attempt=assignment.attempt,
        elapsed_s=0.0,  # clock-free by design
        lease_epoch=spec.get("lease_epoch"),
    )
    chaos = spec.get("chaos")
    if chaos in _CHAOS_OUTCOMES:
        status, error_type, error = _CHAOS_OUTCOMES[chaos]
        return dict(
            common, status=status, error=error, error_type=error_type,
        )

    from repro.core.experiments import run_experiment
    from repro.oracles.config import get_oracle_config, set_oracle_mode

    previous = get_oracle_config()
    if spec.get("oracle_mode"):
        set_oracle_mode(spec["oracle_mode"])
    try:
        registry = _resolve_registry(
            spec.get("registry_spec", "repro.core.experiments:REGISTRY")
        )
        outcome = run_experiment(
            assignment.experiment_id,
            strict=False,
            registry=registry,
            seed=assignment.seed,
            **assignment.kwargs,
        )
    finally:
        set_oracle_mode(previous)
    if outcome.ok:
        return dict(
            common,
            status="ok",
            result=outcome.result,
            oracles=outcome.oracles or {},
        )
    return dict(
        common,
        status="error",
        error=outcome.error,
        error_type=outcome.error_type or "Exception",
        oracles=outcome.oracles or {},
    )


class InprocBackend(ExecutorBackend):
    """Synchronous single-executor backend for deterministic tests."""

    def __init__(self, config: Any) -> None:
        self.name = "inproc"
        self.config = config
        self._queue: List[Assignment] = []
        self._generation = 0
        self._alive = False
        #: Events held back by a simulated partition.
        self._blackholed: List[BackendEvent] = []
        self._partition_left = 0
        self._stalled = False

    # -- lifecycle -----------------------------------------------------------

    def start(self, scratch: Path) -> None:
        del scratch  # nothing to write: execution is in-process
        self._alive = True

    def stop(self) -> None:
        self._alive = False
        self._queue = []
        self._blackholed = []

    @property
    def _executor_id(self) -> str:
        return f"inproc-{self._generation}"

    def executors(self) -> List[str]:
        return [self._executor_id] if self._alive else []

    # -- scheduling ----------------------------------------------------------

    def try_submit(self, assignment: Assignment) -> Optional[str]:
        if not self._alive or len(self._queue) >= self.config.workers:
            return None
        self._queue.append(assignment)
        return self._executor_id

    def poll(self) -> List[BackendEvent]:
        if not self._alive:
            return []
        events: List[BackendEvent] = []

        fault = None
        injector = getattr(self.config, "injector", None)
        if injector is not None and hasattr(injector, "executor_fault"):
            fault = injector.executor_fault(self._executor_id)
        if fault == "executor-crash":
            dead = self._executor_id
            self._generation += 1
            self._queue = []  # in-flight work dies with the incarnation
            self._blackholed = []
            return [BackendEvent(
                kind="executor-dead", executor=dead,
                detail="executor crash (simulated)",
            )]
        if fault == "partition":
            self._partition_left = PARTITION_POLLS
        elif fault == "lease-stall":
            self._stalled = True

        if not self._stalled:
            events.append(
                BackendEvent(kind="renew", executor=self._executor_id)
            )
        if self._queue:
            outcome = self._execute(self._queue.pop(0))
            events.append(BackendEvent(
                kind="outcome", executor=self._executor_id, outcome=outcome,
            ))

        if self._partition_left > 0:
            self._blackholed.extend(events)
            self._partition_left -= 1
            if self._partition_left == 0:
                flushed, self._blackholed = self._blackholed, []
                return flushed
            return []
        return events

    # -- execution -----------------------------------------------------------

    def _execute(self, assignment: Assignment) -> Dict[str, Any]:
        return execute_assignment(assignment)
