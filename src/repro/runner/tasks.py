"""Campaign task model: what one supervised worker executes.

A :class:`CampaignTask` pins down one experiment invocation completely —
artifact id, keyword arguments, and RNG seed — and derives a stable
fingerprint from those three, so the journal can recognize "this exact
task already completed" across processes and machines, and any journaled
failure can be re-run in isolation bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Any, Dict, List, Optional, Sequence

from repro.core.experiments import (
    ExperimentRegistry,
    REGISTRY,
    task_fingerprint,
)

#: Registry the worker imports when a task does not name its own.
DEFAULT_REGISTRY_SPEC = "repro.core.experiments:REGISTRY"


@dataclass(frozen=True)
class CampaignTask:
    """One unit of supervised work.

    Attributes:
        task_id: Unique id within the campaign (defaults to the
            experiment id).
        experiment_id: Registered artifact to run.
        kwargs: Keyword arguments forwarded to the experiment.
        seed: RNG seed the worker applies before running, or None.
        registry_spec: ``"module.path:ATTRIBUTE"`` the worker imports to
            resolve ``experiment_id`` (tests point this at fixture
            registries; campaigns use the paper registry).
    """

    task_id: str
    experiment_id: str
    kwargs: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None
    registry_spec: str = DEFAULT_REGISTRY_SPEC

    @property
    def fingerprint(self) -> str:
        """Stable hash of (experiment_id, kwargs, seed)."""
        return task_fingerprint(self.experiment_id, self.kwargs, self.seed)

    def to_spec(self) -> Dict[str, Any]:
        """JSON-serializable description for the worker process."""
        return {
            "task_id": self.task_id,
            "experiment_id": self.experiment_id,
            "kwargs": dict(self.kwargs),
            "seed": self.seed,
            "registry_spec": self.registry_spec,
            "fingerprint": self.fingerprint,
        }


def select_tasks(
    patterns: Sequence[str],
    kwargs: Optional[Dict[str, Any]] = None,
    seed: Optional[int] = None,
    registry: Optional[ExperimentRegistry] = None,
    registry_spec: str = DEFAULT_REGISTRY_SPEC,
) -> List[CampaignTask]:
    """Expand experiment-id globs into campaign tasks.

    Args:
        patterns: ``fnmatch`` globs over registered ids (``figure-*``);
            an empty sequence selects everything.
        kwargs: Keyword arguments every selected task carries.
        seed: Base RNG seed; each task gets ``seed + index`` so tasks
            stay decorrelated but reproducible.  None leaves tasks
            unseeded.
        registry: Registry to match against (paper registry by default).
        registry_spec: Import spec the workers use to find the same
            registry.

    Raises:
        ValueError: a pattern matched nothing (a typo would otherwise
            silently shrink the campaign).
    """
    registry = registry or REGISTRY
    ids = registry.list()
    selected: List[str] = []
    for pattern in patterns or ["*"]:
        matches = [i for i in ids if fnmatch(i, pattern)]
        if not matches:
            raise ValueError(
                f"pattern {pattern!r} matches no experiment; known: {ids}"
            )
        selected.extend(m for m in matches if m not in selected)
    return [
        CampaignTask(
            task_id=experiment_id,
            experiment_id=experiment_id,
            kwargs=dict(kwargs or {}),
            seed=None if seed is None else seed + index,
            registry_spec=registry_spec,
        )
        for index, experiment_id in enumerate(selected)
    ]
