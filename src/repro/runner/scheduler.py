"""Lease-based campaign scheduler: the policy half of the runner.

The scheduler owns everything an executor backend must not: the task
queue, the **lease table** (:mod:`repro.runner.leases`), retry/backoff,
and the journal — the single source of truth a campaign resumes from.
Backends (:mod:`repro.runner.backends`) own mechanism only; the same
scheduler drives the local subprocess pool, the in-process test
backend, and N socket-connected node processes.

Scheduling is lease-based:

* Before work is handed to an executor, the scheduler **claims** the
  task fingerprint under a TTL lease for that executor.
* Backend events translate executor liveness into **renewals**; an
  executor that stops proving itself alive (SIGKILLed node, partitioned
  control socket, stalled heartbeat) lets its leases **expire**.
* Expired (or evicted — the backend *knows* the executor died) leases
  are reclaimed: the attempt is journaled ``executor-lost`` and the
  task re-queued immediately, so a surviving executor **steals** it.
* Completions are matched by fingerprint and resolved
  **idempotently**: the first journaled ``ok`` wins; later completions
  of the same fingerprint (a partitioned node healing, an injected
  duplicate delivery) are journaled as ``duplicate`` for audit but
  discarded from aggregation — the sha256 task fingerprints make the
  match exact.
* Every grant carries a **fencing token** (the lease epoch, stamped
  into the assignment spec and echoed back in the outcome).  When a
  lease is reclaimed, its epoch becomes the fingerprint's fence: any
  completion carrying an epoch at or below the fence is a zombie
  executor's late write — journaled ``fenced`` for audit, never
  counted, never resumed from — so a presumed-dead executor can never
  shadow the result of a fresher attempt.

For deterministic simulation (:mod:`repro.dst`) the scheduler's time
source, journal construction, and decision points are pluggable via
``CampaignConfig.clock`` / ``journal_factory`` / ``event_hook``; the
default wiring is the real monotonic clock and the real journal, with
hooks disabled.

A campaign that loses an entire executor still ends with a complete
:class:`~repro.runner.supervisor.CampaignReport`, flagged ``degraded``;
``--resume`` re-runs only fingerprints without an ``ok`` journal entry
and produces bit-identical results to an unfaulted run.
"""

from __future__ import annotations

import sys
import tempfile
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.runner.backends import Assignment, ExecutorBackend, make_backend
from repro.runner.journal import (
    Journal,
    completed_fingerprints,
    make_entry,
    scan_journal,
)
from repro.runner.leases import Lease, LeaseTable
from repro.runner.supervisor import (
    CampaignConfig,
    CampaignReport,
    entry_is_stale,
    solver_meta_counts,
)
from repro.runner.tasks import CampaignTask


@dataclass
class _Pending:
    """One queued (task, attempt) waiting for dispatch."""

    task: CampaignTask
    attempt: int
    eligible_mono: float
    #: Prepared assignment, built once so a saturated backend does not
    #: re-consume fault-injector draws on every dispatch round.
    assignment: Optional[Assignment] = field(default=None, repr=False)


class _WallClock:
    """Default time source: the process monotonic clock."""

    @staticmethod
    def monotonic() -> float:
        return time.monotonic()

    @staticmethod
    def sleep(seconds: float) -> None:
        time.sleep(seconds)


class Scheduler:
    """Drives one campaign over one executor backend."""

    def __init__(
        self,
        config: Optional[CampaignConfig] = None,
        backend: Optional[ExecutorBackend] = None,
    ) -> None:
        self.config = config or CampaignConfig()
        self._backend = backend
        self._clock = self.config.clock or _WallClock()

    def _emit(self, kind: str, **payload: Any) -> None:
        """Fire the config's event hook, if any (DST decision points)."""
        hook = self.config.event_hook
        if hook is not None:
            hook(kind, payload)

    # -- assignment construction ---------------------------------------------

    def _build_assignment(
        self, task: CampaignTask, attempt: int, epoch: int
    ) -> Assignment:
        config = self.config
        chaos = None
        if config.injector is not None:
            chaos = config.injector.worker_fault(task.task_id, attempt)
        spec = dict(task.to_spec())
        spec.update(
            attempt=attempt,
            heartbeat_every_s=config.heartbeat_every_s,
            chaos=chaos,
            chaos_seed=(
                config.injector.seed if config.injector is not None else 0
            ),
            oracle_mode=config.oracle_mode,
            lease_epoch=epoch,
            sys_path=[p for p in sys.path if p],
        )
        return Assignment(
            task_id=task.task_id,
            experiment_id=task.experiment_id,
            fingerprint=task.fingerprint,
            seed=task.seed,
            kwargs=dict(task.kwargs),
            attempt=attempt,
            timeout_s=config.task_timeout_s,
            spec=spec,
        )

    # -- campaign loop -------------------------------------------------------

    def run(self, tasks: Sequence[CampaignTask]) -> CampaignReport:
        config = self.config
        started = self._clock.monotonic()
        seen: set = set()
        seen_fps: Dict[str, str] = {}
        for task in tasks:
            if task.task_id in seen:
                raise ValueError(f"duplicate task id {task.task_id!r}")
            seen.add(task.task_id)
            other = seen_fps.get(task.fingerprint)
            if other is not None:
                # The fingerprint is the unit of work: leases, journal
                # lines, and completion idempotence are all keyed on it.
                # Two tasks sharing one fingerprint are the same
                # computation — running both would make the second look
                # like a duplicate completion and never finalize.
                raise ValueError(
                    f"tasks {other!r} and {task.task_id!r} share "
                    f"fingerprint {task.fingerprint[:12]}; identical "
                    f"(experiment, kwargs, seed) may be submitted once"
                )
            seen_fps[task.fingerprint] = task.task_id

        backend = self._backend or make_backend(config.backend, config)
        report = CampaignReport(
            journal_path=str(config.journal_path), backend=backend.name,
        )
        resumed: Dict[str, Dict[str, Any]] = {}
        if config.resume:
            entries, torn, crc_failed = scan_journal(config.journal_path)
            report.torn_journal_lines = torn
            report.corrupt_journal_lines = crc_failed
            resumed = completed_fingerprints(entries)

        # Mutable campaign state, shared with the handlers below.
        self._report = report
        self._pending: List[_Pending] = []
        self._leases = LeaseTable(ttl_s=config.lease_ttl_s)
        self._final_by_task: Dict[str, Dict[str, Any]] = {}
        self._completed_fps: set = set()
        self._first_claimant: Dict[str, str] = {}
        self._worker_failures: Dict[str, int] = {}
        self._reclaims: Dict[str, int] = {}
        self._next_attempt: Dict[str, int] = {}
        self._tasks_by_fp: Dict[str, CampaignTask] = {}
        self._dead_executors: set = set()
        #: Grants issued per fingerprint (the next grant's epoch is one
        #: more) and the fence: the highest epoch ever *reclaimed* per
        #: fingerprint.  Completions at or below the fence are zombies.
        self._epoch_by_fp: Dict[str, int] = {}
        self._fence_by_fp: Dict[str, int] = {}

        to_run = 0
        for task in tasks:
            done = resumed.get(task.fingerprint)
            if done is not None and not entry_is_stale(done):
                report.resumed_ok += 1
                report.tasks.append(dict(done, status="ok", resumed=True))
                self._completed_fps.add(task.fingerprint)
            else:
                if done is not None:
                    # Journaled-ok entry whose stored fingerprint does
                    # not match its own recorded inputs: the line was
                    # edited or corrupted after writing.  Re-run rather
                    # than resume from untrustworthy state.
                    report.stale_resume += 1
                self._tasks_by_fp[task.fingerprint] = task
                self._pending.append(_Pending(task, 0, started))
                self._next_attempt[task.task_id] = 1
                to_run += 1

        scratch_ctx = None
        if config.scratch_dir is None:
            scratch_ctx = tempfile.TemporaryDirectory(prefix="repro-sweep-")
            scratch = Path(scratch_ctx.name)
        else:
            scratch = Path(config.scratch_dir)
            scratch.mkdir(parents=True, exist_ok=True)

        journal_factory = config.journal_factory or Journal
        self._journal = journal_factory(config.journal_path)
        try:
            backend.start(scratch)
            while len(self._final_by_task) < to_run:
                now = self._clock.monotonic()
                self._dispatch(backend, now)
                events = backend.poll()
                for event in events:
                    now = self._clock.monotonic()
                    if event.kind == "renew":
                        self._leases.renew(event.executor, now)
                        self._emit("renew", executor=event.executor)
                    elif event.kind == "executor-dead":
                        self._on_executor_dead(event.executor, event.detail)
                    elif event.kind == "outcome":
                        self._on_outcome(event.executor, event.outcome or {})
                for lease in self._leases.expired(self._clock.monotonic()):
                    self._reclaim(
                        lease,
                        f"lease expired after {config.lease_ttl_s:g}s "
                        f"without a renewal from {lease.executor_id!r}",
                    )
                if len(self._final_by_task) >= to_run:
                    break
                made_progress = any(
                    event.kind != "renew" for event in events
                )
                if not self._maybe_strand(backend) and not made_progress:
                    self._clock.sleep(config.poll_interval_s)
        finally:
            backend.stop()
            self._journal.close()
            if scratch_ctx is not None:
                scratch_ctx.cleanup()

        for task in tasks:
            entry = self._final_by_task.get(task.task_id)
            if entry is not None:
                report.tasks.append(entry)
        report.counts = {
            "ok": sum(1 for t in report.tasks if t["status"] == "ok"),
            "failed": sum(1 for t in report.tasks if t["status"] != "ok"),
            "skipped": report.resumed_ok,
        }
        report.degraded = report.counts["failed"] > 0
        for entry in report.tasks:
            d, f = solver_meta_counts(entry.get("result", {}))
            report.degraded_solves += d
            report.fallback_solves += f
            if entry.get("resumed"):
                # Oracle tallies belong to the run that produced them: a
                # resumed-ok task's violations were surfaced (and its
                # campaign degraded) back then, and its journaled result
                # already came off the trusted reference path — they do
                # not re-degrade this campaign.
                continue
            oracles = entry.get("oracles") or {}
            report.oracle_checks += int(oracles.get("total_checks", 0))
            report.oracle_violations += len(oracles.get("violations", []))
        # An oracle violation means some result came off an untrusted
        # fast path, and a lost executor means supervision itself took a
        # casualty; either way the campaign completed but is not clean.
        if report.oracle_violations or report.executors_lost:
            report.degraded = True
        report.wall_clock_s = round(self._clock.monotonic() - started, 4)
        return report

    # -- dispatch ------------------------------------------------------------

    def _dispatch(self, backend: ExecutorBackend, now: float) -> None:
        config = self.config
        self._pending.sort(key=lambda item: item.eligible_mono)
        while self._pending and self._pending[0].eligible_mono <= now:
            item = self._pending[0]
            if item.assignment is None:
                # A pending fingerprint is never currently leased, so
                # bumping the grant counter here (once per queue entry;
                # the assignment is cached across saturated polls) is
                # what makes epochs strictly increase per fingerprint.
                fp = item.task.fingerprint
                epoch = self._epoch_by_fp.get(fp, 0) + 1
                self._epoch_by_fp[fp] = epoch
                item.assignment = self._build_assignment(
                    item.task, item.attempt, epoch
                )
            executor = backend.try_submit(item.assignment)
            if executor is None:
                return
            self._pending.pop(0)
            epoch = int(item.assignment.spec.get("lease_epoch", 1))
            self._leases.claim(
                item.task.fingerprint,
                item.task.task_id,
                executor,
                item.attempt,
                now,
                epoch=epoch,
            )
            self._emit(
                "claim",
                fingerprint=item.task.fingerprint,
                task_id=item.task.task_id,
                executor=executor,
                attempt=item.attempt,
                epoch=epoch,
            )
            self._first_claimant.setdefault(item.task.fingerprint, executor)
            if (
                config.injector is not None
                and hasattr(config.injector, "duplicate_delivery")
                and config.injector.duplicate_delivery(item.task.task_id)
            ):
                # Backend-level fault: the same attempt is delivered
                # twice (a retransmit on a flaky control plane).  No
                # second lease — the scheduler believes it sent one
                # copy; idempotent completion matching absorbs the rest.
                ghost = replace(
                    item.assignment,
                    spec=dict(item.assignment.spec, delivery=1),
                )
                backend.try_submit(ghost)

    # -- event handlers ------------------------------------------------------

    def _on_executor_dead(self, executor_id: str, detail: str) -> None:
        if executor_id in self._dead_executors:
            return
        self._dead_executors.add(executor_id)
        self._report.executors_lost += 1
        self._emit("executor-dead", executor=executor_id, detail=detail)
        now = self._clock.monotonic()
        for lease in self._leases.evict_executor(executor_id, now):
            self._reclaim(
                lease,
                f"executor {executor_id!r} died"
                + (f" ({detail})" if detail else ""),
            )

    def _per_executor(self, executor_id: str) -> Dict[str, int]:
        return self._report.per_executor.setdefault(
            executor_id, {"ok": 0, "failed": 0, "duplicates": 0, "fenced": 0}
        )

    def _is_fenced(self, fingerprint: str, epoch: Optional[int]) -> bool:
        """Is a completion carrying *epoch* a zombie's late write?

        The fence is the highest epoch ever reclaimed for the
        fingerprint; a completion at or below it comes from a lease
        holder the scheduler already declared dead.  Outcomes without
        an epoch (older backends) are never fenced.
        """
        if epoch is None:
            return False
        return int(epoch) <= self._fence_by_fp.get(fingerprint, 0)

    def _on_outcome(
        self, executor_id: str, outcome: Dict[str, Any]
    ) -> None:
        fingerprint = outcome.get("fingerprint", "")
        task = self._tasks_by_fp.get(fingerprint)
        if task is None:
            return  # not part of this campaign (stale scratch replay)
        report = self._report
        if self._is_fenced(fingerprint, outcome.get("lease_epoch")):
            # The lease this attempt ran under was reclaimed: whatever
            # the zombie reports — even an ``ok`` — must not shadow the
            # attempt the task was re-granted to.  Journal for audit
            # (lease custody settled first, as with duplicates) and
            # discard from every aggregate.
            report.fenced_completions += 1
            self._per_executor(executor_id)["fenced"] += 1
            self._leases.release(fingerprint, executor_id)
            self._journal_append(self._entry(
                outcome, executor_id, final=False, fenced=True,
            ))
            self._emit(
                "fenced",
                fingerprint=fingerprint,
                executor=executor_id,
                epoch=outcome.get("lease_epoch"),
                status=outcome.get("status"),
            )
            return
        if fingerprint in self._completed_fps:
            # Idempotent resolution: the first journaled ``ok`` won;
            # this late completion (healed partition, duplicate
            # delivery) is journaled for audit and dropped from every
            # aggregate.
            report.duplicate_completions += 1
            self._per_executor(executor_id)["duplicates"] += 1
            # Release the straggler's lease *before* journalling: the
            # audit line must describe work whose lease custody has
            # already been settled (RPL502), and a crash between the
            # two must not strand the fingerprint as still-leased.
            self._leases.release(fingerprint, executor_id)
            self._journal_append(self._entry(
                outcome, executor_id, final=False, duplicate=True,
            ))
            self._emit(
                "duplicate", fingerprint=fingerprint, executor=executor_id,
            )
            return

        status = outcome.get("status", "crash")
        if status == "ok":
            self._leases.release(fingerprint)
            self._completed_fps.add(fingerprint)
            # Cancel any reclaim-requeue racing this completion.
            self._pending = [
                p for p in self._pending
                if p.task.task_id != task.task_id
            ]
            entry = self._entry(outcome, executor_id, final=True)
            self._journal_append(entry)
            self._per_executor(executor_id)["ok"] += 1
            first = self._first_claimant.get(fingerprint)
            if first is not None and first != executor_id:
                report.work_stolen += 1
            final = dict(entry)
            final["retries_used"] = int(outcome.get("attempt", 0))
            self._final_by_task[task.task_id] = final
            self._emit(
                "completed",
                fingerprint=fingerprint,
                executor=executor_id,
                epoch=outcome.get("lease_epoch"),
            )
            return

        # A failed attempt.
        self._leases.release(fingerprint, executor_id)
        self._per_executor(executor_id)["failed"] += 1
        self._emit(
            "failed",
            fingerprint=fingerprint,
            executor=executor_id,
            status=status,
            epoch=outcome.get("lease_epoch"),
        )
        key = (
            outcome.get("error_type") if status == "error" else status
        ) or status
        report.taxonomy[key] = report.taxonomy.get(key, 0) + 1
        self._worker_failures[task.task_id] = (
            self._worker_failures.get(task.task_id, 0) + 1
        )
        live_elsewhere = (
            fingerprint in self._leases
            or any(
                p.task.task_id == task.task_id for p in self._pending
            )
        )
        retryable = (
            self._worker_failures[task.task_id]
            <= self.config.retry.max_retries
        )
        if live_elsewhere:
            # The task was already reclaimed and re-granted (or is
            # queued): journal this late failure, but neither retry nor
            # finalize — the live copy owns the task's fate.
            self._journal_append(self._entry(
                outcome, executor_id, final=False,
            ))
            return
        self._journal_append(self._entry(
            outcome, executor_id, final=not retryable,
        ))
        if retryable:
            attempt = self._next_attempt[task.task_id]
            self._next_attempt[task.task_id] = attempt + 1
            report.retries_used += 1
            delay = self.config.retry.delay_s(
                task.fingerprint, self._worker_failures[task.task_id]
            )
            self._pending.append(_Pending(
                task, attempt, self._clock.monotonic() + delay,
            ))
        else:
            final = dict(self._entry(
                outcome, executor_id, final=True,
            ))
            final["retries_used"] = self._worker_failures[task.task_id] - 1
            self._final_by_task[task.task_id] = final

    def _reclaim(self, lease: Lease, why: str) -> None:
        """An executor lost its claim: journal it, steal or finalize."""
        task = self._tasks_by_fp.get(lease.fingerprint)
        if (
            task is None
            or lease.fingerprint in self._completed_fps
            or task.task_id in self._final_by_task
        ):
            return
        # Fence the reclaimed epoch *before* anything else: from this
        # point on, a completion from the old lease holder is a zombie
        # write and must not be accepted, even if it arrives before the
        # re-granted attempt finishes.
        self._fence_by_fp[lease.fingerprint] = max(
            self._fence_by_fp.get(lease.fingerprint, 0), lease.epoch
        )
        report = self._report
        report.leases_reclaimed += 1
        report.taxonomy["executor-lost"] = (
            report.taxonomy.get("executor-lost", 0) + 1
        )
        self._reclaims[task.task_id] = (
            self._reclaims.get(task.task_id, 0) + 1
        )
        retryable = (
            self._reclaims[task.task_id] <= self.config.lease_reclaim_budget
        )
        outcome = dict(
            task_id=task.task_id,
            experiment_id=task.experiment_id,
            fingerprint=lease.fingerprint,
            seed=task.seed,
            kwargs=dict(task.kwargs),
            attempt=lease.attempt,
            elapsed_s=0.0,
            status="executor-lost",
            error=why,
            error_type="ExecutorLost",
            lease_epoch=lease.epoch,
        )
        entry = self._entry(outcome, lease.executor_id, final=not retryable)
        self._journal_append(entry)
        self._emit(
            "reclaim",
            fingerprint=lease.fingerprint,
            executor=lease.executor_id,
            epoch=lease.epoch,
            retryable=retryable,
            why=why,
        )
        if retryable:
            # Immediate re-queue: a surviving executor steals the work
            # on the next dispatch round, no backoff — the *task* did
            # nothing wrong.
            attempt = self._next_attempt[task.task_id]
            self._next_attempt[task.task_id] = attempt + 1
            self._pending.append(_Pending(
                task, attempt, self._clock.monotonic(),
            ))
        else:
            final = dict(entry)
            final["retries_used"] = int(
                self._worker_failures.get(task.task_id, 0)
            )
            self._final_by_task[task.task_id] = final

    def _maybe_strand(self, backend: ExecutorBackend) -> bool:
        """Finalize queued tasks that no live executor can ever run.

        Returns True when it stranded anything (the caller skips its
        poll sleep and re-checks the loop condition).  Without this, a
        campaign whose every executor died would spin forever waiting
        for capacity that cannot come back.
        """
        if backend.executors() or len(self._leases) or not self._pending:
            return False
        report = self._report
        for item in self._pending:
            report.taxonomy["executor-lost"] = (
                report.taxonomy.get("executor-lost", 0) + 1
            )
            outcome = dict(
                task_id=item.task.task_id,
                experiment_id=item.task.experiment_id,
                fingerprint=item.task.fingerprint,
                seed=item.task.seed,
                kwargs=dict(item.task.kwargs),
                attempt=item.attempt,
                elapsed_s=0.0,
                status="executor-lost",
                error="no live executor remains to run this task",
                error_type="ExecutorLost",
            )
            entry = self._entry(outcome, executor_id="", final=True)
            self._journal_append(entry)
            self._emit("strand", fingerprint=item.task.fingerprint)
            final = dict(entry)
            final["retries_used"] = int(
                self._worker_failures.get(item.task.task_id, 0)
            )
            self._final_by_task[item.task.task_id] = final
        self._pending = []
        return True

    # -- journal lines -------------------------------------------------------

    def _journal_append(self, entry: Dict[str, Any]) -> None:
        # Every scheduler journal line reflects lease-held work (or a
        # lease reclaim); the custody token travels inside the entry.
        lease_epoch = entry.get("lease_epoch")
        self._journal.append(entry)
        self._emit("journal", entry=entry, lease_epoch=lease_epoch)

    @staticmethod
    def _entry(
        outcome: Dict[str, Any],
        executor_id: str,
        final: bool,
        duplicate: bool = False,
        fenced: bool = False,
    ) -> Dict[str, Any]:
        lease_epoch = outcome.get("lease_epoch")
        return make_entry(
            task_id=outcome["task_id"],
            experiment_id=outcome["experiment_id"],
            fingerprint=outcome["fingerprint"],
            status=outcome["status"],
            attempt=int(outcome.get("attempt", 0)),
            final=final,
            seed=outcome.get("seed"),
            kwargs=outcome.get("kwargs"),
            elapsed_s=outcome.get("elapsed_s", 0.0),
            error=outcome.get("error"),
            error_type=outcome.get("error_type"),
            result=outcome.get("result"),
            oracles=outcome.get("oracles"),
            executor=executor_id or None,
            duplicate=duplicate,
            lease_epoch=(
                int(lease_epoch) if lease_epoch is not None else None
            ),
            fenced=fenced,
        )


class CampaignRunner:
    """Compatibility wrapper: the pre-backend entry point.

    Old call sites built ``CampaignRunner(config).run(tasks)``; that now
    means "scheduler + the backend the config names".
    """

    def __init__(self, config: Optional[CampaignConfig] = None) -> None:
        self.config = config or CampaignConfig()

    def run(self, tasks: Sequence[CampaignTask]) -> CampaignReport:
        return Scheduler(self.config).run(tasks)


def run_campaign(
    tasks: Sequence[CampaignTask],
    config: Optional[CampaignConfig] = None,
    backend: Optional[ExecutorBackend] = None,
) -> CampaignReport:
    """Run *tasks* under supervision; never raises for task failures."""
    return Scheduler(config, backend=backend).run(tasks)
