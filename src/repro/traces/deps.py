"""Register-level dependency tracking for trace generation.

The paper's trace generator "runs alongside the full system simulator and
keeps track of dependencies between instructions", emitting for each memory
reference the uid of an earlier reference it depends on.  The canonical
case given in Section 2.1 is a pointer-chase: load Ld2 whose address is
produced by an earlier load Ld1 may not issue until Ld1 completes.

:class:`DependencyTracker` models the architectural register file during
synthetic kernel generation: a load writes a destination register; any
later access whose *address computation* reads that register records a
dependency on the load's uid.  Stores produce no register values, so
nothing depends on a store (store-to-load forwarding through memory is
below the granularity the paper's replay model honors).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.traces.record import NO_DEP


class DependencyTracker:
    """Tracks which trace record last produced each register's value.

    One tracker per simulated cpu/thread.  Kernel generators use symbolic
    register names (e.g. ``"row_ptr"``, ``"col_idx"``) for clarity.
    """

    def __init__(self) -> None:
        self._producer: Dict[str, int] = {}

    def produce(self, register: str, uid: int) -> None:
        """Record that *uid* (a load) wrote *register*."""
        if uid < 0:
            raise ValueError(f"uid must be non-negative, got {uid}")
        self._producer[register] = uid

    def dependency_on(self, register: Optional[str]) -> int:
        """Uid of the record that must complete before an access reading
        *register* for its address may issue, or ``NO_DEP``."""
        if register is None:
            return NO_DEP
        return self._producer.get(register, NO_DEP)

    def clear(self, register: str) -> None:
        """Forget a register (e.g. it was overwritten by an ALU result)."""
        self._producer.pop(register, None)

    def reset(self) -> None:
        """Forget all register state (e.g. at a kernel phase boundary)."""
        self._producer.clear()
