"""The trace record format of the paper's trace generator (Section 2.1).

Each record carries a unique identification number, the cpu id, the access
type, the memory access address, the instruction pointer address, and the
unique id of an earlier record this record depends upon (or ``NO_DEP``).
The memory hierarchy simulator honors these dependencies: a dependent
access may not issue until the record it names has completed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Union

from repro.resilience.errors import TraceCorruptionError

#: Sentinel dependency id for records with no dependency.
NO_DEP = -1


class AccessType(enum.IntEnum):
    """Kind of memory access a trace record describes."""

    LOAD = 0
    STORE = 1
    IFETCH = 2


@dataclass(frozen=True)
class TraceRecord:
    """One memory reference in a trace.

    Attributes:
        uid: Unique identification number (monotonically increasing over
            the whole trace, across cpus).
        cpu: Id of the cpu that executed the access.
        kind: Load or store.
        address: Byte address of the access.
        ip: Instruction pointer of the memory instruction.
        dep_uid: Uid of an earlier record this record depends upon, or
            ``NO_DEP``.
    """

    uid: int
    cpu: int
    kind: AccessType
    address: int
    ip: int
    dep_uid: int = NO_DEP

    def __post_init__(self) -> None:
        # Eager validation: a malformed record quietly entering the
        # replayer can deadlock or corrupt a multi-million-record run,
        # so reject it at construction.  TraceCorruptionError subclasses
        # ValueError, preserving older ``except ValueError`` callers.
        if self.uid < 0:
            raise TraceCorruptionError(
                f"uid must be non-negative, got {self.uid}",
                uid=self.uid,
                reason="bad-uid",
            )
        if self.cpu < 0:
            raise TraceCorruptionError(
                f"record {self.uid}: cpu id must be non-negative, got {self.cpu}",
                uid=self.uid,
                reason="bad-cpu",
            )
        if not isinstance(self.kind, AccessType):
            raise TraceCorruptionError(
                f"record {self.uid}: unknown access kind {self.kind!r}",
                uid=self.uid,
                reason="bad-kind",
            )
        if self.address < 0:
            raise TraceCorruptionError(
                f"address must be non-negative, got {self.address}",
                uid=self.uid,
                reason="bad-address",
            )
        if self.dep_uid != NO_DEP and not 0 <= self.dep_uid < self.uid:
            if self.dep_uid == self.uid:
                reason = "self-dep"
            elif self.dep_uid > self.uid:
                reason = "forward-dep"
            else:
                reason = "bad-dep"
            raise TraceCorruptionError(
                f"record {self.uid} depends on {self.dep_uid}, which is not "
                "an earlier record",
                uid=self.uid,
                reason=reason,
            )

    @property
    def is_load(self) -> bool:
        return self.kind == AccessType.LOAD

    @property
    def has_dependency(self) -> bool:
        return self.dep_uid != NO_DEP


def write_trace(records: Iterable[TraceRecord], path: Union[str, Path]) -> int:
    """Write records to a text trace file; returns the record count.

    Format: one record per line, ``uid cpu kind address ip dep_uid`` with
    hexadecimal addresses, matching the paper's per-instruction record
    layout.  The format is deliberately simple and diff-friendly.
    """
    count = 0
    with open(path, "w") as handle:
        for record in records:
            handle.write(
                f"{record.uid} {record.cpu} {int(record.kind)} "
                f"{record.address:x} {record.ip:x} {record.dep_uid}\n"
            )
            count += 1
    return count


def read_trace(
    path: Union[str, Path], strict: bool = True
) -> Iterator[TraceRecord]:
    """Stream records back from a file written by :func:`write_trace`.

    Args:
        path: Trace file to read.
        strict: If True (default), a malformed line raises
            :class:`~repro.resilience.errors.TraceCorruptionError`
            naming the file and line.  If False, malformed lines are
            skipped (the replayer's lenient guard counts them a second
            time if they parse but violate stream invariants).
    """
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            parts = line.split()
            try:
                if len(parts) != 6:
                    raise TraceCorruptionError(
                        f"malformed trace line {line!r}", reason="bad-line"
                    )
                uid, cpu, kind, address, ip, dep = parts
                record = TraceRecord(
                    uid=int(uid),
                    cpu=int(cpu),
                    kind=AccessType(int(kind)),
                    address=int(address, 16),
                    ip=int(ip, 16),
                    dep_uid=int(dep),
                )
            except (TraceCorruptionError, ValueError) as exc:
                if strict:
                    reason = getattr(exc, "reason", "bad-line")
                    raise TraceCorruptionError(
                        f"{path}:{line_number}: {exc}", reason=reason
                    ) from exc
                continue
            yield record


def validate_trace(
    records: List[TraceRecord], n_cpus: Optional[int] = None
) -> None:
    """Check global trace invariants; raises TraceCorruptionError (a
    ValueError subclass) on violation.

    Invariants: uids strictly increase, every dependency names an
    earlier record that exists in the trace, and — when *n_cpus* is
    given — every record names a cpu within the simulated machine.
    """
    seen = set()
    last_uid = -1
    for record in records:
        if record.uid <= last_uid:
            raise TraceCorruptionError(
                f"uid {record.uid} does not increase after {last_uid}",
                uid=record.uid,
                reason="non-monotonic-uid",
            )
        if record.has_dependency and record.dep_uid not in seen:
            raise TraceCorruptionError(
                f"record {record.uid} depends on missing uid {record.dep_uid}",
                uid=record.uid,
                reason="missing-dep",
            )
        if n_cpus is not None and not 0 <= record.cpu < n_cpus:
            raise TraceCorruptionError(
                f"record {record.uid} names cpu {record.cpu}, machine has "
                f"{n_cpus}",
                uid=record.uid,
                reason="bad-cpu",
            )
        seen.add(record.uid)
        last_uid = record.uid
