"""Structural-rigidity RMS kernels: sAVDF, sAVIF, sUS (Table 1).

The three workloads are the same finite-element structural-rigidity
computation with different element kernels (AVDF, AVIF, US).  Each pass
walks the element list; per element it gathers the coordinates of its
nodes through the connectivity array (an indirect, dependency-carrying
access), performs the element-kernel arithmetic, and scatters the result
into the global stiffness structure.

The variants differ in mesh footprint and in how many nodes each element
kernel touches, which is what differentiates their Figure 5 behaviour:
AVDF and AVIF fit the baseline cache; US has a mesh large enough to
benefit from the stacked capacities.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.traces.kernels.base import (
    Access,
    KernelParams,
    LOAD,
    STORE,
    SHARED_BASE,
    carve,
    private_base,
)


def _rigidity(
    cpu: int,
    nthreads: int,
    params: KernelParams,
    rng: random.Random,
    nodes_per_element: int,
) -> Iterator[Access]:
    """Common element-assembly loop shared by the three kernels."""
    # Footprint split: half to node data, a quarter each to connectivity
    # and the global stiffness structure.
    n_nodes = params.elements(0.5)
    n_elements = max(16, n_nodes // nodes_per_element)
    base = SHARED_BASE
    node_xyz, base = carve(base, 8, n_nodes)
    connect, base = carve(base, 4, n_elements * nodes_per_element)
    stiff, base = carve(base, 8, max(16, params.elements(0.25)))
    scratch, _ = carve(private_base(cpu), 8, 64)

    while True:
        for element in range(n_elements):
            if element % nthreads != cpu:
                continue
            # Real meshes are bandwidth-ordered: an element's nodes are
            # numbered close together, so the coordinate gathers cluster
            # around the element's own position in the node array.
            centre = (element * nodes_per_element) % n_nodes
            for n in range(nodes_per_element):
                idx = element * nodes_per_element + n
                yield (LOAD, connect.addr(idx), 0, None, "node_id")
                # Coordinate gather depends on the connectivity load.
                node = max(0, min(n_nodes - 1, centre + rng.randint(-32, 32)))
                yield (LOAD, node_xyz.addr(node), 1, "node_id", None)
            # Element-kernel arithmetic working set (registers + scratch).
            for s in range(4):
                yield (LOAD, scratch.addr(s), 2, None, None)
            # Scatter the element contribution into the global structure,
            # near the element's own rows (banded assembled system).
            centre_s = (element * nodes_per_element) % stiff.count
            target = max(0, min(stiff.count - 1, centre_s + rng.randint(-32, 32)))
            yield (LOAD, stiff.addr(target), 3, "node_id", None)
            yield (STORE, stiff.addr(target), 4, "node_id", None)


def savdf(
    cpu: int, nthreads: int, params: KernelParams, rng: random.Random
) -> Iterator[Access]:
    """Structural Rigidity Computation with the AVDF kernel ("sAVDF")."""
    return _rigidity(cpu, nthreads, params, rng, nodes_per_element=4)


def savif(
    cpu: int, nthreads: int, params: KernelParams, rng: random.Random
) -> Iterator[Access]:
    """Structural Rigidity Computation with the AVIF kernel ("sAVIF")."""
    return _rigidity(cpu, nthreads, params, rng, nodes_per_element=8)


def sus(
    cpu: int, nthreads: int, params: KernelParams, rng: random.Random
) -> Iterator[Access]:
    """Structural Rigidity Computation with the US kernel ("sUS").

    Same assembly structure, but the US variant's mesh footprint is set
    large (see the registry defaults), so the node-coordinate gathers miss
    the baseline cache and the workload gains from stacked capacity.
    """
    return _rigidity(cpu, nthreads, params, rng, nodes_per_element=6)
