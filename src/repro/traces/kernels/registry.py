"""Registry of the twelve RMS kernels with their default footprints.

The default footprints place each workload on Figure 5's capacity axis
the way the paper's data does: conj, dSym, sSym, sAVDF, sAVIF, and svd
fit the 4 MB baseline cache (flat CPMA); gauss, pcg, sMVM, sTrans, sUS,
and svm have working sets between 11 and 28 MB and are the workloads the
paper reports "decrease dramatically as the last level cache increases
from 4 to 64MB".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List

from repro.traces.kernels import dense, rigidity, sparse, svm as svm_mod
from repro.traces.kernels.base import Access, KernelParams

MB = 1 << 20

KernelFn = Callable[..., Iterator[Access]]


@dataclass(frozen=True)
class KernelEntry:
    """A registered kernel: its generator and default sizing."""

    name: str
    fn: KernelFn
    default_footprint: int
    description: str


KERNELS: Dict[str, KernelEntry] = {
    entry.name: entry
    for entry in [
        KernelEntry("conj", sparse.conj, int(1.4 * MB),
                    "Conjugate Gradient Solver (solids)"),
        KernelEntry("dsym", dense.dsym, 2 * MB,
                    "Dense Matrix Multiplication (blocked)"),
        KernelEntry("gauss", dense.gauss, 16 * MB,
                    "Linear Equation Solver, Gauss-Jordan Elimination"),
        KernelEntry("pcg", sparse.pcg, 14 * MB,
                    "Preconditioned Conjugate Gradient, Cholesky/red-black"),
        KernelEntry("smvm", sparse.smvm, 20 * MB,
                    "Sparse Matrix Multiplication"),
        KernelEntry("ssym", sparse.ssym, 2 * MB,
                    "Symmetrical Sparse Matrix Multiplication"),
        KernelEntry("strans", sparse.strans, 20 * MB,
                    "Transposed Sparse Matrix Multiplication"),
        KernelEntry("savdf", rigidity.savdf, int(1.8 * MB),
                    "Structural Rigidity, AVDF kernel"),
        KernelEntry("savif", rigidity.savif, int(2.2 * MB),
                    "Structural Rigidity, AVIF kernel"),
        KernelEntry("sus", rigidity.sus, 11 * MB,
                    "Structural Rigidity, US kernel"),
        KernelEntry("svd", dense.svd, int(1.6 * MB),
                    "Singular Value Decomposition, Jacobi method"),
        KernelEntry("svm", svm_mod.svm, 16 * MB,
                    "Pattern Recognition for Face Recognition"),
    ]
}

#: Workloads the paper calls out as improving dramatically with capacity.
CAPACITY_SENSITIVE = ("gauss", "pcg", "smvm", "strans", "sus", "svm")


def kernel_names() -> List[str]:
    """All registered kernel names, in Table 1 order."""
    return list(KERNELS)


def get_kernel(name: str) -> KernelEntry:
    """Look up a kernel by name."""
    try:
        return KERNELS[name]
    except KeyError:
        raise KeyError(
            f"unknown RMS kernel {name!r}; known: {kernel_names()}"
        ) from None


def default_params(name: str, scale: int = 1) -> KernelParams:
    """Default :class:`KernelParams` for a kernel at a given scale."""
    return KernelParams(
        footprint_bytes=get_kernel(name).default_footprint, scale=scale
    )
