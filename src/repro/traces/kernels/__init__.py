"""Synthetic kernel generators for the twelve RMS workloads of Table 1.

Each kernel is a generator function that walks the data structures of its
algorithm and yields raw accesses; see :mod:`repro.traces.kernels.base`
for the access tuple format and the shared data-region helpers.
"""

from repro.traces.kernels.base import (
    Access,
    KernelParams,
    Region,
    private_base,
    SHARED_BASE,
)
from repro.traces.kernels.registry import KERNELS, kernel_names, get_kernel

__all__ = [
    "Access",
    "KernelParams",
    "Region",
    "private_base",
    "SHARED_BASE",
    "KERNELS",
    "kernel_names",
    "get_kernel",
]
