"""Dense linear-algebra RMS kernels: dSym, gauss, svd.

* ``dsym`` — blocked dense matrix multiplication.  Its cache-blocked
  working set (three tiles) fits the baseline 4 MB cache, so its CPMA is
  flat across stacked-cache capacities even though the total matrices are
  large (the blocking captures the reuse).
* ``gauss`` — Gauss-Jordan elimination over a matrix far larger than the
  baseline cache.  Every pivot step re-streams the remaining matrix, so a
  stacked cache that holds the whole matrix converts the re-streams into
  hits: one of Figure 5's big winners.
* ``svd`` — one-sided Jacobi singular value decomposition over a small
  matrix: repeated column-pair rotations, cache-resident.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.traces.kernels.base import (
    Access,
    KernelParams,
    LOAD,
    STORE,
    SHARED_BASE,
    carve,
    private_base,
)


def dsym(
    cpu: int, nthreads: int, params: KernelParams, rng: random.Random
) -> Iterator[Access]:
    """Dense Matrix Multiplication ("dSYM", Table 1), cache-blocked.

    C = A*B with square tiles; a thread owns alternating tile-rows of C.
    Within a tile-triple the same A and B tiles are re-walked once per
    inner row, producing the heavy short-range reuse of blocked GEMM.
    """
    # Micro-kernel tiles are L1-resident (32x32 doubles = 8 KB); the
    # footprint parameter sizes the *full matrices* the tiles stream from.
    tile_dim = 32
    matrix_elems = params.elements()
    n_tiles = max(2, int((matrix_elems // (tile_dim * tile_dim)) ** 0.5))
    base = SHARED_BASE
    a, base = carve(base, 8, tile_dim * tile_dim * n_tiles * n_tiles)
    b, base = carve(base, 8, tile_dim * tile_dim * n_tiles * n_tiles)
    c, _ = carve(private_base(cpu), 8, tile_dim * tile_dim * n_tiles)

    def tile_addr(region, ti: int, tj: int, i: int, j: int) -> int:
        tile_base = (ti * n_tiles + tj) * tile_dim * tile_dim
        return region.addr(tile_base + i * tile_dim + j)

    while True:
        for bi in range(n_tiles):
            if bi % nthreads != cpu:
                continue
            for bj in range(n_tiles):
                for bk in range(n_tiles):
                    # Multiply tile A[bi,bk] by tile B[bk,bj] into C[bi,bj].
                    # The B tile is re-walked for every i — the blocked
                    # reuse (captured by the L1) that keeps dSYM's CPMA
                    # flat across stacked-cache capacities.
                    for i in range(tile_dim):
                        for k in range(tile_dim):
                            yield (LOAD, tile_addr(a, bi, bk, i, k), 0, None, None)
                            yield (LOAD, tile_addr(b, bk, bj, k, (i + k) % tile_dim), 1, None, None)
                        yield (LOAD, tile_addr(c, 0, bj, i, i), 2, None, None)
                        yield (STORE, tile_addr(c, 0, bj, i, i), 3, None, None)


def gauss(
    cpu: int, nthreads: int, params: KernelParams, rng: random.Random
) -> Iterator[Access]:
    """Linear Equation Solver using Gauss-Jordan Elimination ("gauss").

    Pivot step k: the pivot row is loaded (and stays hot), then every
    other row is streamed — load row element, load the multiplier column
    element, store the updated row element.  The full matrix is re-touched
    every step, so capacity beyond the matrix size converts the streaming
    into hits.
    """
    n_elems = params.elements()
    dim = max(8, int(n_elems ** 0.5))
    mat, _ = carve(SHARED_BASE, 8, dim * dim)

    def elem(r: int, col: int) -> int:
        return mat.addr(r * dim + col)

    k = 0
    while True:
        pivot = k % dim
        # Load the pivot row once (it stays cached during the step).
        for j in range(dim):
            yield (LOAD, elem(pivot, j), 0, None, None)
        for row in range(dim):
            if row == pivot or row % nthreads != cpu:
                continue
            yield (LOAD, elem(row, pivot), 1, None, "mult")
            for j in range(dim):
                yield (LOAD, elem(row, j), 2, None, None)
                yield (LOAD, elem(pivot, j), 3, None, None)
                yield (STORE, elem(row, j), 4, "mult", None)
        k += 1


def svd(
    cpu: int, nthreads: int, params: KernelParams, rng: random.Random
) -> Iterator[Access]:
    """Singular Value Decomposition with the Jacobi method ("Svd").

    One-sided Jacobi: sweep over column pairs (i, j); each rotation
    streams both columns twice (dot products, then the rotation update).
    The matrix is small and cache-resident.
    """
    n_elems = params.elements()
    dim = max(8, int(n_elems ** 0.5))
    mat, _ = carve(SHARED_BASE, 8, dim * dim)

    def col_elem(col: int, r: int) -> int:
        # Column-major storage: one-sided Jacobi walks whole columns, so
        # the matrix is laid out to make those walks sequential.
        return mat.addr(col * dim + r)

    while True:
        for i in range(dim - 1):
            if i % nthreads != cpu:
                continue
            for j in range(i + 1, dim):
                # Dot products a_i . a_j, a_i . a_i, a_j . a_j.
                for r in range(dim):
                    yield (LOAD, col_elem(i, r), 0, None, None)
                    yield (LOAD, col_elem(j, r), 1, None, None)
                # Apply the rotation to both columns.
                for r in range(dim):
                    yield (LOAD, col_elem(i, r), 2, None, None)
                    yield (LOAD, col_elem(j, r), 3, None, None)
                    yield (STORE, col_elem(i, r), 4, None, None)
                    yield (STORE, col_elem(j, r), 5, None, None)
