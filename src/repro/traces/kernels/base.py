"""Shared infrastructure for synthetic RMS kernel generators.

A kernel generator is a Python generator function with the signature::

    def kernel(cpu, nthreads, params, rng) -> Iterator[Access]

yielding an endless stream of :data:`Access` tuples
``(kind, address, site, read_reg, write_reg)``:

* ``kind`` — 0 for load, 1 for store (values of
  :class:`repro.traces.record.AccessType`).
* ``address`` — byte address.
* ``site`` — small integer identifying the static instruction within the
  kernel; the trace generator maps it to a synthetic instruction pointer.
* ``read_reg`` — symbolic register read for *address computation* (a
  dependency on whichever earlier load produced it), or None.
* ``write_reg`` — symbolic register this load writes, or None.

Kernels are infinite (they iterate their algorithm's outer loop forever);
the SMP interleaver truncates the merged stream at the requested record
count, mirroring the paper's fixed-length (1-billion-reference) traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: kind, address, site, read_reg, write_reg
Access = Tuple[int, int, int, Optional[str], Optional[str]]

LOAD = 0
STORE = 1

#: Base of the address region shared by all threads (matrices, models).
SHARED_BASE = 0x1000_0000

#: Spacing between per-thread private regions.
_PRIVATE_STRIDE = 0x1000_0000
_PRIVATE_BASE = 0x8000_0000


def private_base(cpu: int) -> int:
    """Base address of a cpu's private data region (vectors, temporaries)."""
    if cpu < 0:
        raise ValueError(f"cpu must be non-negative, got {cpu}")
    return _PRIVATE_BASE + cpu * _PRIVATE_STRIDE


@dataclass(frozen=True)
class KernelParams:
    """Sizing parameters for a kernel generator.

    Attributes:
        footprint_bytes: Target size of the kernel's primary shared data
            structure.  Each workload's default footprint determines where
            it lands on Figure 5's capacity axis (whether it fits in 4 MB,
            benefits at 12/32 MB, etc.).
        element_bytes: Size of one data element (8 for doubles).
        scale: Divisor applied to footprints by the experiment harness so
            scaled-down runs preserve the footprint/capacity ratios of the
            paper (see DESIGN.md).
    """

    footprint_bytes: int
    element_bytes: int = 8
    scale: int = 1

    def __post_init__(self) -> None:
        if self.footprint_bytes <= 0:
            raise ValueError("footprint_bytes must be positive")
        if self.scale < 1:
            raise ValueError("scale must be >= 1")

    @property
    def effective_footprint(self) -> int:
        """Footprint after scaling, bytes."""
        return max(4096, self.footprint_bytes // self.scale)

    def elements(self, fraction: float = 1.0) -> int:
        """Number of elements filling *fraction* of the effective footprint."""
        count = int(self.effective_footprint * fraction) // self.element_bytes
        return max(16, count)


@dataclass(frozen=True)
class Region:
    """A contiguous array of fixed-size elements in the traced address space."""

    base: int
    element_bytes: int
    count: int

    def __post_init__(self) -> None:
        if self.count <= 0 or self.element_bytes <= 0:
            raise ValueError("region must have positive size")

    def addr(self, index: int) -> int:
        """Byte address of element *index* (wrapping around the region)."""
        return self.base + (index % self.count) * self.element_bytes

    @property
    def size_bytes(self) -> int:
        return self.count * self.element_bytes

    @property
    def end(self) -> int:
        return self.base + self.size_bytes


def carve(base: int, element_bytes: int, count: int) -> Tuple[Region, int]:
    """Allocate a region at *base*; returns (region, next_free_base).

    The next base is rounded up to a 4 KB boundary so regions never share
    an OS page (keeps DRAM page behaviour of distinct structures distinct).
    """
    region = Region(base, element_bytes, count)
    next_base = (region.end + 0xFFF) & ~0xFFF
    return region, next_base
