"""The svm RMS workload: pattern recognition for face recognition.

Table 1's ``Svm`` is an SVM-based face recognizer.  Classification of one
image evaluates the kernel function of the test feature vector against
every support vector — a full sequential scan of a support-vector array
that is far larger than the baseline cache, repeated per image, with a
small hot test vector.

This is the paper's headline Memory+Logic winner: at 4 MB the scan
streams from memory every image; once the stacked cache holds the whole
support-vector set, nearly every access hits — Figure 5 shows svm's CPMA
dropping by more than half at 32 MB.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.traces.kernels.base import (
    Access,
    KernelParams,
    LOAD,
    STORE,
    SHARED_BASE,
    carve,
    private_base,
)

#: Elements per feature vector (a 64-dim feature = one 512-byte vector).
FEATURE_DIM = 64


def svm(
    cpu: int, nthreads: int, params: KernelParams, rng: random.Random
) -> Iterator[Access]:
    """Pattern Recognition Algorithm for Face Recognition ("Svm").

    Support vectors are shared between threads; each thread classifies its
    own stream of test images, accumulating kernel sums into a private
    accumulator.  Dot products have no address dependencies, so the scan
    is bandwidth-bound rather than latency-bound — big memory-level
    parallelism, throttled by the off-die bus in the 4 MB baseline.
    """
    sv_elems = params.elements(0.95)
    n_support = max(4, sv_elems // FEATURE_DIM)
    support, _ = carve(SHARED_BASE, 8, n_support * FEATURE_DIM)
    pbase = private_base(cpu)
    test_vec, pbase = carve(pbase, 8, FEATURE_DIM)
    accum, pbase = carve(pbase, 8, max(16, n_support // 8))

    # Threads interleave support-vector chunks so both cpus walk the whole
    # shared set each image.
    while True:
        # One test image: refresh the (hot) test vector...
        for d in range(FEATURE_DIM):
            yield (LOAD, test_vec.addr(d), 0, None, None)
        # ...then scan every support vector.
        for s in range(n_support):
            for d in range(0, FEATURE_DIM, 2):
                # The dot-product loop, two elements per iteration.
                yield (LOAD, support.addr(s * FEATURE_DIM + d), 1, None, None)
                yield (LOAD, test_vec.addr(d), 2, None, None)
            if s % 8 == 0:
                yield (STORE, accum.addr(s // 8), 3, None, None)
