"""Sparse linear-algebra RMS kernels: conj, pcg, sMVM, sSym, sTrans.

All five workloads walk synthetic CSR (compressed sparse row) matrices.
The distinguishing features are footprint and access pattern:

* ``conj`` — conjugate-gradient solver on a solids matrix small enough to
  fit the baseline 4 MB cache (flat CPMA in Figure 5).
* ``pcg`` — preconditioned CG with a red-black-reordered triangular solve
  (long dependent-load chains) over a ~18 MB footprint.
* ``smvm`` — plain sparse matrix-vector multiply streaming a ~20 MB matrix
  with random gathers into the source vector.
* ``ssym`` — symmetric sparse multiply storing only one triangle (~3 MB,
  fits the baseline cache).
* ``strans`` — transposed sparse multiply: streamed matrix with scattered
  read-modify-write updates of the destination vector (~24 MB).

Each kernel partitions rows between the two threads in contiguous chunks
(shared matrix, private vectors), as a data-parallel OpenMP-style RMS code
would.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.traces.kernels.base import (
    Access,
    KernelParams,
    LOAD,
    STORE,
    SHARED_BASE,
    carve,
    private_base,
)

#: Non-zero entries per matrix row in the synthetic CSR structures.
NNZ_PER_ROW = 8

#: Rows handed to a thread at a time (OpenMP-style chunked partitioning).
ROW_CHUNK = 16


def _csr_layout(params: KernelParams, value_fraction: float = 0.7):
    """Carve the shared CSR arrays (values, column indices, row pointers).

    *value_fraction* of the footprint goes to the 8-byte values; column
    indices are 4-byte and row pointers 4-byte.
    """
    nnz = max(NNZ_PER_ROW, params.elements(value_fraction))
    rows = max(2, nnz // NNZ_PER_ROW)
    base = SHARED_BASE
    vals, base = carve(base, 8, nnz)
    cols, base = carve(base, 4, nnz)
    rowp, base = carve(base, 4, rows + 1)
    return vals, cols, rowp, rows, base


def _spmv_rows(
    cpu: int,
    nthreads: int,
    rng: random.Random,
    vals,
    cols,
    rowp,
    x,
    y,
    rows: int,
    site_base: int,
    band: int = 0,
) -> Iterator[Access]:
    """One y = A*x pass over this thread's share of the rows.

    The dependent-load chain per element is the one Section 2.1
    describes: the column-index load produces the address of the x-vector
    gather, which therefore depends on it.

    Args:
        band: If non-zero, the matrix is banded (typical of assembled FEM
            systems): gathers land within +-band rows of the diagonal, so
            they have strong temporal locality.  If zero, columns are
            spread over the whole vector (unstructured sparsity).
    """
    for row in range(rows):
        if (row // ROW_CHUNK) % nthreads != cpu:
            continue
        yield (LOAD, rowp.addr(row), site_base, None, "rowp")
        for k in range(NNZ_PER_ROW):
            j = row * NNZ_PER_ROW + k
            yield (LOAD, cols.addr(j), site_base + 1, "rowp", "col")
            yield (LOAD, vals.addr(j), site_base + 2, "rowp", None)
            if band:
                gather = max(0, min(rows - 1, row + rng.randint(-band, band)))
            else:
                # Unstructured sparsity: spread over the whole vector but
                # with the mild clustering of real matrices (a random
                # cluster of columns per row).
                gather = (row * 97 + rng.randrange(4096)) % x.count
            yield (LOAD, x.addr(gather), site_base + 3, "col", "xval")
        yield (STORE, y.addr(row), site_base + 4, None, None)


def _vector_axpy(
    cpu: int, x, y, n: int, site_base: int
) -> Iterator[Access]:
    """y += a*x over a private vector pair (streaming, no dependencies).

    """
    for i in range(n):
        yield (LOAD, x.addr(i), site_base, None, None)
        yield (LOAD, y.addr(i), site_base + 1, None, None)
        yield (STORE, y.addr(i), site_base + 2, None, None)


def conj(
    cpu: int, nthreads: int, params: KernelParams, rng: random.Random
) -> Iterator[Access]:
    """Conjugate Gradient Solver on solids ("Conj Solids", Table 1).

    Per iteration: one SpMV over the (small) solids matrix plus the CG
    vector updates (two axpy passes and a dot product).
    """
    vals, cols, rowp, rows, _ = _csr_layout(params)
    pbase = private_base(cpu)
    x, pbase = carve(pbase, 8, rows)
    y, pbase = carve(pbase, 8, rows)
    r, pbase = carve(pbase, 8, rows)
    p, pbase = carve(pbase, 8, rows)
    while True:
        # Solids matrices are assembled FEM systems: banded, so the
        # x-vector gathers stay near the diagonal (strong locality).
        yield from _spmv_rows(cpu, nthreads, rng, vals, cols, rowp, p, y,
                              rows, 0, band=64)
        n = rows // nthreads
        yield from _vector_axpy(cpu, y, r, n, 8)
        yield from _vector_axpy(cpu, r, p, n, 12)


def pcg(
    cpu: int, nthreads: int, params: KernelParams, rng: random.Random
) -> Iterator[Access]:
    """Preconditioned CG with Cholesky preconditioner and red-black
    reordering ("pcg", Table 1).

    The triangular preconditioner solve is modeled as two half-sweeps
    (red rows then black rows); within a sweep each row's update gathers
    previously-solved neighbour values through an index load, giving the
    long dependent chains characteristic of triangular solves.
    """
    vals, cols, rowp, rows, _ = _csr_layout(params)
    pbase = private_base(cpu)
    x, pbase = carve(pbase, 8, rows)
    y, pbase = carve(pbase, 8, rows)
    z, pbase = carve(pbase, 8, rows)
    while True:
        # SpMV with the full matrix.
        yield from _spmv_rows(cpu, nthreads, rng, vals, cols, rowp, x, y, rows, 0)
        # Red-black preconditioner: two dependent half-sweeps.
        for colour in (0, 1):
            for row in range(colour, rows, 2):
                if (row // ROW_CHUNK) % nthreads != cpu:
                    continue
                yield (LOAD, rowp.addr(row), 8, None, "rowp")
                for k in range(NNZ_PER_ROW // 2):
                    j = row * NNZ_PER_ROW + k
                    yield (LOAD, cols.addr(j), 9, "rowp", "col")
                    # Red-black neighbours of row are nearby rows (the
                    # reordering keeps the band structure).
                    neighbour = max(0, min(rows - 1,
                                           row + rng.randint(-512, 512)))
                    # The gather depends on the column index AND the value
                    # it reads was produced earlier in the sweep: a true
                    # serial chain, so make the loaded value feed the next
                    # address through "zval".
                    yield (LOAD, z.addr(neighbour), 10, "col", "zval")
                yield (STORE, z.addr(row), 11, "zval", None)


def smvm(
    cpu: int, nthreads: int, params: KernelParams, rng: random.Random
) -> Iterator[Access]:
    """Sparse Matrix Multiplication ("sMvm", Table 1): repeated y = A*x."""
    vals, cols, rowp, rows, _ = _csr_layout(params)
    pbase = private_base(cpu)
    # Shared source vector (both threads gather from it).
    x, _ = carve(SHARED_BASE + 0x4000_0000, 8, rows)
    y, pbase = carve(pbase, 8, rows)
    while True:
        # Real unstructured matrices still have strong column clustering
        # after bandwidth-reducing reordering; the gather window is far
        # larger than the L1 but page-local.
        yield from _spmv_rows(cpu, nthreads, rng, vals, cols, rowp, x, y,
                              rows, 0, band=4096)


def ssym(
    cpu: int, nthreads: int, params: KernelParams, rng: random.Random
) -> Iterator[Access]:
    """Symmetrical Sparse Matrix Multiplication ("sSym", Table 1).

    Stores one triangle only (half the values), so each element updates
    both y[row] and y[col]; the footprint fits the baseline cache.
    """
    vals, cols, rowp, rows, _ = _csr_layout(params)
    pbase = private_base(cpu)
    x, pbase = carve(pbase, 8, rows)
    y, pbase = carve(pbase, 8, rows)
    while True:
        for row in range(rows):
            if (row // ROW_CHUNK) % nthreads != cpu:
                continue
            yield (LOAD, rowp.addr(row), 0, None, "rowp")
            for k in range(NNZ_PER_ROW // 2):
                j = row * (NNZ_PER_ROW // 2) + k
                yield (LOAD, cols.addr(j), 1, "rowp", "col")
                yield (LOAD, vals.addr(j), 2, "rowp", None)
                # The stored triangle of an assembled symmetric system is
                # banded: gathers and the symmetric scatter stay near the
                # diagonal.
                gather = max(0, min(rows - 1, row + rng.randint(-64, 64)))
                yield (LOAD, x.addr(gather), 3, "col", None)
                # Symmetric update: scatter into y[col] as well as y[row].
                yield (LOAD, y.addr(gather), 4, "col", None)
                yield (STORE, y.addr(gather), 5, "col", None)
            yield (STORE, y.addr(row), 6, None, None)


def strans(
    cpu: int, nthreads: int, params: KernelParams, rng: random.Random
) -> Iterator[Access]:
    """Transposed Sparse Matrix Multiplication ("sTrans", Table 1).

    y[col] += val * x[row]: the matrix streams through, but every element
    performs a dependent read-modify-write scatter into the destination
    vector.
    """
    vals, cols, rowp, rows, _ = _csr_layout(params)
    pbase = private_base(cpu)
    x, pbase = carve(pbase, 8, rows)
    y, pbase = carve(pbase, 8, rows)
    while True:
        for row in range(rows):
            if (row // ROW_CHUNK) % nthreads != cpu:
                continue
            yield (LOAD, rowp.addr(row), 0, None, "rowp")
            yield (LOAD, x.addr(row), 1, None, None)
            for k in range(NNZ_PER_ROW):
                j = row * NNZ_PER_ROW + k
                yield (LOAD, cols.addr(j), 2, "rowp", "col")
                yield (LOAD, vals.addr(j), 3, "rowp", None)
                # A transposed banded matrix scatters near the diagonal;
                # the window is far larger than the L1 but page-local in
                # the DRAM sense.
                scatter = max(0, min(rows - 1,
                                     row + rng.randint(-2048, 2048)))
                yield (LOAD, y.addr(scatter), 4, "col", "yval")
                yield (STORE, y.addr(scatter), 5, "yval", None)
