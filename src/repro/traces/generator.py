"""Two-thread SMP trace generation: kernels -> dependency-annotated records.

Mirrors the paper's trace-generation flow (Section 2.1): the workload runs
on a two-processor SMP (here: two kernel generator instances partitioning
the shared data), and the trace generator emits one record per memory
instruction, annotated with the uid of the earlier record it depends on.
Records from the two cpus are interleaved the way a free-running SMP would
interleave them (round-robin with small random jitter), and uids increase
monotonically over the merged stream.

Two equivalent output forms are produced from one shared stream:
:meth:`TraceGenerator.records` yields validated :class:`TraceRecord`
objects (the original API), and :meth:`TraceGenerator.arrays` packs the
same stream into a :data:`TRACE_DTYPE` numpy structured array — the
batch form consumed by the chunked replay fast path
(:meth:`repro.memsim.replay.TraceReplayer.feed_array`).  Both forms
consume the RNG identically, so a spec maps to one trace regardless of
representation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.traces.deps import DependencyTracker
from repro.traces.kernels.base import KernelParams
from repro.traces.kernels.registry import default_params, get_kernel
from repro.traces.record import AccessType, NO_DEP, TraceRecord

#: Synthetic code region for instruction pointers, one page per kernel site.
_IP_BASE = 0x0040_0000

#: Structured-array layout of a batched trace: one row per record, same
#: fields as :class:`TraceRecord`.  All-int64 keeps row -> record exact.
TRACE_DTYPE = np.dtype(
    [
        ("uid", np.int64),
        ("cpu", np.int64),
        ("kind", np.int64),
        ("address", np.int64),
        ("ip", np.int64),
        ("dep_uid", np.int64),
    ]
)

#: One trace row as a plain tuple: (uid, cpu, kind, address, ip, dep_uid).
TraceRow = Tuple[int, int, int, int, int, int]


def records_to_array(records: Iterable[TraceRecord]) -> np.ndarray:
    """Pack :class:`TraceRecord` objects into a :data:`TRACE_DTYPE` array."""
    rows = [
        (r.uid, r.cpu, int(r.kind), r.address, r.ip, r.dep_uid)
        for r in records
    ]
    if not rows:
        return np.empty(0, dtype=TRACE_DTYPE)
    return np.array(rows, dtype=TRACE_DTYPE)


def array_to_records(array: np.ndarray) -> Iterator[TraceRecord]:
    """Unpack a :data:`TRACE_DTYPE` array into validated records."""
    for uid, cpu, kind, address, ip, dep_uid in array.tolist():
        yield TraceRecord(
            uid=uid,
            cpu=cpu,
            kind=AccessType(kind),
            address=address,
            ip=ip,
            dep_uid=dep_uid,
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """A fully-specified trace-generation request.

    Attributes:
        name: RMS kernel name (see Table 1 / the kernel registry).
        n_records: Total records in the merged trace.
        n_threads: Number of SMP cpus (the paper uses 2).
        params: Kernel sizing; defaults to the registry footprint.
        seed: RNG seed — traces are deterministic given a spec.
        ifetch_every: If > 0, interleave one instruction-fetch record
            (at the current kernel site's instruction pointer) every N
            data references per cpu, exercising the L1I path of
            Figure 4.  RMS kernels are small loops, so these fetches are
            L1I-resident almost always.
    """

    name: str
    n_records: int = 100_000
    n_threads: int = 2
    params: Optional[KernelParams] = None
    seed: int = 1234
    ifetch_every: int = 0

    def __post_init__(self) -> None:
        if self.n_records <= 0:
            raise ValueError("n_records must be positive")
        if self.n_threads < 1:
            raise ValueError("n_threads must be >= 1")

    def resolved_params(self, scale: int = 1) -> KernelParams:
        """The kernel params to use (default footprint unless overridden)."""
        if self.params is not None:
            return self.params
        return default_params(self.name, scale=scale)


class TraceGenerator:
    """Generates a merged, dependency-annotated trace for one workload."""

    def __init__(self, spec: WorkloadSpec, scale: int = 1) -> None:
        self.spec = spec
        self.scale = scale
        self._entry = get_kernel(spec.name)

    def _stream(self) -> Iterator[TraceRow]:
        """Stream the merged trace as plain int tuples.

        This is the single source of truth for trace content; both
        :meth:`records` and :meth:`arrays` wrap it, so the two output
        forms consume the RNGs identically and describe the same trace.
        """
        spec = self.spec
        params = spec.resolved_params(self.scale)
        master_rng = random.Random(spec.seed)
        threads: List[Iterator] = []
        trackers: List[DependencyTracker] = []
        for cpu in range(spec.n_threads):
            rng = random.Random(spec.seed + 1000 * (cpu + 1))
            threads.append(
                iter(self._entry.fn(cpu, spec.n_threads, params, rng))
            )
            trackers.append(DependencyTracker())

        ifetch_kind = int(AccessType.IFETCH)
        uid = 0
        live = list(range(spec.n_threads))
        while uid < spec.n_records and live:
            for cpu in list(live):
                # Small random burst per turn: SMP interleaving is not
                # perfectly alternating.
                burst = master_rng.randint(1, 4)
                for _ in range(burst):
                    if uid >= spec.n_records:
                        return
                    try:
                        kind, address, site, read_reg, write_reg = next(
                            threads[cpu]
                        )
                    except StopIteration:
                        live.remove(cpu)
                        break
                    tracker = trackers[cpu]
                    ip = _IP_BASE + site * 4
                    if (
                        spec.ifetch_every > 0
                        and uid % spec.ifetch_every == spec.ifetch_every - 1
                        and uid < spec.n_records - 1
                    ):
                        # Fetch the instruction line feeding this site.
                        yield (uid, cpu, ifetch_kind, ip, ip, NO_DEP)
                        uid += 1
                    dep = tracker.dependency_on(read_reg)
                    row = (uid, cpu, int(kind), address, ip, dep)
                    if write_reg is not None and kind == 0:
                        tracker.produce(write_reg, uid)
                    yield row
                    uid += 1

    def records(self) -> Iterator[TraceRecord]:
        """Stream the merged trace, truncated at ``spec.n_records``."""
        for uid, cpu, kind, address, ip, dep_uid in self._stream():
            yield TraceRecord(
                uid=uid,
                cpu=cpu,
                kind=AccessType(kind),
                address=address,
                ip=ip,
                dep_uid=dep_uid,
            )

    def arrays(self) -> "np.ndarray":
        """The full trace as one :data:`TRACE_DTYPE` structured array.

        Row *i* equals the *i*-th record from :meth:`records` field for
        field; building the batch form skips per-record ``TraceRecord``
        construction, which dominates generation time at scale.
        """
        rows = list(self._stream())
        if not rows:
            return np.empty(0, dtype=TRACE_DTYPE)
        return np.array(rows, dtype=TRACE_DTYPE)


def generate_trace(
    name: str,
    n_records: int = 100_000,
    n_threads: int = 2,
    scale: int = 1,
    seed: int = 1234,
    params: Optional[KernelParams] = None,
) -> List[TraceRecord]:
    """Generate a complete trace as a list (convenience wrapper)."""
    spec = WorkloadSpec(
        name=name,
        n_records=n_records,
        n_threads=n_threads,
        seed=seed,
        params=params,
    )
    return list(TraceGenerator(spec, scale=scale).records())


def generate_trace_array(
    name: str,
    n_records: int = 100_000,
    n_threads: int = 2,
    scale: int = 1,
    seed: int = 1234,
    params: Optional[KernelParams] = None,
) -> np.ndarray:
    """Generate a complete trace as a :data:`TRACE_DTYPE` array."""
    spec = WorkloadSpec(
        name=name,
        n_records=n_records,
        n_threads=n_threads,
        seed=seed,
        params=params,
    )
    return TraceGenerator(spec, scale=scale).arrays()


def rms_workloads() -> Dict[str, str]:
    """Table 1: workload name -> description."""
    from repro.traces.kernels.registry import KERNELS

    return {name: entry.description for name, entry in KERNELS.items()}
