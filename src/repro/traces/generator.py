"""Two-thread SMP trace generation: kernels -> dependency-annotated records.

Mirrors the paper's trace-generation flow (Section 2.1): the workload runs
on a two-processor SMP (here: two kernel generator instances partitioning
the shared data), and the trace generator emits one record per memory
instruction, annotated with the uid of the earlier record it depends on.
Records from the two cpus are interleaved the way a free-running SMP would
interleave them (round-robin with small random jitter), and uids increase
monotonically over the merged stream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.traces.deps import DependencyTracker
from repro.traces.kernels.base import KernelParams
from repro.traces.kernels.registry import default_params, get_kernel
from repro.traces.record import AccessType, NO_DEP, TraceRecord

#: Synthetic code region for instruction pointers, one page per kernel site.
_IP_BASE = 0x0040_0000


@dataclass(frozen=True)
class WorkloadSpec:
    """A fully-specified trace-generation request.

    Attributes:
        name: RMS kernel name (see Table 1 / the kernel registry).
        n_records: Total records in the merged trace.
        n_threads: Number of SMP cpus (the paper uses 2).
        params: Kernel sizing; defaults to the registry footprint.
        seed: RNG seed — traces are deterministic given a spec.
        ifetch_every: If > 0, interleave one instruction-fetch record
            (at the current kernel site's instruction pointer) every N
            data references per cpu, exercising the L1I path of
            Figure 4.  RMS kernels are small loops, so these fetches are
            L1I-resident almost always.
    """

    name: str
    n_records: int = 100_000
    n_threads: int = 2
    params: Optional[KernelParams] = None
    seed: int = 1234
    ifetch_every: int = 0

    def __post_init__(self) -> None:
        if self.n_records <= 0:
            raise ValueError("n_records must be positive")
        if self.n_threads < 1:
            raise ValueError("n_threads must be >= 1")

    def resolved_params(self, scale: int = 1) -> KernelParams:
        """The kernel params to use (default footprint unless overridden)."""
        if self.params is not None:
            return self.params
        return default_params(self.name, scale=scale)


class TraceGenerator:
    """Generates a merged, dependency-annotated trace for one workload."""

    def __init__(self, spec: WorkloadSpec, scale: int = 1) -> None:
        self.spec = spec
        self.scale = scale
        self._entry = get_kernel(spec.name)

    def records(self) -> Iterator[TraceRecord]:
        """Stream the merged trace, truncated at ``spec.n_records``."""
        spec = self.spec
        params = spec.resolved_params(self.scale)
        master_rng = random.Random(spec.seed)
        threads: List[Iterator] = []
        trackers: List[DependencyTracker] = []
        for cpu in range(spec.n_threads):
            rng = random.Random(spec.seed + 1000 * (cpu + 1))
            threads.append(
                iter(self._entry.fn(cpu, spec.n_threads, params, rng))
            )
            trackers.append(DependencyTracker())

        uid = 0
        live = list(range(spec.n_threads))
        while uid < spec.n_records and live:
            for cpu in list(live):
                # Small random burst per turn: SMP interleaving is not
                # perfectly alternating.
                burst = master_rng.randint(1, 4)
                for _ in range(burst):
                    if uid >= spec.n_records:
                        return
                    try:
                        kind, address, site, read_reg, write_reg = next(
                            threads[cpu]
                        )
                    except StopIteration:
                        live.remove(cpu)
                        break
                    tracker = trackers[cpu]
                    ip = _IP_BASE + site * 4
                    if (
                        spec.ifetch_every > 0
                        and uid % spec.ifetch_every == spec.ifetch_every - 1
                        and uid < spec.n_records - 1
                    ):
                        # Fetch the instruction line feeding this site.
                        yield TraceRecord(
                            uid=uid,
                            cpu=cpu,
                            kind=AccessType.IFETCH,
                            address=ip,
                            ip=ip,
                            dep_uid=NO_DEP,
                        )
                        uid += 1
                    dep = tracker.dependency_on(read_reg)
                    record = TraceRecord(
                        uid=uid,
                        cpu=cpu,
                        kind=AccessType(kind),
                        address=address,
                        ip=ip,
                        dep_uid=dep if dep != NO_DEP else NO_DEP,
                    )
                    if write_reg is not None and kind == 0:
                        tracker.produce(write_reg, uid)
                    yield record
                    uid += 1


def generate_trace(
    name: str,
    n_records: int = 100_000,
    n_threads: int = 2,
    scale: int = 1,
    seed: int = 1234,
    params: Optional[KernelParams] = None,
) -> List[TraceRecord]:
    """Generate a complete trace as a list (convenience wrapper)."""
    spec = WorkloadSpec(
        name=name,
        n_records=n_records,
        n_threads=n_threads,
        seed=seed,
        params=params,
    )
    return list(TraceGenerator(spec, scale=scale).records())


def rms_workloads() -> Dict[str, str]:
    """Table 1: workload name -> description."""
    from repro.traces.kernels.registry import KERNELS

    return {name: entry.description for name, entry in KERNELS.items()}
