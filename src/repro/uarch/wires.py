"""Wire-delay model: from floorplan geometry to pipe stages.

Section 4's stage eliminations come from shortened wires: "load data
only travels to the center of the D$, at which point it is routed to the
other die to the center of the functional units...  thus eliminating the
one clock cycle of delay in the load-to-use delay."  This module makes
that reasoning computable:

* repeated-wire delay per millimetre from a simple RC model (optimally
  repeated global wire at the studied node);
* block-to-block path lengths on a planar floorplan (centre-to-centre
  Manhattan, the worst case crossing both blocks), and on a two-die
  stack (each die contributes half the traversal, plus the negligible
  d2d hop);
* wire *pipe stages* for a path at a given clock — so the planar-vs-3D
  stage savings of Table 4's wire rows can be derived from the Figures
  9/10 floorplans instead of asserted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.floorplan.blocks import Block, Floorplan
from repro.floorplan.stacking import D2D_RC_FRACTION

#: Delay of an optimally repeated global wire, picoseconds per millimetre.
#: Latency-critical routes (load-to-use, RF-to-FP) ride the widest
#: upper-metal layers with aggressive repeatering, the fastest wires the
#: 90 nm-class process offers.
REPEATED_WIRE_PS_PER_MM = 27.0

#: Clock period at the 4 GHz operating point, picoseconds.
CLOCK_PERIOD_PS = 250.0

#: Latency of the die-to-die via hop, picoseconds.  The d2d via RC is
#: ~1/3 of a full via stack (Section 3), i.e. far below a wire stage.
D2D_HOP_PS = 25.0 * D2D_RC_FRACTION * 3.0


@dataclass(frozen=True)
class WirePath:
    """A block-to-block wire path.

    Attributes:
        length_mm: Total routed length, millimetres.
        crossings: Die crossings (0 on a planar die).
    """

    length_mm: float
    crossings: int = 0

    def delay_ps(self, ps_per_mm: float = REPEATED_WIRE_PS_PER_MM) -> float:
        """Repeated-wire delay of the path, picoseconds."""
        return self.length_mm * ps_per_mm + self.crossings * D2D_HOP_PS

    def stages(
        self,
        clock_ps: float = CLOCK_PERIOD_PS,
        ps_per_mm: float = REPEATED_WIRE_PS_PER_MM,
    ) -> int:
        """Full wire pipe stages the path costs at the given clock.

        The paper counts only *full* stages ("Only full pipe stages are
        eliminated in this study"), so the delay is floor-divided.
        """
        return int(self.delay_ps(ps_per_mm) // clock_ps)


def _centre(block: Block) -> Tuple[float, float]:
    return block.x + block.width / 2.0, block.y + block.height / 2.0


def planar_path(plan: Floorplan, source: str, dest: str) -> WirePath:
    """Worst-case planar path between two blocks.

    The paper's example: "load data must travel from the far edge of the
    data cache, across the data cache to the farthest functional unit" —
    i.e. the worst case traverses both blocks fully plus the
    centre-to-centre separation.  We model it as the Manhattan distance
    between the blocks' far corners via their centres: half of each
    block's semi-perimeter plus the centre-to-centre Manhattan distance.
    """
    a = plan.block(source)
    b = plan.block(dest)
    ax, ay = _centre(a)
    bx, by = _centre(b)
    centre_to_centre = abs(ax - bx) + abs(ay - by)
    traverse = (a.width + a.height) / 2.0 + (b.width + b.height) / 2.0
    return WirePath(length_mm=centre_to_centre + traverse)


def stacked_path(
    bottom: Floorplan, top: Floorplan, source: str, dest: str
) -> WirePath:
    """Worst-case path between blocks on different dies of a stack.

    Per the paper's load-to-use example: data travels to the centre of
    the source block, hops through the d2d vias, and continues to the
    destination — "that same worst case path contains half as much
    routing distance, since the data is only traversing half of the data
    cache and half of the functional units".
    """
    source_plan = bottom if source in bottom else top
    dest_plan = bottom if dest in bottom else top
    a = source_plan.block(source)
    b = dest_plan.block(dest)
    ax, ay = _centre(a)
    bx, by = _centre(b)
    lateral = abs(ax - bx) + abs(ay - by)
    # Each block contributes half its traversal (to/from its centre).
    traverse = (a.width + a.height) / 4.0 + (b.width + b.height) / 4.0
    crossings = 0 if source_plan is dest_plan else 1
    return WirePath(length_mm=lateral + traverse, crossings=crossings)


def stage_saving(
    planar: Floorplan,
    bottom: Floorplan,
    top: Floorplan,
    source: str,
    dest: str,
    clock_ps: float = CLOCK_PERIOD_PS,
) -> int:
    """Full wire stages saved by the 3D floorplan on one path."""
    before = planar_path(planar, source, dest).stages(clock_ps)
    after = stacked_path(bottom, top, source, dest).stages(clock_ps)
    return max(0, before - after)


def load_to_use_saving(
    planar: Floorplan, bottom: Floorplan, top: Floorplan
) -> int:
    """Wire stages saved on the D$ -> functional-units path (the paper's
    first example; it reports one full stage saved)."""
    return stage_saving(planar, bottom, top, "D$", "F")


def stacked_pipeline_from_floorplans(
    planar_fp: Floorplan,
    bottom: Floorplan,
    top: Floorplan,
    base=None,
):
    """Build the 3D pipeline configuration with the wire rows *derived*
    from floorplan geometry instead of asserted.

    The two rows of Table 4 whose stage counts the paper explains
    geometrically — the FP wire detour and the D$ load-to-use stage —
    are computed from the actual planar and 3D floorplans via the wire
    model; the remaining rows (which the paper attributes to shortened
    global metal runs without giving geometry) keep their published
    eliminations.

    Returns:
        A :class:`~repro.uarch.pipeline.PipelineConfig` for the stack.
    """
    from repro.uarch.pipeline import (
        TABLE4_ELIMINATIONS,
        planar_pipeline,
        stacked_pipeline,
    )

    base = base or planar_pipeline()
    areas = dict(TABLE4_ELIMINATIONS)
    areas["fp_wire"] = min(
        base.fp_wire_latency, fp_wire_saving(planar_fp, bottom, top)
    )
    areas["data_cache_read"] = min(
        base.data_cache_read - 1,
        load_to_use_saving(planar_fp, bottom, top),
    )
    return stacked_pipeline(base, areas)


def fp_wire_saving(
    planar: Floorplan, bottom: Floorplan, top: Floorplan
) -> int:
    """Wire stages saved on the FP register file -> FP unit path (the
    paper's second example; it reports two stages saved because the
    planar SIMD placement adds two cycles to all FP instructions)."""
    # The planar route detours around the SIMD block: RF -> SIMD -> FP.
    rf_to_simd = planar_path(planar, "RF", "SIMD")
    simd_to_fp = planar_path(planar, "SIMD", "FP")
    planar_stages = WirePath(
        rf_to_simd.length_mm + simd_to_fp.length_mm
    ).stages()
    stacked_stages = stacked_path(bottom, top, "RF", "FP").stages()
    return max(0, planar_stages - stacked_stages)
