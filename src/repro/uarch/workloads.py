"""The 650-trace synthetic workload suite.

Section 2.2: "In all we ran over 650 single thread benchmark traces
including SPECINT, SPECFP, hand written kernels, multimedia, internet,
productivity, server, and workstation applications."

Each workload is summarized by the statistical profile an interval-style
performance model needs: instruction-mix frequencies, branch
predictability, dependence densities, and cache behaviour.  Profiles are
drawn deterministically (seeded) around per-category archetypes, so the
suite is reproducible and spans a realistic spread within each category.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import Dict, List

#: Workload categories and how many traces each contributes (total 656).
CATEGORY_COUNTS: Dict[str, int] = {
    "specint": 120,
    "specfp": 110,
    "kernels": 60,
    "multimedia": 90,
    "internet": 70,
    "productivity": 86,
    "server": 60,
    "workstation": 60,
}


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical profile of one single-threaded benchmark trace.

    Frequencies are per instruction unless noted.

    Attributes:
        name: e.g. ``"specint-017"``.
        category: One of :data:`CATEGORY_COUNTS`.
        branch_freq: Branch instructions per instruction.
        mispredict_rate: Mispredictions per branch.
        load_freq: Loads per instruction.
        store_freq: Stores per instruction.
        fp_freq: FP arithmetic ops per instruction.
        fp_load_freq: FP loads per instruction.
        load_chain_density: Fraction of loads feeding an address/critical
            chain (exposed to load-to-use latency).
        fp_chain_density: Fraction of FP ops on dependent chains (exposed
            to FP latency).
        base_ilp: Issue-limited micro-ops per cycle with no stalls.
        l1_miss_per_load: L1D misses per load.
        l2_miss_per_load: L2 misses per load (go to main memory).
        memory_latency: Main-memory latency in cycles.
    """

    name: str
    category: str
    branch_freq: float
    mispredict_rate: float
    load_freq: float
    store_freq: float
    fp_freq: float
    fp_load_freq: float
    load_chain_density: float
    fp_chain_density: float
    base_ilp: float
    l1_miss_per_load: float
    l2_miss_per_load: float
    memory_latency: float = 300.0

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, float) and value < 0:
                raise ValueError(f"{f.name} must be non-negative")
        if self.base_ilp <= 0:
            raise ValueError("base_ilp must be positive")


#: Category archetypes: mean values the per-trace profiles scatter around.
_ARCHETYPES: Dict[str, Dict[str, float]] = {
    "specint": dict(branch_freq=0.20, mispredict_rate=0.050, load_freq=0.28,
                    store_freq=0.12, fp_freq=0.01, fp_load_freq=0.005,
                    load_chain_density=0.45, fp_chain_density=0.30,
                    base_ilp=2.2, l1_miss_per_load=0.04, l2_miss_per_load=0.004),
    "specfp": dict(branch_freq=0.06, mispredict_rate=0.015, load_freq=0.30,
                   store_freq=0.10, fp_freq=0.30, fp_load_freq=0.16,
                   load_chain_density=0.30, fp_chain_density=0.45,
                   base_ilp=2.6, l1_miss_per_load=0.06, l2_miss_per_load=0.010),
    "kernels": dict(branch_freq=0.05, mispredict_rate=0.010, load_freq=0.32,
                    store_freq=0.12, fp_freq=0.35, fp_load_freq=0.20,
                    load_chain_density=0.25, fp_chain_density=0.55,
                    base_ilp=2.8, l1_miss_per_load=0.05, l2_miss_per_load=0.006),
    "multimedia": dict(branch_freq=0.10, mispredict_rate=0.025, load_freq=0.30,
                       store_freq=0.14, fp_freq=0.22, fp_load_freq=0.12,
                       load_chain_density=0.30, fp_chain_density=0.35,
                       base_ilp=2.7, l1_miss_per_load=0.03, l2_miss_per_load=0.003),
    "internet": dict(branch_freq=0.22, mispredict_rate=0.060, load_freq=0.27,
                     store_freq=0.13, fp_freq=0.01, fp_load_freq=0.004,
                     load_chain_density=0.50, fp_chain_density=0.30,
                     base_ilp=2.0, l1_miss_per_load=0.05, l2_miss_per_load=0.005),
    "productivity": dict(branch_freq=0.20, mispredict_rate=0.045, load_freq=0.28,
                         store_freq=0.14, fp_freq=0.02, fp_load_freq=0.008,
                         load_chain_density=0.48, fp_chain_density=0.30,
                         base_ilp=2.1, l1_miss_per_load=0.035, l2_miss_per_load=0.003),
    "server": dict(branch_freq=0.19, mispredict_rate=0.040, load_freq=0.30,
                   store_freq=0.15, fp_freq=0.01, fp_load_freq=0.004,
                   load_chain_density=0.50, fp_chain_density=0.30,
                   base_ilp=1.9, l1_miss_per_load=0.08, l2_miss_per_load=0.015),
    "workstation": dict(branch_freq=0.13, mispredict_rate=0.030, load_freq=0.29,
                        store_freq=0.12, fp_freq=0.12, fp_load_freq=0.06,
                        load_chain_density=0.38, fp_chain_density=0.38,
                        base_ilp=2.4, l1_miss_per_load=0.05, l2_miss_per_load=0.007),
}

#: Relative scatter applied to each archetype parameter per trace.
_SCATTER = 0.30


def _jitter(rng: random.Random, mean: float, scatter: float = _SCATTER) -> float:
    """A positive value scattered around *mean* (truncated gaussian)."""
    value = rng.gauss(mean, mean * scatter)
    low = mean * 0.25
    high = mean * 2.5
    return min(max(value, low), high)


def make_profile(category: str, index: int, seed: int = 20061209) -> WorkloadProfile:
    """Deterministically generate trace *index* of *category*."""
    if category not in _ARCHETYPES:
        raise KeyError(
            f"unknown workload category {category!r}; "
            f"known: {sorted(_ARCHETYPES)}"
        )
    # A string seed keeps this deterministic across processes (tuple
    # hashes are randomized by PYTHONHASHSEED).
    rng = random.Random(f"{seed}-{category}-{index}")
    arch = _ARCHETYPES[category]
    values = {key: _jitter(rng, mean) for key, mean in arch.items()}
    # Densities and rates are probabilities: clamp to sensible ranges.
    for key in ("mispredict_rate", "l1_miss_per_load", "l2_miss_per_load"):
        values[key] = min(values[key], 0.25)
    for key in ("load_chain_density", "fp_chain_density"):
        values[key] = min(values[key], 0.9)
    values["base_ilp"] = min(max(values["base_ilp"], 1.2), 3.6)
    return WorkloadProfile(
        name=f"{category}-{index:03d}", category=category, **values
    )


def workload_suite(seed: int = 20061209) -> List[WorkloadProfile]:
    """The full 650+ trace suite, deterministic for a given seed."""
    suite = []
    for category, count in CATEGORY_COUNTS.items():
        for index in range(count):
            suite.append(make_profile(category, index, seed))
    return suite


def suite_by_category(seed: int = 20061209) -> Dict[str, List[WorkloadProfile]]:
    """The suite grouped by category."""
    grouped: Dict[str, List[WorkloadProfile]] = {}
    for profile in workload_suite(seed):
        grouped.setdefault(profile.category, []).append(profile)
    return grouped
