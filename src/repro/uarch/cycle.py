"""Cycle-accurate-style out-of-order core simulator.

A compact dataflow timing model used to validate the interval model
(:mod:`repro.uarch.interval`) on representative workloads: a synthetic
micro-op stream is generated from a :class:`WorkloadProfile` and timed
through fetch, rename, dispatch, dataflow issue, execute, and in-order
retirement, with the pipe-stage depths of a
:class:`~repro.uarch.pipeline.PipelineConfig` governing the mispredict
refill loop, load-to-use latency, FP latencies, scheduler replay, store
queue residency, and post-retirement resource recovery.

The simulator advances per instruction rather than per cycle (each
micro-op's fetch/issue/complete/retire times are computed from its
dependences and resource constraints), which is exact for this machine
abstraction and fast enough to run the whole 650-trace suite if desired.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.oracles.config import get_oracle_config
from repro.oracles.invariants import check_cpi_band, check_rob_occupancy
from repro.oracles.report import record_check, record_violation
from repro.uarch.pipeline import PipelineConfig
from repro.uarch.workloads import WorkloadProfile

#: Micro-op classes.
ALU, LOAD, STORE, FP, BRANCH = range(5)


@dataclass(frozen=True)
class CycleResult:
    """Outcome of a cycle-model run.

    Attributes:
        instructions: Micro-ops simulated.
        cycles: Total cycles to retire them.
        ipc: Instructions per cycle.
        mispredicts: Branch mispredictions taken.
        l1_misses: Loads that missed the L1.
    """

    instructions: int
    cycles: float
    ipc: float
    mispredicts: int
    l1_misses: int


class CycleCoreSimulator:
    """Out-of-order core timed per micro-op.

    Args:
        pipeline: Machine configuration.
        workload: Statistical workload the synthetic stream is drawn from.
        seed: RNG seed for the stream (deterministic runs).
    """

    def __init__(
        self,
        pipeline: PipelineConfig,
        workload: WorkloadProfile,
        seed: int = 7,
    ) -> None:
        self.pipeline = pipeline
        self.workload = workload
        self.seed = seed

    def run(self, n_instructions: int = 50_000) -> CycleResult:
        """Simulate *n_instructions* micro-ops; returns timing results."""
        if n_instructions < 1:
            raise ValueError("need at least one instruction")
        p = self.pipeline
        w = self.workload
        rng = random.Random(f"cycle-{self.seed}-{w.name}")

        front_depth = p.front_end + p.trace_cache + p.rename_alloc
        refill = (
            p.trace_cache + p.rename_alloc + p.instruction_loop
            + p.int_rf_read + 4
        )
        store_lifetime_cycles = p.store_lifetime * 11.0

        # Rolling architectural state: completion times of recent
        # producers (a small window approximates the register file).
        recent: deque = deque(maxlen=12)
        rob: deque = deque()            # retire times, bounded by rob_entries
        stores: deque = deque()         # store-queue free times
        fetch_time = 0.0
        last_retire = 0.0
        mispredicts = 0
        l1_misses = 0

        issue_interval = 1.0 / p.issue_width
        cum_fetch = 0.0

        for _ in range(n_instructions):
            cum_fetch += issue_interval
            if cum_fetch > fetch_time:
                fetch_time = cum_fetch
            else:
                cum_fetch = fetch_time

            # ROB slot: wait for the oldest in-flight op to retire.
            if len(rob) >= p.rob_entries:
                oldest = rob.popleft()
                if oldest > fetch_time:
                    fetch_time = oldest
                    cum_fetch = oldest

            dispatch = fetch_time + front_depth

            # Pick the micro-op class.
            r = rng.random()
            if r < w.branch_freq:
                kind = BRANCH
            elif r < w.branch_freq + w.load_freq:
                kind = LOAD
            elif r < w.branch_freq + w.load_freq + w.store_freq:
                kind = STORE
            elif r < w.branch_freq + w.load_freq + w.store_freq + w.fp_freq:
                kind = FP
            else:
                kind = ALU

            # Dataflow: dependent ops wait for a recent producer.
            ready = dispatch
            chain = w.fp_chain_density if kind == FP else w.load_chain_density
            if recent and rng.random() < chain:
                producer = recent[rng.randrange(len(recent))]
                if producer > ready:
                    ready = producer

            # Execute.
            if kind == LOAD:
                latency = float(p.load_to_use)
                if rng.random() < w.l1_miss_per_load:
                    l1_misses += 1
                    # Replay through the scheduler loop, then L2 (or
                    # memory on an L2 miss).
                    latency += p.instruction_loop + 18.0
                    if rng.random() < (
                        w.l2_miss_per_load / max(w.l1_miss_per_load, 1e-9)
                    ):
                        latency += w.memory_latency
                if rng.random() < w.fp_load_freq / max(w.load_freq, 1e-9):
                    latency += p.fp_load_latency * 0.5
            elif kind == FP:
                latency = float(p.fp_latency)
            elif kind == STORE:
                latency = 1.0
                # Store-queue entry: freed store_lifetime after retirement.
                if len(stores) >= p.store_queue_entries:
                    free_at = stores.popleft()
                    if free_at > ready:
                        ready = free_at
            elif kind == BRANCH:
                latency = 2.0
            else:
                latency = 1.0

            complete = ready + latency

            # In-order retirement.
            retire = complete if complete > last_retire else last_retire
            last_retire = retire
            rob.append(retire)
            recent.append(complete)

            if kind == STORE:
                stores.append(retire + store_lifetime_cycles)

            if kind == BRANCH and rng.random() < w.mispredict_rate:
                mispredicts += 1
                # Squash: the front end restarts after resolve + refill,
                # and resources recover after retire-to-dealloc.
                restart = complete + refill + p.retire_dealloc * 0.5
                if restart > fetch_time:
                    fetch_time = restart
                    cum_fetch = restart

        cycles = max(last_retire, 1.0)
        result = CycleResult(
            instructions=n_instructions,
            cycles=cycles,
            ipc=n_instructions / cycles,
            mispredicts=mispredicts,
            l1_misses=l1_misses,
        )
        cfg = get_oracle_config()
        if cfg.enabled:
            # Conservation oracles on the finished run: the ROB can
            # never hold more than its capacity, retirement cannot beat
            # the fetch bandwidth (cycles >= instructions/width), and
            # IPC must land in (0, issue width].
            record_check("uarch.cycle")
            problems = check_rob_occupancy([len(rob)], p.rob_entries)
            problems += check_cpi_band(result.ipc, p.issue_width)
            if cycles + 1e-9 < n_instructions * issue_interval:
                problems.append(
                    f"{n_instructions} micro-ops retired in {cycles:.1f} "
                    f"cycles — beats the width-{p.issue_width} fetch bound"
                )
            if mispredicts > n_instructions or l1_misses > n_instructions:
                problems.append(
                    "event counters exceed instruction count "
                    f"(mispredicts={mispredicts}, l1_misses={l1_misses})"
                )
            for problem in problems:
                record_violation("uarch.cycle", "uarch", problem)
        return result


def simulate_cycles(
    pipeline: PipelineConfig,
    workload: WorkloadProfile,
    n_instructions: int = 50_000,
    seed: int = 7,
) -> CycleResult:
    """Convenience wrapper: build and run a :class:`CycleCoreSimulator`."""
    return CycleCoreSimulator(pipeline, workload, seed).run(n_instructions)
