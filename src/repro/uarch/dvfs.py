"""Voltage/frequency scaling of the Logic+Logic 3D floorplan (Table 5).

Table 5's conversion equations, used verbatim:

* **Perf vs. Freq** — "0.82% performance for 1% frequency": performance
  percentage points move by 0.82 per point of frequency, on top of the
  3D floorplan's +15% at constant frequency.  (Performance and frequency
  do not scale 1:1 mainly because main-memory latency is fixed in
  nanoseconds.)
* **Freq vs. Vcc** — "1% for 1% in Vcc": frequency tracks voltage 1:1
  over the voltage range of interest.
* **Power** — dynamic power scales as V^2 * f; with f = V that is V^3.

The published operating points: Baseline (planar, 147 W), Same Pwr
(f = 1.18), Same Freq (125 W), Same Temp (Vcc 0.92 -> 66% power, 108%
perf), Same Perf (Vcc 0.82 -> 46% power).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

#: Performance percentage points per frequency percentage point (Table 5).
PERF_PER_FREQ = 0.82

#: The 3D floorplan's performance gain at constant frequency, percent.
BASE_3D_PERF_GAIN = 15.0

#: The 3D floorplan's power at constant frequency relative to planar.
BASE_3D_POWER_FACTOR = 0.85

#: Planar total power, watts (Table 5 baseline row).
PLANAR_POWER_W = 147.0


@dataclass(frozen=True)
class ScalingPoint:
    """One row of Table 5.

    Attributes:
        name: Row label (e.g. ``"Same Temp"``).
        vcc: Supply relative to nominal.
        freq: Frequency relative to nominal.
        power_w: Total power, watts.
        power_pct: Power relative to the planar baseline, percent.
        perf_pct: Performance relative to the planar baseline, percent.
        temp_c: Peak temperature, Celsius (None if no thermal model was
            supplied).
    """

    name: str
    vcc: float
    freq: float
    power_w: float
    power_pct: float
    perf_pct: float
    temp_c: Optional[float] = None


def power_3d_w(vcc: float, freq: float) -> float:
    """3D-floorplan power at a (vcc, freq) point, watts: P = P3D * V^2 * f."""
    if vcc <= 0 or freq <= 0:
        raise ValueError("vcc and freq must be positive")
    return PLANAR_POWER_W * BASE_3D_POWER_FACTOR * vcc * vcc * freq


def perf_3d_pct(freq: float) -> float:
    """3D performance at relative frequency *freq*, percent of planar."""
    if freq <= 0:
        raise ValueError("freq must be positive")
    return 100.0 + BASE_3D_PERF_GAIN + (freq - 1.0) * 100.0 * PERF_PER_FREQ


def scale_operating_point(
    name: str,
    vcc: float,
    freq: float,
    thermal: Optional[Callable[[float], float]] = None,
) -> ScalingPoint:
    """Build a Table 5 row for an arbitrary (vcc, freq) 3D point."""
    power = power_3d_w(vcc, freq)
    return ScalingPoint(
        name=name,
        vcc=vcc,
        freq=freq,
        power_w=power,
        power_pct=100.0 * power / PLANAR_POWER_W,
        perf_pct=perf_3d_pct(freq),
        temp_c=thermal(power) if thermal else None,
    )


def solve_same_power() -> float:
    """Frequency at which the 3D design burns the planar 147 W (vcc=1)."""
    return 1.0 / BASE_3D_POWER_FACTOR


def solve_same_perf() -> float:
    """Frequency at which 3D performance equals the planar baseline."""
    return 1.0 - BASE_3D_PERF_GAIN / (100.0 * PERF_PER_FREQ)


def solve_same_temp(
    thermal: Callable[[float], float],
    target_temp: float,
    lo: float = 0.6,
    hi: float = 1.2,
    tol: float = 1e-4,
) -> float:
    """Vcc (= freq) at which the 3D design reaches *target_temp*.

    *thermal* maps 3D total power (watts) to peak temperature (Celsius)
    and must be monotonically increasing (steady-state conduction is).
    Bisection over [lo, hi].
    """
    def temp_at(v: float) -> float:
        return thermal(power_3d_w(v, v))

    if temp_at(lo) > target_temp or temp_at(hi) < target_temp:
        raise ValueError(
            f"target temperature {target_temp} not bracketed in "
            f"[{lo}, {hi}] Vcc"
        )
    while hi - lo > tol:
        mid = (lo + hi) / 2.0
        if temp_at(mid) > target_temp:
            hi = mid
        else:
            lo = mid
    return (lo + hi) / 2.0


def table5_points(
    thermal: Optional[Callable[[float], float]] = None,
    baseline_temp: Optional[float] = None,
    solve_temp_point: bool = False,
) -> List[ScalingPoint]:
    """All Table 5 rows.

    Args:
        thermal: Maps 3D power (W) to peak temperature (C); also used for
            the baseline row with planar power if *baseline_temp* is not
            given.  Without it, temperatures are left None.
        baseline_temp: Peak temperature of the planar baseline (the "Same
            Temp" target).  Defaults to ``thermal``-solved planar power —
            note the baseline is the *planar* die, so prefer passing the
            planar solve explicitly.
        solve_temp_point: If True, find the Same Temp Vcc with the
            supplied thermal model instead of using the paper's published
            0.92.

    Returns:
        Rows in Table 5 order: Baseline, Same Pwr, Same Freq., Same Temp,
        Same Perf.
    """
    rows: List[ScalingPoint] = []
    base_temp = baseline_temp
    if base_temp is None and thermal is not None:
        base_temp = thermal(PLANAR_POWER_W)
    rows.append(
        ScalingPoint(
            name="Baseline",
            vcc=1.0,
            freq=1.0,
            power_w=PLANAR_POWER_W,
            power_pct=100.0,
            perf_pct=100.0,
            temp_c=base_temp,
        )
    )
    rows.append(
        scale_operating_point("Same Pwr", 1.0, solve_same_power(), thermal)
    )
    rows.append(scale_operating_point("Same Freq.", 1.0, 1.0, thermal))
    if solve_temp_point and thermal is not None and base_temp is not None:
        vcc_temp = solve_same_temp(thermal, base_temp)
    else:
        vcc_temp = 0.92  # the paper's published Same Temp point
    rows.append(
        scale_operating_point("Same Temp", vcc_temp, vcc_temp, thermal)
    )
    freq_perf = solve_same_perf()
    rows.append(
        scale_operating_point("Same Perf.", freq_perf, freq_perf, thermal)
    )
    return rows
