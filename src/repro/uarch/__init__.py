"""Microarchitecture performance, power, and DVFS models for Logic+Logic
stacking (Section 4).

The paper's Logic+Logic study runs a Pentium 4 design-team performance
simulator over 650 single-threaded traces, measures the IPC effect of
eliminating pipe stages with the 3D floorplan (Table 4), rolls up the
power effect of removing repeaters, latches, and clock-grid metal, and
scales voltage/frequency to trade the gains (Table 5).

This package rebuilds that flow:

* :mod:`repro.uarch.pipeline` — the deeply pipelined machine described as
  per-functional-area pipe-stage counts, including the wire-delay stages
  the 3D floorplan eliminates (Table 4's rows).
* :mod:`repro.uarch.workloads` — a 650-trace synthetic workload suite
  across the paper's eight categories.
* :mod:`repro.uarch.interval` — an interval-analysis performance model
  (the fast path used to evaluate all 650 workloads).
* :mod:`repro.uarch.cycle` — a cycle-level out-of-order core simulator
  used to validate the interval model on representative workloads.
* :mod:`repro.uarch.power` — the block-level power roll-up and its 3D
  scaling (repeaters, repeating latches, clock grid, global metal).
* :mod:`repro.uarch.dvfs` — Table 5's voltage/frequency scaling model.
"""

from repro.uarch.pipeline import (
    PipelineConfig,
    STAGE_AREAS,
    planar_pipeline,
    stacked_pipeline,
)
from repro.uarch.workloads import WorkloadProfile, workload_suite
from repro.uarch.interval import evaluate_ipc, speedup
from repro.uarch.cycle import CycleCoreSimulator, simulate_cycles
from repro.uarch.power import PowerBreakdown, planar_power_breakdown, stacked_power_w
from repro.uarch.dvfs import ScalingPoint, scale_operating_point, table5_points

__all__ = [
    "PipelineConfig",
    "STAGE_AREAS",
    "planar_pipeline",
    "stacked_pipeline",
    "WorkloadProfile",
    "workload_suite",
    "evaluate_ipc",
    "speedup",
    "CycleCoreSimulator",
    "simulate_cycles",
    "PowerBreakdown",
    "planar_power_breakdown",
    "stacked_power_w",
    "ScalingPoint",
    "scale_operating_point",
    "table5_points",
]
