"""Pipe-stage description of the deeply pipelined microprocessor.

Section 4 works "at constant frequency and focuses on eliminating pipe
stages in the microarchitecture", where *pipe stage* includes every staged
path in the machine — cache hierarchy, store retirement, post-completion
resource recovery — so the total stage count is much larger than the
branch miss-prediction penalty (which itself exceeds 30 cycles).

A :class:`PipelineConfig` holds the stage count of each functional area in
Table 4.  :func:`planar_pipeline` is the 2D baseline; ``stacked_pipeline``
applies the 3D floorplan's stage eliminations, matching Table 4's
"% of Stages Eliminated" column row by row.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

#: Table 4 functional areas mapped to the floorplan blocks implementing
#: them (used when cross-referencing the thermal/floorplan models).
STAGE_AREAS: Dict[str, str] = {
    "front_end": "FE",
    "trace_cache": "TC",
    "rename_alloc": "Rename",
    "fp_wire": "FP/SIMD/RF",
    "int_rf_read": "IntRF",
    "data_cache_read": "D$",
    "instruction_loop": "Sched",
    "retire_dealloc": "Retire",
    "fp_load": "FP/D$",
    "store_lifetime": "MOB",
}


@dataclass(frozen=True)
class PipelineConfig:
    """Per-functional-area pipe-stage counts.

    Attributes mirror Table 4's rows:

    Attributes:
        front_end: Fetch/decode pipeline stages.
        trace_cache: Trace-cache read stages.
        rename_alloc: Rename/allocation stages.
        fp_wire_latency: Extra FP-instruction latency cycles due to the
            planar RF -> SIMD -> FP wire route (the two cycles the paper
            says the planar floorplan adds to all FP instructions).
        int_rf_read: Integer register-file read stages.
        data_cache_read: L1 data-cache read stages (load-to-use wire).
        instruction_loop: Scheduler/replay loop stages.
        retire_dealloc: Retirement-to-resource-deallocation stages.
        fp_load_latency: FP load pipeline stages.
        store_lifetime: Post-retirement store lifetime stages (store queue
            residency until the line is written and the entry recovered).
        store_queue_entries: Store queue capacity.
        rob_entries: Reorder-buffer capacity.
        issue_width: Peak sustainable micro-ops per cycle.
        exec_fp_latency: Intrinsic (non-wire) FP execute latency.
        l1_load_latency: Intrinsic L1 load-to-use latency excluding the
            wire stages counted in ``data_cache_read``.
    """

    front_end: int = 8
    trace_cache: int = 5
    rename_alloc: int = 4
    fp_wire_latency: int = 2
    int_rf_read: int = 4
    data_cache_read: int = 4
    instruction_loop: int = 6
    retire_dealloc: int = 5
    fp_load_latency: int = 14
    store_lifetime: int = 10
    store_queue_entries: int = 24
    rob_entries: int = 126
    issue_width: float = 3.0
    exec_fp_latency: int = 4
    l1_load_latency: int = 2

    def __post_init__(self) -> None:
        for name in (
            "front_end", "trace_cache", "rename_alloc", "int_rf_read",
            "data_cache_read", "instruction_loop", "retire_dealloc",
            "fp_load_latency", "store_lifetime",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1 stage")
        if self.fp_wire_latency < 0:
            raise ValueError("fp_wire_latency must be >= 0")

    @property
    def mispredict_penalty(self) -> int:
        """Branch miss-prediction penalty: the front-end refill loop.

        front end + trace cache + rename + scheduler loop + RF read, plus
        a fixed execute/resolve component.  Exceeds 30 cycles in the
        planar machine, as the paper states.
        """
        return (
            self.front_end
            + self.trace_cache
            + self.rename_alloc
            + self.instruction_loop
            + self.int_rf_read
            + 4  # execute + branch resolution
        )

    @property
    def load_to_use(self) -> int:
        """Load-to-use latency: intrinsic access plus wire stages."""
        return self.l1_load_latency + self.data_cache_read

    @property
    def fp_latency(self) -> int:
        """FP instruction latency including planar wire overhead."""
        return self.exec_fp_latency + self.fp_wire_latency

    @property
    def total_stages(self) -> int:
        """Total counted pipe stages across the functional areas."""
        return (
            self.front_end + self.trace_cache + self.rename_alloc
            + self.fp_wire_latency + self.int_rf_read + self.data_cache_read
            + self.instruction_loop + self.retire_dealloc
            + self.fp_load_latency + self.store_lifetime
        )

    def stage_counts(self) -> Dict[str, int]:
        """Stage count per Table 4 functional area."""
        return {
            "front_end": self.front_end,
            "trace_cache": self.trace_cache,
            "rename_alloc": self.rename_alloc,
            "fp_wire": self.fp_wire_latency,
            "int_rf_read": self.int_rf_read,
            "data_cache_read": self.data_cache_read,
            "instruction_loop": self.instruction_loop,
            "retire_dealloc": self.retire_dealloc,
            "fp_load": self.fp_load_latency,
            "store_lifetime": self.store_lifetime,
        }


def planar_pipeline() -> PipelineConfig:
    """The 2D baseline machine."""
    return PipelineConfig()


#: The Table 4 stage eliminations: functional area -> stages removed by
#: the 3D floorplan.  Fractions relative to the planar counts reproduce
#: the published "% of Stages Eliminated" column: front-end 1/8 = 12.5%,
#: trace cache 1/5 = 20%, rename 1/4 = 25%, FP wire 2/2 (the "variable"
#: row), int RF 1/4 = 25%, D$ read 1/4 = 25%, instruction loop 1/6 = 17%,
#: retire 1/5 = 20%, FP load 5/14 = 36% (~35%), store lifetime 3/10 = 30%.
TABLE4_ELIMINATIONS: Dict[str, int] = {
    "front_end": 1,
    "trace_cache": 1,
    "rename_alloc": 1,
    "fp_wire": 2,
    "int_rf_read": 1,
    "data_cache_read": 1,
    "instruction_loop": 1,
    "retire_dealloc": 1,
    "fp_load": 5,
    "store_lifetime": 3,
}


def stacked_pipeline(
    base: PipelineConfig = None, areas: Dict[str, int] = None
) -> PipelineConfig:
    """Apply the 3D floorplan's stage eliminations to a planar machine.

    Args:
        base: Planar configuration (default :func:`planar_pipeline`).
        areas: Stages to remove per functional area; defaults to the full
            Table 4 set.  Pass a subset to evaluate one row in isolation
            (how the per-row "Perf. Gain" column is produced).

    Returns:
        The shortened configuration.
    """
    base = base or planar_pipeline()
    areas = TABLE4_ELIMINATIONS if areas is None else areas
    field_map = {
        "front_end": "front_end",
        "trace_cache": "trace_cache",
        "rename_alloc": "rename_alloc",
        "fp_wire": "fp_wire_latency",
        "int_rf_read": "int_rf_read",
        "data_cache_read": "data_cache_read",
        "instruction_loop": "instruction_loop",
        "retire_dealloc": "retire_dealloc",
        "fp_load": "fp_load_latency",
        "store_lifetime": "store_lifetime",
    }
    changes = {}
    for area, removed in areas.items():
        if area not in field_map:
            raise KeyError(
                f"unknown functional area {area!r}; known: {sorted(field_map)}"
            )
        field = field_map[area]
        current = getattr(base, field)
        minimum = 0 if area == "fp_wire" else 1
        if current - removed < minimum:
            raise ValueError(
                f"cannot remove {removed} stages from {area} ({current} present)"
            )
        changes[field] = current - removed
    return replace(base, **changes)


def stages_eliminated_fraction(
    planar: PipelineConfig, stacked: PipelineConfig
) -> float:
    """Fraction of all counted pipe stages eliminated (paper: ~25%)."""
    return 1.0 - stacked.total_stages / planar.total_stages
