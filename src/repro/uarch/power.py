"""Block-level power roll-up and its Logic+Logic 3D scaling.

Section 4: "Baseline power data for the planar design is gathered using
performance model activities and detailed circuit and layout based power
roll ups from each block...  3D power is estimated from the baseline by
scaling according to the proposed design modifications.  The removed
pipestages are dominated by long global metal.  As a result, the number
of repeaters and repeating latches in the implementation is reduced by
50%.  The two die in the 3D floorplan also share a common clock grid
[with] 50% less metal RC...  Fewer repeaters, a smaller clock grid, and
significantly less global wire yields a 15% power reduction overall."

The roll-up decomposes the 147 W planar skew into switching logic, clock
grid, pipeline latches, repeaters/repeating latches, and leakage, then
applies exactly those scaling rules.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.uarch.pipeline import (
    PipelineConfig,
    planar_pipeline,
    stacked_pipeline,
    stages_eliminated_fraction,
)

#: Total power of the planar 147 W design skew, watts (Section 4 /
#: Figure 11's baseline).  Every roll-up defaults to this single value.
PLANAR_TDP_W = 147.0

#: Fraction of repeaters and repeating latches removed by the 3D
#: floorplan (Section 4: "reduced by 50%").
REPEATER_REDUCTION = 0.5

#: Clock-grid power reduction from the 50% smaller footprint (50% less
#: metal RC; drivers and the distributed mesh load shrink less than the
#: wire, hence less than 50% power saving).
CLOCK_GRID_REDUCTION = 0.221


@dataclass(frozen=True)
class PowerBreakdown:
    """Component power of the microprocessor, watts.

    Attributes:
        logic: Switching power in datapath/array transistors.
        clock_grid: Global clock distribution.
        latches: Pipeline-stage latches (scales with stage count).
        repeaters: Repeaters and repeating latches on global metal.
        leakage: Static power.
    """

    logic: float
    clock_grid: float
    latches: float
    repeaters: float
    leakage: float

    def __post_init__(self) -> None:
        for name in ("logic", "clock_grid", "latches", "repeaters", "leakage"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} power must be non-negative")

    @property
    def total(self) -> float:
        return (
            self.logic + self.clock_grid + self.latches
            + self.repeaters + self.leakage
        )


def planar_power_breakdown(total_w: float = PLANAR_TDP_W) -> PowerBreakdown:
    """The planar 147 W skew decomposed into roll-up components.

    The split reflects a deeply pipelined 90 nm-class design: clock and
    latches are heavy (the paper notes wire can consume more than 30% of
    microprocessor power — here repeaters + clock grid + a share of the
    latches).
    """
    fractions = PowerBreakdown(
        logic=58.0 / PLANAR_TDP_W,
        clock_grid=26.0 / PLANAR_TDP_W,
        latches=20.0 / PLANAR_TDP_W,
        repeaters=22.0 / PLANAR_TDP_W,
        leakage=21.0 / PLANAR_TDP_W,
    )
    return PowerBreakdown(
        logic=fractions.logic * total_w,
        clock_grid=fractions.clock_grid * total_w,
        latches=fractions.latches * total_w,
        repeaters=fractions.repeaters * total_w,
        leakage=fractions.leakage * total_w,
    )


def stacked_power_breakdown(
    planar: PowerBreakdown,
    planar_pipe: PipelineConfig = None,
    stacked_pipe: PipelineConfig = None,
) -> PowerBreakdown:
    """Apply the Section 4 scaling rules to a planar breakdown.

    * Repeaters and repeating latches: -50%.
    * Pipeline latches: reduced in proportion to the pipe stages
      eliminated (~25%).
    * Clock grid: reduced by the footprint-driven RC saving.
    * Logic and leakage: unchanged (the paper's estimate is conservative
      and does not claim savings there).
    """
    planar_pipe = planar_pipe or planar_pipeline()
    stacked_pipe = stacked_pipe or stacked_pipeline(planar_pipe)
    stage_fraction = stages_eliminated_fraction(planar_pipe, stacked_pipe)
    return PowerBreakdown(
        logic=planar.logic,
        clock_grid=planar.clock_grid * (1.0 - CLOCK_GRID_REDUCTION),
        latches=planar.latches * (1.0 - stage_fraction),
        repeaters=planar.repeaters * (1.0 - REPEATER_REDUCTION),
        leakage=planar.leakage,
    )


def stacked_power_w(total_planar_w: float = PLANAR_TDP_W) -> float:
    """Total 3D power for a given planar total (paper: 125 W from 147 W)."""
    return stacked_power_breakdown(planar_power_breakdown(total_planar_w)).total


def power_reduction_fraction() -> float:
    """The overall Logic+Logic power saving (paper: 15%)."""
    return 1.0 - stacked_power_w(PLANAR_TDP_W) / PLANAR_TDP_W
