"""Interval-analysis performance model for the deeply pipelined machine.

Estimates IPC for a :class:`~repro.uarch.workloads.WorkloadProfile` on a
:class:`~repro.uarch.pipeline.PipelineConfig` by composing the classic
interval-analysis CPI adders, each tied to the pipe-stage groups of
Table 4 so that stage elimination translates into performance exactly
through the mechanisms the paper names:

* branch mispredictions pay the front-end refill loop (trace cache read,
  rename/allocation, scheduler loop, register read, resolve) — P4-style,
  refilling from the trace cache, so the fetch/decode *front end* is only
  exposed on trace-cache misses;
* dependent loads pay the load-to-use latency (D$ read wire stages);
* dependent FP ops pay the FP latency including the planar RF->SIMD->FP
  wire detour, and FP loads the FP load pipeline;
* L1 misses re-dispatch through the scheduler loop (replay);
* resource recovery after a mispredict additionally pays the
  retire-to-deallocation depth;
* stores occupy store-queue entries for their post-retirement lifetime,
  bounding sustainable IPC via Little's law.

Main-memory stalls are modeled but (as in the paper) unaffected by the
3D floorplan, which is why performance does not scale 1:1 with frequency
in Table 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.uarch.pipeline import PipelineConfig
from repro.uarch.workloads import WorkloadProfile

#: Calibration coefficients (dimensionless exposure factors).  Tuned once
#: against Table 4's per-row gains; see benchmarks/test_table4.
COEFFS: Dict[str, float] = {
    # Fraction of the refill-loop stages exposed per mispredict.
    "mispredict_exposure": 1.10018,
    # Trace-cache miss events per instruction (expose the front end).
    "tc_miss_freq": 0.00352,
    # Fraction of load-to-use latency exposed on dependent loads.
    "load_use_exposure": 0.23065,
    # Fraction of FP latency exposed on dependent FP ops.
    "fp_exposure": 0.65411,
    # Fraction of the FP-load pipeline exposed on dependent FP loads.
    "fp_load_exposure": 0.25896,
    # Scheduler-replay exposure per L1 miss.
    "replay_exposure": 0.83975,
    # Resource-recovery (retire to dealloc) exposure per mispredict;
    # greater than one because a recovery stage stalls dispatch for
    # several cycles while rename tables and buffers drain.
    "recovery_exposure": 2.8287,
    # Allocation-serialization events per instruction (expose the rename/
    # allocation depth outside the mispredict path).
    "alloc_events": 0.00481,
    # L2 hit latency seen by L1 misses, cycles.
    "l2_latency": 18.0,
    # Fraction of memory latency exposed per L2 miss (overlap).
    "memory_exposure": 0.6,
    # Cycles per store-lifetime stage (each stage is multi-cycle once
    # cache write bandwidth and ordering are accounted).
    "store_lifetime_cycles_per_stage": 11.0,
    # Store-queue congestion coefficient (see the rho**3 term below).
    "store_congestion": 0.06854,
}


@dataclass(frozen=True)
class CpiBreakdown:
    """CPI adders for one workload on one pipeline (cycles/instruction)."""

    base: float
    branch: float
    front_end: float
    alloc: float
    load_use: float
    fp: float
    fp_load: float
    replay: float
    recovery: float
    memory: float
    store: float

    @property
    def total_cpi(self) -> float:
        return (
            self.base + self.branch + self.front_end + self.alloc
            + self.load_use + self.fp + self.fp_load + self.replay
            + self.recovery + self.memory + self.store
        )

    @property
    def ipc(self) -> float:
        return 1.0 / self.total_cpi


def cpi_breakdown(
    workload: WorkloadProfile,
    pipeline: PipelineConfig,
    coeffs: Dict[str, float] = COEFFS,
) -> CpiBreakdown:
    """Compute the CPI adders of *workload* on *pipeline*."""
    c = coeffs
    mispredicts = workload.branch_freq * workload.mispredict_rate
    refill = (
        pipeline.trace_cache
        + pipeline.rename_alloc
        + pipeline.instruction_loop
        + pipeline.int_rf_read
        + 4  # execute + resolve
    )
    l1_misses = workload.load_freq * workload.l1_miss_per_load
    l2_misses = workload.load_freq * workload.l2_miss_per_load

    store_lifetime_cycles = (
        pipeline.store_lifetime * c["store_lifetime_cycles_per_stage"]
    )
    # Store-queue congestion via Little's law: occupancy rho grows with
    # store rate and post-retirement lifetime; the stall term rises
    # steeply (rho^3) as the queue saturates.
    ipc_estimate = min(workload.base_ilp, 2.0)
    rho = min(
        workload.store_freq * ipc_estimate * store_lifetime_cycles
        / pipeline.store_queue_entries,
        1.5,
    )
    cpi_store = (
        c["store_congestion"]
        * workload.store_freq
        * store_lifetime_cycles
        * rho ** 3
        / pipeline.store_queue_entries
    )

    return CpiBreakdown(
        base=1.0 / workload.base_ilp,
        branch=mispredicts * refill * c["mispredict_exposure"],
        front_end=c["tc_miss_freq"] * pipeline.front_end,
        alloc=c["alloc_events"] * pipeline.rename_alloc,
        load_use=(
            workload.load_freq
            * workload.load_chain_density
            * (pipeline.load_to_use - 1)
            * c["load_use_exposure"]
        ),
        fp=(
            workload.fp_freq
            * workload.fp_chain_density
            * (pipeline.fp_latency - 1)
            * c["fp_exposure"]
        ),
        fp_load=(
            workload.fp_load_freq
            * workload.fp_chain_density
            * pipeline.fp_load_latency
            * c["fp_load_exposure"]
        ),
        replay=l1_misses * pipeline.instruction_loop * c["replay_exposure"],
        recovery=(
            mispredicts * pipeline.retire_dealloc * c["recovery_exposure"]
        ),
        memory=(
            l1_misses * c["l2_latency"]
            + l2_misses * workload.memory_latency * c["memory_exposure"]
        ),
        store=cpi_store,
    )


def evaluate_ipc(
    workload: WorkloadProfile,
    pipeline: PipelineConfig,
    coeffs: Dict[str, float] = COEFFS,
) -> float:
    """IPC of one workload on one pipeline configuration."""
    return cpi_breakdown(workload, pipeline, coeffs).ipc


def geomean_ipc(
    workloads: Iterable[WorkloadProfile],
    pipeline: PipelineConfig,
    coeffs: Dict[str, float] = COEFFS,
) -> float:
    """Geometric-mean IPC over a suite (the paper's aggregate)."""
    log_sum = 0.0
    count = 0
    import math

    for workload in workloads:
        log_sum += math.log(evaluate_ipc(workload, pipeline, coeffs))
        count += 1
    if count == 0:
        raise ValueError("empty workload suite")
    return math.exp(log_sum / count)


def speedup(
    workloads: List[WorkloadProfile],
    baseline: PipelineConfig,
    improved: PipelineConfig,
    coeffs: Dict[str, float] = COEFFS,
) -> float:
    """Geomean speedup of *improved* over *baseline* (1.15 = +15%)."""
    return geomean_ipc(workloads, improved, coeffs) / geomean_ipc(
        workloads, baseline, coeffs
    )


def frequency_scaling_slope(
    workloads: List[WorkloadProfile],
    pipeline: PipelineConfig,
    delta: float = 0.05,
    coeffs: Dict[str, float] = COEFFS,
) -> float:
    """Performance change per unit frequency change (paper: 0.82).

    Raising frequency leaves main-memory latency fixed in nanoseconds, so
    it grows in cycles; everything else scales.  The slope is measured by
    re-evaluating the suite with memory latency scaled by (1 + delta) and
    converting the IPC loss into wall-clock performance.
    """
    import dataclasses
    import math

    base = geomean_ipc(workloads, pipeline, coeffs)
    scaled_workloads = [
        dataclasses.replace(w, memory_latency=w.memory_latency * (1 + delta))
        for w in workloads
    ]
    scaled = geomean_ipc(scaled_workloads, pipeline, coeffs)
    # Wall-clock speed at (1+delta) frequency = (1+delta) * scaled-IPC.
    perf_ratio = (1 + delta) * scaled / base
    return math.log(perf_ratio) / math.log(1 + delta)
