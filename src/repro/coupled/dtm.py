"""Dynamic thermal management policies for the closed-loop engine.

One :class:`DtmPolicy` interface, three throttling strategies:

* :class:`ThresholdDtm` — a hysteresis band around a trigger setpoint:
  step V/f down above it, back up only once safely below the band.
* :class:`PidDtm` — a velocity-form PID on the setpoint error (the
  incremental form needs no integrator clamp to avoid windup).
* :class:`PredictiveDtm` — one-epoch lookahead: project next epoch's
  peak with the stack's first-order thermal time constant (measured via
  ``TransientResult.time_to_fraction``) and pick the fastest V/f whose
  projection stays at or below the setpoint.

All policies steer toward ``ceiling - guard``: the guard band absorbs
the one-epoch observation delay (a reactive controller only sees an
excursion after it happened) plus the multi-exponential dynamics a
single time constant cannot capture.

Frequency tracks voltage 1:1 over the range of interest (Table 5's
"1% for 1% in Vcc" conversion), so a policy decision is a single vcc.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.uarch.dvfs import power_3d_w

#: Default setpoint margin below the ceiling, Celsius.
DEFAULT_GUARD_C = 3.0

#: Threshold policy: V/f step per epoch and hysteresis band width.
DEFAULT_VCC_STEP = 0.02
DEFAULT_BAND_C = 2.0

#: PID gains (vcc per Celsius of error), tuned against the measured
#: loop gain of the Logic+Logic stack: ~2 C of steady peak rise per
#: 0.01 of vcc near the operating point, most of it realized within
#: one control epoch, so per-epoch loop gain is ~100 C per unit vcc —
#: larger gains period-2 oscillate.  Derivative action defaults off:
#: on a jittery workload it differentiates measurement noise straight
#: into the actuator.
DEFAULT_KP = 0.004
DEFAULT_KI = 0.0040
DEFAULT_KD = 0.0

#: Predictive policy: bisection resolution on vcc.
_PREDICT_TOL = 1e-4


@dataclass(frozen=True)
class DtmObservation:
    """What the controller sees at the end of a control epoch.

    Attributes:
        epoch: Control epoch index (0-based) just simulated.
        t_s: Simulated time at the epoch's end, seconds.
        peak_c: Observed peak on-die temperature, Celsius.
        ceiling_c: The thermal ceiling the policy must respect.
        vcc: V/f point the epoch ran at (freq = vcc).
        power_w: Total power dissipated during the epoch, watts.
        activity: Workload activity factor during the epoch.
        epoch_s: Control epoch length, seconds.
        tau_s: First-order thermal time constant of the stack, seconds.
        epoch_response: Fraction of a power step's eventual peak rise
            realized within one control epoch, measured from the
            warm-up transient (0 < fraction <= 1).  More faithful than
            ``1 - exp(-epoch_s / tau_s)`` because the stack's response
            is multi-exponential.
        ambient_c: Ambient temperature, Celsius.
        rise_per_watt: Steady-state peak rise per watt (linear in power).
        vcc_min: Lowest V/f the platform supports.
        vcc_max: Highest V/f the platform supports.
    """

    epoch: int
    t_s: float
    peak_c: float
    ceiling_c: float
    vcc: float
    power_w: float
    activity: float
    epoch_s: float
    tau_s: float
    epoch_response: float
    ambient_c: float
    rise_per_watt: float
    vcc_min: float
    vcc_max: float

    def clamp(self, vcc: float) -> float:
        """Clamp a candidate V/f into the platform's range."""
        return min(self.vcc_max, max(self.vcc_min, vcc))


class DtmPolicy(ABC):
    """Chooses the next control epoch's V/f from the observed state."""

    #: Short policy name for traces and reports.
    name: str = "dtm"

    @abstractmethod
    def decide(self, obs: DtmObservation) -> float:
        """The vcc (= freq) the next epoch should run at."""

    def reset(self) -> None:
        """Drop accumulated controller state before a fresh run."""


class NoDtm(DtmPolicy):
    """The control run: no throttling, V/f pinned wherever it started."""

    name = "none"

    def decide(self, obs: DtmObservation) -> float:
        return obs.vcc


class ThresholdDtm(DtmPolicy):
    """Hysteresis throttling around ``ceiling - guard``.

    Above the setpoint: step vcc down.  Below the setpoint by more than
    the band: step back up.  Inside the band: hold — the band keeps the
    controller from chattering between the two actions every epoch.
    """

    name = "threshold"

    def __init__(
        self,
        vcc_step: float = DEFAULT_VCC_STEP,
        guard_c: float = DEFAULT_GUARD_C,
        band_c: float = DEFAULT_BAND_C,
    ) -> None:
        if vcc_step <= 0 or band_c <= 0:
            raise ValueError("vcc_step and band_c must be positive")
        self.vcc_step = vcc_step
        self.guard_c = guard_c
        self.band_c = band_c

    def decide(self, obs: DtmObservation) -> float:
        setpoint = obs.ceiling_c - self.guard_c
        if obs.peak_c > setpoint:
            return obs.clamp(obs.vcc - self.vcc_step)
        if obs.peak_c < setpoint - self.band_c:
            return obs.clamp(obs.vcc + self.vcc_step)
        return obs.vcc


class PidDtm(DtmPolicy):
    """Velocity-form PID on the setpoint error.

    ``dv = kp*(e - e_prev) + ki*e*dt + kd*(e - 2*e_prev + e_prev2)/dt``
    with ``e = (ceiling - guard) - peak``; the increment is applied to
    the current vcc and clamped.  Because only increments are
    integrated, saturation at the V/f limits cannot wind up an internal
    accumulator.
    """

    name = "pid"

    def __init__(
        self,
        kp: float = DEFAULT_KP,
        ki: float = DEFAULT_KI,
        kd: float = DEFAULT_KD,
        guard_c: float = DEFAULT_GUARD_C,
    ) -> None:
        self.kp = kp
        self.ki = ki
        self.kd = kd
        self.guard_c = guard_c
        self._e_prev = 0.0
        self._e_prev2 = 0.0
        self._primed = False

    def reset(self) -> None:
        self._e_prev = 0.0
        self._e_prev2 = 0.0
        self._primed = False

    def decide(self, obs: DtmObservation) -> float:
        error = (obs.ceiling_c - self.guard_c) - obs.peak_c
        if not self._primed:
            self._e_prev = error
            self._e_prev2 = error
            self._primed = True
        dt = obs.epoch_s
        dv = (
            self.kp * (error - self._e_prev)
            + self.ki * error * dt
            + self.kd * (error - 2.0 * self._e_prev + self._e_prev2) / dt
        )
        self._e_prev2 = self._e_prev
        self._e_prev = error
        return obs.clamp(obs.vcc + dv)


class PredictiveDtm(DtmPolicy):
    """One-epoch lookahead with the calibrated thermal step response.

    For a candidate vcc the next epoch's peak is projected as

        T_next = T_ss(v) + (T_now - T_ss(v)) * (1 - r)

    with ``T_ss(v) = ambient + rise_per_watt * P(v, activity)`` from the
    engine's linear steady map and ``r`` the measured one-epoch step
    response (falling back to ``1 - exp(-epoch / tau)`` with tau from
    ``time_to_fraction(0.632)`` when no measured response is available —
    the stack's response is multi-exponential, so the measured fraction
    tracks it much more closely than the single-tau fit).  The policy
    bisects for the *fastest* vcc whose projection stays at or below
    the setpoint — asymptotically it parks exactly where the steady
    temperature equals the setpoint, which is the closed-loop Same Temp
    operating point.

    The coming epoch's activity is unknown, so it is extrapolated
    linearly from the last two observed epochs (a plain persistence
    assumption lags sustained load ramps by one full epoch, which is
    exactly when breaches happen; the guard band covers the residual
    trend error).
    """

    name = "predictive"

    def __init__(self, guard_c: float = DEFAULT_GUARD_C) -> None:
        self.guard_c = guard_c
        self._prev_activity: float | None = None

    def reset(self) -> None:
        self._prev_activity = None

    def _predict(self, obs: DtmObservation, vcc: float) -> float:
        prev = (
            self._prev_activity
            if self._prev_activity is not None
            else obs.activity
        )
        activity = max(0.0, 2.0 * obs.activity - prev)
        power = power_3d_w(vcc, vcc) * activity
        t_ss = obs.ambient_c + obs.rise_per_watt * power
        if 0.0 < obs.epoch_response <= 1.0:
            decay = 1.0 - obs.epoch_response
        elif obs.tau_s > 0:
            decay = math.exp(-obs.epoch_s / obs.tau_s)
        else:
            decay = 0.0
        return t_ss + (obs.peak_c - t_ss) * decay

    def decide(self, obs: DtmObservation) -> float:
        setpoint = obs.ceiling_c - self.guard_c
        try:
            if self._predict(obs, obs.vcc_max) <= setpoint:
                return obs.vcc_max
            if self._predict(obs, obs.vcc_min) > setpoint:
                return obs.vcc_min
            lo, hi = obs.vcc_min, obs.vcc_max  # lo safe, hi too hot
            while hi - lo > _PREDICT_TOL:
                mid = (lo + hi) / 2.0
                if self._predict(obs, mid) <= setpoint:
                    lo = mid
                else:
                    hi = mid
            return lo
        finally:
            self._prev_activity = obs.activity


def make_policy(name: str, **kwargs: object) -> DtmPolicy:
    """Instantiate a policy by its trace name (CLI/experiment plumbing)."""
    policies = {
        "none": NoDtm,
        "threshold": ThresholdDtm,
        "pid": PidDtm,
        "predictive": PredictiveDtm,
    }
    try:
        cls = policies[name]
    except KeyError:
        raise ValueError(
            f"unknown DTM policy {name!r}; known: {sorted(policies)}"
        ) from None
    return cls(**kwargs)  # type: ignore[arg-type]
