"""Workload drivers for the closed-loop engine.

A driver maps a control epoch to an *activity factor*: the fraction of
the design's nominal switching power the workload dissipates during
that epoch (1.0 = the Table 5 design point, < 1 = idle-ish phases,
> 1 = power-virus bursts).  Drivers are plain deterministic callables —
the bursty schedule derives every draw from a string-seeded
``random.Random`` per epoch (the ``uarch.workloads`` idiom), so a
schedule is reproducible regardless of evaluation order.
"""

from __future__ import annotations

import random
from typing import Callable

#: ``(epoch_index, epoch_start_time_s) -> activity factor``.
LoadSchedule = Callable[[int, float], float]

#: Bursty-schedule defaults: a sustained spike window every *period*
#: epochs, long enough that a no-DTM run saturates past the ceiling,
#: ramping up over a few epochs (program phases shift over ~seconds;
#: an instantaneous full-amplitude step would outrun any controller
#: that only observes temperature once per epoch).
SPIKE_PERIOD_EPOCHS = 32
SPIKE_BURST_EPOCHS = 16
SPIKE_RAMP_EPOCHS = 8
SPIKE_JITTER = 0.03


def constant_load(activity: float = 1.0) -> LoadSchedule:
    """The design-point workload: the same activity every epoch."""
    if activity < 0:
        raise ValueError("activity must be non-negative")
    return lambda epoch, t_s: activity


def step_load(
    before: float, after: float, t_step_s: float
) -> LoadSchedule:
    """A single load step at *t_step_s* (epochs starting at or after it)."""

    def schedule(epoch: int, t_s: float) -> float:
        return after if t_s >= t_step_s else before

    return schedule


def bursty_load_spikes(
    seed: int = 0,
    base: float = 0.60,
    spike: float = 1.20,
    period: int = SPIKE_PERIOD_EPOCHS,
    burst: int = SPIKE_BURST_EPOCHS,
    ramp: int = SPIKE_RAMP_EPOCHS,
) -> LoadSchedule:
    """Sustained load spikes a steady-state study cannot express.

    Every *period* epochs the load climbs from *base* toward *spike*
    over *ramp* epochs and holds there for the rest of a *burst*-epoch
    window — long enough for the stack to integrate toward the spike's
    (ceiling-busting) steady state — with a small seeded per-epoch
    amplitude jitter so no two epochs are identical.  Each period leads
    with its quiet phase, so a controller always sees calm epochs
    before the first burst; the ramp mirrors real phase transitions and
    keeps the per-epoch power step within what an epoch-granular
    controller can react to.
    """
    if burst >= period:
        raise ValueError("burst must be shorter than the period")
    if not 1 <= ramp <= burst:
        raise ValueError("ramp must be in [1, burst]")

    def schedule(epoch: int, t_s: float) -> float:
        into_burst = (epoch % period) - (period - burst)
        if into_burst < 0:
            level = base
        else:
            level = base + (spike - base) * min(1.0, (into_burst + 1) / ramp)
        rng = random.Random(f"{seed}-spike-{epoch}")
        return level * (1.0 + SPIKE_JITTER * (2.0 * rng.random() - 1.0))

    return schedule
