"""Closed-loop thermal/DVFS co-simulation (ROADMAP item 4).

CoMeT-style periodic feedback between the uarch side (interval CPI/IPC
model + block-level power roll-up at the current V/f point) and the
thermal side (the backward-Euler transient solver advancing one control
epoch under that power), with a DTM policy choosing the next V/f point
from the observed peak temperature.
"""

from repro.coupled.drivers import (
    LoadSchedule,
    bursty_load_spikes,
    constant_load,
    step_load,
)
from repro.coupled.dtm import (
    DtmObservation,
    DtmPolicy,
    NoDtm,
    PidDtm,
    PredictiveDtm,
    ThresholdDtm,
    make_policy,
)
from repro.coupled.engine import (
    CoupledConfig,
    CoupledResult,
    EpochTrace,
    build_coupled_stack,
    planar_baseline_peak_c,
    run_coupled_loop,
)

__all__ = [
    "LoadSchedule",
    "bursty_load_spikes",
    "constant_load",
    "step_load",
    "DtmObservation",
    "DtmPolicy",
    "NoDtm",
    "PidDtm",
    "PredictiveDtm",
    "ThresholdDtm",
    "make_policy",
    "CoupledConfig",
    "CoupledResult",
    "EpochTrace",
    "build_coupled_stack",
    "planar_baseline_peak_c",
    "run_coupled_loop",
]
