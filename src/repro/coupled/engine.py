"""The closed-loop co-simulation engine.

Alternates control epochs between the two sides of the machine:

* **uarch side** — at the current V/f point, the interval CPI/IPC model
  gives performance (memory latency is fixed in nanoseconds, so it
  grows in cycles with frequency — Table 5's 0.82%/1% slope emerges
  rather than being assumed) and the block-level power roll-up gives
  the per-component power, scaled by V^2*f and the workload's activity.
* **thermal side** — the backward-Euler transient solver advances the
  full temperature field one epoch under that power (the field carries
  over between epochs, so thermal history is exact), reusing the
  cached per-(geometry, dt) factorization every epoch.
* **DTM** — the policy observes the epoch's peak temperature and picks
  the next V/f point.

One steady solve calibrates the linear power→peak-temperature map (the
discrete conduction operator is linear, so the full-power solution
scales to any power), and one warm-up transient measures the thermal
time constant for the predictive policy via ``time_to_fraction``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.coupled.drivers import LoadSchedule, constant_load
from repro.coupled.dtm import DtmObservation, DtmPolicy, NoDtm
from repro.floorplan.pentium4 import (
    pentium4_3d_floorplans,
    pentium4_planar_floorplan,
)
from repro.thermal.model import simulate_planar
from repro.thermal.solver import SolverConfig, solve_steady_state
from repro.thermal.stack import ThermalStack, build_3d_stack
from repro.thermal.transient import solve_transient
from repro.uarch.interval import geomean_ipc
from repro.uarch.pipeline import planar_pipeline, stacked_pipeline
from repro.uarch.power import planar_power_breakdown, stacked_power_breakdown
from repro.uarch.workloads import CATEGORY_COUNTS, make_profile

#: One first-order time constant: 1 - 1/e of the step response.
TAU_FRACTION = 0.632

#: Workload profiles per category for the per-epoch interval model (a
#: representative slice of the 656-trace suite; both pipelines see the
#: same slice, so the planar-relative ratio is unbiased).
PROFILES_PER_CATEGORY = 4

#: Quantization of the perf-model cache key (vcc resolution at which
#: two operating points are treated as the same frequency).
_FREQ_KEY_DIGITS = 4


@dataclass(frozen=True)
class CoupledConfig:
    """Knobs of one closed-loop run.

    Attributes:
        epoch_s: Control epoch length, seconds (power/thermal exchange
            period).
        n_epochs: Number of control epochs to simulate.
        dt_s: Backward-Euler step inside an epoch; must divide epoch_s.
        nx: Thermal grid resolution (ny = nx).
        ceiling_c: Thermal ceiling; None solves the planar baseline's
            peak at this resolution (Table 5's Same Temp target).
        vcc_min: Lowest V/f point the platform supports.
        vcc_max: Highest V/f point the platform supports.
        vcc_init: V/f point of the first epoch.
        start: ``"cold"`` (uniform ambient) or ``"steady"`` (the steady
            field of the first epoch's power — a warm platform).
        calibration_s: Warm-up transient length for the time-constant
            measurement.
        calibration_dt_s: Warm-up transient step.  ``time_to_fraction``
            resolves tau to this granularity, so it must be finer than
            the stack's fast response (~1 s for the Logic+Logic stack);
            a coarse step inflates tau and destabilizes the predictive
            policy.
        seed: Seed for the interval-model workload slice.
        reuse_operator: Reuse cached thermal operators/LUs (default);
            False forces cold assembly every epoch (bench reference).
    """

    epoch_s: float = 2.0
    n_epochs: int = 40
    dt_s: float = 0.5
    nx: int = 20
    ceiling_c: Optional[float] = None
    vcc_min: float = 0.70
    vcc_max: float = 1.00
    vcc_init: float = 1.00
    start: str = "cold"
    calibration_s: float = 60.0
    calibration_dt_s: float = 0.5
    seed: int = 20061209
    reuse_operator: bool = True

    def __post_init__(self) -> None:
        if self.epoch_s <= 0 or self.dt_s <= 0 or self.n_epochs < 1:
            raise ValueError("epoch_s, dt_s and n_epochs must be positive")
        if not 0 < self.vcc_min <= self.vcc_init <= self.vcc_max:
            raise ValueError("need 0 < vcc_min <= vcc_init <= vcc_max")
        if self.start not in ("cold", "steady"):
            raise ValueError("start must be 'cold' or 'steady'")


@dataclass
class EpochTrace:
    """One control epoch as both sides of the loop saw it.

    Attributes:
        epoch: Epoch index, 0-based.
        t_s: Simulated time at the epoch's end, seconds.
        activity: Workload activity factor during the epoch.
        vcc: V/f point the epoch ran at (freq = vcc).
        power_w: Total power dissipated, watts.
        power_breakdown_w: Per-component watts (logic, clock grid,
            latches, repeaters, leakage) at this V/f and activity.
        perf_pct: Interval-model performance, percent of planar baseline.
        peak_c: Peak on-die temperature at the epoch's end, Celsius.
        throttled: True if the DTM decision lowered vcc for the next
            epoch.
    """

    epoch: int
    t_s: float
    activity: float
    vcc: float
    power_w: float
    power_breakdown_w: Dict[str, float]
    perf_pct: float
    peak_c: float
    throttled: bool


@dataclass
class CoupledResult:
    """A finished closed-loop run.

    Attributes:
        policy: Trace name of the DTM policy.
        ceiling_c: Thermal ceiling the policy steered against.
        tau_s: Measured first-order thermal time constant, seconds.
        nominal_power_w: Stack power at vcc = 1, activity = 1 (the
            Table 5 3D design point, ~125 W).
        epochs: Per-epoch traces.
    """

    policy: str
    ceiling_c: float
    tau_s: float
    nominal_power_w: float
    epochs: List[EpochTrace] = field(default_factory=list)

    @property
    def final_vcc(self) -> float:
        return self.epochs[-1].vcc

    @property
    def final_power_w(self) -> float:
        return self.epochs[-1].power_w

    @property
    def final_peak_c(self) -> float:
        return self.epochs[-1].peak_c

    @property
    def max_peak_c(self) -> float:
        return max(e.peak_c for e in self.epochs)

    @property
    def exceeded_epochs(self) -> int:
        """Epochs whose peak temperature broke the ceiling."""
        return sum(1 for e in self.epochs if e.peak_c > self.ceiling_c)

    @property
    def avg_perf_pct(self) -> float:
        return sum(e.perf_pct for e in self.epochs) / len(self.epochs)

    @property
    def energy_j(self) -> float:
        dt = self.epochs[1].t_s - self.epochs[0].t_s if len(
            self.epochs
        ) > 1 else self.epochs[0].t_s
        return sum(e.power_w * dt for e in self.epochs)

    def summary(self) -> Dict[str, Any]:
        """Scalar roll-up for reports and journals."""
        return {
            "policy": self.policy,
            "ceiling_c": self.ceiling_c,
            "tau_s": self.tau_s,
            "final_vcc": self.final_vcc,
            "final_power_w": self.final_power_w,
            "final_peak_c": self.final_peak_c,
            "max_peak_c": self.max_peak_c,
            "exceeded_epochs": self.exceeded_epochs,
            "avg_perf_pct": self.avg_perf_pct,
            "energy_j": self.energy_j,
        }

    def to_dict(self) -> Dict[str, Any]:
        out = self.summary()
        out["epochs"] = [asdict(e) for e in self.epochs]
        return out


class _IntervalPerfModel:
    """Planar-relative performance from the interval model, cached by
    frequency (the only epoch-to-epoch variable it depends on)."""

    def __init__(self, seed: int) -> None:
        self.suite = [
            make_profile(category, index, seed)
            for category in CATEGORY_COUNTS
            for index in range(PROFILES_PER_CATEGORY)
        ]
        self.planar_pipe = planar_pipeline()
        self.stacked_pipe = stacked_pipeline(self.planar_pipe)
        self.planar_ipc = geomean_ipc(self.suite, self.planar_pipe)
        self._cache: Dict[float, float] = {}

    def perf_pct(self, freq: float) -> float:
        """3D performance at relative frequency *freq*, % of planar.

        Memory latency is fixed in nanoseconds, so at relative frequency
        f it costs f times as many cycles; wall-clock performance is
        f * IPC(f), normalized to the planar machine at f = 1.
        """
        key = round(freq, _FREQ_KEY_DIGITS)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        scaled = [
            replace(w, memory_latency=w.memory_latency * freq)
            for w in self.suite
        ]
        ipc = geomean_ipc(scaled, self.stacked_pipe)
        perf = 100.0 * freq * ipc / self.planar_ipc
        self._cache[key] = perf
        return perf


def _power_at(
    vcc: float, activity: float, nominal: Dict[str, float]
) -> Tuple[float, Dict[str, float]]:
    """Per-component and total watts at a (vcc, activity) point.

    Dynamic components (logic, clock grid, latches, repeaters) scale as
    V^2 * f * activity with f = vcc (Table 5's conversion); leakage
    scales with the voltage but not the workload.  At activity = 1 the
    total therefore equals ``dvfs.power_3d_w(vcc, vcc)`` exactly, so the
    closed loop and the open-loop Table 5 math agree by construction.
    """
    v3 = vcc * vcc * vcc
    breakdown = {
        name: watts * v3 * (activity if name != "leakage" else 1.0)
        for name, watts in nominal.items()
    }
    return sum(breakdown.values()), breakdown


def build_coupled_stack() -> Tuple[ThermalStack, float]:
    """The Logic+Logic 3D stack and its floorplan's nominal watts."""
    bottom, top = pentium4_3d_floorplans()
    stack = build_3d_stack(bottom, top, die2_metal="cu")
    return stack, bottom.total_power + top.total_power


def planar_baseline_peak_c(config: SolverConfig) -> float:
    """Peak temperature of the planar Pentium 4 baseline at this grid
    resolution — the default thermal ceiling (Table 5's Same Temp
    target)."""
    return simulate_planar(
        pentium4_planar_floorplan(), config
    ).peak_temperature()


def run_coupled_loop(
    policy: Optional[DtmPolicy] = None,
    load: Optional[LoadSchedule] = None,
    config: Optional[CoupledConfig] = None,
) -> CoupledResult:
    """Run one closed-loop thermal/DVFS co-simulation.

    Args:
        policy: DTM policy (default: :class:`NoDtm`, the control run).
        load: Workload driver (default: constant design-point activity).
        config: Engine knobs.

    Returns:
        The per-epoch traces plus the calibration (ceiling, tau).
    """
    policy = policy or NoDtm()
    load = load or constant_load()
    cfg = config or CoupledConfig()
    solver = SolverConfig(nx=cfg.nx, ny=cfg.nx)
    ambient = solver.ambient_c

    stack, nominal_w = build_coupled_stack()
    perf_model = _IntervalPerfModel(cfg.seed)
    nominal_breakdown = _nominal_breakdown(nominal_w)

    # Calibration 1: the linear steady map.  The conduction operator is
    # linear, so the full-power steady field scales to any power level.
    steady = solve_steady_state(stack, solver)
    steady_field = steady.temperature.reshape(-1)
    rise_per_watt = (steady.peak_temperature() - ambient) / nominal_w

    ceiling = cfg.ceiling_c
    if ceiling is None:
        ceiling = planar_baseline_peak_c(solver)

    # Calibration 2: thermal time constant from the warm-up transient
    # (the predictive policy's lookahead horizon scale) plus the
    # one-epoch step-response fraction — the response is
    # multi-exponential, so the measured fraction predicts an epoch of
    # heating far better than the single-tau fit does.
    warmup = solve_transient(
        stack,
        solver,
        duration_s=cfg.calibration_s,
        dt_s=cfg.calibration_dt_s,
        reuse_operator=cfg.reuse_operator,
    )
    tau_s = warmup.time_to_fraction(TAU_FRACTION)
    total_rise = steady.peak_temperature() - warmup.peak_c[0]
    idx = min(
        len(warmup.peak_c) - 1,
        max(1, int(round(cfg.epoch_s / cfg.calibration_dt_s))),
    )
    epoch_response = (warmup.peak_c[idx] - warmup.peak_c[0]) / total_rise

    # Initial field: cold power-on, or the steady field of the first
    # epoch's power level (linear scaling of the full-power solve).
    vcc = cfg.vcc_init
    first_power, _ = _power_at(vcc, load(0, 0.0), nominal_breakdown)
    if cfg.start == "steady":
        factor = first_power / nominal_w
        temperature = ambient + factor * (steady_field - ambient)
    else:
        temperature = np.full(steady_field.shape, ambient)

    policy.reset()
    result = CoupledResult(
        policy=policy.name,
        ceiling_c=float(ceiling),
        tau_s=tau_s,
        nominal_power_w=nominal_w,
    )

    for epoch in range(cfg.n_epochs):
        t_start = epoch * cfg.epoch_s
        activity = load(epoch, t_start)
        if activity < 0:
            raise ValueError("load schedule produced a negative activity")
        power_w, breakdown = _power_at(vcc, activity, nominal_breakdown)
        perf = perf_model.perf_pct(vcc)

        factor = power_w / nominal_w
        run = solve_transient(
            stack,
            solver,
            duration_s=cfg.epoch_s,
            dt_s=cfg.dt_s,
            initial=temperature,
            power_schedule=lambda t, f=factor: f,
            reuse_operator=cfg.reuse_operator,
        )
        temperature = run.final.temperature.reshape(-1)
        peak = run.peak_c[-1]

        obs = DtmObservation(
            epoch=epoch,
            t_s=t_start + cfg.epoch_s,
            peak_c=peak,
            ceiling_c=float(ceiling),
            vcc=vcc,
            power_w=power_w,
            activity=activity,
            epoch_s=cfg.epoch_s,
            tau_s=tau_s,
            epoch_response=epoch_response,
            ambient_c=ambient,
            rise_per_watt=rise_per_watt,
            vcc_min=cfg.vcc_min,
            vcc_max=cfg.vcc_max,
        )
        next_vcc = obs.clamp(policy.decide(obs))
        result.epochs.append(
            EpochTrace(
                epoch=epoch,
                t_s=obs.t_s,
                activity=activity,
                vcc=vcc,
                power_w=power_w,
                power_breakdown_w=breakdown,
                perf_pct=perf,
                peak_c=peak,
                throttled=next_vcc < vcc - 1e-12,
            )
        )
        vcc = next_vcc
    return result


def _nominal_breakdown(nominal_w: float) -> Dict[str, float]:
    """The 3D block-level power roll-up scaled to the floorplan's watts.

    The roll-up's component *shares* come from ``uarch.power`` (Section
    4's scaling rules applied to the planar skew); the total is pinned
    to the floorplan's dissipated power so the thermal side and the
    power model agree on what "factor 1.0" means.
    """
    rolled = stacked_power_breakdown(planar_power_breakdown())
    scale = nominal_w / rolled.total
    return {
        "logic": rolled.logic * scale,
        "clock_grid": rolled.clock_grid * scale,
        "latches": rolled.latches * scale,
        "repeaters": rolled.repeaters * scale,
        "leakage": rolled.leakage * scale,
    }
