"""Integrity primitives: cheap CRCs for hot paths, sha256 for files.

``crc32`` (zlib) is used where the check runs inside a hot loop — the
per-reuse operator-cache check and the per-line journal CRC — because
hashing a cached sparse matrix with sha256 would cost more than the
solve it protects.  sha256 is reserved for the once-per-checkpoint
envelope where its cost is invisible next to pickling.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from typing import Dict, Iterable, Optional

import numpy as np

#: Journal-entry key carrying the line CRC (excluded from its own hash).
CRC_KEY = "crc"


def sha256_hex(data: bytes) -> str:
    """sha256 hex digest of *data*."""
    return hashlib.sha256(data).hexdigest()


def crc32_of_arrays(arrays: Iterable[Optional[np.ndarray]]) -> int:
    """One crc32 over the raw bytes of several arrays (None skipped).

    Array order matters; dtype/shape changes show up through the raw
    byte stream.  Used to fingerprint cached thermal operators
    (csc ``data``/``indices``/``indptr`` + mass + boundary rhs).
    """
    crc = 0
    for array in arrays:
        if array is None:
            continue
        crc = zlib.crc32(np.ascontiguousarray(array).view(np.uint8), crc)
    return crc


def journal_line_crc(entry: Dict[str, object]) -> str:
    """crc32 (8 hex chars) of a journal entry, excluding :data:`CRC_KEY`.

    The hash is taken over the canonical JSON encoding (sorted keys,
    ``default=str``) — the same encoding the journal writes — so a
    parsed-then-re-encoded entry reproduces the CRC bit-for-bit.
    """
    body = {k: v for k, v in entry.items() if k != CRC_KEY}
    encoded = json.dumps(body, sort_keys=True, default=str).encode("utf-8")
    return f"{zlib.crc32(encoded) & 0xFFFFFFFF:08x}"


def attach_crc(entry: Dict[str, object]) -> Dict[str, object]:
    """Return *entry* with its line CRC attached."""
    entry = dict(entry)
    entry[CRC_KEY] = journal_line_crc(entry)
    return entry


def verify_entry_crc(entry: Dict[str, object]) -> bool:
    """True when *entry*'s CRC matches (entries without one pass: legacy)."""
    stored = entry.get(CRC_KEY)
    if stored is None:
        return True
    return stored == journal_line_crc(entry)
