"""Runtime self-verification: invariant oracles + integrity-checked state.

Three layers (see DESIGN.md "Oracles"):

1. **Invariant oracles** — cheap online checks registered per engine
   (energy conservation and temperature bounds in thermal, cache/ROB
   well-formedness in memsim, CPI/CPMA sanity bands in uarch/core).
2. **Differential sampling** — a configurable fraction of fast-path
   work re-executed on the reference path and compared field-for-field;
   a mismatch quarantines the offending cache entry or falls back to
   the reference path, and marks the run ``degraded``.
3. **Integrity-checked state** — sha256 envelopes on checkpoints and a
   per-line CRC on journal entries, verified on resume, with corrupt
   state quarantined to ``*.quarantined``.

The package keeps process-global mode + scoreboard state so that
engines deep in the call tree can consult the oracle mode without
threading a config through every signature.  ``run_experiment`` resets
the scoreboard per run and attaches the resulting
:class:`~repro.oracles.report.OracleReport` to the outcome.
"""

from repro.oracles.config import (
    MODES,
    OracleConfig,
    get_oracle_config,
    oracle_mode,
    set_oracle_mode,
)
from repro.oracles.integrity import (
    attach_crc,
    crc32_of_arrays,
    journal_line_crc,
    sha256_hex,
    verify_entry_crc,
)
from repro.oracles.invariants import (
    CPMA_BANDS,
    check_cpi_band,
    check_cpma_band,
    check_energy_conservation,
    check_temperature_bounds,
)
from repro.oracles.report import (
    OracleReport,
    OracleViolation,
    oracle_report,
    record_check,
    record_violation,
    reset_oracles,
)

__all__ = [
    "MODES",
    "OracleConfig",
    "get_oracle_config",
    "oracle_mode",
    "set_oracle_mode",
    "attach_crc",
    "crc32_of_arrays",
    "journal_line_crc",
    "sha256_hex",
    "verify_entry_crc",
    "CPMA_BANDS",
    "check_cpi_band",
    "check_cpma_band",
    "check_energy_conservation",
    "check_temperature_bounds",
    "OracleReport",
    "OracleViolation",
    "oracle_report",
    "record_check",
    "record_violation",
    "reset_oracles",
]
