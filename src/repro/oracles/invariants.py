"""Pure invariant predicates shared by the per-engine oracle hooks.

Each function returns a list of problem strings (empty when the
invariant holds) so callers can decide how to record/act; none of them
raises.  The physics/bookkeeping they encode:

* **Thermal** (paper Section 2.3): at steady state every watt injected
  by the power map must leave through the boundary faces, and no cell
  can sit below ambient or above the silicon damage ceiling.
* **Memsim** (Sections 3–4): cache sets can never exceed their
  associativity, the coherence directory only names lines actually
  resident in an L1, MSHR/ROB occupancy is bounded by the config, and
  all replay counters advance monotonically chunk over chunk.
* **Uarch** (Table 1): IPC is bounded by the machine width and CPMA by
  loose per-kernel sanity bands around the published behaviour.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple

#: Silicon damage ceiling, Celsius.  Mirrors
#: ``repro.resilience.guards.TEMP_MAX_C`` — duplicated (and
#: equality-tested) rather than imported so the oracles package stays
#: free of intra-repro imports: resilience already sits in a baselined
#: import cycle with thermal/traces, and an oracles -> resilience edge
#: would pull this package into it.
TEMP_MAX_C = 400.0

#: Loose CPMA sanity bands per Table 1 RMS kernel, (lo, hi) cycles per
#: memory access.  Wide enough to hold across all four memory
#: configurations, scales, and trace lengths (golden baseline CPMAs
#: span ~1.4-11); tripping one means bookkeeping corruption, not a
#: modelling regression.
CPMA_BANDS: Dict[str, Tuple[float, float]] = {
    "conj": (0.5, 120.0),
    "dsym": (0.5, 120.0),
    "gauss": (0.5, 120.0),
    "pcg": (0.5, 200.0),
    "smvm": (0.5, 150.0),
    "ssym": (0.5, 120.0),
    "strans": (0.5, 120.0),
    "savdf": (0.5, 150.0),
    "savif": (0.5, 150.0),
    "sus": (0.5, 150.0),
    "svd": (0.5, 100.0),
    "svm": (0.5, 120.0),
}

#: Fallback band for kernels outside Table 1 (extensions).
DEFAULT_CPMA_BAND: Tuple[float, float] = (0.2, 500.0)


def check_energy_conservation(
    boundary_w: float, power_w: float, rtol: float = 1e-5
) -> List[str]:
    """Steady-state balance: boundary heat flow == injected power."""
    tol = max(rtol * abs(power_w), 1e-6)
    gap = abs(boundary_w - power_w)
    if gap > tol:
        return [
            "energy conservation violated: boundary flow "
            f"{boundary_w:.6g} W vs injected {power_w:.6g} W "
            f"(gap {gap:.3g} > tol {tol:.3g})"
        ]
    return []


def check_temperature_bounds(
    t_min_c: float,
    t_max_c: float,
    ambient_c: float,
    slack_c: float = 1e-6,
) -> List[str]:
    """No steady-state cell below ambient or above the damage ceiling."""
    problems: List[str] = []
    if not (t_min_c == t_min_c and t_max_c == t_max_c):  # NaN check
        problems.append("temperature field contains NaN")
        return problems
    if t_min_c < ambient_c - slack_c:
        problems.append(
            f"temperature {t_min_c:.3f} C below ambient {ambient_c:.3f} C"
        )
    if t_max_c > TEMP_MAX_C:
        problems.append(
            f"temperature {t_max_c:.1f} C above ceiling {TEMP_MAX_C:.1f} C"
        )
    return problems


def check_cache_sets(
    sets: Iterable[Mapping[int, bool]], assoc: int, name: str
) -> List[str]:
    """LRU-set well-formedness: no set may exceed its associativity."""
    problems: List[str] = []
    for idx, lru in enumerate(sets):
        if len(lru) > assoc:
            problems.append(
                f"{name} set {idx} holds {len(lru)} lines "
                f"(associativity {assoc})"
            )
    return problems


def check_directory_consistency(hierarchy) -> List[str]:
    """Every directory bit must name a line resident in that cpu's L1."""
    problems: List[str] = []
    for line, mask in hierarchy._directory.items():
        if mask == 0:
            problems.append(f"directory holds line {line:#x} with empty mask")
            continue
        for cpu in range(hierarchy.config.n_cpus):
            if mask & (1 << cpu) and not hierarchy.l1s[cpu].contains(line):
                problems.append(
                    f"directory says cpu {cpu} caches line {line:#x} "
                    "but its L1 does not"
                )
        if len(problems) >= 4:  # cap the detail noise; one trip suffices
            break
    return problems


def check_counter_deltas(
    before: Mapping[str, float], after: Mapping[str, float]
) -> List[str]:
    """Monotone counters: nothing replay counts may ever decrease."""
    problems: List[str] = []
    for key, prev in before.items():
        now = after.get(key, prev)
        if now < prev:
            problems.append(
                f"counter {key} went backwards: {prev:.6g} -> {now:.6g}"
            )
    return problems


def check_rob_occupancy(
    occupancies: Iterable[int], window: int, name: str = "rob"
) -> List[str]:
    """Reorder-window conservation: occupancy can never exceed the window."""
    problems: List[str] = []
    for cpu, occ in enumerate(occupancies):
        if occ > window or occ < 0:
            problems.append(
                f"{name}[{cpu}] occupancy {occ} outside [0, {window}]"
            )
    return problems


def check_cpi_band(
    ipc: float, width: int, floor: float = 0.01
) -> List[str]:
    """IPC must sit in (floor, machine width] — CPI sanity band."""
    if not (ipc == ipc) or ipc <= floor or ipc > width:
        return [f"IPC {ipc:.4g} outside sanity band ({floor}, {width}]"]
    return []


def check_cpma_band(kernel: str, cpma: float) -> List[str]:
    """CPMA within the loose per-Table-1-kernel sanity band."""
    lo, hi = CPMA_BANDS.get(kernel, DEFAULT_CPMA_BAND)
    if not (cpma == cpma) or cpma < lo or cpma > hi:
        return [
            f"kernel {kernel!r} CPMA {cpma:.4g} outside band [{lo}, {hi}]"
        ]
    return []
