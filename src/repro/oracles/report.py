"""Oracle scoreboard: structured check/violation accounting per run.

Engines call :func:`record_check` (cheap counter bump) for every oracle
evaluation and :func:`record_violation` when one trips.  A violation
never raises — the contract is *detect, degrade, keep going* — so the
scoreboard is how detection becomes visible: ``run_experiment`` resets
it before a run and attaches :func:`oracle_report` to the outcome, the
campaign supervisor aggregates the counts into ``CampaignReport``, and
any violation marks the run ``degraded``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.oracles.config import get_oracle_config


@dataclass(frozen=True)
class OracleViolation:
    """One tripped oracle.

    Attributes:
        oracle: Check identifier, ``engine.check`` style (e.g.
            ``thermal.conservation``, ``replay.differential``).
        engine: Owning engine (``thermal``/``memsim``/``uarch``/
            ``state``...).
        detail: Human-readable description of what mismatched.
        action: What the runtime did about it (``quarantined-entry``,
            ``fallback-reference``, ``degraded`` ...).
    """

    oracle: str
    engine: str
    detail: str
    action: str = "degraded"

    def to_dict(self) -> Dict[str, str]:
        return {
            "oracle": self.oracle,
            "engine": self.engine,
            "detail": self.detail,
            "action": self.action,
        }


@dataclass
class OracleReport:
    """Summary of all oracle activity since the last reset.

    Attributes:
        mode: Oracle mode the run executed under.
        checks: Evaluations per oracle identifier.
        violations: Every tripped oracle, in order.
    """

    mode: str
    checks: Dict[str, int] = field(default_factory=dict)
    violations: List[OracleViolation] = field(default_factory=list)

    @property
    def total_checks(self) -> int:
        return sum(self.checks.values())

    @property
    def clean(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "total_checks": self.total_checks,
            "checks": dict(self.checks),
            "violations": [v.to_dict() for v in self.violations],
            "clean": self.clean,
        }


_CHECKS: Dict[str, int] = {}
_VIOLATIONS: List[OracleViolation] = []


def record_check(oracle: str, n: int = 1) -> None:
    """Count *n* evaluations of *oracle* (no-op when oracles are off)."""
    _CHECKS[oracle] = _CHECKS.get(oracle, 0) + n


def record_violation(
    oracle: str,
    engine: str,
    detail: str,
    action: str = "degraded",
) -> OracleViolation:
    """Record a tripped oracle; returns the violation for local handling."""
    violation = OracleViolation(
        oracle=oracle, engine=engine, detail=detail, action=action
    )
    _VIOLATIONS.append(violation)
    return violation


def violations() -> List[OracleViolation]:
    """Violations recorded since the last reset (shared list copy)."""
    return list(_VIOLATIONS)


def oracle_report(mode: Optional[str] = None) -> OracleReport:
    """Snapshot the scoreboard into an :class:`OracleReport`."""
    return OracleReport(
        mode=mode if mode is not None else get_oracle_config().mode,
        checks=dict(_CHECKS),
        violations=list(_VIOLATIONS),
    )


def reset_oracles() -> None:
    """Clear the scoreboard (start of each experiment run)."""
    _CHECKS.clear()
    _VIOLATIONS.clear()
