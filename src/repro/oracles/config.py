"""Oracle mode + sampling configuration (process-global).

Modes:

``off``
    No runtime checks at all; fast paths run exactly as before.
``sample``
    The default.  Cheap invariants run on every chunk/solve; the
    expensive differential re-execution runs on a deterministic sample
    (every ``sample_stride``-th replay chunk, the first reuse of each
    cached thermal operator).
``strict``
    Every chunk is differentially replayed and every operator reuse is
    integrity-checked.  Used by detection tests and the CI chaos job;
    far too slow for production sweeps.

The active config is process-global so engines deep in the call tree
(the replay hot loop, the solver cache) can consult it without
threading a parameter through every public signature.  Worker
subprocesses inherit the mode from the campaign spec via
:func:`set_oracle_mode`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterator, Union

#: Recognised oracle modes, in increasing order of paranoia.
MODES = ("off", "sample", "strict")


@dataclass(frozen=True)
class OracleConfig:
    """Tuning knobs for the runtime oracle subsystem.

    Attributes:
        mode: One of :data:`MODES`.
        replay_chunk: Row-span size the chunked replay fast path is
            broken into when oracles are enabled (smaller than the
            checkpoint interval so per-chunk invariants see bounded
            deltas).
        sample_stride: In ``sample`` mode, differentially replay every
            N-th chunk (and integrity-recheck every N-th operator
            reuse).  ~1/64 keeps the overhead within the bench budget.
        conservation_rtol: Relative tolerance for the thermal
            energy-conservation residual (boundary heat flow vs. total
            injected power).
        residual_tol: Steady-state linear-system residual considered
            healthy for a direct LU solve.
        temp_slack_c: Slack below ambient tolerated before the
            temperature-bounds oracle trips (numerical undershoot).
    """

    mode: str = "sample"
    replay_chunk: int = 4096
    sample_stride: int = 64
    conservation_rtol: float = 1e-5
    residual_tol: float = 1e-6
    temp_slack_c: float = 1e-6

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(
                f"unknown oracle mode {self.mode!r}; expected one of {MODES}"
            )
        if self.replay_chunk <= 0 or self.sample_stride <= 0:
            raise ValueError("replay_chunk and sample_stride must be positive")

    @property
    def enabled(self) -> bool:
        return self.mode != "off"

    @property
    def strict(self) -> bool:
        return self.mode == "strict"

    def should_sample(self, index: int) -> bool:
        """Deterministic decision: differentially check unit *index*?

        Unit 0 is always sampled (the "1 solve per geometry" /
        first-chunk guarantee), then every ``sample_stride``-th one; in
        strict mode every unit is sampled.
        """
        if not self.enabled:
            return False
        if self.strict:
            return True
        return index % self.sample_stride == 0


_ACTIVE = OracleConfig()


def get_oracle_config() -> OracleConfig:
    """The process-global oracle configuration."""
    return _ACTIVE


def set_oracle_mode(mode: Union[str, OracleConfig]) -> OracleConfig:
    """Set the global oracle mode (or install a full config); returns it."""
    global _ACTIVE
    if isinstance(mode, OracleConfig):
        _ACTIVE = mode
    else:
        _ACTIVE = replace(_ACTIVE, mode=mode)
    return _ACTIVE


@contextmanager
def oracle_mode(mode: Union[str, OracleConfig]) -> Iterator[OracleConfig]:
    """Temporarily switch the global oracle mode (tests, verify paths)."""
    previous = _ACTIVE
    try:
        yield set_oracle_mode(mode)
    finally:
        set_oracle_mode(previous)
