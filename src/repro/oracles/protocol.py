"""Protocol invariants for the distributed stack, as pure predicates.

These are the safety properties the deterministic-simulation harness
(:mod:`repro.dst`) asserts after every simulated event, written as
side-effect-free functions over plain data so they can also be applied
to a real campaign journal after the fact.  Each returns a list of
human-readable violation strings — empty means the history is legal.

The properties:

* **At-most-once accounting** — for every fingerprint, at most one
  journal ``ok`` line is *accepted* (non-duplicate, non-fenced).  Two
  accepted ``ok`` lines would double-count the result.
* **Fencing** — an accepted ``ok`` must carry a lease epoch strictly
  above every epoch the scheduler reclaimed for that fingerprint
  beforehand.  A zombie executor's late write sneaking past the fence
  is exactly the bug lease epochs exist to stop.
* **No task lost** — every submitted fingerprint reaches a final
  verdict (an accepted ``ok`` or a ``final`` failure line).
* **State-machine legality** — circuit breakers, token buckets, and
  admission gates only make transitions their specification allows.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

#: Legal (event, state-before) -> state-after transitions for
#: :class:`repro.service.protection.CircuitBreaker`.  ``success`` closes
#: from *any* state (record_success is unconditional by design — a
#: probe that succeeds proves the backend healthy).  ``failure`` opens
#: from any state once the threshold trips, or leaves the breaker
#: closed while under it; an open breaker stays open until its reset
#: window elapses, after which ``allow`` half-opens it.
_BREAKER_LEGAL = {
    ("success", "closed"): {"closed"},
    ("success", "open"): {"closed"},
    ("success", "half-open"): {"closed"},
    ("failure", "closed"): {"closed", "open"},
    ("failure", "open"): {"open"},
    ("failure", "half-open"): {"open"},
    ("allow", "closed"): {"closed"},
    ("allow", "open"): {"open", "half-open"},
    ("allow", "half-open"): {"half-open"},
}

#: Status codes the simulated gateway may ever return.
GATEWAY_STATUSES = frozenset({200, 202, 400, 404, 408, 429, 503})


def journal_protocol_problems(
    entries: Sequence[Mapping[str, Any]],
    submitted: Optional[Iterable[str]] = None,
) -> List[str]:
    """Violations of at-most-once + fencing over journal *entries*.

    Walks the journal in write order, tracking per fingerprint the
    fence (highest lease epoch seen on a reclaim — an
    ``executor-lost`` line) and the accepted winners.  *submitted*, when
    given, is the set of fingerprints that must reach a final verdict
    (the no-task-lost check).
    """
    problems: List[str] = []
    fence: Dict[str, int] = {}
    accepted_ok: Dict[str, int] = {}
    finalized: set = set()
    for i, entry in enumerate(entries):
        fp = str(entry.get("fingerprint", ""))
        status = entry.get("status")
        epoch = entry.get("lease_epoch")
        where = f"journal line {i} (fp {fp[:12]})"
        if entry.get("final"):
            finalized.add(fp)
        if status == "executor-lost" and epoch is not None:
            fence[fp] = max(fence.get(fp, 0), int(epoch))
            continue
        if status != "ok":
            continue
        if entry.get("fenced"):
            # Audit line for a rejected zombie write: it must actually
            # be behind the fence, or fencing fired spuriously.
            if epoch is not None and int(epoch) > fence.get(fp, 0):
                problems.append(
                    f"{where}: journaled fenced but its epoch {epoch} is "
                    f"above the fence {fence.get(fp, 0)}"
                )
            continue
        if entry.get("duplicate"):
            continue
        # An accepted ok.
        if epoch is not None and int(epoch) <= fence.get(fp, 0):
            problems.append(
                f"{where}: accepted ok carries epoch {epoch} at or below "
                f"the fence {fence[fp]} — a zombie write was counted"
            )
        accepted_ok[fp] = accepted_ok.get(fp, 0) + 1
        if accepted_ok[fp] > 1:
            problems.append(
                f"{where}: fingerprint has {accepted_ok[fp]} accepted ok "
                f"lines — the result was double-counted"
            )
    if submitted is not None:
        for fp in submitted:
            if fp not in accepted_ok and fp not in finalized:
                problems.append(
                    f"fingerprint {fp[:12]}: submitted but never reached "
                    f"a final verdict — the task was lost"
                )
    return problems


def report_conservation_problems(
    report_dict: Mapping[str, Any], n_tasks: int
) -> List[str]:
    """Every submitted task is counted exactly once in the report."""
    problems: List[str] = []
    counts = report_dict.get("counts", {})
    # ``skipped`` (resume hits) is a subset of ``ok``, not disjoint
    # from it, so the partition of submitted tasks is ok + failed.
    total = int(counts.get("ok", 0)) + int(counts.get("failed", 0))
    if total != n_tasks:
        problems.append(
            f"report conservation: ok+failed = {total}, "
            f"but {n_tasks} tasks were submitted"
        )
    if int(counts.get("skipped", 0)) > int(counts.get("ok", 0)):
        problems.append(
            f"report conservation: skipped ({counts.get('skipped')}) "
            f"exceeds ok ({counts.get('ok')})"
        )
    tasks = report_dict.get("tasks", [])
    if len(tasks) != n_tasks:
        problems.append(
            f"report lists {len(tasks)} task verdicts for "
            f"{n_tasks} submitted tasks"
        )
    seen: set = set()
    for entry in tasks:
        fp = entry.get("fingerprint")
        if fp in seen:
            problems.append(
                f"report verdicts contain fingerprint {str(fp)[:12]} twice"
            )
        seen.add(fp)
    return problems


def breaker_transition_problems(
    transitions: Sequence[Sequence[Any]],
) -> List[str]:
    """Illegal circuit-breaker transitions in ``(event, before, after)``
    triples recorded by the simulated gateway."""
    problems: List[str] = []
    for i, (event, before, after) in enumerate(transitions):
        legal = _BREAKER_LEGAL.get((event, before))
        if legal is None:
            problems.append(
                f"breaker transition {i}: unknown (event={event!r}, "
                f"state={before!r})"
            )
        elif after not in legal:
            problems.append(
                f"breaker transition {i}: {before!r} --{event}--> "
                f"{after!r} is illegal (allowed: {sorted(legal)})"
            )
    return problems


def gateway_response_problems(
    responses: Sequence[Mapping[str, Any]],
) -> List[str]:
    """Simulated-gateway responses stay inside the advertised contract."""
    problems: List[str] = []
    for i, resp in enumerate(responses):
        status = resp.get("status")
        if status not in GATEWAY_STATUSES:
            problems.append(
                f"gateway response {i}: status {status!r} is outside the "
                f"advertised set {sorted(GATEWAY_STATUSES)}"
            )
        if status == 429 and not resp.get("retry_after", 0) >= 0:
            problems.append(
                f"gateway response {i}: throttled without a usable "
                f"retry-after hint"
            )
    return problems


def token_bucket_problems(
    observations: Sequence[Mapping[str, Any]], burst: float
) -> List[str]:
    """Bucket levels observed by the sim stay within ``[0, burst]``."""
    problems: List[str] = []
    for i, obs in enumerate(observations):
        tokens = float(obs.get("tokens", 0.0))
        if tokens < -1e-9 or tokens > burst + 1e-9:
            problems.append(
                f"token bucket observation {i}: level {tokens} outside "
                f"[0, {burst}]"
            )
    return problems


__all__ = [
    "GATEWAY_STATUSES",
    "breaker_transition_problems",
    "gateway_response_problems",
    "journal_protocol_problems",
    "report_conservation_problems",
    "token_bucket_problems",
]
