"""The off-die bus: bandwidth-limited transfers and bus power accounting.

Table 3 gives the off-die bus 16 GB/s; Section 3 uses 20 mW/Gb/s to turn
measured bandwidth into bus power ("Assuming a bus power consumption rate
of 20mW/Gb/s, 3D stacking of DRAM reduces bus power by 0.5W").

The bus serializes transfers: a transfer occupies the bus for
``bytes / bytes_per_cycle`` cycles, and a request arriving while the bus
is busy waits.  Total bytes moved feed the bandwidth and power metrics.
"""

from __future__ import annotations

from repro.memsim.config import BusConfig


class OffDieBus:
    """A single shared bus with busy-time tracking."""

    def __init__(self, config: BusConfig, name: str = "bus") -> None:
        self.config = config
        self.name = name
        self._free_at = 0.0
        self.total_bytes = 0
        self.transfers = 0
        self.total_wait_cycles = 0.0

    def transfer(self, t: float, n_bytes: int) -> float:
        """Move *n_bytes* across the bus starting no earlier than *t*.

        Returns the completion time.  Contention is modeled by the bus
        busy time: the transfer begins when the bus goes free.
        """
        if n_bytes <= 0:
            raise ValueError(f"transfer size must be positive, got {n_bytes}")
        start = t if t > self._free_at else self._free_at
        self.total_wait_cycles += start - t
        done = start + n_bytes / self.config.bytes_per_cycle
        self._free_at = done
        self.total_bytes += n_bytes
        self.transfers += 1
        return done

    def account_only(self, n_bytes: int) -> None:
        """Charge bandwidth for background traffic (writebacks) without
        serializing the requester on it."""
        if n_bytes <= 0:
            raise ValueError(f"transfer size must be positive, got {n_bytes}")
        self._free_at += n_bytes / self.config.bytes_per_cycle
        self.total_bytes += n_bytes
        self.transfers += 1

    def bandwidth_gbps(self, elapsed_cycles: float, clock_ghz: float) -> float:
        """Average achieved bandwidth in GB/s over *elapsed_cycles*."""
        if elapsed_cycles <= 0:
            return 0.0
        bytes_per_cycle = self.total_bytes / elapsed_cycles
        return bytes_per_cycle * clock_ghz  # B/cycle * Gcycle/s = GB/s

    def power_w(self, elapsed_cycles: float, clock_ghz: float) -> float:
        """Average bus power in watts at the configured mW/Gb/s rate."""
        gbit_per_s = 8.0 * self.bandwidth_gbps(elapsed_cycles, clock_ghz)
        return gbit_per_s * self.config.power_mw_per_gbps / 1000.0

    def reset_stats(self) -> None:
        """Zero counters (busy time is kept, for warmup continuity)."""
        self.total_bytes = 0
        self.transfers = 0
        self.total_wait_cycles = 0.0
