"""Dependency-honoring trace replay and the CPMA metric.

Section 2.1: "The memory hierarchy simulator ... honors all the
dependencies specified in the trace and issues memory accesses
accordingly.  For instance, if a load address Ld2 is dependent on an
earlier load Ld1, then Ld1 is first issued to the memory hierarchy to
obtain the memory access completion time of Ld1.  Then Ld2 is issued to
the memory hierarchy only after Ld1 is completed."

Each cpu issues at most one reference per cycle; a reference additionally
waits for (a) the completion of the record it depends on and (b) a free
MSHR if it misses the L1 while the cpu already has its maximum number of
misses outstanding.  CPMA — cycles per memory access — is the paper's
metric: total elapsed cycles divided by references retired per cpu.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.memsim.config import HierarchyConfig
from repro.memsim.hierarchy import L1, MemoryHierarchy
from repro.traces.record import AccessType, TraceRecord

#: Completion-table pruning: drop entries this many uids behind the head.
_PRUNE_WINDOW = 65536
_PRUNE_EVERY = 131072


@dataclass
class ReplayStats:
    """Results of replaying one trace against one hierarchy configuration.

    Attributes:
        n_accesses: References measured (post-warmup).
        cpma: Cycles per memory access — elapsed cycles divided by
            per-cpu references (the Figure 5 primary axis).
        avg_latency: Mean individual reference latency, cycles.
        wall_cycles: Elapsed cycles over the measured region.
        bandwidth_gbps: Average off-die bus bandwidth, GB/s (the Figure 5
            secondary axis).
        bus_power_w: Average bus power at 20 mW/Gb/s (Section 3).
        level_counts: References satisfied per hierarchy level.
        level_latency: Mean reference latency per satisfying level,
            cycles (where the cycles per access actually go).
        offchip_fraction: Fraction of references that crossed the bus.
        invalidations: Coherence invalidations between the private L1s.
    """

    n_accesses: int
    cpma: float
    avg_latency: float
    wall_cycles: float
    bandwidth_gbps: float
    bus_power_w: float
    level_counts: Dict[str, int] = field(default_factory=dict)
    level_latency: Dict[str, float] = field(default_factory=dict)
    offchip_fraction: float = 0.0
    invalidations: int = 0


def replay_trace(
    records: Iterable[TraceRecord],
    config: Optional[HierarchyConfig] = None,
    hierarchy: Optional[MemoryHierarchy] = None,
    warmup_fraction: float = 0.3,
    n_records_hint: Optional[int] = None,
) -> ReplayStats:
    """Replay a trace and measure CPMA, bandwidth, and bus power.

    Args:
        records: The trace (any iterable of :class:`TraceRecord`).
        config: Hierarchy configuration (Table 3 baseline by default).
        hierarchy: A pre-built hierarchy to use instead of *config*
            (useful for warmed or instrumented instances).
        warmup_fraction: Leading fraction of the trace used to warm the
            caches; its statistics are discarded, mirroring the paper's
            skipping of each benchmark's initialization phase.
        n_records_hint: Length of *records* if it is a generator (needed
            to place the warmup boundary; ignored for sized iterables).

    Returns:
        A :class:`ReplayStats`.
    """
    if hierarchy is None:
        hierarchy = MemoryHierarchy(config or HierarchyConfig())
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")

    try:
        total = len(records)  # type: ignore[arg-type]
    except TypeError:
        total = n_records_hint
    warmup_until = int(total * warmup_fraction) if total else 0

    n_cpus = hierarchy.config.n_cpus
    mshrs = hierarchy.config.mshrs_per_cpu
    window = hierarchy.config.reorder_window
    next_free = [0.0] * n_cpus
    outstanding: List[List[float]] = [[] for _ in range(n_cpus)]
    robs: List[deque] = [deque() for _ in range(n_cpus)]
    completion: Dict[int, float] = {}

    measured = 0
    latency_sum = 0.0
    level_latency_sum: Dict[str, float] = {}
    level_latency_n: Dict[str, int] = {}
    measure_start: Optional[float] = None
    end_time = 0.0
    is_load = AccessType.LOAD
    is_store = AccessType.STORE
    is_ifetch = AccessType.IFETCH

    for i, record in enumerate(records):
        cpu = record.cpu
        # Issue slots advance at one reference per cpu per cycle; a
        # reference may *start* later than its slot if its producer has
        # not completed, but it does not hold later independent
        # references back (the paper's replay honors dependencies, not
        # program order).
        slot = next_free[cpu]
        next_free[cpu] = slot + 1.0
        t = slot
        # Finite reorder window: a reference needs a free window slot, so
        # it cannot start until the oldest in-flight reference retires.
        rob = robs[cpu]
        if len(rob) >= window:
            oldest = rob.popleft()
            if oldest > t:
                t = oldest
        dep = record.dep_uid
        # Dependent *loads* wait for their producer (the paper's Ld1/Ld2
        # rule).  Dependent stores drain through the store buffer instead
        # of stalling.
        if dep >= 0 and record.kind == is_load:
            dep_done = completion.get(dep)
            if dep_done is not None and dep_done > t:
                t = dep_done

        misses = outstanding[cpu]
        line_present = hierarchy.l1s[cpu].contains(
            record.address >> hierarchy._line_shift
        )
        if not line_present and misses:
            if len(misses) >= mshrs and misses[0] > t:
                t = misses[0]
            # Retire completed misses from the MSHR window.
            done = 0
            for value in misses:
                if value <= t:
                    done += 1
                else:
                    break
            if done:
                del misses[:done]

        if record.kind == is_ifetch:
            result = hierarchy.ifetch(cpu, record.address, t)
        else:
            result = hierarchy.access(
                cpu, record.kind == is_store, record.address, t
            )
        if result.level != L1:
            insort(misses, result.completion)
        if record.kind == is_load:
            completion[record.uid] = result.completion
            if len(completion) > _PRUNE_EVERY:
                cutoff = record.uid - _PRUNE_WINDOW
                completion = {
                    uid: done for uid, done in completion.items() if uid >= cutoff
                }

        # In-order retirement: a reference retires no earlier than its
        # predecessors.
        retire = result.completion
        if rob and rob[-1] > retire:
            retire = rob[-1]
        rob.append(retire)
        if retire > end_time:
            end_time = retire

        if warmup_until and i + 1 == warmup_until:
            hierarchy.reset_stats()
            measure_start = max(
                max(next_free),
                max((r[-1] for r in robs if r), default=0.0),
            )
            measured = 0
            latency_sum = 0.0
            level_latency_sum.clear()
            level_latency_n.clear()
        elif i + 1 > warmup_until or not warmup_until:
            measured += 1
            latency = result.completion - t
            latency_sum += latency
            level = result.level
            level_latency_sum[level] = (
                level_latency_sum.get(level, 0.0) + latency
            )
            level_latency_n[level] = level_latency_n.get(level, 0) + 1

    if measured == 0:
        raise ValueError("trace produced no measured references")
    start = measure_start or 0.0
    wall = max(end_time - start, 1.0)
    per_cpu_refs = measured / n_cpus
    clock = hierarchy.config.core_clock_ghz
    return ReplayStats(
        n_accesses=measured,
        cpma=wall / per_cpu_refs,
        avg_latency=latency_sum / measured,
        wall_cycles=wall,
        bandwidth_gbps=hierarchy.bus.bandwidth_gbps(wall, clock),
        bus_power_w=hierarchy.bus.power_w(wall, clock),
        level_counts=dict(hierarchy.level_counts),
        level_latency={
            level: level_latency_sum[level] / count
            for level, count in level_latency_n.items()
        },
        offchip_fraction=hierarchy.offchip_fraction(),
        invalidations=hierarchy.invalidations,
    )
