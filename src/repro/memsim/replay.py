"""Dependency-honoring trace replay and the CPMA metric.

Section 2.1: "The memory hierarchy simulator ... honors all the
dependencies specified in the trace and issues memory accesses
accordingly.  For instance, if a load address Ld2 is dependent on an
earlier load Ld1, then Ld1 is first issued to the memory hierarchy to
obtain the memory access completion time of Ld1.  Then Ld2 is issued to
the memory hierarchy only after Ld1 is completed."

Each cpu issues at most one reference per cycle; a reference additionally
waits for (a) the completion of the record it depends on and (b) a free
MSHR if it misses the L1 while the cpu already has its maximum number of
misses outstanding.  CPMA — cycles per memory access — is the paper's
metric: total elapsed cycles divided by references retired per cpu.

The engine is the stateful :class:`TraceReplayer`: records are fed one
at a time, the full replay state (hierarchy, queues, completion table,
statistics) can be checkpointed to disk at any record boundary, and a
fresh replayer restored from that checkpoint continues the run
bit-identically.  An optional
:class:`~repro.resilience.guards.TraceGuard` validates the stream as it
flows: strict mode raises
:class:`~repro.resilience.errors.TraceCorruptionError` on the first bad
record, lenient mode quarantines bad records and reports counts.
:func:`replay_trace` remains the one-shot convenience wrapper.
"""

from __future__ import annotations

import itertools
import pickle
from bisect import insort
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

import numpy as np

from repro.memsim.config import HierarchyConfig
from repro.memsim.hierarchy import L1, L2, MemoryHierarchy
from repro.oracles.config import get_oracle_config
from repro.oracles.invariants import (
    check_cache_sets,
    check_directory_consistency,
)
from repro.oracles.report import record_check, record_violation
from repro.resilience.checkpoint import load_checkpoint, save_checkpoint
from repro.resilience.guards import TraceGuard
from repro.traces.generator import TRACE_DTYPE, array_to_records
from repro.traces.record import AccessType, TraceRecord

#: Completion-table pruning: drop entries this many uids behind the head.
_PRUNE_WINDOW = 65536
_PRUNE_EVERY = 131072


@dataclass
class ReplayStats:
    """Results of replaying one trace against one hierarchy configuration.

    Attributes:
        n_accesses: References measured (post-warmup).
        cpma: Cycles per memory access — elapsed cycles divided by
            per-cpu references (the Figure 5 primary axis).
        avg_latency: Mean individual reference latency, cycles.
        wall_cycles: Elapsed cycles over the measured region.
        bandwidth_gbps: Average off-die bus bandwidth, GB/s (the Figure 5
            secondary axis).
        bus_power_w: Average bus power at 20 mW/Gb/s (Section 3).
        level_counts: References satisfied per hierarchy level.
        level_latency: Mean reference latency per satisfying level,
            cycles (where the cycles per access actually go).
        offchip_fraction: Fraction of references that crossed the bus.
        invalidations: Coherence invalidations between the private L1s.
        quarantined: Records rejected by a lenient trace guard (0 when
            no guard was active or the stream was clean).
        quarantined_by_reason: Rejection counts keyed by violation tag.
        degraded: True when a replay oracle detected a fast-path
            divergence and the run fell back to the reference path (the
            numbers are correct, the fast path was not trusted).
    """

    n_accesses: int
    cpma: float
    avg_latency: float
    wall_cycles: float
    bandwidth_gbps: float
    bus_power_w: float
    level_counts: Dict[str, int] = field(default_factory=dict)
    level_latency: Dict[str, float] = field(default_factory=dict)
    offchip_fraction: float = 0.0
    invalidations: int = 0
    quarantined: int = 0
    quarantined_by_reason: Dict[str, int] = field(default_factory=dict)
    degraded: bool = False


class TraceReplayer:
    """Incremental, checkpointable replay of one trace.

    Feed records with :meth:`feed` (or :meth:`feed_many`), then call
    :meth:`stats` to finalize.  The replayer's entire state is plain
    Python/numpy data, so :meth:`checkpoint` can serialize it mid-run
    and :meth:`restore` continues exactly where the snapshot was taken.

    Args:
        config: Hierarchy configuration (Table 3 baseline by default).
        hierarchy: A pre-built hierarchy to use instead of *config*.
        warmup_until: Number of leading records whose statistics are
            discarded (cache warmup); 0 disables warmup.
        guard: Optional trace-stream validator; in lenient mode rejected
            records are skipped and tallied.
    """

    def __init__(
        self,
        config: Optional[HierarchyConfig] = None,
        hierarchy: Optional[MemoryHierarchy] = None,
        warmup_until: int = 0,
        guard: Optional[TraceGuard] = None,
    ) -> None:
        self.hierarchy = hierarchy or MemoryHierarchy(
            config or HierarchyConfig()
        )
        self.warmup_until = warmup_until
        self.guard = guard
        n_cpus = self.hierarchy.config.n_cpus
        self.index = 0  # records consumed (fed), including quarantined
        self._next_free = [0.0] * n_cpus
        self._outstanding: List[List[float]] = [[] for _ in range(n_cpus)]
        self._robs: List[deque] = [deque() for _ in range(n_cpus)]
        self._completion: Dict[int, float] = {}
        self._measured = 0
        self._latency_sum = 0.0
        self._level_latency_sum: Dict[str, float] = {}
        self._level_latency_n: Dict[str, int] = {}
        self._measure_start: Optional[float] = None
        self._end_time = 0.0
        # Oracle bookkeeping (see feed_array): chunks replayed so far,
        # whether a differential check ever diverged, and whether the
        # rest of the run is pinned to the reference per-record path.
        self._chunk_counter = 0
        self._oracle_fallback = False
        self._oracle_degraded = False

    def __setstate__(self, state: Dict[str, Any]) -> None:
        """Unpickle, defaulting oracle fields absent from old snapshots."""
        self.__dict__.update(state)
        self.__dict__.setdefault("_chunk_counter", 0)
        self.__dict__.setdefault("_oracle_fallback", False)
        self.__dict__.setdefault("_oracle_degraded", False)

    # -- the per-record hot path ---------------------------------------------

    def feed(self, record: TraceRecord) -> None:
        """Replay one record (skips it if the guard quarantines it)."""
        self.index += 1
        if self.guard is not None and not self.guard.admit(record):
            self._maybe_end_warmup()
            return
        hierarchy = self.hierarchy
        mshrs = hierarchy.config.mshrs_per_cpu
        window = hierarchy.config.reorder_window
        cpu = record.cpu
        # Issue slots advance at one reference per cpu per cycle; a
        # reference may *start* later than its slot if its producer has
        # not completed, but it does not hold later independent
        # references back (the paper's replay honors dependencies, not
        # program order).
        slot = self._next_free[cpu]
        self._next_free[cpu] = slot + 1.0
        t = slot
        # Finite reorder window: a reference needs a free window slot, so
        # it cannot start until the oldest in-flight reference retires.
        rob = self._robs[cpu]
        if len(rob) >= window:
            oldest = rob.popleft()
            if oldest > t:
                t = oldest
        dep = record.dep_uid
        # Dependent *loads* wait for their producer (the paper's Ld1/Ld2
        # rule).  Dependent stores drain through the store buffer instead
        # of stalling.
        if dep >= 0 and record.kind == AccessType.LOAD:
            dep_done = self._completion.get(dep)
            if dep_done is not None and dep_done > t:
                t = dep_done

        misses = self._outstanding[cpu]
        line_present = hierarchy.l1s[cpu].contains(
            record.address >> hierarchy._line_shift
        )
        if not line_present and misses:
            if len(misses) >= mshrs and misses[0] > t:
                t = misses[0]
            # Retire completed misses from the MSHR window.
            done = 0
            for value in misses:
                if value <= t:
                    done += 1
                else:
                    break
            if done:
                del misses[:done]

        if record.kind == AccessType.IFETCH:
            result = hierarchy.ifetch(cpu, record.address, t)
        else:
            result = hierarchy.access(
                cpu, record.kind == AccessType.STORE, record.address, t
            )
        if result.level != L1:
            insort(misses, result.completion)
        if record.kind == AccessType.LOAD:
            self._completion[record.uid] = result.completion
            if len(self._completion) > _PRUNE_EVERY:
                cutoff = record.uid - _PRUNE_WINDOW
                self._completion = {
                    uid: done
                    for uid, done in self._completion.items()
                    if uid >= cutoff
                }

        # In-order retirement: a reference retires no earlier than its
        # predecessors.
        retire = result.completion
        if rob and rob[-1] > retire:
            retire = rob[-1]
        rob.append(retire)
        if retire > self._end_time:
            self._end_time = retire

        if not self._maybe_end_warmup():
            self._measured += 1
            latency = result.completion - t
            self._latency_sum += latency
            level = result.level
            self._level_latency_sum[level] = (
                self._level_latency_sum.get(level, 0.0) + latency
            )
            self._level_latency_n[level] = (
                self._level_latency_n.get(level, 0) + 1
            )

    def _maybe_end_warmup(self) -> bool:
        """Handle the warmup boundary; True while still inside warmup."""
        if not self.warmup_until:
            return False
        if self.index == self.warmup_until:
            self.hierarchy.reset_stats()
            self._measure_start = max(
                max(self._next_free),
                max((r[-1] for r in self._robs if r), default=0.0),
            )
            self._measured = 0
            self._latency_sum = 0.0
            self._level_latency_sum.clear()
            self._level_latency_n.clear()
            return True
        return self.index < self.warmup_until

    def feed_many(
        self,
        records: Iterable[TraceRecord],
        checkpoint_every: Optional[int] = None,
        checkpoint_path: Optional[Union[str, Path]] = None,
        stop_after: Optional[int] = None,
    ) -> int:
        """Feed a stream of records; returns how many were consumed.

        Args:
            records: The stream (must start at this replayer's current
                position — use :func:`itertools.islice` or re-read the
                trace file when resuming).
            checkpoint_every: Snapshot state every this many records.
            checkpoint_path: Where snapshots go (required with
                *checkpoint_every*).
            stop_after: Stop after consuming this many records from
                *records* (simulates an interruption; used by tests).
        """
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ValueError("checkpoint_every must be >= 1")
            if checkpoint_path is None:
                raise ValueError("checkpoint_every requires checkpoint_path")
        consumed = 0
        for record in records:
            self.feed(record)
            consumed += 1
            if checkpoint_every and consumed % checkpoint_every == 0:
                self.checkpoint(checkpoint_path)
            if stop_after is not None and consumed >= stop_after:
                break
        return consumed

    # -- the chunked (batched) hot path --------------------------------------

    def feed_array(
        self,
        array: np.ndarray,
        checkpoint_every: Optional[int] = None,
        checkpoint_path: Optional[Union[str, Path]] = None,
        stop_after: Optional[int] = None,
    ) -> int:
        """Replay a :data:`~repro.traces.generator.TRACE_DTYPE` batch.

        Bit-identical to calling :meth:`feed` on each row in order — the
        L1-hit path (the vast majority of references) is inlined against
        the raw cache dicts (:meth:`MemoryHierarchy.fastpath_state`),
        everything else falls back to the per-record hierarchy walk, and
        bypassed hit tallies are flushed back at span boundaries.  The
        batch path trusts the array's producer: rows skip the
        construction-time :class:`TraceRecord` validation (a malformed
        row fails with an ordinary IndexError/KeyError, not
        ``TraceCorruptionError``) unless a guard is installed, in which
        case rows are validated and replayed one record at a time.

        With oracles enabled (:mod:`repro.oracles`), the batch is split
        into fixed-size chunks; every chunk runs cheap conservation
        invariants, and sampled chunks are re-executed on the reference
        :meth:`feed` path against a cloned replayer and compared state
        field for state field.  A divergence records a violation, adopts
        the reference state, and pins the rest of the run to the
        reference path — the run completes ``degraded`` rather than
        crashing or silently trusting the fast path.

        Args/returns as :meth:`feed_many`.
        """
        if array.dtype != TRACE_DTYPE:
            raise ValueError(
                f"feed_array needs a TRACE_DTYPE array, got {array.dtype}"
            )
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ValueError("checkpoint_every must be >= 1")
            if checkpoint_path is None:
                raise ValueError("checkpoint_every requires checkpoint_path")
        n = len(array)
        if stop_after is not None:
            n = min(n, stop_after)
        if self.guard is not None:
            # Guard admission needs validated records; take the exact
            # per-record path so quarantine accounting stays identical.
            return self.feed_many(
                array_to_records(array[:n]),
                checkpoint_every=checkpoint_every,
                checkpoint_path=checkpoint_path,
            )
        cfg = get_oracle_config()
        consumed = 0
        while consumed < n:
            stop = n
            if checkpoint_every:
                stop = min(
                    n, (consumed // checkpoint_every + 1) * checkpoint_every
                )
            if cfg.enabled:
                stop = min(stop, consumed + cfg.replay_chunk)
            if self._oracle_fallback:
                # A prior differential diverged: the fast path is not
                # trusted for the rest of this run.
                self.feed_many(array_to_records(array[consumed:stop]))
            elif cfg.enabled:
                counter = self._chunk_counter
                self._chunk_counter = counter + 1
                crosses_warmup = bool(
                    self.warmup_until
                    and self.index < self.warmup_until <= self.index
                    + (stop - consumed)
                )
                before = self._counter_snapshot()
                if cfg.strict or (
                    counter > 0 and counter % cfg.sample_stride == 0
                ):
                    self._differential_chunk(array, consumed, stop)
                    self._structure_invariants()
                else:
                    self._feed_rows(array, consumed, stop)
                self._chunk_invariants(before, stop - consumed, crosses_warmup)
            else:
                self._feed_rows(array, consumed, stop)
            consumed = stop
            if checkpoint_every and consumed % checkpoint_every == 0:
                self.checkpoint(checkpoint_path)
        return consumed

    def _feed_rows(self, array: np.ndarray, start: int, stop: int) -> None:
        """Feed ``array[start:stop]``, splitting at the warmup boundary."""
        warmup_until = self.warmup_until
        if warmup_until and self.index < warmup_until:
            boundary = start + (warmup_until - self.index)
            if boundary > stop:
                self._feed_span(array, start, stop, measure=False)
                return
            self._feed_span(array, start, boundary, measure=False)
            # The warmup boundary, exactly as _maybe_end_warmup does it:
            # discard warmup statistics, then measure from the cycle the
            # warmed pipeline has actually reached.
            self.hierarchy.reset_stats()
            self._measure_start = max(
                max(self._next_free),
                max((r[-1] for r in self._robs if r), default=0.0),
            )
            self._measured = 0
            self._latency_sum = 0.0
            self._level_latency_sum.clear()
            self._level_latency_n.clear()
            start = boundary
        if start < stop:
            self._feed_span(array, start, stop, measure=True)

    def _feed_span(
        self, array: np.ndarray, start: int, stop: int, measure: bool
    ) -> None:
        """The chunk inner loop: replay ``array[start:stop]`` inlined.

        Two walks are inlined against the raw cache dicts — the L1 hit
        and the L1-miss/L2-hit continuation (together the vast majority
        of references); everything else, including the rare
        sequential-miss prefetch trigger, falls back to the per-record
        hierarchy walk.  Per-record issue slots and the dependent-load
        predicate are precomputed with numpy (both are exact: slots are
        integral doubles, the predicate is pure integer logic).  Every
        state mutation lands in the same order as :meth:`feed`, so
        counters, timing, and float accumulation match the per-record
        path bit for bit.
        """
        if start >= stop:
            return
        hierarchy = self.hierarchy
        fp = hierarchy.fastpath_state()
        d_sets = fp.d_sets
        d_mask = fp.d_mask
        i_sets = fp.i_sets
        i_mask = fp.i_mask
        l2_sets = fp.l2_sets
        l2_mask = fp.l2_mask
        miss_history = fp.miss_history
        line_shift = fp.line_shift
        lat_l1d = fp.lat_l1d
        lat_l1i = fp.lat_l1i
        lat_l2 = fp.lat_l2
        invalidate_other = fp.invalidate_other_copies
        fill_l1 = fp.fill_l1
        mshrs = hierarchy.config.mshrs_per_cpu
        window = hierarchy.config.reorder_window
        access = hierarchy.access
        ifetch = hierarchy.ifetch
        next_free = self._next_free
        outstanding = self._outstanding
        robs = self._robs
        completion_table = self._completion
        completion_get = completion_table.get
        level_latency_sum = self._level_latency_sum
        level_latency_n = self._level_latency_n
        end_time = self._end_time
        latency_sum = self._latency_sum
        measured = self._measured
        n_cpus = len(next_free)
        d_hits = [0] * n_cpus
        d_misses = [0] * n_cpus
        i_hits = [0] * n_cpus
        l2_fast_hits = 0
        # Level-latency buckets for the two inlined levels stay in
        # locals (sequential accumulation from the current dict values,
        # written back below — same additions in the same order).
        l1_lat_sum = level_latency_sum.get(L1, 0.0)
        l1_lat_n0 = level_latency_n.get(L1, 0)
        l1_lat_n = l1_lat_n0
        l2_lat_sum = level_latency_sum.get(L2, 0.0)
        l2_lat_n0 = level_latency_n.get(L2, 0)
        l2_lat_n = l2_lat_n0

        span = array[start:stop]
        cpu_col = span["cpu"]
        kind_col = span["kind"]
        dep_col = span["dep_uid"]
        # Issue slots advance at one reference per cpu per cycle; the
        # whole slot sequence for the span is known up front.  The
        # values are integral doubles, so base + arange reproduces the
        # sequential base + 1.0 + 1.0 + ... additions exactly.
        slot_col = np.empty(len(span), dtype=np.float64)
        for c in range(n_cpus):
            taken = cpu_col == c
            count = int(taken.sum())
            if count:
                base = next_free[c]
                slot_col[taken] = base + np.arange(count, dtype=np.float64)
                next_free[c] = base + float(count)
        # Fold the dependent-LOAD predicate into the dep column: -1
        # means "no wait", matching feed()'s dep>=0-and-LOAD test.
        dep_col = np.where((dep_col >= 0) & (kind_col == 0), dep_col, -1)

        for uid, cpu, kind, address, dep, t in zip(
            span["uid"].tolist(),
            cpu_col.tolist(),
            kind_col.tolist(),
            span["address"].tolist(),
            dep_col.tolist(),
            slot_col.tolist(),
        ):
            rob = robs[cpu]
            if len(rob) >= window:
                oldest = rob.popleft()
                if oldest > t:
                    t = oldest

            if kind == 2:  # IFETCH (MSHR presence checks the L1D, as feed does)
                line = address >> line_shift
                if line not in d_sets[cpu][line & d_mask]:
                    misses = outstanding[cpu]
                    if misses:
                        if len(misses) >= mshrs and misses[0] > t:
                            t = misses[0]
                        done = 0
                        for value in misses:
                            if value <= t:
                                done += 1
                            else:
                                break
                        if done:
                            del misses[:done]
                i_entries = i_sets[cpu][line & i_mask]
                previous = i_entries.pop(line, None)
                if previous is not None:
                    i_entries[line] = previous
                    i_hits[cpu] += 1
                    comp = t + lat_l1i
                    level = L1
                else:
                    result = ifetch(cpu, address, t)
                    comp = result.completion
                    level = result.level
                    insort(outstanding[cpu], comp)
            else:
                if dep >= 0:  # dependent LOAD (predicate folded above)
                    dep_done = completion_get(dep)
                    if dep_done is not None and dep_done > t:
                        t = dep_done
                line = address >> line_shift
                d_entries = d_sets[cpu][line & d_mask]
                previous = d_entries.pop(line, None)
                if previous is not None:  # L1D hit
                    if kind == 1:  # STORE write hit
                        d_entries[line] = True
                        invalidate_other(cpu, line)
                    else:
                        d_entries[line] = previous
                    d_hits[cpu] += 1
                    comp = t + lat_l1d
                    level = L1
                else:
                    misses = outstanding[cpu]
                    if misses:
                        if len(misses) >= mshrs and misses[0] > t:
                            t = misses[0]
                        done = 0
                        for value in misses:
                            if value <= t:
                                done += 1
                            else:
                                break
                        if done:
                            del misses[:done]
                    history = miss_history[cpu]
                    if (
                        l2_sets is not None
                        and line in l2_sets[line & l2_mask]
                        and (line - 1) not in history
                        and (line - 2) not in history
                    ):
                        # Inlined L1-miss -> L2-hit walk, mirroring
                        # access(): miss accounting, write-invalidate,
                        # miss-history append (the stream detector did
                        # not fire — sequential misses take the slow
                        # path so the prefetcher runs for real), L2
                        # LRU touch, L1 install.
                        d_misses[cpu] += 1
                        write = kind == 1
                        if write:
                            invalidate_other(cpu, line)
                        history.append(line)
                        l2_entries = l2_sets[line & l2_mask]
                        l2_entries[line] = l2_entries.pop(line) or write
                        l2_fast_hits += 1
                        fill_l1(cpu, line, write)
                        comp = (t + lat_l1d) + lat_l2
                        level = L2
                    else:
                        result = access(cpu, kind == 1, address, t)
                        comp = result.completion
                        level = result.level
                    insort(misses, comp)

            if kind == 0:  # LOAD
                completion_table[uid] = comp
                if len(completion_table) > _PRUNE_EVERY:
                    cutoff = uid - _PRUNE_WINDOW
                    completion_table = {
                        u: done
                        for u, done in completion_table.items()
                        if u >= cutoff
                    }
                    completion_get = completion_table.get
                    self._completion = completion_table

            retire = comp
            if rob and rob[-1] > retire:
                retire = rob[-1]
            rob.append(retire)
            if retire > end_time:
                end_time = retire

            if measure:
                latency = comp - t
                latency_sum += latency
                if level == L1:
                    l1_lat_sum += latency
                    l1_lat_n += 1
                elif level == L2:
                    l2_lat_sum += latency
                    l2_lat_n += 1
                else:
                    level_latency_sum[level] = (
                        level_latency_sum.get(level, 0.0) + latency
                    )
                    level_latency_n[level] = level_latency_n.get(level, 0) + 1

        self.index += stop - start
        self._end_time = end_time
        self._latency_sum = latency_sum
        if measure:
            measured += stop - start
        self._measured = measured
        if l1_lat_n != l1_lat_n0:
            level_latency_sum[L1] = l1_lat_sum
            level_latency_n[L1] = l1_lat_n
        if l2_lat_n != l2_lat_n0:
            level_latency_sum[L2] = l2_lat_sum
            level_latency_n[L2] = l2_lat_n
        hierarchy.flush_fast_counts(
            d_hits,
            i_hits,
            sum(d_hits) + sum(i_hits),
            d_misses,
            l2_fast_hits,
            l2_fast_hits,
        )

    # -- oracles -------------------------------------------------------------

    @staticmethod
    def _cache_fingerprint(cache: Any) -> Optional[Dict[str, Any]]:
        if cache is None:
            return None
        return {
            "hits": cache.hits,
            "misses": cache.misses,
            "evictions": cache.evictions,
            "writebacks": cache.writebacks,
            # Dict order IS the LRU order, so == checks it too.
            "sets": [list(entries.items()) for entries in cache._sets],
        }

    @staticmethod
    def _dram_cache_fingerprint(dc: Any) -> Optional[Dict[str, Any]]:
        if dc is None:
            return None
        return {
            "sector_hits": dc.sector_hits,
            "sector_misses": dc.sector_misses,
            "page_misses": dc.page_misses,
            "page_evictions": dc.page_evictions,
            "dirty_sector_writebacks": dc.dirty_sector_writebacks,
            "sets": [list(entries.items()) for entries in dc._sets],
            "dirty": [list(entries.items()) for entries in dc._dirty],
            "bank_free": list(dc.banks._bank_free),
            "open_pages": list(dc.banks._open_page),
        }

    def state_fingerprint(self) -> Dict[str, Any]:
        """Everything observable about the replay, for exact comparison.

        Covers cache contents *and* LRU order (dict order), the
        coherence directory, prefetch history, DRAM bank/page state, bus
        accounting, ROBs, completion tables, and every timing
        accumulator — the same surface the fast-path equivalence tests
        compare, so a differential mismatch pinpoints the diverged
        field.
        """
        h = self.hierarchy
        return {
            "l1d": [self._cache_fingerprint(c) for c in h.l1s],
            "l1i": [self._cache_fingerprint(c) for c in h.l1is],
            "l2": self._cache_fingerprint(h.l2),
            "stacked_sram": self._cache_fingerprint(h.stacked_sram),
            "stacked_dram": self._dram_cache_fingerprint(h.stacked_dram),
            "directory": dict(h._directory),
            "miss_history": [list(d) for d in h._miss_history],
            "level_counts": dict(h.level_counts),
            "offchip_accesses": h.offchip_accesses,
            "invalidations": h.invalidations,
            "prefetches": h.prefetches,
            "ddr_open_pages": list(h.ddr._open_page),
            "ddr_bank_free": list(h.ddr._bank_free),
            "ddr_page_hits": h.ddr.page_hits,
            "ddr_page_empties": h.ddr.page_empties,
            "ddr_page_conflicts": h.ddr.page_conflicts,
            "bus_free_at": h.bus._free_at,
            "bus_total_bytes": h.bus.total_bytes,
            "bus_transfers": h.bus.transfers,
            "bus_wait_cycles": h.bus.total_wait_cycles,
            "index": self.index,
            "next_free": list(self._next_free),
            "outstanding": [list(o) for o in self._outstanding],
            "robs": [list(r) for r in self._robs],
            "completion": dict(self._completion),
            "measured": self._measured,
            "latency_sum": self._latency_sum,
            "level_latency_sum": dict(self._level_latency_sum),
            "level_latency_n": dict(self._level_latency_n),
            "measure_start": self._measure_start,
            "end_time": self._end_time,
        }

    def _counter_snapshot(self) -> Dict[str, float]:
        """Cheap monotone-counter snapshot taken around every chunk."""
        h = self.hierarchy
        return {
            "index": self.index,
            "measured": self._measured,
            "latency_sum": self._latency_sum,
            "end_time": self._end_time,
            "total_accesses": h.total_accesses,
            "offchip_accesses": h.offchip_accesses,
            "invalidations": h.invalidations,
            "bus_total_bytes": h.bus.total_bytes,
        }

    def _record_replay_violation(self, detail: str, action: str) -> None:
        self._oracle_degraded = True
        record_violation("memsim.replay", "memsim", detail, action)

    def _chunk_invariants(
        self, before: Dict[str, float], rows: int, crosses_warmup: bool
    ) -> None:
        """O(1)-ish invariants run after *every* oracle-mode chunk."""
        record_check("memsim.replay-chunk")
        problems: List[str] = []
        after = self._counter_snapshot()
        if after["index"] != before["index"] + rows:
            problems.append(
                f"index advanced {after['index'] - before['index']} "
                f"for a {rows}-row chunk"
            )
        if not crosses_warmup:
            # reset_stats() at the warmup boundary legitimately rewinds
            # these; any other decrease is corruption.
            for key, value in before.items():
                if after[key] < value:
                    problems.append(
                        f"monotone counter {key} decreased: "
                        f"{value} -> {after[key]}"
                    )
        window = self.hierarchy.config.reorder_window
        for cpu, rob in enumerate(self._robs):
            if len(rob) > window:
                problems.append(
                    f"cpu{cpu} ROB holds {len(rob)} > window {window}"
                )
        mshrs = self.hierarchy.config.mshrs_per_cpu
        for cpu, misses in enumerate(self._outstanding):
            if len(misses) > mshrs:
                problems.append(
                    f"cpu{cpu} tracks {len(misses)} outstanding misses "
                    f"> {mshrs} MSHRs"
                )
            if any(a > b for a, b in zip(misses, misses[1:])):
                problems.append(f"cpu{cpu} MSHR completions out of order")
        for problem in problems:
            self._record_replay_violation(problem, "degraded")

    def _structure_invariants(self) -> None:
        """Cache/directory well-formedness (sampled chunks + stats())."""
        record_check("memsim.replay-structure")
        h = self.hierarchy
        problems: List[str] = []
        for cpu, cache in enumerate(h.l1s):
            problems += check_cache_sets(
                cache._sets, cache.config.ways, f"l1d{cpu}"
            )
        for cpu, cache in enumerate(h.l1is):
            problems += check_cache_sets(
                cache._sets, cache.config.ways, f"l1i{cpu}"
            )
        if h.l2 is not None:
            problems += check_cache_sets(h.l2._sets, h.l2.config.ways, "l2")
        if h.stacked_sram is not None:
            problems += check_cache_sets(
                h.stacked_sram._sets, h.stacked_sram.config.ways, "stacked-sram"
            )
        problems += check_directory_consistency(h)
        for problem in problems:
            self._record_replay_violation(problem, "degraded")

    def _differential_chunk(
        self, array: np.ndarray, start: int, stop: int
    ) -> None:
        """Replay one chunk on both paths and compare state exactly.

        The reference replayer is a pickle clone taken *before* the fast
        path touches anything, fed the same rows through the per-record
        :meth:`feed` path.  On mismatch the reference state is adopted
        (it is the trusted semantics) and the rest of the run is pinned
        to the reference path.
        """
        record_check("memsim.replay-differential")
        reference = pickle.loads(pickle.dumps(self))
        reference.guard = None
        self._feed_rows(array, start, stop)
        for record in array_to_records(array[start:stop]):
            reference.feed(record)
        mine = self.state_fingerprint()
        theirs = reference.state_fingerprint()
        if mine == theirs:
            return
        diverged = sorted(
            key for key in mine if mine[key] != theirs.get(key)
        )
        self._record_replay_violation(
            "fast path diverged from reference replay at record "
            f"{self.index} (fields: {', '.join(diverged[:6])})",
            "fallback-reference",
        )
        # Adopt the reference state wholesale and stop trusting the
        # fast path: correctness beats speed once an oracle fires.
        degraded = self._oracle_degraded
        self.__dict__.update(reference.__dict__)
        self._oracle_degraded = degraded
        self._oracle_fallback = True

    # -- finalization --------------------------------------------------------

    def stats(self) -> ReplayStats:
        """Finalize the replay into a :class:`ReplayStats`."""
        if self._measured == 0:
            raise ValueError("trace produced no measured references")
        if get_oracle_config().enabled:
            # Final well-formedness sweep: per-record (feed_many) runs
            # get at least this one structural check even though they
            # never pass through the chunk loop.
            self._structure_invariants()
        hierarchy = self.hierarchy
        start = self._measure_start or 0.0
        wall = max(self._end_time - start, 1.0)
        per_cpu_refs = self._measured / hierarchy.config.n_cpus
        clock = hierarchy.config.core_clock_ghz
        return ReplayStats(
            n_accesses=self._measured,
            cpma=wall / per_cpu_refs,
            avg_latency=self._latency_sum / self._measured,
            wall_cycles=wall,
            bandwidth_gbps=hierarchy.bus.bandwidth_gbps(wall, clock),
            bus_power_w=hierarchy.bus.power_w(wall, clock),
            level_counts=dict(hierarchy.level_counts),
            level_latency={
                level: self._level_latency_sum[level] / count
                for level, count in self._level_latency_n.items()
            },
            offchip_fraction=hierarchy.offchip_fraction(),
            invalidations=hierarchy.invalidations,
            quarantined=self.guard.quarantined if self.guard else 0,
            quarantined_by_reason=(
                dict(self.guard.quarantined_by_reason) if self.guard else {}
            ),
            degraded=self._oracle_degraded,
        )

    # -- checkpoint/resume ---------------------------------------------------

    def checkpoint(self, path: Union[str, Path]) -> Path:
        """Snapshot the full replay state to *path* (atomic write)."""
        return save_checkpoint(
            "replay", {"replayer": self, "index": self.index}, path
        )

    @classmethod
    def restore(cls, path: Union[str, Path]) -> "TraceReplayer":
        """Rebuild a replayer from a :meth:`checkpoint` snapshot.

        The caller must re-feed the trace starting at record
        ``replayer.index`` (earlier records are already accounted for).
        """
        state = load_checkpoint(path, kind="replay")
        return state["replayer"]


def replay_trace(
    records: Union[Iterable[TraceRecord], np.ndarray],
    config: Optional[HierarchyConfig] = None,
    hierarchy: Optional[MemoryHierarchy] = None,
    warmup_fraction: float = 0.3,
    n_records_hint: Optional[int] = None,
    mode: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_path: Optional[Union[str, Path]] = None,
    resume_from: Optional[Union[str, Path]] = None,
) -> ReplayStats:
    """Replay a trace and measure CPMA, bandwidth, and bus power.

    Args:
        records: The trace — any iterable of :class:`TraceRecord`, or a
            :data:`~repro.traces.generator.TRACE_DTYPE` structured array
            (the batched form; replayed through the chunked fast path
            with identical results).
        config: Hierarchy configuration (Table 3 baseline by default).
        hierarchy: A pre-built hierarchy to use instead of *config*
            (useful for warmed or instrumented instances).
        warmup_fraction: Leading fraction of the trace used to warm the
            caches; its statistics are discarded, mirroring the paper's
            skipping of each benchmark's initialization phase.
        n_records_hint: Length of *records* if it is a generator (needed
            to place the warmup boundary; ignored for sized iterables).
        mode: ``"strict"`` validates every record and raises
            :class:`~repro.resilience.errors.TraceCorruptionError` on
            the first violation; ``"lenient"`` quarantines bad records
            and reports counts in the stats; ``None`` (default) replays
            unvalidated, trusting construction-time checks.
        checkpoint_every: Snapshot replay state every this many records
            (requires *checkpoint_path*).
        checkpoint_path: Snapshot destination.
        resume_from: Resume from a snapshot written by an earlier
            (interrupted) run over the same *records* stream.

    Returns:
        A :class:`ReplayStats`.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    if mode not in (None, "strict", "lenient"):
        raise ValueError(f"mode must be 'strict' or 'lenient', got {mode!r}")

    is_array = isinstance(records, np.ndarray)
    if resume_from is not None:
        replayer = TraceReplayer.restore(resume_from)
        if is_array:
            records = records[replayer.index :]
        else:
            records = itertools.islice(iter(records), replayer.index, None)
    else:
        try:
            total = len(records)  # type: ignore[arg-type]
        except TypeError:
            total = n_records_hint
        warmup_until = int(total * warmup_fraction) if total else 0
        if hierarchy is None:
            hierarchy = MemoryHierarchy(config or HierarchyConfig())
        guard = (
            TraceGuard(n_cpus=hierarchy.config.n_cpus, strict=mode == "strict")
            if mode is not None
            else None
        )
        replayer = TraceReplayer(
            hierarchy=hierarchy, warmup_until=warmup_until, guard=guard
        )
    if is_array:
        replayer.feed_array(
            records,
            checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path,
        )
    else:
        replayer.feed_many(
            records,
            checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path,
        )
    return replayer.stats()
