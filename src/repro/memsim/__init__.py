"""Trace-driven multi-processor memory hierarchy simulator.

Implements the paper's Section 2.1 modeling environment: a memory
hierarchy simulator that models "all aspects of the memory hierarchy
including DRAM caches with banks, RAS, CAS, page sizes, etc.", replaying
dependency-annotated traces — a dependent access does not issue until the
record it depends on has completed.  Configuration defaults follow
Table 3 verbatim; see :mod:`repro.memsim.config`.

The top-level entry point is :func:`repro.memsim.replay.replay_trace`,
which returns CPMA (cycles per memory access), off-die bandwidth, and bus
power — the three quantities Figure 5 and the Section 3 headline results
report.
"""

from repro.memsim.config import (
    BusConfig,
    CacheConfig,
    DdrConfig,
    DramBankTiming,
    DramCacheConfig,
    HierarchyConfig,
    baseline_config,
    stacked_dram_config,
    stacked_memory_config,
    stacked_sram_config,
)
from repro.memsim.cache import SetAssociativeCache
from repro.memsim.dram import BankedDram
from repro.memsim.dramcache import DramCache
from repro.memsim.bus import OffDieBus
from repro.memsim.hierarchy import AccessResult, MemoryHierarchy
from repro.memsim.replay import ReplayStats, replay_trace

__all__ = [
    "BusConfig",
    "CacheConfig",
    "DdrConfig",
    "DramBankTiming",
    "DramCacheConfig",
    "HierarchyConfig",
    "baseline_config",
    "stacked_sram_config",
    "stacked_dram_config",
    "stacked_memory_config",
    "SetAssociativeCache",
    "BankedDram",
    "DramCache",
    "OffDieBus",
    "AccessResult",
    "MemoryHierarchy",
    "ReplayStats",
    "replay_trace",
]
