"""Memory hierarchy configuration (Table 3 of the paper).

All latencies are in core clock cycles.  The published parameters:

=====================  ==================================================
Parameter              Value
=====================  ==================================================
L1D cache              32 KB, 64 B line, 8-way, 4 cyc
Shared L2              4 MB, 64 B line, 16-way, 16 cyc
Stacked L2 (SRAM)      12 MB, 24 cyc
Stacked L2 (DRAM)      4-64 MB, 512 B page, 16 banks, 64 B sectors
DDR main memory        16 banks, 4 KB page, 192 cyc
Bank delays (both)     page open 50, precharge 54, read 50
Off-die bus BW         16 GB/s
=====================  ==================================================

The off-die bus is modeled at 4 bytes per core cycle (16 GB/s at the
4 GHz core clock the cycle-denominated latencies imply), and bus power at
the 20 mW/Gb/s figure Section 3 uses for its 0.5 W savings estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

KB = 1 << 10
MB = 1 << 20


@dataclass(frozen=True)
class CacheConfig:
    """A conventional SRAM cache level."""

    size_bytes: int
    ways: int
    latency: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.line_bytes <= 0:
            raise ValueError("cache dimensions must be positive")
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise ValueError(
                f"size {self.size_bytes} not divisible into {self.ways} ways "
                f"of {self.line_bytes}B lines"
            )
        if self.latency < 1:
            raise ValueError("latency must be >= 1 cycle")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)


@dataclass(frozen=True)
class DramBankTiming:
    """Bank delays shared by the stacked DRAM cache and DDR memory
    (Table 3): page open 50, precharge 54, read 50 cycles."""

    page_open: int = 50
    precharge: int = 54
    read: int = 50
    #: Bank occupancy of one data burst.  The read delay above is the full
    #: RAS/CAS-to-data latency; back-to-back reads to an open page pipeline
    #: at the burst rate, so the bank is only *occupied* for this long.
    burst: int = 8

    def __post_init__(self) -> None:
        if min(self.page_open, self.precharge, self.read, self.burst) < 0:
            raise ValueError("bank delays must be non-negative")
        if self.burst > self.read:
            raise ValueError("burst occupancy cannot exceed the read latency")


@dataclass(frozen=True)
class DramCacheConfig:
    """The stacked DRAM cache: banked, paged, sectored.

    Tags live on the processor die (Section 3), so the tag lookup costs
    ``tag_latency`` before the d2d-via access to the DRAM die itself.
    """

    size_bytes: int = 32 * MB
    page_bytes: int = 512
    sector_bytes: int = 64
    banks: int = 16
    ways: int = 8
    timing: DramBankTiming = field(default_factory=DramBankTiming)
    tag_latency: int = 16
    d2d_latency: int = 4
    page_policy: str = "open"
    in_dram_tags: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes % (self.page_bytes * self.ways) != 0:
            raise ValueError("DRAM cache size must divide into pages and ways")
        if self.page_bytes % self.sector_bytes != 0:
            raise ValueError("page size must be a multiple of the sector size")
        if self.page_policy not in ("open", "closed"):
            raise ValueError(
                f"page_policy must be 'open' or 'closed', got {self.page_policy!r}"
            )

    @property
    def sectors_per_page(self) -> int:
        return self.page_bytes // self.sector_bytes

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.page_bytes * self.ways)

    @property
    def n_sectors(self) -> int:
        return self.size_bytes // self.sector_bytes

    def tag_store_bytes(self, bytes_per_sector_entry: int = 4) -> int:
        """Size of the on-die tag structure, bytes.

        Tags are kept at sector granularity (tag + valid + dirty + LRU
        state per 64 B sector, ~4 bytes each), reproducing the paper's
        accounting: "the tag size increases the size of the baseline die
        by about 2MB" for the 32 MB cache, and "for ... 64MB DRAM the
        tag size is about 4MB, and the existing 4MB cache on the
        baseline die is used to store the tags".
        """
        if bytes_per_sector_entry <= 0:
            raise ValueError("tag entry size must be positive")
        return self.n_sectors * bytes_per_sector_entry

    def tag_area_overhead(self, reference_sram_bytes: int = 4 * MB) -> float:
        """Tag store as a fraction of a reference SRAM (the 4 MB L2 that
        occupied ~50% of the baseline die)."""
        return self.tag_store_bytes() / reference_sram_bytes


@dataclass(frozen=True)
class DdrConfig:
    """Banked DDR main memory (Table 3)."""

    banks: int = 16
    page_bytes: int = 4096
    timing: DramBankTiming = field(default_factory=DramBankTiming)
    #: Fixed controller/transport overhead so a typical access totals the
    #: published 192 cycles (88 + ~100 cycles of bank activity).
    controller_latency: int = 88
    #: If True, main memory sits *in the stack* behind the d2d vias — the
    #: assumption of the prior work the paper contrasts with ("the prior
    #: work assumes that all of main memory can be integrated into the 3D
    #: stack").  Accesses then skip the off-die bus entirely and see a
    #: leaner on-stack controller.
    on_stack: bool = False
    #: Controller overhead when on_stack (no board-level transport).
    on_stack_controller_latency: int = 20
    #: d2d hop when on_stack, cycles.
    d2d_latency: int = 4


@dataclass(frozen=True)
class BusConfig:
    """The off-die bus between the L2 and main memory."""

    bytes_per_cycle: float = 4.0      # 16 GB/s at a 4 GHz core clock
    power_mw_per_gbps: float = 20.0   # Section 3's bus power figure

    def __post_init__(self) -> None:
        if self.bytes_per_cycle <= 0:
            raise ValueError("bus bandwidth must be positive")


@dataclass(frozen=True)
class HierarchyConfig:
    """A complete hierarchy: per-core L1s, optional shared L2, optional
    stacked level (SRAM cache or DRAM cache), bus, and DDR memory."""

    n_cpus: int = 2
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * KB, ways=8, latency=4)
    )
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * KB, ways=8, latency=4)
    )
    l2: Optional[CacheConfig] = field(
        default_factory=lambda: CacheConfig(4 * MB, ways=16, latency=16)
    )
    stacked_sram: Optional[CacheConfig] = None
    stacked_dram: Optional[DramCacheConfig] = None
    ddr: DdrConfig = field(default_factory=DdrConfig)
    bus: BusConfig = field(default_factory=BusConfig)
    mshrs_per_cpu: int = 8
    #: In-flight memory references per cpu (the reorder-buffer window the
    #: replay engine uses for flow control; ~a 128-entry ROB at a ~40%
    #: memory-reference density).
    reorder_window: int = 48
    #: Lines fetched ahead by the on-die next-line prefetcher (which never
    #: crosses the off-die bus; see MemoryHierarchy._maybe_prefetch).
    prefetch_degree: int = 4
    core_clock_ghz: float = 4.0

    def __post_init__(self) -> None:
        if self.n_cpus < 1:
            raise ValueError("need at least one cpu")
        if self.stacked_sram is not None and self.stacked_dram is not None:
            raise ValueError("choose one stacked level, not both")
        if self.mshrs_per_cpu < 1:
            raise ValueError("need at least one MSHR per cpu")
        if self.reorder_window < 1:
            raise ValueError("reorder window must be >= 1")

    @property
    def last_level_capacity(self) -> int:
        """Total on-stack cache capacity (for labeling experiments)."""
        capacity = self.l2.size_bytes if self.l2 else 0
        if self.stacked_sram is not None:
            capacity += self.stacked_sram.size_bytes
        if self.stacked_dram is not None:
            capacity += self.stacked_dram.size_bytes
        return capacity


def _scaled(size: int, scale: int) -> int:
    if scale < 1:
        raise ValueError("scale must be >= 1")
    return max(64 * KB, size // scale)


def baseline_config(scale: int = 1) -> HierarchyConfig:
    """Figure 7(a): the 2D baseline with the on-die 4 MB L2.

    *scale* divides cache capacities (L2 and stacked levels, not the L1)
    for scaled-down runs; footprints in the workload generators are scaled
    by the same factor so hit/miss behaviour is preserved (see DESIGN.md).
    """
    return HierarchyConfig(
        l2=CacheConfig(_scaled(4 * MB, scale), ways=16, latency=16)
    )


def stacked_sram_config(scale: int = 1) -> HierarchyConfig:
    """Figure 7(b): +8 MB stacked SRAM for a 12 MB total L2.

    Modeled as the paper describes: the L2 grows to 12 MB with a 24-cycle
    access (the stacked portion is an extension of the same L2, reached
    through d2d vias).
    """
    return HierarchyConfig(
        l2=CacheConfig(_scaled(4 * MB, scale), ways=16, latency=16),
        stacked_sram=CacheConfig(_scaled(8 * MB, scale), ways=16, latency=24),
    )


def stacked_dram_config(capacity_mb: int = 32, scale: int = 1) -> HierarchyConfig:
    """Figures 7(c)/(d): stacked DRAM cache of 32 or 64 MB.

    For the 32 MB option the on-die 4 MB SRAM L2 is removed (its area is
    reclaimed for DRAM tags); for 64 MB the 4 MB SRAM is repurposed as the
    tag store, so there is likewise no L2 data cache.  In both cases the
    hierarchy is L1 -> stacked DRAM -> memory, with on-die tags checked at
    SRAM speed.
    """
    if capacity_mb not in (4, 8, 16, 32, 64):
        raise ValueError(f"unsupported stacked DRAM capacity {capacity_mb} MB")
    return HierarchyConfig(
        l2=None,
        stacked_dram=DramCacheConfig(
            size_bytes=_scaled(capacity_mb * MB, scale)
        ),
    )


def stacked_memory_config(scale: int = 1) -> HierarchyConfig:
    """Main memory integrated into the stack (the prior-work assumption).

    Keeps the baseline L1/L2 but serves every L2 miss from on-stack DRAM
    through the d2d vias — no off-die bus.  Used by the ablation that
    motivates the paper's DRAM-*cache* design for workloads whose total
    memory cannot fit a two-die stack.
    """
    return HierarchyConfig(
        l2=CacheConfig(_scaled(4 * MB, scale), ways=16, latency=16),
        ddr=DdrConfig(on_stack=True),
    )
