"""The assembled multi-processor memory hierarchy.

Per Figure 4: two cores with private L1 data caches, a shared L2 (absent
in the stacked-DRAM options, where its area is reclaimed for tags), an
optional stacked level (SRAM extension or sectored DRAM cache), and
banked DDR main memory behind a bandwidth-limited off-die bus.

An :meth:`MemoryHierarchy.access` call walks this hierarchy at a given
start time and returns when the reference is satisfied, charging cache
latencies, bank state-machine time, and bus occupancy along the way.
Private L1s are kept coherent with an invalidate-on-write directory.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, NamedTuple, Optional

from repro.memsim.bus import OffDieBus
from repro.memsim.cache import SetAssociativeCache
from repro.memsim.config import HierarchyConfig
from repro.memsim.dram import BankedDram
from repro.memsim.dramcache import DramCache, PAGE_MISS, SECTOR_HIT

#: Levels an access can be satisfied at (for stats and MSHR accounting).
L1 = "l1"
L2 = "l2"
STACKED = "stacked"
MEMORY = "memory"


class FastPathState(NamedTuple):
    """Hot state handed to the chunked replay loop (see
    :meth:`MemoryHierarchy.fastpath_state`).

    Attributes:
        d_sets: Per-cpu L1D LRU sets (``SetAssociativeCache.fast_state``).
        d_mask: L1D set-index mask.
        i_sets: Per-cpu L1I LRU sets.
        i_mask: L1I set-index mask.
        l2_sets: Shared-L2 LRU sets, or None when the config has no L2.
        l2_mask: L2 set-index mask (0 without an L2).
        miss_history: Per-cpu recent-miss deques (prefetch detector).
        directory: The coherence directory (line -> cpu bitmask).
        line_shift: Byte-address to line-number shift.
        lat_l1d: L1D hit latency, cycles.
        lat_l1i: L1I hit latency, cycles.
        lat_l2: L2 hit latency, cycles (0 without an L2).
        invalidate_other_copies: Bound coherence callback for write hits.
        fill_l1: Bound L1 install helper (directory + victim writeback).
    """

    d_sets: List[List[Dict[int, bool]]]
    d_mask: int
    i_sets: List[List[Dict[int, bool]]]
    i_mask: int
    l2_sets: Optional[List[Dict[int, bool]]]
    l2_mask: int
    miss_history: List[deque]
    directory: Dict[int, int]
    line_shift: int
    lat_l1d: int
    lat_l1i: int
    lat_l2: int
    invalidate_other_copies: Callable[[int, int], None]
    fill_l1: Callable[[int, int, bool], None]


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one hierarchy access.

    Attributes:
        completion: Cycle at which the reference is satisfied.
        level: Which level satisfied it (``l1``/``l2``/``stacked``/``memory``).
        offchip: True if the access crossed the off-die bus.
    """

    completion: float
    level: str
    offchip: bool


class MemoryHierarchy:
    """Two-core (configurable) cache/memory system with shared timing state."""

    def __init__(self, config: HierarchyConfig) -> None:
        self.config = config
        self.l1s = [
            SetAssociativeCache(config.l1d, name=f"l1d-{cpu}")
            for cpu in range(config.n_cpus)
        ]
        self.l1is = [
            SetAssociativeCache(config.l1i, name=f"l1i-{cpu}")
            for cpu in range(config.n_cpus)
        ]
        self.l2 = (
            SetAssociativeCache(config.l2, name="l2") if config.l2 else None
        )
        self.stacked_sram = (
            SetAssociativeCache(config.stacked_sram, name="stacked-sram")
            if config.stacked_sram
            else None
        )
        self.stacked_dram = (
            DramCache(config.stacked_dram) if config.stacked_dram else None
        )
        self.ddr = BankedDram(
            banks=config.ddr.banks,
            page_bytes=config.ddr.page_bytes,
            timing=config.ddr.timing,
            name="ddr",
        )
        self.bus = OffDieBus(config.bus)
        self._line_shift = (config.l1d.line_bytes - 1).bit_length()
        self._line_bytes = config.l1d.line_bytes
        # Coherence directory: line -> bitmask of cpus caching it in L1.
        self._directory: Dict[int, int] = {}
        # Recent L1-miss lines per cpu, for the sequential-stream detector
        # of the on-die prefetcher.
        self._miss_history: List[deque] = [
            deque(maxlen=8) for _ in range(config.n_cpus)
        ]
        self.level_counts = {L1: 0, L2: 0, STACKED: 0, MEMORY: 0}
        self.offchip_accesses = 0
        self.invalidations = 0
        self.prefetches = 0

    # -- coherence helpers ---------------------------------------------------

    def _note_l1_fill(self, cpu: int, line: int) -> None:
        self._directory[line] = self._directory.get(line, 0) | (1 << cpu)

    def _note_l1_evict(self, cpu: int, line: int) -> None:
        mask = self._directory.get(line)
        if mask is None:
            return
        mask &= ~(1 << cpu)
        if mask:
            self._directory[line] = mask
        else:
            del self._directory[line]

    def _invalidate_other_copies(self, cpu: int, line: int) -> None:
        """Invalidate-on-write: drop the line from every other L1."""
        mask = self._directory.get(line, 0) & ~(1 << cpu)
        if not mask:
            return
        for other in range(self.config.n_cpus):
            if mask & (1 << other) and self.l1s[other].invalidate(line):
                self.invalidations += 1
                self._note_l1_evict(other, line)

    def _fill_l1(self, cpu: int, line: int, dirty: bool) -> None:
        victim = self.l1s[cpu].fill(line, dirty)
        self._note_l1_fill(cpu, line)
        if victim is not None:
            victim_line, victim_dirty = victim
            self._note_l1_evict(cpu, victim_line)
            if victim_dirty:
                if self.l2 is not None:
                    # Writeback into the (inclusive-enough) L2; it is
                    # on-die, so no bus traffic.
                    self.l2.fill(victim_line, dirty=True)
                elif self.stacked_dram is not None:
                    # Writeback into the stacked DRAM cache (d2d vias, no
                    # off-die bus traffic).
                    self.stacked_dram.fill(
                        victim_line << self._line_shift, dirty=True
                    )
                elif not self.config.ddr.on_stack:
                    self.bus.account_only(self._line_bytes)

    # -- the access path -----------------------------------------------------

    def ifetch(self, cpu: int, address: int, t: float) -> AccessResult:
        """Instruction fetch: private L1I, then the shared levels.

        Code is read-only, so instruction lines skip the coherence
        directory; a miss fills the L1I (not the L1D) and otherwise
        follows the same on-die path as a data read.
        """
        line = address >> self._line_shift
        l1i = self.l1is[cpu]
        cfg = self.config
        if l1i.lookup(line):
            self.level_counts[L1] += 1
            return AccessResult(t + cfg.l1i.latency, L1, False)
        t_miss = t + cfg.l1i.latency
        if self.l2 is not None and self.l2.lookup(line):
            l1i.fill(line)
            self.level_counts[L2] += 1
            return AccessResult(t_miss + cfg.l2.latency, L2, False)
        # Deeper fetches reuse the data path, then land in the L1I.
        result = self.access(cpu, False, address, t)
        self.l1s[cpu].invalidate(line)
        self._note_l1_evict(cpu, line)
        l1i.fill(line)
        return result

    def access(
        self, cpu: int, write: bool, address: int, t: float
    ) -> AccessResult:
        """Walk the hierarchy for one data reference; returns its outcome."""
        line = address >> self._line_shift
        l1 = self.l1s[cpu]
        cfg = self.config

        if l1.lookup(line, write):
            if write:
                self._invalidate_other_copies(cpu, line)
            self.level_counts[L1] += 1
            return AccessResult(t + cfg.l1d.latency, L1, False)

        t_l1_miss = t + cfg.l1d.latency
        if write:
            self._invalidate_other_copies(cpu, line)
        self._maybe_prefetch(cpu, line)

        # Shared on-die L2.
        if self.l2 is not None and self.l2.lookup(line, write):
            self._fill_l1(cpu, line, write)
            self.level_counts[L2] += 1
            return AccessResult(t_l1_miss + cfg.l2.latency, L2, False)

        t_l2_miss = (
            t_l1_miss + cfg.l2.latency if self.l2 is not None else t_l1_miss
        )

        # Stacked SRAM (the 12 MB option): an L2 extension at 24 cycles.
        if self.stacked_sram is not None:
            if self.stacked_sram.lookup(line, write):
                self._install_on_die(cpu, line, write)
                self.level_counts[STACKED] += 1
                return AccessResult(
                    t_l1_miss + cfg.stacked_sram.latency, STACKED, False
                )
            return self._memory_access(cpu, line, address, t_l2_miss, write)

        # Stacked DRAM cache (the 32/64 MB options): on-die tags, banked
        # sectored data array behind d2d vias.
        if self.stacked_dram is not None:
            dc = self.stacked_dram
            outcome = dc.lookup(address, write)
            t_tags = dc.access_timing(t_l2_miss)
            if outcome == SECTOR_HIT:
                self._fill_l1(cpu, line, write)
                self.level_counts[STACKED] += 1
                return AccessResult(
                    dc.hit_timing(t_l2_miss, address), STACKED, False
                )
            # Sector or page miss: the line comes from main memory and is
            # installed into the DRAM cache (allocating a page on a page
            # miss, writing back any dirty victim sectors over the bus).
            result = self._memory_access(cpu, line, address, t_tags, write)
            victim = dc.fill(address, dirty=write)
            if victim is not None and victim[1] > 0:
                self.bus.account_only(victim[1] * dc.config.sector_bytes)
            if outcome == PAGE_MISS:
                # Opening the new page in the DRAM array overlaps the
                # memory fetch; no extra latency charged.
                pass
            return result

        return self._memory_access(cpu, line, address, t_l2_miss, write)

    def _maybe_prefetch(self, cpu: int, line: int) -> None:
        """On-die next-line prefetcher.

        On a sequential L1 miss (the previous line was missed recently),
        the next line is pulled into the L1 — but only if it is already
        resident on-die or in the stacked level.  The prefetcher never
        crosses the off-die bus, so it spends no memory bandwidth; its
        effect is to hide on-die/stacked latency under streaming.
        """
        history = self._miss_history[cpu]
        sequential = (line - 1) in history or (line - 2) in history
        history.append(line)
        if not sequential:
            return
        l1 = self.l1s[cpu]
        for nxt in range(line + 1, line + 1 + self.config.prefetch_degree):
            if l1.contains(nxt):
                continue
            resident = (
                (self.l2 is not None and self.l2.contains(nxt))
                or (
                    self.stacked_sram is not None
                    and self.stacked_sram.contains(nxt)
                )
                or (
                    self.stacked_dram is not None
                    and self.stacked_dram.contains(nxt << self._line_shift)
                )
            )
            if resident:
                self._fill_l1(cpu, nxt, dirty=False)
                self.prefetches += 1

    def _install_on_die(self, cpu: int, line: int, dirty: bool) -> None:
        """Install a line into the on-die levels (L2 if present, and L1)."""
        if self.l2 is not None:
            victim = self.l2.fill(line, dirty)
            if victim is not None and victim[1]:
                if self.stacked_sram is not None:
                    self.stacked_sram.fill(victim[0], dirty=True)
                elif not self.config.ddr.on_stack:
                    self.bus.account_only(self._line_bytes)
        if self.stacked_sram is not None:
            self.stacked_sram.fill(line, dirty=False)
        self._fill_l1(cpu, line, dirty)

    def _memory_access(
        self, cpu: int, line: int, address: int, t: float, write: bool
    ) -> AccessResult:
        """Fetch a line from DDR memory across the off-die bus."""
        cfg = self.config
        if cfg.ddr.on_stack:
            # Main memory in the stack (prior-work assumption): d2d hop,
            # bank access, lean controller — no off-die bus at all.
            bank_done = self.ddr.access(t + cfg.ddr.d2d_latency, address)
            data_done = bank_done + cfg.ddr.on_stack_controller_latency
            self._install_on_die(cpu, line, write)
            self.level_counts[MEMORY] += 1
            return AccessResult(data_done, MEMORY, False)
        # Address/command beat (the FSB address bus is separate from the
        # data bus, so commands pipeline ahead of returning data), then
        # the bank access plus controller overhead, then the data return
        # occupying the shared data bus.
        cmd_done = t + 2.0
        bank_done = self.ddr.access(cmd_done, address)
        mem_done = bank_done + cfg.ddr.controller_latency
        data_done = self.bus.transfer(mem_done, self._line_bytes)
        self._install_on_die(cpu, line, write)
        self.level_counts[MEMORY] += 1
        self.offchip_accesses += 1
        return AccessResult(data_done, MEMORY, True)

    # -- chunked-replay fast path -------------------------------------------

    def fastpath_state(self) -> FastPathState:
        """Bundle the hot L1/coherence state for chunked replay.

        The chunked replayer (:meth:`repro.memsim.replay.TraceReplayer.
        feed_array`) inlines the L1 hit path — the one walked by ~90% of
        references — directly against these dicts, following the
        :meth:`SetAssociativeCache.fast_state` contract.  Anything that
        is not a clean L1 hit must still be routed through
        :meth:`access`/:meth:`ifetch`, and bypassed hit counts must be
        flushed back with :meth:`flush_fast_counts` so every counter
        stays bit-identical to the per-record path.
        """
        l2_sets, l2_mask = (
            self.l2.fast_state() if self.l2 is not None else (None, 0)
        )
        return FastPathState(
            d_sets=[cache.fast_state()[0] for cache in self.l1s],
            d_mask=self.l1s[0].fast_state()[1],
            i_sets=[cache.fast_state()[0] for cache in self.l1is],
            i_mask=self.l1is[0].fast_state()[1],
            l2_sets=l2_sets,
            l2_mask=l2_mask,
            miss_history=self._miss_history,
            directory=self._directory,
            line_shift=self._line_shift,
            lat_l1d=self.config.l1d.latency,
            lat_l1i=self.config.l1i.latency,
            lat_l2=self.config.l2.latency if self.config.l2 else 0,
            invalidate_other_copies=self._invalidate_other_copies,
            fill_l1=self._fill_l1,
        )

    def flush_fast_counts(
        self,
        d_hits: List[int],
        i_hits: List[int],
        l1_level_count: int,
        d_misses: Optional[List[int]] = None,
        l2_hits: int = 0,
        l2_level_count: int = 0,
    ) -> None:
        """Fold fast-path hit/miss tallies back into the real counters."""
        for cpu, hits in enumerate(d_hits):
            if hits:
                self.l1s[cpu].add_fast_hits(hits)
        for cpu, hits in enumerate(i_hits):
            if hits:
                self.l1is[cpu].add_fast_hits(hits)
        if l1_level_count:
            self.level_counts[L1] += l1_level_count
        if d_misses is not None:
            for cpu, misses in enumerate(d_misses):
                if misses:
                    self.l1s[cpu].add_fast_misses(misses)
        if l2_hits:
            self.l2.add_fast_hits(l2_hits)
        if l2_level_count:
            self.level_counts[L2] += l2_level_count

    # -- stats ---------------------------------------------------------------

    @property
    def total_accesses(self) -> int:
        return sum(self.level_counts.values())

    def offchip_fraction(self) -> float:
        total = self.total_accesses
        return self.offchip_accesses / total if total else 0.0

    def reset_stats(self) -> None:
        """Zero all counters, preserving cache/bank/bus state (warmup)."""
        for cache in self.l1s:
            cache.reset_stats()
        for cache in self.l1is:
            cache.reset_stats()
        if self.l2 is not None:
            self.l2.reset_stats()
        if self.stacked_sram is not None:
            self.stacked_sram.reset_stats()
        if self.stacked_dram is not None:
            self.stacked_dram.reset_stats()
        self.ddr.reset_stats()
        self.bus.reset_stats()
        self.level_counts = {L1: 0, L2: 0, STACKED: 0, MEMORY: 0}
        self.invalidations = 0
