"""Banked DRAM timing model (shared by DDR memory and the stacked cache).

Each bank keeps its open page and the time it becomes free.  An access
pays the Table 3 bank delays according to the page state:

* page hit  — ``read`` (50 cycles);
* page empty — ``page_open + read`` (100 cycles);
* page conflict — ``precharge + page_open + read`` (154 cycles).

Banks serialize their own accesses (an access waits for the bank to go
free) but different banks proceed in parallel — the address-interleaved
banking Table 3 specifies.
"""

from __future__ import annotations

from typing import List, Optional

from repro.memsim.config import DramBankTiming


class BankedDram:
    """Bank state machine for an address-interleaved banked DRAM."""

    def __init__(
        self,
        banks: int,
        page_bytes: int,
        timing: DramBankTiming,
        open_page_policy: bool = True,
        name: str = "dram",
    ) -> None:
        if banks < 1 or page_bytes < 1:
            raise ValueError("banks and page size must be positive")
        self.name = name
        self.n_banks = banks
        self.page_bytes = page_bytes
        self.timing = timing
        self.open_page_policy = open_page_policy
        self._open_page: List[Optional[int]] = [None] * banks
        self._bank_free: List[float] = [0.0] * banks
        self.page_hits = 0
        self.page_empties = 0
        self.page_conflicts = 0

    def bank_of(self, address: int) -> int:
        """Bank an address maps to (pages interleaved across banks)."""
        return (address // self.page_bytes) % self.n_banks

    def access(self, t: float, address: int) -> float:
        """Perform an access arriving at time *t*; returns completion time."""
        page = address // self.page_bytes
        bank = page % self.n_banks
        start = t if t > self._bank_free[bank] else self._bank_free[bank]
        timing = self.timing
        open_page = self._open_page[bank]
        if open_page == page:
            latency = timing.read
            self.page_hits += 1
        elif open_page is None:
            latency = timing.page_open + timing.read
            self.page_empties += 1
        else:
            latency = timing.precharge + timing.page_open + timing.read
            self.page_conflicts += 1
        # The access *latency* includes the full read delay, but the bank
        # is only *occupied* until the burst completes: back-to-back reads
        # to an open page pipeline at the burst rate.
        occupancy = latency - timing.read + timing.burst
        self._bank_free[bank] = start + occupancy
        self._open_page[bank] = page if self.open_page_policy else None
        return start + latency

    @property
    def accesses(self) -> int:
        return self.page_hits + self.page_empties + self.page_conflicts

    @property
    def page_hit_rate(self) -> float:
        return self.page_hits / self.accesses if self.accesses else 0.0

    def reset_stats(self) -> None:
        """Zero counters without disturbing bank state (for warmup)."""
        self.page_hits = self.page_empties = self.page_conflicts = 0
