"""Set-associative SRAM cache with LRU replacement.

Designed for replay speed: each set is a plain dict mapping tag -> dirty
flag; dict insertion order is the LRU order (lookup re-inserts, eviction
pops the oldest entry), giving O(1) hit, fill, and evict.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.memsim.config import CacheConfig


class SetAssociativeCache:
    """An LRU set-associative cache operating on line addresses.

    The cache works on *line numbers* (byte address >> line shift); the
    hierarchy does the shifting once per access.
    """

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self.n_sets = config.n_sets
        self._set_mask = self.n_sets - 1
        if self.n_sets & self._set_mask:
            raise ValueError(
                f"{name}: number of sets ({self.n_sets}) must be a power of two"
            )
        self._sets: List[Dict[int, bool]] = [dict() for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    def lookup(self, line: int, write: bool = False) -> bool:
        """True on hit (updates LRU and the dirty bit), False on miss."""
        index = line & self._set_mask
        entries = self._sets[index]
        dirty = entries.pop(line, None)
        if dirty is None:
            self.misses += 1
            return False
        entries[line] = dirty or write  # re-insert as most recent
        self.hits += 1
        return True

    def fill(self, line: int, dirty: bool = False) -> Optional[Tuple[int, bool]]:
        """Install a line; returns ``(victim_line, victim_dirty)`` if a
        line was evicted, else None.

        Re-filling an already-resident line refreshes its LRU position
        without evicting anything, and *merges* the dirty bit: a line
        dirtied by an earlier write stays dirty when re-installed clean,
        so its eventual eviction still writes it back.
        """
        index = line & self._set_mask
        entries = self._sets[index]
        victim = None
        previous = entries.pop(line, None)
        if previous is None and len(entries) >= self.config.ways:
            victim_line = next(iter(entries))
            victim_dirty = entries.pop(victim_line)
            victim = (victim_line, victim_dirty)
            self.evictions += 1
            if victim_dirty:
                self.writebacks += 1
        entries[line] = dirty if previous is None else (previous or dirty)
        return victim

    def invalidate(self, line: int) -> bool:
        """Drop a line if present; returns True if it was present."""
        index = line & self._set_mask
        return self._sets[index].pop(line, None) is not None

    def contains(self, line: int) -> bool:
        """Presence check without touching LRU state or stats."""
        return line in self._sets[line & self._set_mask]

    # -- integer-keyed fast path --------------------------------------------

    def fast_state(self) -> Tuple[List[Dict[int, bool]], int]:
        """The ``(sets, mask)`` pair backing the chunked replay fast path.

        Contract (mirrors :meth:`lookup` exactly): the caller indexes
        ``sets[line & mask]``, tests a hit with ``entries.pop(line,
        None)``, and on a hit re-inserts the line as most-recent with
        ``entries[line] = previous_dirty or write``.  Hits handled this
        way bypass the :attr:`hits` counter and MUST be credited back
        with :meth:`add_fast_hits`; misses must go through the normal
        :meth:`lookup`/:meth:`fill` path so miss/eviction/writeback
        accounting stays exact.
        """
        return self._sets, self._set_mask

    def add_fast_hits(self, n: int) -> None:
        """Credit *n* hits recorded by a fast-path caller (see
        :meth:`fast_state`)."""
        self.hits += n

    def add_fast_misses(self, n: int) -> None:
        """Credit *n* misses recorded by a fast-path caller that walked
        the miss continuation inline instead of via :meth:`lookup`."""
        self.misses += n

    def resident_lines(self) -> int:
        """Number of lines currently resident (for tests/inspection)."""
        return sum(len(entries) for entries in self._sets)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset_stats(self) -> None:
        """Zero counters without disturbing cache contents (for warmup)."""
        self.hits = self.misses = self.evictions = self.writebacks = 0
