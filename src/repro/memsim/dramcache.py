"""The stacked 3D DRAM cache: banked, paged, sectored, tags on the CPU die.

Section 3's DRAM cache organization: 512 B pages allocated in a
set-associative tag structure held on the processor die, with 64 B
sectors fetched on demand (a page can be present with only some sectors
valid).  The DRAM array itself is reached through die-to-die vias and is
modeled with the same 16-bank RAS/CAS state machine as main memory
(Table 3 gives both the same bank delays).

A lookup therefore has three outcomes:

* **sector hit** — tag match and the sector is valid: pay tag + d2d +
  bank time.
* **sector miss** — tag match but the sector has not been fetched yet:
  the line comes from memory and is installed into the (already
  allocated) page.
* **page miss** — no tag match: a victim page is evicted, a new page is
  allocated, and the requested sector is fetched from memory.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.memsim.config import DramCacheConfig
from repro.memsim.dram import BankedDram

#: Lookup outcome codes.
SECTOR_HIT = 0
SECTOR_MISS = 1
PAGE_MISS = 2


class DramCache:
    """Sectored set-associative DRAM cache with banked timing."""

    def __init__(self, config: DramCacheConfig, name: str = "dram-cache") -> None:
        self.config = config
        self.name = name
        self.n_sets = config.n_sets
        self._set_mask = self.n_sets - 1
        if self.n_sets & self._set_mask:
            raise ValueError(
                f"{name}: number of page sets ({self.n_sets}) must be a "
                "power of two"
            )
        # Each set maps page number -> sector-valid bitmask (insertion
        # order = LRU order, like SetAssociativeCache).
        self._sets: List[Dict[int, int]] = [dict() for _ in range(self.n_sets)]
        self._dirty: List[Dict[int, int]] = [dict() for _ in range(self.n_sets)]
        self.banks = BankedDram(
            banks=config.banks,
            page_bytes=config.page_bytes,
            timing=config.timing,
            open_page_policy=(config.page_policy == "open"),
            name=f"{name}-banks",
        )
        self._line_shift = (config.sector_bytes - 1).bit_length()
        self._sectors_mask = config.sectors_per_page - 1
        self._page_shift = (config.page_bytes - 1).bit_length()
        self.sector_hits = 0
        self.sector_misses = 0
        self.page_misses = 0
        self.page_evictions = 0
        self.dirty_sector_writebacks = 0

    # -- geometry ----------------------------------------------------------

    def page_of(self, address: int) -> int:
        return address >> self._page_shift

    def sector_of(self, address: int) -> int:
        return (address >> self._line_shift) & self._sectors_mask

    # -- operations ----------------------------------------------------------

    def lookup(self, address: int, write: bool = False) -> int:
        """Probe the tag structure; returns SECTOR_HIT/SECTOR_MISS/PAGE_MISS.

        Updates LRU and (on write hits) the dirty mask.  Does not allocate;
        call :meth:`fill` after fetching the sector from memory.
        """
        page = self.page_of(address)
        index = page & self._set_mask
        entries = self._sets[index]
        mask = entries.pop(page, None)
        if mask is None:
            self.page_misses += 1
            return PAGE_MISS
        entries[page] = mask  # refresh LRU position
        bit = 1 << self.sector_of(address)
        if mask & bit:
            self.sector_hits += 1
            if write:
                self._dirty[index][page] = self._dirty[index].get(page, 0) | bit
            return SECTOR_HIT
        self.sector_misses += 1
        return SECTOR_MISS

    def fill(
        self, address: int, dirty: bool = False
    ) -> Optional[Tuple[int, int]]:
        """Install the sector containing *address*, allocating its page.

        Returns ``(victim_page, dirty_sector_count)`` if a page was
        evicted, else None.  The caller charges writeback bandwidth for
        the dirty sectors.
        """
        page = self.page_of(address)
        index = page & self._set_mask
        entries = self._sets[index]
        dirty_map = self._dirty[index]
        victim = None
        if page not in entries and len(entries) >= self.config.ways:
            victim_page = next(iter(entries))
            entries.pop(victim_page)
            victim_dirty = dirty_map.pop(victim_page, 0)
            count = bin(victim_dirty).count("1")
            self.page_evictions += 1
            self.dirty_sector_writebacks += count
            victim = (victim_page, count)
        bit = 1 << self.sector_of(address)
        mask = entries.pop(page, 0)
        entries[page] = mask | bit
        if dirty:
            dirty_map[page] = dirty_map.get(page, 0) | bit
        return victim

    def access_timing(self, t: float) -> float:
        """Tag-check component of an access starting at *t* (on-die tags)."""
        return t + self.config.tag_latency

    def data_timing(self, t: float, address: int) -> float:
        """DRAM-array component: d2d-via hop plus bank activity."""
        return self.banks.access(t + self.config.d2d_latency, address)

    def hit_timing(self, t: float, address: int) -> float:
        """Completion time of a sector hit starting at *t*.

        The on-die tag check proceeds in parallel with a speculative bank
        access through the d2d vias (the dense face-to-face interface makes
        the speculation cheap); the hit completes when both are done.
        """
        tag_done = t + self.config.tag_latency
        data_done = self.data_timing(t, address)
        return tag_done if tag_done > data_done else data_done

    # -- stats ---------------------------------------------------------------

    @property
    def accesses(self) -> int:
        return self.sector_hits + self.sector_misses + self.page_misses

    @property
    def hit_rate(self) -> float:
        return self.sector_hits / self.accesses if self.accesses else 0.0

    def contains(self, address: int) -> bool:
        """Sector-valid check without touching LRU state or stats."""
        page = self.page_of(address)
        mask = self._sets[page & self._set_mask].get(page)
        if mask is None:
            return False
        return bool(mask & (1 << self.sector_of(address)))

    def resident_pages(self) -> int:
        return sum(len(entries) for entries in self._sets)

    def reset_stats(self) -> None:
        """Zero counters without disturbing contents (for warmup)."""
        self.sector_hits = self.sector_misses = self.page_misses = 0
        self.page_evictions = self.dirty_sector_writebacks = 0
        self.banks.reset_stats()
