"""Baseline Intel Core 2 Duo floorplan and stacked-die companions.

The paper's Memory+Logic study (Section 3) uses a 92 W skew of a Core 2 Duo
with two cores, private 32 KB L1s, and a shared 4 MB L2 occupying roughly
half the die.  Figure 6 identifies the hotspots as the FP units, reservation
stations, and load/store units; Figure 7 gives the cache-die powers
(4 MB SRAM = 7 W, stacked 8 MB SRAM = 14 W, 32 MB DRAM = 3.1 W,
64 MB DRAM = 6.2 W).  This module rebuilds that floorplan at block level
from those published constraints.
"""

from __future__ import annotations

from typing import List

from repro.floorplan.blocks import Block, Floorplan, FloorplanError, uniform_floorplan

#: Total power of the baseline processor skew used in the paper (Section 3).
CORE2_TOTAL_POWER_W = 92.0

#: Power of the on-die 4 MB SRAM L2 (Figure 7a).
L2_4MB_POWER_W = 7.0

#: Power of the stacked 8 MB SRAM die: "adds 200% more SRAM cache and
#: increases the total power by 14W to 106W" (Section 3).
STACKED_8MB_SRAM_POWER_W = 14.0

#: Power of the stacked 32 MB DRAM die (Figure 7c).
STACKED_32MB_DRAM_POWER_W = 3.1

#: Power of the stacked 64 MB DRAM die (Figure 7d).
STACKED_64MB_DRAM_POWER_W = 6.2

#: Baseline die outline, mm.  ~144 mm^2, consistent with a 65 nm Core 2 Duo;
#: the 4 MB L2 occupies ~50% of the die (Section 3).
DIE_WIDTH_MM = 12.0
DIE_HEIGHT_MM = 12.0


def _core_blocks(suffix: str, x0: float) -> List[Block]:
    """Blocks of one core placed in a 6x6 mm region with bottom-left (x0, 6).

    Per-block powers are chosen so that the hottest densities sit in the FP
    unit, the reservation stations (RS), and the load/store unit (LdSt), as
    called out in Figure 6(b), and one core totals 38.5 W.
    """
    y_core = 6.0
    return [
        # Front end: instruction fetch, L1I, decode.  Wide, cool strip.
        Block(f"FE-{suffix}", x0, y_core + 4.8, 6.0, 1.2, 4.0),
        # Rename / allocation.
        Block(f"Rename-{suffix}", x0, y_core + 3.2, 1.8, 1.6, 3.0),
        # Reservation stations: hotspot.
        Block(f"RS-{suffix}", x0 + 1.8, y_core + 3.2, 1.6, 1.6, 5.5),
        # Integer execution units.
        Block(f"IEU-{suffix}", x0 + 3.4, y_core + 3.2, 2.6, 1.6, 5.0),
        # Floating point unit: hotspot.
        Block(f"FP-{suffix}", x0, y_core + 1.6, 1.6, 1.6, 6.0),
        # Load/store unit: hotspot.
        Block(f"LdSt-{suffix}", x0 + 1.6, y_core + 1.6, 1.6, 1.6, 5.5),
        # L1 data cache.
        Block(f"L1D-{suffix}", x0 + 3.2, y_core + 1.6, 2.8, 1.6, 2.5),
        # Reorder buffer / retirement.
        Block(f"ROB-{suffix}", x0, y_core, 2.4, 1.6, 3.5),
        # Memory ordering, TLBs, pads, misc.
        Block(f"Misc-{suffix}", x0 + 2.4, y_core, 3.6, 1.6, 3.5),
    ]


def core2duo_floorplan(l2_power_w: float = L2_4MB_POWER_W,
                       with_l2: bool = True) -> Floorplan:
    """The baseline Core 2 Duo floorplan of Figure 6.

    Args:
        l2_power_w: Power of the on-die shared L2 (default: the 4 MB SRAM's
            7 W from Figure 7a).
        with_l2: If False, build the 32 MB-DRAM-option CPU die (Figure 7c):
            the on-die 4 MB SRAM L2 is removed and replaced by the (smaller,
            lower-power) DRAM tag array, shrinking the die outline.

    Returns:
        A validated :class:`Floorplan` totalling 92 W (85 W + tags for the
        no-L2 variant).
    """
    if with_l2:
        plan = Floorplan("Core 2 Duo (2D baseline)", DIE_WIDTH_MM, DIE_HEIGHT_MM)
        # Shared L2 across the bottom half of the die (~50% of die area),
        # with the off-die bus interface on the right edge.
        plan.add(Block("L2", 0.0, 0.0, 10.8, 6.0, l2_power_w))
        plan.add(Block("BusIF", 10.8, 0.0, 1.2, 6.0, 8.0))
        for block in _core_blocks("c1", 0.0):
            plan.add(block)
        for block in _core_blocks("c2", 6.0):
            plan.add(block)
        return plan

    # Option (c): the 4 MB L2 is removed (die shrinks ~35%) and a ~2 MB DRAM
    # tag array is placed on-die (Section 3: up to 25% area overhead on the
    # cores, but the die still shrinks overall).
    width = DIE_WIDTH_MM
    height = 9.6  # cores (6 mm) + tag/bus strip (3.6 mm); 115 mm^2 < 144 mm^2
    plan = Floorplan("Core 2 Duo (no L2, DRAM tags)", width, height)
    plan.add(Block("DRAMTags", 0.0, 0.0, 10.8, 3.6, 3.0))
    plan.add(Block("BusIF", 10.8, 0.0, 1.2, 3.6, 8.0))
    # Core regions sit directly above the tag strip: shift y by -? The helper
    # places cores with their bottom edge at y = 6; here the strip is 3.6 mm
    # tall, so rebuild cores shifted down by 2.4 mm.
    for block in _core_blocks("c1", 0.0) + _core_blocks("c2", 6.0):
        plan.add(block.moved_to(block.x, block.y - 2.4))
    return plan


def stacked_cache_die(kind: str, footprint: Floorplan) -> Floorplan:
    """Build the uniform-power stacked cache die for a Memory+Logic option.

    The paper notes the cache-only die has uniform power (Section 3,
    Figure 8b discussion), so the die is modeled as a single uniform block
    matching the CPU die outline.

    Args:
        kind: One of ``"sram-8mb"``, ``"dram-32mb"``, ``"dram-64mb"``.
        footprint: The CPU die the cache is stacked on; the cache die adopts
            its outline (face-to-face stacking requires matching outlines).

    Returns:
        A uniform :class:`Floorplan` with the published die power.
    """
    powers = {
        "sram-8mb": STACKED_8MB_SRAM_POWER_W,
        "dram-32mb": STACKED_32MB_DRAM_POWER_W,
        "dram-64mb": STACKED_64MB_DRAM_POWER_W,
    }
    if kind not in powers:
        raise FloorplanError(
            f"unknown stacked cache kind {kind!r}; expected one of {sorted(powers)}"
        )
    return uniform_floorplan(
        f"stacked {kind}", footprint.die_width, footprint.die_height, powers[kind]
    )
