"""Pentium 4-family planar and 3D floorplans for the Logic+Logic study.

Section 4 of the paper takes a deeply pipelined microprocessor from the
Intel Pentium 4 family (147 W skew, Table 5), builds a 3D floorplan on 50%
of the planar footprint (Figure 10), and reports a ~1.3x peak power-density
increase after iterative hotspot repair, versus a 2x worst case with no
power savings (Figure 11).

The planar floorplan here reproduces the structural constraints of
Figure 9: the SIMD unit sits between the FP unit and the FP register file
(RF), the data cache (D$) is across the die from the farthest functional
unit (F), and the hottest power density is over the instruction scheduler.
The 3D floorplan reproduces Figure 10: D$ overlaps F, and FP overlaps the
SIMD/RF area, with the higher-power die placed closest to the heat sink.

The die outline (~200 mm^2) and block powers were calibrated against the
published thermal operating points: 147 W planar peaks at ~98.6 C under
the desktop package model, and the compressed worst-case stack at ~125 C
(Figure 11).
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from repro.floorplan.blocks import Block, Floorplan

#: Total power of the Pentium 4 skew used in Section 4 / Table 5.
P4_TOTAL_POWER_W = 147.0

#: Power saving of the 3D floorplan at constant frequency (Section 4).
P4_3D_POWER_FACTOR = 0.85

#: Geometric calibration scale applied to the unit layouts below.  The
#: resulting planar die is 14.85 x 13.5 mm (~200 mm^2), consistent with a
#: large 130/90 nm-class Pentium 4 derivative carrying a 147 W skew.
GEOM_SCALE = 1.35

#: Planar die outline before scaling, mm.
_UNIT_PLANAR_W = 11.0
_UNIT_PLANAR_H = 10.0

#: 3D die outline before scaling, mm.  7.5 x 7.5 scaled = ~102.5 mm^2,
#: i.e. ~51% of the planar footprint ("a new 3D floorplan ... requires
#: only 50% of the original footprint").
_UNIT_STACKED_W = 7.5
_UNIT_STACKED_H = 7.5

# Planar block powers (W), totalling 147 W, with the hottest density over
# the instruction scheduler as the paper states.
_PLANAR_POWERS: Dict[str, float] = {
    "L2": 15.0,
    "FP": 14.5,
    "SIMD": 12.0,
    "RF": 9.0,
    "Sched": 15.5,
    "IntRF": 8.0,
    "F": 17.0,
    "D$": 8.0,
    "MOB": 7.0,
    "Retire": 6.0,
    "Rename": 8.0,
    "TC": 7.0,
    "BPU": 6.0,
    "FE": 7.0,
    "Ucode": 2.0,
    "BusIF": 5.0,
}


def planar_block_powers() -> Dict[str, float]:
    """The planar per-block power budget (W), summing to 147 W."""
    return dict(_PLANAR_POWERS)


def pentium4_planar_floorplan() -> Floorplan:
    """The planar (2D) floorplan of Figure 9, totalling 147 W.

    Structural constraints reproduced from the paper:

    * ``SIMD`` is placed between ``FP`` and ``RF`` (the planar layout is
      optimized for SIMD at the cost of two cycles of FP wire latency).
    * ``D$`` and the integer functional units ``F`` are in different rows,
      so worst-case load data crosses the whole D$ plus the whole F array.
    * The instruction scheduler ``Sched`` has the highest power density.
    """
    p = _PLANAR_POWERS
    plan = Floorplan(
        "Pentium 4 (2D baseline)", _UNIT_PLANAR_W, _UNIT_PLANAR_H
    )
    plan.add(Block("L2", 0.0, 0.0, 4.0, 10.0, p["L2"]))
    # Bottom row: FP | SIMD | RF (Figure 9).
    plan.add(Block("FP", 4.0, 0.0, 2.2, 2.2, p["FP"]))
    plan.add(Block("SIMD", 6.2, 0.0, 2.4, 2.2, p["SIMD"]))
    plan.add(Block("RF", 8.6, 0.0, 2.4, 2.2, p["RF"]))
    # Execution row: scheduler (hottest), integer RF, functional units.
    plan.add(Block("Sched", 4.0, 2.2, 2.2, 2.2, p["Sched"]))
    plan.add(Block("IntRF", 6.2, 2.2, 1.6, 2.2, p["IntRF"]))
    plan.add(Block("F", 7.8, 2.2, 3.2, 2.2, p["F"]))
    # Memory row: data cache, memory-order buffer, retirement.
    plan.add(Block("D$", 4.0, 4.4, 3.4, 2.2, p["D$"]))
    plan.add(Block("MOB", 7.4, 4.4, 1.8, 2.2, p["MOB"]))
    plan.add(Block("Retire", 9.2, 4.4, 1.8, 2.2, p["Retire"]))
    # Front-end row: rename/alloc, trace cache, branch predictor.
    plan.add(Block("Rename", 4.0, 6.6, 2.4, 1.8, p["Rename"]))
    plan.add(Block("TC", 6.4, 6.6, 2.8, 1.8, p["TC"]))
    plan.add(Block("BPU", 9.2, 6.6, 1.8, 1.8, p["BPU"]))
    # Top strip: fetch/decode, microcode ROM, bus interface.
    plan.add(Block("FE", 4.0, 8.4, 3.6, 1.6, p["FE"]))
    plan.add(Block("Ucode", 7.6, 8.4, 1.8, 1.6, p["Ucode"]))
    plan.add(Block("BusIF", 9.4, 8.4, 1.6, 1.6, p["BusIF"]))
    return plan.scaled_geometry(GEOM_SCALE)


def pentium4_3d_floorplans(
    power_factor: float = P4_3D_POWER_FACTOR,
) -> Tuple[Floorplan, Floorplan]:
    """The two-die 3D floorplan of Figure 10.

    Blocks keep (approximately) their planar areas but are distributed
    across two dies on roughly half the planar footprint; the shared L2 is
    split between the dies (intra-block splitting, which the paper applies
    to caches).  Block powers are scaled by *power_factor* (default 0.85:
    the paper's 15% power reduction from removed repeaters, latches, and
    clock-grid metal).

    Overlap structure reproduced from the paper:

    * ``D$`` (top die, low power) overlaps ``F`` (bottom die), halving the
      load-to-use wire path.
    * ``FP`` (top die) overlaps the ``SIMD``/``RF`` area (bottom die),
      removing the two cycles of FP wire latency without hurting SIMD.
    * The execution cluster (Sched/Rename overlap) sits adjacent to the
      FP/SIMD overlap, matching the planar layout's hot execution core.
    * The higher-power die is the bottom die, placed closest to the heat
      sink.

    The combined through-stack peak power density of this floorplan is
    ~1.3-1.45x the planar peak — the outcome of the paper's iterative
    hotspot-repair process (see
    :func:`repro.floorplan.stacking.repair_hotspots`).

    Returns:
        ``(bottom_die, top_die)`` floorplans; bottom is heat-sink side.
    """
    p = {name: power * power_factor for name, power in _PLANAR_POWERS.items()}
    w, h = _UNIT_STACKED_W, _UNIT_STACKED_H

    bottom = Floorplan("Pentium 4 3D (bottom die)", w, h)
    bottom.add(Block("L2b", 0.0, 0.0, 7.5, 2.2, p["L2"] / 2))
    bottom.add(Block("SIMD", 0.0, 2.2, 2.4, 2.2, p["SIMD"]))
    bottom.add(Block("RF", 2.4, 2.2, 2.0, 2.2, p["RF"]))
    bottom.add(Block("F", 4.4, 2.2, 3.1, 2.2, p["F"]))
    bottom.add(Block("Sched", 0.0, 4.4, 2.2, 2.2, p["Sched"]))
    bottom.add(Block("IntRF", 2.2, 4.4, 1.6, 2.2, p["IntRF"]))
    bottom.add(Block("Retire", 3.8, 4.4, 1.8, 2.2, p["Retire"]))
    bottom.add(Block("BusIF", 5.6, 4.4, 1.9, 2.2, p["BusIF"]))

    top = Floorplan("Pentium 4 3D (top die)", w, h)
    top.add(Block("L2t", 0.0, 0.0, 7.5, 2.2, p["L2"] / 2))
    top.add(Block("FP", 0.0, 2.2, 2.3, 2.2, p["FP"]))
    top.add(Block("MOB", 2.4, 2.2, 2.0, 2.2, p["MOB"]))
    top.add(Block("D$", 4.4, 2.2, 3.1, 2.2, p["D$"]))
    top.add(Block("Rename", 0.0, 4.4, 2.2, 2.2, p["Rename"]))
    top.add(Block("TC", 2.2, 4.4, 2.8, 2.2, p["TC"]))
    top.add(Block("BPU", 5.0, 4.4, 1.6, 2.2, p["BPU"]))
    top.add(Block("FE", 0.0, 6.6, 3.6, 0.9, p["FE"]))
    top.add(Block("Ucode", 3.6, 6.6, 1.8, 0.9, p["Ucode"]))
    return (
        bottom.scaled_geometry(GEOM_SCALE),
        top.scaled_geometry(GEOM_SCALE),
    )


def pentium4_worstcase_3d() -> Tuple[Floorplan, Floorplan]:
    """The "3D Worstcase" configuration of Figure 11.

    No power savings (full 147 W) and an exact 2x power-density increase:
    the planar floorplan is compressed geometrically by 1/sqrt(2) per axis
    onto each of the two dies, with half of each block's power per die, so
    each die alone matches the planar density and the stack doubles it —
    hot spots land exactly on hot spots.

    Returns:
        ``(bottom_die, top_die)``; both dies are identical by construction.
    """
    planar = pentium4_planar_floorplan()
    scale = 1.0 / math.sqrt(2.0)

    def compressed(name: str) -> Floorplan:
        plan = Floorplan(
            name,
            planar.die_width * scale,
            planar.die_height * scale,
        )
        for block in planar.blocks:
            plan.add(
                Block(
                    block.name,
                    block.x * scale,
                    block.y * scale,
                    block.width * scale,
                    block.height * scale,
                    block.power / 2.0,
                )
            )
        return plan

    return (
        compressed("Pentium 4 3D worst case (bottom die)"),
        compressed("Pentium 4 3D worst case (top die)"),
    )
