"""Block-level floorplans and power maps.

This package models the physical-design substrate both studies in the paper
rest on: rectangular functional blocks with assigned power, composed into
planar (2D) and stacked (3D) floorplans.  It provides the baseline
Intel Core 2 Duo floorplan used for the Memory+Logic study (Section 3,
Figure 6) and the Pentium 4-family planar and 3D floorplans used for the
Logic+Logic study (Section 4, Figures 9 and 10), together with the
power-density analysis and the iterative hotspot-repair placement loop the
paper describes.
"""

from repro.floorplan.blocks import Block, Floorplan, FloorplanError
from repro.floorplan.core2duo import (
    CORE2_TOTAL_POWER_W,
    core2duo_floorplan,
    stacked_cache_die,
)
from repro.floorplan.pentium4 import (
    P4_TOTAL_POWER_W,
    pentium4_3d_floorplans,
    pentium4_planar_floorplan,
    pentium4_worstcase_3d,
)
from repro.floorplan.splitting import auto_stack, footprint_ratio, split_block
from repro.floorplan.stacking import (
    PowerDensityReport,
    power_density_map,
    power_density_report,
    repair_hotspots,
    scale_floorplan_power,
)

__all__ = [
    "Block",
    "Floorplan",
    "FloorplanError",
    "CORE2_TOTAL_POWER_W",
    "core2duo_floorplan",
    "stacked_cache_die",
    "P4_TOTAL_POWER_W",
    "pentium4_planar_floorplan",
    "pentium4_3d_floorplans",
    "pentium4_worstcase_3d",
    "auto_stack",
    "footprint_ratio",
    "split_block",
    "PowerDensityReport",
    "power_density_map",
    "power_density_report",
    "repair_hotspots",
    "scale_floorplan_power",
]
