"""Block splitting and automatic 3D floorplan generation.

Section 4 notes that beyond moving whole blocks between dies, "further
power improvement can be found by dividing blocks between die" — the
intra-block splitting of [1][7][25] that the paper leaves out of scope.
This module implements it:

* :func:`split_block` — divide one block into two stacked halves (half
  the area and power on each die, perfectly overlapped, halving the
  block's worst-case internal wire length).
* :func:`auto_stack` — generate a two-die 3D floorplan from a planar one:
  the named blocks are split across the dies; the remaining blocks are
  distributed greedily to balance die power (hot blocks alternating) and
  packed row by row.

The result plugs directly into the thermal model and the power-density
analysis, so a user can quantify split-vs-move trade-offs on their own
designs (see ``examples/custom_stack_design.py``).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Tuple

from repro.floorplan.blocks import Block, Floorplan, FloorplanError


def split_block(block: Block) -> Tuple[Block, Block]:
    """Split *block* into two aligned halves for face-to-face stacking.

    Each half keeps the block's position and width but has half the
    height and half the power, so the stacked pair reconstructs the
    planar power density over half the footprint.
    """
    half_height = block.height / 2.0
    bottom = Block(
        f"{block.name}/b", block.x, block.y, block.width, half_height,
        block.power / 2.0,
    )
    top = Block(
        f"{block.name}/t", block.x, block.y, block.width, half_height,
        block.power / 2.0,
    )
    return bottom, top


def _pack_rows(
    name: str, blocks: List[Block], die_width: float
) -> Floorplan:
    """Shelf-pack blocks into rows on a die of the given width.

    Simple first-fit shelf packing: blocks are placed left to right; a
    new row starts when the current one is full.  The die height is
    whatever the packing needs.
    """
    x = 0.0
    y = 0.0
    row_height = 0.0
    placed: List[Block] = []
    for block in blocks:
        if block.width > die_width + 1e-9:
            raise FloorplanError(
                f"block {block.name!r} ({block.width} mm) is wider than "
                f"the {die_width} mm die"
            )
        if x + block.width > die_width + 1e-9:
            x = 0.0
            y += row_height
            row_height = 0.0
        placed.append(block.moved_to(x, y))
        x += block.width
        row_height = max(row_height, block.height)
    die_height = y + row_height if placed else 1.0
    plan = Floorplan(name, die_width, die_height)
    for block in placed:
        plan.add(block)
    return plan


def auto_stack(
    planar: Floorplan,
    split: Iterable[str] = (),
    die_width: Optional[float] = None,
) -> Tuple[Floorplan, Floorplan]:
    """Generate a two-die 3D floorplan from a planar one.

    Blocks named in *split* are divided across the dies (stacked halves,
    aligned); all other blocks are assigned whole to whichever die
    currently has less power (hot blocks first, so they alternate), then
    shelf-packed.  Both dies are padded to a common outline.

    Args:
        planar: The planar floorplan to convert.
        split: Names of blocks to split across the dies (typically large
            arrays: caches, register files).
        die_width: Target die width; default ``planar.die_width / sqrt(2)``
            (the 50%-footprint goal of the paper's 3D floorplan).

    Returns:
        ``(bottom_die, top_die)``, bottom carrying the larger power.

    Raises:
        FloorplanError: If a *split* name does not exist.
    """
    split = set(split)
    unknown = split - {b.name for b in planar.blocks}
    if unknown:
        raise FloorplanError(f"cannot split unknown blocks {sorted(unknown)}")
    width = die_width or planar.die_width / math.sqrt(2.0)

    bottom_blocks: List[Block] = []
    top_blocks: List[Block] = []
    for block in planar.blocks:
        if block.name in split:
            half_b, half_t = split_block(block)
            bottom_blocks.append(half_b)
            top_blocks.append(half_t)

    movable = sorted(
        (b for b in planar.blocks if b.name not in split),
        key=lambda b: b.power,
        reverse=True,
    )
    power_bottom = sum(b.power for b in bottom_blocks)
    power_top = sum(b.power for b in top_blocks)
    for block in movable:
        if power_bottom <= power_top:
            bottom_blocks.append(block)
            power_bottom += block.power
        else:
            top_blocks.append(block)
            power_top += block.power

    bottom = _pack_rows(f"{planar.name} 3D (bottom)", bottom_blocks, width)
    top = _pack_rows(f"{planar.name} 3D (top)", top_blocks, width)

    # Pad both dies to a common outline (face-to-face requirement).
    height = max(bottom.die_height, top.die_height)
    bottom = Floorplan(bottom.name, width, height, bottom.blocks)
    top = Floorplan(top.name, width, height, top.blocks)
    if bottom.total_power < top.total_power:
        bottom, top = top, bottom
    return bottom, top


def footprint_ratio(planar: Floorplan, stacked: Floorplan) -> float:
    """Stacked footprint as a fraction of the planar die area."""
    return stacked.die_area / planar.die_area
