"""Rectangular floorplan blocks and whole-die floorplans.

Dimensions are in millimetres and power in watts.  A :class:`Floorplan` is a
collection of non-overlapping :class:`Block` rectangles covering (part of) a
die outline; it can rasterize itself into a power-density map for the thermal
solver (W/mm^2 per grid cell).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np


class FloorplanError(ValueError):
    """Raised for geometrically or physically inconsistent floorplans."""


@dataclass(frozen=True)
class Block:
    """A rectangular functional block placed on a die.

    Attributes:
        name: Unique block name within its floorplan (e.g. ``"FP"``).
        x: Left edge, mm, in die coordinates.
        y: Bottom edge, mm, in die coordinates.
        width: Extent in x, mm.  Must be positive.
        height: Extent in y, mm.  Must be positive.
        power: Total power dissipated in the block, W.  Must be >= 0.
    """

    name: str
    x: float
    y: float
    width: float
    height: float
    power: float

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise FloorplanError(
                f"block {self.name!r} has non-positive size "
                f"{self.width}x{self.height}"
            )
        if self.power < 0:
            raise FloorplanError(
                f"block {self.name!r} has negative power {self.power}"
            )

    @property
    def area(self) -> float:
        """Block area in mm^2."""
        return self.width * self.height

    @property
    def power_density(self) -> float:
        """Power density in W/mm^2."""
        return self.power / self.area

    @property
    def x2(self) -> float:
        """Right edge, mm."""
        return self.x + self.width

    @property
    def y2(self) -> float:
        """Top edge, mm."""
        return self.y + self.height

    def overlaps(self, other: "Block") -> bool:
        """True if this block's rectangle overlaps *other* (not just touching)."""
        eps = 1e-9
        return (
            self.x < other.x2 - eps
            and other.x < self.x2 - eps
            and self.y < other.y2 - eps
            and other.y < self.y2 - eps
        )

    def with_power(self, power: float) -> "Block":
        """Return a copy of this block with a different power."""
        return replace(self, power=power)

    def moved_to(self, x: float, y: float) -> "Block":
        """Return a copy of this block placed at (x, y)."""
        return replace(self, x=x, y=y)


class Floorplan:
    """A die-level floorplan: a named set of non-overlapping blocks.

    Args:
        name: Human-readable floorplan name.
        die_width: Die outline width, mm.
        die_height: Die outline height, mm.
        blocks: Blocks to place.  Block rectangles must lie inside the die
            outline and must not overlap each other.
    """

    def __init__(
        self,
        name: str,
        die_width: float,
        die_height: float,
        blocks: Iterable[Block] = (),
    ) -> None:
        if die_width <= 0 or die_height <= 0:
            raise FloorplanError(
                f"floorplan {name!r} has non-positive die size "
                f"{die_width}x{die_height}"
            )
        self.name = name
        self.die_width = float(die_width)
        self.die_height = float(die_height)
        self._blocks: Dict[str, Block] = {}
        for block in blocks:
            self.add(block)

    # -- construction -----------------------------------------------------

    def add(self, block: Block) -> None:
        """Add *block*, validating containment and non-overlap."""
        if block.name in self._blocks:
            raise FloorplanError(f"duplicate block name {block.name!r}")
        eps = 1e-6
        if (
            block.x < -eps
            or block.y < -eps
            or block.x2 > self.die_width + eps
            or block.y2 > self.die_height + eps
        ):
            raise FloorplanError(
                f"block {block.name!r} extends outside the "
                f"{self.die_width}x{self.die_height} mm die outline"
            )
        for existing in self._blocks.values():
            if block.overlaps(existing):
                raise FloorplanError(
                    f"block {block.name!r} overlaps {existing.name!r}"
                )
        self._blocks[block.name] = block

    def replace_block(self, block: Block) -> None:
        """Replace the existing block of the same name with *block*."""
        if block.name not in self._blocks:
            raise FloorplanError(f"no block named {block.name!r} to replace")
        del self._blocks[block.name]
        try:
            self.add(block)
        except FloorplanError:
            # Restore a consistent state before propagating.
            self._blocks[block.name] = block
            raise

    # -- queries -----------------------------------------------------------

    @property
    def blocks(self) -> List[Block]:
        """Blocks in insertion order."""
        return list(self._blocks.values())

    def block(self, name: str) -> Block:
        """Look up a block by name."""
        try:
            return self._blocks[name]
        except KeyError:
            raise FloorplanError(
                f"floorplan {self.name!r} has no block {name!r}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    @property
    def die_area(self) -> float:
        """Die outline area, mm^2."""
        return self.die_width * self.die_height

    @property
    def total_power(self) -> float:
        """Sum of block powers, W."""
        return sum(b.power for b in self._blocks.values())

    @property
    def block_area(self) -> float:
        """Sum of block areas, mm^2 (may be < die area if there are gaps)."""
        return sum(b.area for b in self._blocks.values())

    def peak_power_density(self) -> float:
        """Highest block power density, W/mm^2 (0 for an empty floorplan)."""
        if not self._blocks:
            return 0.0
        return max(b.power_density for b in self._blocks.values())

    # -- rasterization -----------------------------------------------------

    def rasterize(self, nx: int, ny: int) -> np.ndarray:
        """Rasterize block power onto an ``(ny, nx)`` grid of W/mm^2.

        Each grid cell receives the area-weighted power density of the
        blocks overlapping it, so total power is conserved:
        ``raster.sum() * cell_area == total_power`` (up to float rounding).

        Args:
            nx: Number of grid cells across the die width.
            ny: Number of grid cells across the die height.

        Returns:
            Array of shape ``(ny, nx)`` in W/mm^2, row 0 at y = 0.
        """
        if nx <= 0 or ny <= 0:
            raise FloorplanError("raster grid must have positive dimensions")
        dx = self.die_width / nx
        dy = self.die_height / ny
        cell_area = dx * dy
        grid = np.zeros((ny, nx), dtype=float)
        for block in self._blocks.values():
            density = block.power_density
            # Index ranges of cells the block touches.
            i0 = max(0, int(np.floor(block.x / dx)))
            i1 = min(nx, int(np.ceil(block.x2 / dx)))
            j0 = max(0, int(np.floor(block.y / dy)))
            j1 = min(ny, int(np.ceil(block.y2 / dy)))
            for j in range(j0, j1):
                cell_y0 = j * dy
                cell_y1 = cell_y0 + dy
                oy = min(cell_y1, block.y2) - max(cell_y0, block.y)
                if oy <= 0:
                    continue
                for i in range(i0, i1):
                    cell_x0 = i * dx
                    cell_x1 = cell_x0 + dx
                    ox = min(cell_x1, block.x2) - max(cell_x0, block.x)
                    if ox <= 0:
                        continue
                    grid[j, i] += density * (ox * oy) / cell_area
        return grid

    # -- transforms ----------------------------------------------------------

    def copy(self, name: Optional[str] = None) -> "Floorplan":
        """A deep-enough copy (blocks are immutable) with an optional rename."""
        return Floorplan(
            name or self.name, self.die_width, self.die_height, self.blocks
        )

    def scaled_geometry(self, factor: float, name: Optional[str] = None) -> "Floorplan":
        """Return a copy scaled geometrically by *factor* per axis.

        Block powers are unchanged, so power density scales by 1/factor^2.
        """
        if factor <= 0:
            raise FloorplanError(f"geometry scale factor must be > 0, got {factor}")
        scaled = [
            Block(
                b.name,
                b.x * factor,
                b.y * factor,
                b.width * factor,
                b.height * factor,
                b.power,
            )
            for b in self.blocks
        ]
        return Floorplan(
            name or self.name,
            self.die_width * factor,
            self.die_height * factor,
            scaled,
        )

    def scaled_power(self, factor: float, name: Optional[str] = None) -> "Floorplan":
        """Return a copy with every block's power multiplied by *factor*."""
        if factor < 0:
            raise FloorplanError(f"power scale factor must be >= 0, got {factor}")
        scaled = [b.with_power(b.power * factor) for b in self.blocks]
        return Floorplan(
            name or f"{self.name} x{factor:g}",
            self.die_width,
            self.die_height,
            scaled,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Floorplan({self.name!r}, {self.die_width}x{self.die_height} mm, "
            f"{len(self)} blocks, {self.total_power:.1f} W)"
        )


def uniform_floorplan(
    name: str, die_width: float, die_height: float, power: float
) -> Floorplan:
    """A single-block floorplan dissipating *power* uniformly over the die.

    Used for cache-only dies in the Memory+Logic stack, which the paper notes
    have uniform power (Section 3, discussion of Figure 8b).
    """
    block = Block(name=f"{name}-uniform", x=0.0, y=0.0,
                  width=die_width, height=die_height, power=power)
    return Floorplan(name, die_width, die_height, [block])


def grid_floorplan(
    name: str,
    die_width: float,
    die_height: float,
    powers: Sequence[Sequence[float]],
) -> Floorplan:
    """Build a floorplan from a 2D grid of per-tile powers.

    ``powers[j][i]`` is the power of the tile in row *j* (from the bottom)
    and column *i* (from the left).  Handy for tests and synthetic maps.
    """
    ny = len(powers)
    if ny == 0:
        raise FloorplanError("power grid must be non-empty")
    nx = len(powers[0])
    if any(len(row) != nx for row in powers):
        raise FloorplanError("power grid rows must have equal length")
    dx = die_width / nx
    dy = die_height / ny
    blocks = []
    for j, row in enumerate(powers):
        for i, power in enumerate(row):
            blocks.append(
                Block(
                    name=f"tile-{j}-{i}",
                    x=i * dx,
                    y=j * dy,
                    width=dx,
                    height=dy,
                    power=float(power),
                )
            )
    return Floorplan(name, die_width, die_height, blocks)


def stack_outline_matches(a: Floorplan, b: Floorplan, tol: float = 1e-6) -> bool:
    """True if two floorplans have the same die outline (stackable face-to-face)."""
    return (
        abs(a.die_width - b.die_width) <= tol
        and abs(a.die_height - b.die_height) <= tol
    )
