"""Stacked power-density analysis and iterative hotspot repair.

Section 4 warns that the central risk of Logic+Logic stacking is the
accidental doubling of power density, and describes the mitigation used in
the paper: "A simple iterative process of placing blocks, observing the new
power densities and repairing outliers".  This module provides the combined
(through-stack) power-density map for a two-die stack, summary reporting,
and an implementation of that repair loop that relocates top-die blocks off
of combined-density outliers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.floorplan.blocks import Block, Floorplan, FloorplanError

# -- die-to-die interface technology constants ---------------------------
# The electrical side of face-to-face stacking (Section 3): the d2d via
# path is far closer to an on-die via stack than to an I/O pad.  These
# live with the physical stacking substrate so both the electrical model
# (core.stack) and the wire-delay model (uarch.wires) draw on one source.

#: RC of a full first-to-last-metal via stack, normalized to 1.0.
VIA_STACK_RC = 1.0

#: RC of the d2d via path relative to a full via stack (paper: ~1/3).
D2D_RC_FRACTION = VIA_STACK_RC / 3.0


def power_density_map(
    bottom: Floorplan, top: Floorplan, nx: int = 64, ny: int = 64
) -> np.ndarray:
    """Combined through-stack power density, W/mm^2, on an (ny, nx) grid.

    In a face-to-face stack the two active layers are a few tens of microns
    apart — far thinner than any lateral feature — so to first order the
    heat flux toward the heat sink at (x, y) is driven by the *sum* of the
    two dies' local power densities.  This is the quantity the paper's
    repair loop monitors.

    The dies must share an outline (face-to-face stacking requirement).
    """
    if (
        abs(bottom.die_width - top.die_width) > 1e-6
        or abs(bottom.die_height - top.die_height) > 1e-6
    ):
        raise FloorplanError(
            "stacked dies must share an outline: "
            f"{bottom.die_width}x{bottom.die_height} vs "
            f"{top.die_width}x{top.die_height}"
        )
    return bottom.rasterize(nx, ny) + top.rasterize(nx, ny)


@dataclass(frozen=True)
class PowerDensityReport:
    """Summary of a stack's power-density situation.

    Attributes:
        total_power: Sum of both dies' power, W.
        peak_density: Peak combined density, W/mm^2.
        mean_density: Mean combined density over the die outline, W/mm^2.
        peak_vs_reference: Ratio of peak combined density to the reference
            (planar) peak density, if a reference was given.
    """

    total_power: float
    peak_density: float
    mean_density: float
    peak_vs_reference: Optional[float]


def power_density_report(
    bottom: Floorplan,
    top: Floorplan,
    reference: Optional[Floorplan] = None,
    nx: int = 64,
    ny: int = 64,
) -> PowerDensityReport:
    """Analyze a two-die stack, optionally against a planar reference."""
    combined = power_density_map(bottom, top, nx, ny)
    peak = float(combined.max())
    mean = float(combined.mean())
    ratio = None
    if reference is not None:
        ref_peak = float(reference.rasterize(nx, ny).max())
        if ref_peak > 0:
            ratio = peak / ref_peak
    return PowerDensityReport(
        total_power=bottom.total_power + top.total_power,
        peak_density=peak,
        mean_density=mean,
        peak_vs_reference=ratio,
    )


def scale_floorplan_power(plan: Floorplan, factor: float) -> Floorplan:
    """Uniformly scale a floorplan's power (e.g. for DVFS operating points)."""
    return plan.scaled_power(factor)


def _placement_candidates(
    plan: Floorplan, block: Block, step: float
) -> List[Tuple[float, float]]:
    """Grid of legal (x, y) positions for *block* on *plan* (block removed)."""
    others = [b for b in plan.blocks if b.name != block.name]
    candidates = []
    x = 0.0
    while x + block.width <= plan.die_width + 1e-9:
        y = 0.0
        while y + block.height <= plan.die_height + 1e-9:
            moved = block.moved_to(x, y)
            if not any(moved.overlaps(other) for other in others):
                candidates.append((x, y))
            y += step
        x += step
    return candidates


def _peak_after_move(
    bottom: Floorplan,
    top: Floorplan,
    block_name: str,
    position: Tuple[float, float],
    nx: int,
    ny: int,
) -> float:
    trial = top.copy()
    trial.replace_block(trial.block(block_name).moved_to(*position))
    return float(power_density_map(bottom, trial, nx, ny).max())


def repair_hotspots(
    bottom: Floorplan,
    top: Floorplan,
    target_peak_density: float,
    max_iterations: int = 16,
    step: float = 0.2,
    nx: int = 64,
    ny: int = 64,
) -> Tuple[Floorplan, int]:
    """Iteratively relocate top-die blocks to cap combined power density.

    Implements Section 4's "place, observe, repair outliers" loop: while
    the combined density peak exceeds *target_peak_density*, the top-die
    block contributing to the worst cell is moved to the legal position
    that minimizes the new combined peak.  The bottom die (heat-sink side,
    hot logic) is held fixed, as in the paper's floorplan.

    Args:
        bottom: Heat-sink-side die (not modified).
        top: Die to repair; not modified — a repaired copy is returned.
        target_peak_density: Acceptable combined peak, W/mm^2.
        max_iterations: Bail-out bound on repair moves.
        step: Candidate-position grid pitch, mm.
        nx: Density-map raster width.
        ny: Density-map raster height.

    Returns:
        ``(repaired_top, iterations_used)``.  If the target cannot be met,
        the best floorplan found is returned after *max_iterations* moves.
    """
    if target_peak_density <= 0:
        raise FloorplanError("target peak density must be positive")
    current = top.copy()
    for iteration in range(max_iterations):
        combined = power_density_map(bottom, current, nx, ny)
        peak = float(combined.max())
        if peak <= target_peak_density:
            return current, iteration
        # Locate the worst cell and the top-die block covering it.
        j, i = np.unravel_index(int(np.argmax(combined)), combined.shape)
        cx = (i + 0.5) * current.die_width / nx
        cy = (j + 0.5) * current.die_height / ny
        offender = _block_at(current, cx, cy)
        if offender is None:
            # The hotspot is entirely on the fixed bottom die; nothing the
            # top-die repair loop can do about it.
            return current, iteration
        best_position = (offender.x, offender.y)
        best_peak = peak
        for position in _placement_candidates(current, offender, step):
            trial_peak = _peak_after_move(
                bottom, current, offender.name, position, nx, ny
            )
            if trial_peak < best_peak - 1e-9:
                best_peak = trial_peak
                best_position = position
        if best_position == (offender.x, offender.y):
            # No improving move exists for the offender; stop.
            return current, iteration
        current.replace_block(offender.moved_to(*best_position))
    return current, max_iterations


def _block_at(plan: Floorplan, x: float, y: float) -> Optional[Block]:
    """The block covering point (x, y), or None if the point is whitespace."""
    for block in plan.blocks:
        if block.x <= x <= block.x2 and block.y <= y <= block.y2:
            return block
    return None
