"""The benchmark pairs behind ``repro bench``.

Each benchmark times a *reference* implementation against its optimized
hot path and checks the two produce equivalent results before any
timing is trusted:

* ``trace-gen/<kernel>`` — per-record ``TraceGenerator.records()`` vs
  the batched ``arrays()`` form (same stream, same RNG draws).
* ``replay/<kernel>`` — per-record ``feed_many`` replay vs the chunked
  ``feed_array`` fast path; equivalence is the full ``ReplayStats``
  (hit/miss counters included) matching exactly.
* ``thermal-steady`` — cold assembly + factorization vs the cached
  operator/LU path; temperatures must be bit-identical.
* ``thermal-transient`` — cold backward-Euler setup vs the cached
  (geometry, dt) factorization; peak curves must be bit-identical.
* ``coupled-loop`` — the closed-loop thermal/DVFS engine with cold
  per-epoch assembly (``reuse_operator=False``) vs the cached
  per-(geometry, dt) LU reused across every epoch; the per-epoch peak
  and V/f traces must be bit-identical.
* ``oracle-overhead/*`` — the same hot path with oracles off
  (reference) vs ``sample`` mode (optimized); results must match
  exactly and the slowdown must stay within
  :data:`ORACLE_OVERHEAD_BUDGET`.

The fast-path pairs above time with oracles *off* — they measure the
fast path itself; the oracle tax is measured by its own pair.  Timing
happens only through :func:`repro.bench.harness.time_best`.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import Any, Dict, List, Optional

import numpy as np

from repro.bench.harness import BenchResult, time_best
from repro.coupled import (
    CoupledConfig,
    ThresholdDtm,
    constant_load,
    run_coupled_loop,
)
from repro.floorplan.core2duo import core2duo_floorplan
from repro.memsim.config import baseline_config
from repro.memsim.replay import ReplayStats, replay_trace
from repro.oracles.config import oracle_mode
from repro.thermal.solver import (
    SolverConfig,
    clear_operator_cache,
    solve_steady_state,
)
from repro.thermal.stack import build_planar_stack
from repro.thermal.transient import solve_transient
from repro.traces.generator import (
    TraceGenerator,
    WorkloadSpec,
    records_to_array,
)

#: Allowed fractional slowdown of ``--oracles sample`` over oracles-off
#: on the hot paths (the ISSUE budget: <= 5%).
ORACLE_OVERHEAD_BUDGET = 0.05

#: (kernel, n_records, warmup_fraction) per tier.  High-hit kernels
#: (svd, gauss) stress the fast path's inline L1/L2 walks; pcg in the
#: full tier keeps a miss-heavy workload honest.
_REPLAY_PLAN = {
    "quick": [("svd", 150_000, 0.5), ("gauss", 150_000, 0.35)],
    "full": [
        ("svd", 400_000, 0.5),
        ("gauss", 400_000, 0.35),
        ("pcg", 400_000, 0.35),
    ],
}

_TRACE_GEN_PLAN = {
    "quick": [("svd", 150_000)],
    "full": [("svd", 400_000), ("gauss", 400_000)],
}

#: Memory scale divisor for replay benchmarks (matches the Section 3
#: study default, where footprints exercise the L2).
_REPLAY_SCALE = 8


def _stats_signature(stats: ReplayStats) -> Dict[str, Any]:
    """The equivalence-relevant fields of a :class:`ReplayStats`."""
    return {
        "n_accesses": stats.n_accesses,
        "cpma": stats.cpma,
        "avg_latency": stats.avg_latency,
        "wall_cycles": stats.wall_cycles,
        "bandwidth_gbps": stats.bandwidth_gbps,
        "level_counts": dict(stats.level_counts),
        "level_latency": dict(stats.level_latency),
        "offchip_fraction": stats.offchip_fraction,
        "invalidations": stats.invalidations,
    }


def bench_trace_generation(
    kernel: str, n_records: int, seed: int, repeats: int
) -> BenchResult:
    """records() (per-record objects) vs arrays() (batched rows)."""
    spec = WorkloadSpec(name=kernel, n_records=n_records, seed=seed)
    generator = TraceGenerator(spec, scale=_REPLAY_SCALE)
    reference = list(generator.records())
    array = generator.arrays()
    equivalent = bool(
        np.array_equal(records_to_array(reference), array)
    )
    reference_s = time_best(lambda: list(generator.records()), repeats)
    optimized_s = time_best(generator.arrays, repeats)
    return BenchResult(
        name=f"trace-gen/{kernel}",
        reference_s=reference_s,
        optimized_s=optimized_s,
        equivalent=equivalent,
        repeats=repeats,
        meta={"n_records": n_records, "seed": seed},
    )


def bench_replay(
    kernel: str,
    n_records: int,
    warmup_fraction: float,
    seed: int,
    repeats: int,
) -> BenchResult:
    """Per-record feed vs the chunked array fast path, counters pinned."""
    spec = WorkloadSpec(name=kernel, n_records=n_records, seed=seed)
    generator = TraceGenerator(spec, scale=_REPLAY_SCALE)
    records = list(generator.records())
    array = generator.arrays()
    config = baseline_config(_REPLAY_SCALE)

    def run_reference() -> ReplayStats:
        return replay_trace(records, config, warmup_fraction=warmup_fraction)

    def run_optimized() -> ReplayStats:
        return replay_trace(array, config, warmup_fraction=warmup_fraction)

    equivalent = _stats_signature(run_reference()) == _stats_signature(
        run_optimized()
    )
    reference_s = time_best(run_reference, repeats)
    optimized_s = time_best(run_optimized, repeats)
    return BenchResult(
        name=f"replay/{kernel}",
        reference_s=reference_s,
        optimized_s=optimized_s,
        equivalent=equivalent,
        repeats=repeats,
        meta={
            "n_records": n_records,
            "warmup_fraction": warmup_fraction,
            "seed": seed,
            "scale": _REPLAY_SCALE,
        },
    )


def bench_thermal_steady(nx: int, repeats: int) -> BenchResult:
    """Cold assemble+factorize+solve vs the cached-operator solve."""
    stack = build_planar_stack(core2duo_floorplan())
    config = SolverConfig(nx=nx, ny=nx)

    def run_cold():
        clear_operator_cache()
        return solve_steady_state(stack, config)

    cold_solution = run_cold()
    reference_s = time_best(run_cold, repeats)
    # Prime the cache, then time the warm path.
    warm_solution = solve_steady_state(stack, config)
    equivalent = bool(
        np.array_equal(cold_solution.temperature, warm_solution.temperature)
    )
    optimized_s = time_best(
        lambda: solve_steady_state(stack, config), repeats
    )
    return BenchResult(
        name="thermal-steady",
        reference_s=reference_s,
        optimized_s=optimized_s,
        equivalent=equivalent,
        repeats=repeats,
        meta={"nx": nx},
    )


def bench_thermal_transient(
    nx: int, steps: int, repeats: int
) -> BenchResult:
    """Cold backward-Euler setup vs the cached (geometry, dt) LU."""
    stack = build_planar_stack(core2duo_floorplan())
    config = SolverConfig(nx=nx, ny=nx)
    dt_s = 0.05
    duration_s = steps * dt_s

    def run_cold():
        clear_operator_cache()
        return solve_transient(
            stack, config, duration_s=duration_s, dt_s=dt_s
        )

    cold_result = run_cold()
    reference_s = time_best(run_cold, repeats)
    warm_result = solve_transient(
        stack, config, duration_s=duration_s, dt_s=dt_s
    )
    equivalent = cold_result.peak_c == warm_result.peak_c
    optimized_s = time_best(
        lambda: solve_transient(
            stack, config, duration_s=duration_s, dt_s=dt_s
        ),
        repeats,
    )
    return BenchResult(
        name="thermal-transient",
        reference_s=reference_s,
        optimized_s=optimized_s,
        equivalent=equivalent,
        repeats=repeats,
        meta={"nx": nx, "steps": steps, "dt_s": dt_s},
    )


def bench_coupled_loop(
    nx: int, n_epochs: int, repeats: int
) -> BenchResult:
    """Cold per-epoch thermal assembly vs the cached per-dt LU reuse.

    The closed loop calls the transient solver once per control epoch
    with the same geometry and dt, so the per-(geometry, dt) LU cache
    turns N epochs of assemble+factorize into one.  Both sides run the
    identical control trajectory; peak and V/f traces must match
    bit-for-bit.
    """
    base = CoupledConfig(
        nx=nx,
        n_epochs=n_epochs,
        epoch_s=1.0,
        dt_s=0.5,
        calibration_s=10.0,
        calibration_dt_s=0.5,
    )
    cold_cfg = dc_replace(base, reuse_operator=False)

    def run_cold():
        clear_operator_cache()
        return run_coupled_loop(
            ThresholdDtm(), constant_load(1.0), cold_cfg
        )

    def run_warm():
        return run_coupled_loop(ThresholdDtm(), constant_load(1.0), base)

    cold = run_cold()
    warm = run_warm()  # cache primed by its own first epoch
    equivalent = (
        [e.peak_c for e in cold.epochs] == [e.peak_c for e in warm.epochs]
        and [e.vcc for e in cold.epochs] == [e.vcc for e in warm.epochs]
        and cold.tau_s == warm.tau_s
    )
    reference_s = time_best(run_cold, repeats)
    optimized_s = time_best(run_warm, repeats)
    return BenchResult(
        name="coupled-loop",
        reference_s=reference_s,
        optimized_s=optimized_s,
        equivalent=equivalent,
        repeats=repeats,
        meta={"nx": nx, "n_epochs": n_epochs},
    )


def bench_oracle_replay(
    kernel: str,
    n_records: int,
    warmup_fraction: float,
    seed: int,
    repeats: int,
) -> BenchResult:
    """The chunked replay path with oracles off vs ``sample`` mode."""
    spec = WorkloadSpec(name=kernel, n_records=n_records, seed=seed)
    array = TraceGenerator(spec, scale=_REPLAY_SCALE).arrays()
    config = baseline_config(_REPLAY_SCALE)

    def run_off() -> ReplayStats:
        with oracle_mode("off"):
            return replay_trace(
                array, config, warmup_fraction=warmup_fraction
            )

    def run_sample() -> ReplayStats:
        with oracle_mode("sample"):
            return replay_trace(
                array, config, warmup_fraction=warmup_fraction
            )

    off_stats = run_off()
    sample_stats = run_sample()
    equivalent = (
        _stats_signature(off_stats) == _stats_signature(sample_stats)
        and not sample_stats.degraded
    )
    reference_s = time_best(run_off, repeats)
    optimized_s = time_best(run_sample, repeats)
    return BenchResult(
        name=f"oracle-overhead/replay-{kernel}",
        reference_s=reference_s,
        optimized_s=optimized_s,
        equivalent=equivalent,
        repeats=repeats,
        meta={
            "n_records": n_records,
            "warmup_fraction": warmup_fraction,
            "seed": seed,
            "scale": _REPLAY_SCALE,
            "budget": ORACLE_OVERHEAD_BUDGET,
        },
    )


def bench_oracle_steady(nx: int, repeats: int) -> BenchResult:
    """The warm cached-operator solve with oracles off vs ``sample``."""
    stack = build_planar_stack(core2duo_floorplan())
    config = SolverConfig(nx=nx, ny=nx)

    def run_off():
        with oracle_mode("off"):
            return solve_steady_state(stack, config)

    def run_sample():
        with oracle_mode("sample"):
            return solve_steady_state(stack, config)

    with oracle_mode("off"):
        clear_operator_cache()
    off_solution = run_off()  # also primes the operator cache
    sample_solution = run_sample()
    equivalent = bool(
        np.array_equal(
            off_solution.temperature, sample_solution.temperature
        )
        and not sample_solution.degraded
    )
    reference_s = time_best(run_off, repeats)
    optimized_s = time_best(run_sample, repeats)
    return BenchResult(
        name="oracle-overhead/thermal-steady",
        reference_s=reference_s,
        optimized_s=optimized_s,
        equivalent=equivalent,
        repeats=repeats,
        meta={"nx": nx, "budget": ORACLE_OVERHEAD_BUDGET},
    )


def oracle_overhead_failures(results: List[BenchResult]) -> List[str]:
    """Names of ``oracle-overhead/*`` pairs whose slowdown blows the budget."""
    failures: List[str] = []
    for result in results:
        if not result.name.startswith("oracle-overhead/"):
            continue
        budget = float(result.meta.get("budget", ORACLE_OVERHEAD_BUDGET))
        if result.optimized_s > (1.0 + budget) * result.reference_s:
            overhead = result.optimized_s / max(result.reference_s, 1e-12) - 1
            failures.append(
                f"{result.name}: sample-mode overhead "
                f"{100 * overhead:.1f}% > {100 * budget:.0f}% budget"
            )
    return failures


def run_suite(
    quick: bool = True,
    seed: int = 1234,
    repeats: int = 3,
    progress: Optional[Any] = None,
) -> List[BenchResult]:
    """Run the benchmark tier; returns one result per pair.

    Args:
        quick: Small inputs (~½ minute, the CI gate tier) vs the full
            tier's larger traces and finer grids.
        seed: Trace-generation seed (both sides of every pair share it).
        repeats: Best-of repeats per timing.
        progress: Optional ``print``-like callable for per-benchmark
            status lines.
    """
    tier = "quick" if quick else "full"
    say = progress or (lambda message: None)
    results: List[BenchResult] = []

    # The fast-path pairs measure the fast path itself: oracles off.
    # The oracle tax has its own dedicated pairs below.
    with oracle_mode("off"):
        for kernel, n_records in _TRACE_GEN_PLAN[tier]:
            say(f"bench trace-gen/{kernel} ({n_records} records)...")
            results.append(
                bench_trace_generation(kernel, n_records, seed, repeats)
            )
        for kernel, n_records, warmup in _REPLAY_PLAN[tier]:
            say(f"bench replay/{kernel} ({n_records} records)...")
            results.append(
                bench_replay(kernel, n_records, warmup, seed, repeats)
            )
        nx = 40 if quick else 48
        say(f"bench thermal-steady (nx={nx})...")
        results.append(bench_thermal_steady(nx, repeats))
        nx_t = 32 if quick else 40
        steps = 10 if quick else 20
        say(f"bench thermal-transient (nx={nx_t}, {steps} steps)...")
        results.append(bench_thermal_transient(nx_t, steps, repeats))
        nx_c = 16 if quick else 20
        epochs_c = 6 if quick else 10
        say(f"bench coupled-loop (nx={nx_c}, {epochs_c} epochs)...")
        results.append(bench_coupled_loop(nx_c, epochs_c, repeats))

    kernel, n_records, warmup = _REPLAY_PLAN[tier][0]
    say(f"bench oracle-overhead/replay-{kernel} ({n_records} records)...")
    results.append(
        bench_oracle_replay(kernel, n_records, warmup, seed, repeats)
    )
    say(f"bench oracle-overhead/thermal-steady (nx={nx})...")
    results.append(bench_oracle_steady(nx, repeats))
    return results
