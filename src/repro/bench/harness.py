"""Timing, reporting, and regression gating for ``repro bench``.

This is the only module in the package allowed to read the wall clock
(see the RPL1xx determinism pass): benchmark *suites* hand callables to
:func:`time_best` and never time anything themselves, which keeps every
simulation path deterministic by construction.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

#: Report schema identifier; bump on incompatible layout changes.
BENCH_SCHEMA = "repro-bench/1"

#: A benchmark regresses when its speedup ratio drops more than this
#: fraction below the baseline's.  Gating on the ratio of two timings
#: from the *same* run makes the gate machine-independent: a slower CI
#: box slows both sides of each pair.
REGRESSION_THRESHOLD = 0.25

PathLike = Union[str, Path]


def time_best(fn: Callable[[], Any], repeats: int = 3) -> float:
    """Best-of-*repeats* wall time of ``fn()``, in seconds.

    Best-of (not mean) because scheduling noise is strictly additive;
    the minimum is the closest observable to the true cost.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


@dataclass
class BenchResult:
    """One reference-vs-optimized benchmark pair.

    Attributes:
        name: Stable benchmark identifier (baseline matching key).
        reference_s: Best-of time of the reference implementation.
        optimized_s: Best-of time of the optimized path.
        equivalent: True if the two paths produced equivalent results
            (each suite defines and checks its own equivalence).
        repeats: Repeats per side.
        meta: Free-form detail (workload, grid size, record counts...).
    """

    name: str
    reference_s: float
    optimized_s: float
    equivalent: bool = True
    repeats: int = 3
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Reference time over optimized time (>1 means faster)."""
        if self.optimized_s <= 0:
            return float("inf")
        return self.reference_s / self.optimized_s

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "reference_s": self.reference_s,
            "optimized_s": self.optimized_s,
            "speedup": self.speedup,
            "equivalent": self.equivalent,
            "repeats": self.repeats,
            "meta": dict(self.meta),
        }


def write_report(
    results: List[BenchResult],
    path: PathLike,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Write a ``repro-bench/1`` JSON report; returns the report dict."""
    report: Dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "results": [result.to_dict() for result in results],
    }
    if extra:
        report.update(extra)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def load_report(path: PathLike) -> Dict[str, Any]:
    """Load and schema-check a report written by :func:`write_report`."""
    report = json.loads(Path(path).read_text())
    if report.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {BENCH_SCHEMA!r}, "
            f"got {report.get('schema')!r}"
        )
    return report


def compare_to_baseline(
    report: Dict[str, Any],
    baseline: Dict[str, Any],
    threshold: float = REGRESSION_THRESHOLD,
) -> List[str]:
    """Regression messages for speedups that fell below the baseline.

    A benchmark regresses when ``speedup < baseline_speedup * (1 -
    threshold)``.  Benchmarks present on only one side are ignored (new
    benchmarks should not fail the gate retroactively); a pair whose
    equivalence check failed always regresses — a fast wrong answer is
    not a win.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be in (0, 1)")
    base_by_name = {
        entry["name"]: entry for entry in baseline.get("results", [])
    }
    problems: List[str] = []
    for entry in report.get("results", []):
        name = entry["name"]
        if not entry.get("equivalent", True):
            problems.append(
                f"{name}: optimized path is NOT equivalent to the reference"
            )
            continue
        base = base_by_name.get(name)
        if base is None:
            continue
        floor = base["speedup"] * (1.0 - threshold)
        if entry["speedup"] < floor:
            problems.append(
                f"{name}: speedup {entry['speedup']:.2f}x fell below "
                f"{floor:.2f}x (baseline {base['speedup']:.2f}x "
                f"- {100 * threshold:.0f}%)"
            )
    return problems
