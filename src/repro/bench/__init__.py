"""Micro-benchmark harness for the simulator hot paths.

``repro bench`` times each optimized hot path against its reference
implementation (per-record replay vs the chunked array fast path, cold
thermal assembly vs the cached operator, ...), verifies the two produce
equivalent results, and writes a ``repro-bench/1`` JSON report.  CI runs
the quick tier against the committed baseline and fails on a >25%
*speedup-ratio* regression — ratios, not absolute times, so the gate is
stable across machines.
"""

from repro.bench.harness import (
    BENCH_SCHEMA,
    REGRESSION_THRESHOLD,
    BenchResult,
    compare_to_baseline,
    load_report,
    time_best,
    write_report,
)
from repro.bench.suite import (
    ORACLE_OVERHEAD_BUDGET,
    oracle_overhead_failures,
    run_suite,
)

__all__ = [
    "BENCH_SCHEMA",
    "ORACLE_OVERHEAD_BUDGET",
    "REGRESSION_THRESHOLD",
    "BenchResult",
    "compare_to_baseline",
    "load_report",
    "oracle_overhead_failures",
    "run_suite",
    "time_best",
    "write_report",
]
