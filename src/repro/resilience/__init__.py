"""Resilience subsystem: guards, fallbacks, checkpoints, fault injection.

Production-hardens the repository's three long-running engines — trace
replay (Section 3), the interval performance model (Section 4), and the
finite-volume thermal solver (Section 2.3) — with:

* a structured exception taxonomy (:mod:`repro.resilience.errors`),
* run guards over solver outputs and trace streams with strict/lenient
  modes (:mod:`repro.resilience.guards`),
* a retry/degradation ladder for the thermal solvers
  (:mod:`repro.resilience.policy`),
* checkpoint/resume for interruptible runs
  (:mod:`repro.resilience.checkpoint`), and
* a seeded fault-injection harness proving every degradation path
  engages (:mod:`repro.resilience.faults`).
"""

import importlib

#: Every re-export is resolved lazily (PEP 562).  The subsystem sits
#: *below* the engines it hardens (``traces.record`` raises our errors,
#: the thermal/memsim engines call our guards) while ``policy`` sits
#: *above* them (it drives the thermal solvers) — an eager import here
#: would therefore close an import cycle.
_EXPORTS = {
    "ReproError": "errors",
    "SolverDivergenceError": "errors",
    "TraceCorruptionError": "errors",
    "CheckpointError": "errors",
    "StateIntegrityError": "errors",
    "OracleError": "errors",
    "GuardViolation": "errors",
    "TraceGuard": "guards",
    "check_finite": "guards",
    "check_power_map": "guards",
    "check_residual": "guards",
    "check_temperature_bounds": "guards",
    "relative_residual": "guards",
    "RESIDUAL_TOL": "guards",
    "TEMP_MIN_C": "guards",
    "TEMP_MAX_C": "guards",
    "LadderReport": "policy",
    "solve_steady_state_resilient": "policy",
    "solve_transient_resilient": "policy",
    "save_checkpoint": "checkpoint",
    "load_checkpoint": "checkpoint",
    "verify_checkpoint": "checkpoint",
    "quarantine_file": "checkpoint",
    "FaultInjector": "faults",
    "make_raw_record": "faults",
    "WORKER_FAULT_MODES": "faults",
}


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    module = importlib.import_module(f"repro.resilience.{module_name}")
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))

__all__ = list(_EXPORTS)
