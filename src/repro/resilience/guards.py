"""Run guards: validate engine outputs and trace streams.

Two families:

* **Solver guards** — pure functions over numpy arrays that check the
  thermal engines' outputs: everything finite, temperatures within
  physically plausible bounds, relative residual ``||Ax - b|| / ||b||``
  under tolerance, power maps non-negative.  Each raises a structured
  error from :mod:`repro.resilience.errors` on violation and returns the
  checked quantity otherwise, so they compose inline on hot paths.

* **TraceGuard** — a stateful per-stream validator for trace replay.
  In ``strict`` mode the first bad record raises
  :class:`TraceCorruptionError`; in ``lenient`` mode bad records are
  quarantined (skipped) and counted by violation reason, so a
  multi-million-record run survives isolated corruption and reports
  exactly what it dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.resilience.errors import (
    GuardViolation,
    SolverDivergenceError,
    TraceCorruptionError,
)
from repro.traces.record import AccessType, NO_DEP, TraceRecord

#: Default physically-plausible temperature window, Celsius.  Silicon
#: dies melt far above 400 C and the package cannot cool below deep
#: freezer temperatures; anything outside this window is solver garbage.
TEMP_MIN_C = -60.0
TEMP_MAX_C = 400.0

#: Default relative-residual tolerance for a direct solve of the SPD
#: finite-volume system (double precision should reach ~1e-12; 1e-6
#: leaves headroom for ill-conditioned fault-injected systems).
RESIDUAL_TOL = 1e-6


# -- solver guards -----------------------------------------------------------


def check_finite(values: np.ndarray, what: str = "field") -> np.ndarray:
    """Raise :class:`SolverDivergenceError` if *values* has NaN/inf."""
    values = np.asarray(values)
    if not np.all(np.isfinite(values)):
        bad = int(np.size(values) - np.count_nonzero(np.isfinite(values)))
        raise SolverDivergenceError(
            f"{what} contains {bad} non-finite value(s)"
        )
    return values


def check_temperature_bounds(
    temperature: np.ndarray,
    lo_c: float = TEMP_MIN_C,
    hi_c: float = TEMP_MAX_C,
    what: str = "temperature field",
) -> np.ndarray:
    """Raise :class:`GuardViolation` on physically implausible temperatures."""
    temperature = check_finite(temperature, what)
    t_min = float(temperature.min())
    t_max = float(temperature.max())
    if t_min < lo_c or t_max > hi_c:
        raise GuardViolation(
            f"{what} outside plausible bounds: range "
            f"[{t_min:.1f}, {t_max:.1f}] C vs allowed [{lo_c:.0f}, {hi_c:.0f}] C",
            guard="temperature-bounds",
        )
    return temperature


def relative_residual(matrix, x: np.ndarray, rhs: np.ndarray) -> float:
    """Relative residual ``||Ax - b|| / ||b||`` of a candidate solution."""
    x = np.asarray(x, dtype=float)
    rhs = np.asarray(rhs, dtype=float)
    norm_b = float(np.linalg.norm(rhs))
    if norm_b == 0.0:
        return float(np.linalg.norm(matrix @ x))
    if not np.all(np.isfinite(x)):
        return float("inf")
    return float(np.linalg.norm(matrix @ x - rhs) / norm_b)


def check_residual(
    matrix,
    x: np.ndarray,
    rhs: np.ndarray,
    tol: float = RESIDUAL_TOL,
    method: str = "lu",
) -> float:
    """Compute the relative residual; raise on NaN output or residual > tol."""
    if not np.all(np.isfinite(np.asarray(x))):
        raise SolverDivergenceError(
            f"{method} solve produced non-finite output", method=method
        )
    residual = relative_residual(matrix, x, rhs)
    if not residual <= tol:
        raise SolverDivergenceError(
            f"{method} solve residual {residual:.3e} exceeds tolerance {tol:.1e}",
            residual=residual,
            method=method,
        )
    return residual


def check_power_map(power: np.ndarray, what: str = "power map") -> np.ndarray:
    """Raise :class:`GuardViolation` on negative or non-finite power."""
    power = np.asarray(power)
    if not np.all(np.isfinite(power)):
        raise GuardViolation(
            f"{what} contains non-finite power", guard="power-map"
        )
    p_min = float(power.min()) if power.size else 0.0
    if p_min < 0.0:
        raise GuardViolation(
            f"{what} contains negative power ({p_min:.3g} W)",
            guard="power-map",
        )
    return power


# -- trace-stream guard ------------------------------------------------------

_VALID_KINDS = frozenset(int(k) for k in AccessType)


@dataclass
class TraceGuard:
    """Stateful validator for one replayed trace stream.

    Checks per record: uid strictly increases over the stream, the
    dependency (if any) names a strictly earlier record, the cpu id is
    within the simulated machine, the access kind is known, and the
    address is non-negative.

    Attributes:
        n_cpus: Number of cpus in the target hierarchy; records naming
            other cpus are invalid.
        strict: If True, the first violation raises
            :class:`TraceCorruptionError`.  If False (lenient), bad
            records are quarantined: :meth:`admit` returns False and the
            violation is tallied in :attr:`quarantined_by_reason`.
        checked: Records inspected so far.
        quarantined: Records rejected so far (lenient mode only).
    """

    n_cpus: int
    strict: bool = True
    checked: int = 0
    quarantined: int = 0
    last_uid: int = -1
    quarantined_by_reason: Dict[str, int] = field(default_factory=dict)

    def admit(self, record: TraceRecord) -> bool:
        """Validate one record; True to replay it, False to quarantine."""
        self.checked += 1
        reason = self._violation(record)
        if reason is None:
            self.last_uid = record.uid
            return True
        if self.strict:
            raise TraceCorruptionError(
                f"record uid={record.uid}: {reason} "
                f"(cpu={record.cpu}, dep_uid={record.dep_uid})",
                uid=record.uid,
                reason=reason,
            )
        self.quarantined += 1
        self.quarantined_by_reason[reason] = (
            self.quarantined_by_reason.get(reason, 0) + 1
        )
        return False

    def _violation(self, record: TraceRecord) -> Optional[str]:
        if record.uid < 0 or record.uid <= self.last_uid:
            return "non-monotonic-uid"
        if not 0 <= record.cpu < self.n_cpus:
            return "bad-cpu"
        if int(record.kind) not in _VALID_KINDS:
            return "bad-kind"
        if record.address < 0:
            return "bad-address"
        if record.dep_uid != NO_DEP:
            if record.dep_uid == record.uid:
                return "self-dep"
            if record.dep_uid > record.uid:
                return "forward-dep"
            if record.dep_uid < 0:
                return "bad-dep"
        return None

    def report(self) -> Dict[str, int]:
        """Summary counts, suitable for logging or ReplayStats."""
        return {
            "checked": self.checked,
            "quarantined": self.quarantined,
            **{f"quarantined:{r}": n for r, n in self.quarantined_by_reason.items()},
        }
