"""Structured exception taxonomy for the three simulation engines.

Every failure a long run can hit maps onto one of these classes, so
callers (the CLI, the experiment runner, the benchmark harness) can
distinguish "the solver diverged" from "the trace is corrupt" from "the
checkpoint file is unusable" without string-matching messages.

The taxonomy:

``ReproError``
    Base class.  Carries an optional ``partial`` payload — whatever
    intermediate results the failing engine had produced — so a guarded
    run can report progress made before the failure.

``SolverDivergenceError``
    A linear solve or time step produced non-finite values, an
    out-of-tolerance residual, or failed to converge.  Carries the
    offending ``residual`` and the solver ``method`` that failed.

``TraceCorruptionError``
    A trace record or stream violates the format invariants (Section
    2.1): non-monotonic uids, forward/self dependencies, bad cpu ids,
    negative addresses.  Subclasses :class:`ValueError` so existing
    callers that guard trace parsing with ``except ValueError`` keep
    working.

``CheckpointError``
    A checkpoint file is missing, truncated, of the wrong kind, or from
    an incompatible run.

``GuardViolation``
    A run guard rejected an engine's output (implausible temperatures,
    negative power, residual above tolerance).  Also a
    :class:`ValueError` for backward compatibility.

``StateIntegrityError``
    Persisted state (a checkpoint envelope, a journal line) failed its
    sha256/CRC integrity check.  Subclasses :class:`CheckpointError` so
    every existing resume-failure handler already catches it; carries
    the quarantine path when the corrupt file was set aside.

``OracleError``
    A runtime invariant oracle tripped *and* the caller asked for an
    exception (``repro verify``, strict library use).  Campaign runs
    never raise this — they record the violation and degrade.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class ReproError(Exception):
    """Base class for all structured simulation failures.

    Attributes:
        partial: Intermediate results produced before the failure (empty
            if the engine had nothing to report).
    """

    def __init__(self, message: str, partial: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.partial: Dict[str, Any] = partial or {}


class SolverDivergenceError(ReproError):
    """A linear solve produced garbage: NaN/inf output, a residual above
    tolerance, or an iterative method that failed to converge.

    Attributes:
        residual: Relative residual ``||Ax - b|| / ||b||`` at failure,
            or ``float("nan")`` if the solve produced no usable vector.
        method: Which ladder rung failed (``"lu"``, ``"cg"``, ...).
    """

    def __init__(
        self,
        message: str,
        residual: float = float("nan"),
        method: str = "lu",
        partial: Optional[Dict[str, Any]] = None,
    ):
        super().__init__(message, partial)
        self.residual = residual
        self.method = method


class TraceCorruptionError(ReproError, ValueError):
    """A trace record or stream violates the Section 2.1 invariants.

    Attributes:
        uid: Uid of the offending record, if known.
        reason: Short machine-readable violation tag (e.g.
            ``"non-monotonic-uid"``, ``"forward-dep"``, ``"bad-cpu"``).
    """

    def __init__(
        self,
        message: str,
        uid: Optional[int] = None,
        reason: str = "corrupt",
        partial: Optional[Dict[str, Any]] = None,
    ):
        super().__init__(message, partial)
        self.uid = uid
        self.reason = reason


class CheckpointError(ReproError):
    """A checkpoint file could not be written, read, or applied."""


class StateIntegrityError(CheckpointError):
    """Persisted state failed its integrity check (corruption detected).

    Attributes:
        path: The offending file, if known.
        quarantined: Where the corrupt file was moved (``*.quarantined``),
            or None if it was left in place.
    """

    def __init__(
        self,
        message: str,
        path: Optional[str] = None,
        quarantined: Optional[str] = None,
        partial: Optional[Dict[str, Any]] = None,
    ):
        super().__init__(message, partial)
        self.path = path
        self.quarantined = quarantined


class OracleError(ReproError):
    """A runtime invariant oracle tripped and the caller wanted a raise.

    Attributes:
        oracle: Identifier of the tripped oracle (``engine.check``).
    """

    def __init__(
        self,
        message: str,
        oracle: str = "oracle",
        partial: Optional[Dict[str, Any]] = None,
    ):
        super().__init__(message, partial)
        self.oracle = oracle


class GuardViolation(ReproError, ValueError):
    """A run guard rejected an engine output as physically implausible.

    Attributes:
        guard: Name of the guard that fired (e.g.
            ``"temperature-bounds"``, ``"residual"``, ``"power-map"``).
    """

    def __init__(
        self,
        message: str,
        guard: str = "guard",
        partial: Optional[Dict[str, Any]] = None,
    ):
        super().__init__(message, partial)
        self.guard = guard
